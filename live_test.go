package messi

import (
	"sync"
	"testing"
)

// liveTestOpts keeps live-index tests fast: small trees and pools.
func liveTestOpts() *Options {
	return &Options{LeafCapacity: 64, IndexWorkers: 4, SearchWorkers: 4}
}

// rowsOf splits flat random-walk storage into rows.
func rowsOf(data []float32, length int) [][]float32 {
	rows := make([][]float32, len(data)/length)
	for i := range rows {
		rows[i] = data[i*length : (i+1)*length]
	}
	return rows
}

// TestLiveEquivalence: a LiveIndex seeded with half the data and fed the
// rest through Append/AppendBatch must answer Search, SearchKNN and
// SearchDTW exactly like a from-scratch Build over the union — both
// before any rebuild (delta path) and after Flush (rebuilt path).
func TestLiveEquivalence(t *testing.T) {
	const n, length = 1200, 64
	all := rowsOf(RandomWalk(n, length, 21), length)
	queries := rowsOf(RandomWalk(10, length, 22), length)

	oracle, err := Build(all, liveTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	lix, err := BuildLive(all[:n/2], liveTestOpts(), &LiveOptions{RebuildThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	if _, err := lix.AppendBatch(all[n/2 : 3*n/4]); err != nil {
		t.Fatal(err)
	}
	for _, s := range all[3*n/4:] {
		if _, err := lix.Append(s); err != nil {
			t.Fatal(err)
		}
	}

	check := func(t *testing.T) {
		t.Helper()
		for qi, q := range queries {
			got, err := lix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Distance != want.Distance || got.Position != want.Position {
				t.Fatalf("query %d: live %+v, fresh %+v", qi, got, want)
			}
			gotK, err := lix.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			wantK, err := oracle.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK) != len(wantK) {
				t.Fatalf("query %d: live k-NN %d matches, fresh %d", qi, len(gotK), len(wantK))
			}
			for i := range gotK {
				if gotK[i].Distance != wantK[i].Distance {
					t.Fatalf("query %d k-NN rank %d: live %v, fresh %v", qi, i, gotK[i].Distance, wantK[i].Distance)
				}
			}
			gotD, err := lix.SearchDTW(q, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			wantD, err := oracle.SearchDTW(q, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if gotD.Distance != wantD.Distance {
				t.Fatalf("query %d DTW: live %v, fresh %v", qi, gotD.Distance, wantD.Distance)
			}
		}
	}
	if st := lix.Stats(); st.DeltaSeries != n/2 {
		t.Fatalf("pre-flush delta holds %d series, want %d", st.DeltaSeries, n/2)
	}
	t.Run("delta", check)
	if err := lix.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := lix.Stats(); st.DeltaSeries != 0 || st.BaseSeries != n || st.Generation != 2 {
		t.Fatalf("post-flush stats %+v", st)
	}
	t.Run("rebuilt", check)
}

// TestLiveEquivalenceNormalized: the Normalize option applies the same
// z-normalization on both the build and streaming paths.
func TestLiveEquivalenceNormalized(t *testing.T) {
	const n, length = 400, 64
	all := rowsOf(RandomWalk(n, length, 23), length)
	opts := liveTestOpts()
	opts.Normalize = true

	oracle, err := Build(all, opts)
	if err != nil {
		t.Fatal(err)
	}
	lix, err := BuildLive(all[:n/2], opts, &LiveOptions{RebuildThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	caller := make([]float32, length)
	copy(caller, all[n/2][0:length])
	if _, err := lix.AppendBatch(all[n/2:]); err != nil {
		t.Fatal(err)
	}
	// Appending with Normalize must not mutate the caller's slices.
	for j, v := range all[n/2][0:length] {
		if v != caller[j] {
			t.Fatal("Append mutated the caller's series")
		}
	}
	q := rowsOf(RandomWalk(1, length, 24), length)[0]
	got, err := lix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance {
		t.Fatalf("normalized: live %v, fresh %v", got.Distance, want.Distance)
	}
}

// TestLiveConcurrentAppendSearch is the public-API race test: concurrent
// Append and Search/SearchKNN while a tiny rebuild threshold forces
// background generation swaps mid-traffic. Run under -race in CI.
func TestLiveConcurrentAppendSearch(t *testing.T) {
	const length = 64
	initialFlat := RandomWalk(300, length, 25)
	initial := rowsOf(initialFlat, length)
	lix, err := BuildLive(initial, liveTestOpts(), &LiveOptions{RebuildThreshold: 50, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()

	extra := rowsOf(RandomWalk(300, length, 26), length)
	var wg sync.WaitGroup
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := a; i < len(extra); i += 2 {
				if _, err := lix.Append(extra[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := initial[(s*131+i*17)%len(initial)]
				m, err := lix.Search(q)
				if err != nil {
					t.Error(err)
					return
				}
				if m.Distance != 0 {
					t.Errorf("self-query distance %v, want 0", m.Distance)
					return
				}
				if _, err := lix.SearchKNN(q, 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := lix.Flush(); err != nil {
		t.Fatal(err)
	}
	st := lix.Stats()
	if st.Series != 600 || st.DeltaSeries != 0 {
		t.Fatalf("final stats %+v", st)
	}
	if st.Generation < 2 {
		t.Fatalf("generation %d: background rebuilds never ran", st.Generation)
	}
	// Everything appended mid-traffic is now indexed and findable.
	for i := 0; i < len(extra); i += 29 {
		m, err := lix.Search(extra[i])
		if err != nil {
			t.Fatal(err)
		}
		if m.Distance != 0 {
			t.Fatalf("appended series %d not found exactly (distance %v)", i, m.Distance)
		}
	}
}

// TestLiveEmptyStart: NewLive starts with no data and becomes searchable
// on the first append.
func TestLiveEmptyStart(t *testing.T) {
	const length = 64
	lix, err := NewLive(length, liveTestOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	if _, err := lix.Search(make([]float32, length)); err == nil {
		t.Fatal("search over empty live index succeeded")
	}
	rows := rowsOf(RandomWalk(10, length, 27), length)
	pos, err := lix.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 0 {
		t.Fatalf("first batch position %d, want 0", pos)
	}
	m, err := lix.Search(rows[3])
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 3 || m.Distance != 0 {
		t.Fatalf("delta-only self-query answered %+v", m)
	}
}

// TestCardinalityValidation covers the math/bits-based power-of-two check.
func TestCardinalityValidation(t *testing.T) {
	data := RandomWalk(100, 64, 28)
	for _, c := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		if _, err := BuildFlat(data, 64, &Options{Cardinality: c, LeafCapacity: 64}); err != nil {
			t.Errorf("cardinality %d rejected: %v", c, err)
		}
	}
	for _, c := range []int{1, 3, 5, 12, 200, 257, 512, -4} {
		if _, err := BuildFlat(data, 64, &Options{Cardinality: c, LeafCapacity: 64}); err == nil {
			t.Errorf("cardinality %d accepted", c)
		}
	}
}
