package messi

import (
	"sync"
	"testing"
)

// TestEngineMatchesSearch: the pooled engine must agree exactly with the
// one-shot Search/SearchKNN on the same inputs, including under the
// Normalize option (the engine normalizes queries the same way).
func TestEngineMatchesSearch(t *testing.T) {
	for _, normalize := range []bool{false, true} {
		data := RandomWalk(3000, 64, 3)
		ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64, Normalize: normalize})
		if err != nil {
			t.Fatal(err)
		}
		eng := ix.NewEngine(&EngineOptions{PoolWorkers: 8})
		queries := RandomWalk(10, 64, 303)
		for i := 0; i < 10; i++ {
			q := queries[i*64 : (i+1)*64]
			want, err := ix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("normalize=%v query %d: engine %+v, search %+v", normalize, i, got, want)
			}

			wantK, err := ix.SearchKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := eng.QueryKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for j := range wantK {
				if gotK[j] != wantK[j] {
					t.Fatalf("normalize=%v query %d k-NN %d: engine %+v, search %+v", normalize, i, j, gotK[j], wantK[j])
				}
			}
		}
		eng.Close()
	}
}

// TestEngineQueryBatch: batch results line up with per-query answers.
func TestEngineQueryBatch(t *testing.T) {
	data := RandomWalk(2000, 64, 5)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&EngineOptions{PoolWorkers: 6, QueryWorkers: 2})
	defer eng.Close()

	flat := RandomWalk(12, 64, 505)
	queries := make([][]float32, 12)
	for i := range queries {
		queries[i] = flat[i*64 : (i+1)*64]
	}
	got, err := eng.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(got), len(queries))
	}
	for i, q := range queries {
		want, err := ix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("batch query %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

// TestEngineConcurrentQueriers: ≥8 goroutines share one engine; every
// answer must match the single-query path (run under -race in CI).
func TestEngineConcurrentQueriers(t *testing.T) {
	data := RandomWalk(2000, 64, 9)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&EngineOptions{PoolWorkers: 6, QueryWorkers: 3, MaxConcurrent: 4})
	defer eng.Close()

	flat := RandomWalk(8, 64, 909)
	want := make([]Match, 8)
	queries := make([][]float32, 8)
	for i := range queries {
		queries[i] = flat[i*64 : (i+1)*64]
		m, err := ix.Search(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}

	const queriers = 8
	var wg sync.WaitGroup
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				i := (g + r) % len(queries)
				got, err := eng.Query(queries[i])
				if err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				if got != want[i] {
					t.Errorf("querier %d query %d: got %+v, want %+v", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
