package messi

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// snapshotTestIndex builds a deterministic index for round-trip tests.
func snapshotTestIndex(t *testing.T, normalize bool) (*Index, []float32) {
	t.Helper()
	data := RandomWalk(2500, 64, 21)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64, SearchWorkers: 4, Normalize: normalize})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// assertSameAnswers checks 1-NN, k-NN and DTW equivalence between two
// indexes across a set of queries.
func assertSameAnswers(t *testing.T, want, got *Index, queries [][]float32) {
	t.Helper()
	for qi, q := range queries {
		w1, err := want.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := got.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if g1 != w1 {
			t.Fatalf("query %d 1-NN: loaded %+v, built %+v", qi, g1, w1)
		}
		wk, err := want.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		gk, err := got.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gk) != len(wk) {
			t.Fatalf("query %d k-NN: loaded %d matches, built %d", qi, len(gk), len(wk))
		}
		for i := range wk {
			if gk[i] != wk[i] {
				t.Fatalf("query %d k-NN[%d]: loaded %+v, built %+v", qi, i, gk[i], wk[i])
			}
		}
		wd, err := want.SearchDTW(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := got.SearchDTW(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if gd != wd {
			t.Fatalf("query %d DTW: loaded %+v, built %+v", qi, gd, wd)
		}
	}
}

func snapshotQueries(count, length int) [][]float32 {
	flat := RandomWalk(count, length, 909)
	qs := make([][]float32, count)
	for i := range qs {
		qs[i] = flat[i*length : (i+1)*length]
	}
	return qs
}

// TestSaveLoadRoundTrip: Save → Load answers 1-NN/k-NN/DTW identically
// to the freshly built index, with and without normalization.
func TestSaveLoadRoundTrip(t *testing.T) {
	for _, normalize := range []bool{false, true} {
		name := "raw"
		if normalize {
			name = "normalized"
		}
		t.Run(name, func(t *testing.T) {
			ix, _ := snapshotTestIndex(t, normalize)
			path := filepath.Join(t.TempDir(), "ix.snap")
			if err := ix.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Len() != ix.Len() || loaded.SeriesLen() != ix.SeriesLen() {
				t.Fatalf("loaded %d×%d, want %d×%d", loaded.Len(), loaded.SeriesLen(), ix.Len(), ix.SeriesLen())
			}
			if loaded.Stats() != ix.Stats() {
				t.Fatalf("loaded stats %+v, want %+v", loaded.Stats(), ix.Stats())
			}
			assertSameAnswers(t, ix, loaded, snapshotQueries(6, 64))

			// The loaded index works behind the persistent engine too.
			eng := loaded.NewEngine(&EngineOptions{PoolWorkers: 4})
			defer eng.Close()
			q := snapshotQueries(1, 64)[0]
			want, err := ix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("engine over loaded index answered %+v, want %+v", got, want)
			}
		})
	}
}

// TestSnapshotStream: WriteSnapshot/ReadSnapshot round-trips through any
// io.Writer/Reader pair.
func TestSnapshotStream(t *testing.T) {
	ix, _ := snapshotTestIndex(t, false)
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, ix, loaded, snapshotQueries(3, 64))
}

// TestLiveSaveLoad: a flushed LiveIndex saves a snapshot that LoadLive
// boots from, answering identically (1-NN/k-NN/DTW) and accepting new
// appends that future rebuilds fold in.
func TestLiveSaveLoad(t *testing.T) {
	data := RandomWalk(1200, 64, 31)
	lix, err := BuildLiveFlat(data, 64, &Options{LeafCapacity: 64, SearchWorkers: 4},
		&LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	extra := RandomWalk(40, 64, 32)
	for i := 0; i < 40; i++ {
		if _, err := lix.Append(extra[i*64 : (i+1)*64]); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := lix.Save(path); err != nil {
		t.Fatal(err)
	}
	if st := lix.Stats(); st.DeltaSeries != 0 || st.BaseSeries != 1240 {
		t.Fatalf("post-save stats %+v: Save must flush first", st)
	}

	loaded, err := LoadLive(path, &Options{SearchWorkers: 4},
		&LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != lix.Len() {
		t.Fatalf("loaded live index has %d series, want %d", loaded.Len(), lix.Len())
	}
	if st := loaded.Stats(); st.Generation != 1 || st.BaseSeries != 1240 {
		t.Fatalf("loaded live stats %+v", st)
	}
	for qi, q := range snapshotQueries(5, 64) {
		want, err := lix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d 1-NN: loaded live %+v, original %+v", qi, got, want)
		}
		wantK, err := lix.SearchKNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotK, err := loaded.SearchKNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantK {
			if gotK[i] != wantK[i] {
				t.Fatalf("query %d k-NN[%d]: loaded live %+v, original %+v", qi, i, gotK[i], wantK[i])
			}
		}
		wantD, err := lix.SearchDTW(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := loaded.SearchDTW(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if gotD != wantD {
			t.Fatalf("query %d DTW: loaded live %+v, original %+v", qi, gotD, wantD)
		}
	}

	// The restored live index keeps ingesting: appended series are
	// searchable and a flush folds them into generation 2.
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 4000 + float32(i)
	}
	pos, err := loaded.Append(novel)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1240 {
		t.Fatalf("append position %d, want 1240", pos)
	}
	m, err := loaded.Search(novel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != pos || m.Distance != 0 {
		t.Fatalf("appended series not found after LoadLive: %+v", m)
	}
	if err := loaded.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := loaded.Stats(); st.Generation != 2 || st.BaseSeries != 1241 {
		t.Fatalf("post-flush stats %+v", st)
	}
	m, err = loaded.Search(novel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != pos {
		t.Fatalf("appended series lost across post-load rebuild: %+v", m)
	}
}

// TestLiveAutoSnapshot: with SnapshotPath set, Flush persists the merged
// generation and Close writes a best-effort snapshot.
func TestLiveAutoSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "auto.snap")
	data := RandomWalk(600, 32, 41)
	lix, err := BuildLiveFlat(data, 32, &Options{LeafCapacity: 32, SearchWorkers: 2},
		&LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2, SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	novel := make([]float32, 32)
	for i := range novel {
		novel[i] = -300 - float32(i)
	}
	if _, err := lix.Append(novel); err != nil {
		t.Fatal(err)
	}
	if err := lix.Flush(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLive(path, nil, &LiveOptions{ScanWorkers: 2})
	if err != nil {
		t.Fatalf("flush did not leave a loadable snapshot: %v", err)
	}
	if loaded.Len() != 601 {
		t.Fatalf("flush snapshot has %d series, want 601", loaded.Len())
	}
	loaded.Close()

	// Close rewrites the snapshot (best-effort) with the current
	// generation; remove the flush-time file to observe it.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	lix.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Close did not write a snapshot: %v", err)
	}
}

// TestLiveSaveEmpty: an empty live index has no generation to persist.
func TestLiveSaveEmpty(t *testing.T) {
	lix, err := NewLive(32, nil, &LiveOptions{ScanWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	if err := lix.Save(filepath.Join(t.TempDir(), "x.snap")); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
}

// TestLoadRejectsDatasetFile: feeding a dataset file (different magic) to
// Load must fail cleanly.
func TestLoadRejectsDatasetFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := WriteSeriesFile(path, RandomWalk(10, 32, 1), 32); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a dataset file")
	}
}
