package messi

import (
	"context"
	"errors"
	"fmt"
	"log/slog"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/live"
	"repro/internal/series"
	"repro/internal/wal"
)

// LiveOptions configures streaming ingestion for a LiveIndex. The zero
// value (or a nil *LiveOptions) selects the defaults.
type LiveOptions struct {
	// RebuildThreshold is the number of buffered (delta) series that
	// triggers a background generation rebuild. Default 100000.
	RebuildThreshold int
	// ScanWorkers is the parallelism of the delta brute-force scan on the
	// query path. Default 8.
	ScanWorkers int
	// Engine configures the persistent query pool answering the
	// tree-search side of every query (same semantics as Index.NewEngine).
	Engine EngineOptions
	// SnapshotPath, when non-empty, makes the live index persist its
	// immutable generation there (atomically) after every successful
	// Flush, and best-effort on Close — so a restarted server can boot
	// from the snapshot via LoadLive instead of rebuilding. Errors from
	// the Close-time snapshot are discarded; call Flush or Save first
	// when durability must be confirmed.
	SnapshotPath string
	// Metrics, when non-nil, receives the live index's telemetry (delta
	// occupancy, rebuild counts and durations, generation number) and is
	// inherited by the embedded Engine unless Engine.Metrics is set
	// separately. Nil disables measurement.
	Metrics *Metrics
	// WALDir, when non-empty, enables a write-ahead log in that
	// directory: every acked Append/AppendBatch is journaled before it
	// becomes searchable, and a restarted process replays the log tail
	// on boot (via NewLive/LoadLive with the same WALDir) so acked
	// series survive a crash even when they never made it into a
	// snapshot. Snapshots written by Flush, Save, or Close truncate the
	// log's covered prefix. Empty (the default) disables journaling.
	WALDir string
	// WALSync selects the WAL durability policy: "always" (fsync every
	// append — an acked append survives power loss; the default),
	// "interval" (fsync on a background timer — bounded loss window,
	// much higher throughput), or "none" (rely on the OS page cache —
	// survives process crashes but not power loss).
	WALSync string
	// WALSegmentBytes caps a WAL segment before rotating to a fresh
	// file (truncation drops whole covered segments). 0 means 64 MiB.
	WALSegmentBytes int64
}

func (o *LiveOptions) toLive(coreOpts core.Options, shards int) live.Options {
	lo := live.Options{Core: coreOpts, Shards: shards}
	if o != nil {
		lo.RebuildThreshold = o.RebuildThreshold
		lo.ScanWorkers = o.ScanWorkers
		lo.Engine = o.Engine.toInternal()
		lo.Metrics = o.Metrics
	}
	return lo
}

// LiveIndex is a mutable MESSI index supporting streaming ingestion:
// Append adds series that are immediately searchable (answered exactly
// from a delta buffer fused with the indexed generation), and a
// background rebuild periodically merges the delta into a new immutable
// generation without blocking queries or appends. Search results are
// identical to a fresh Build over the union of all the data.
//
//	ix, _ := messi.NewLive(256, nil, nil)          // start empty
//	pos, _ := ix.Append(mySeries)                  // searchable immediately
//	m, _ := ix.Search(query)
//	ix.Close()
//
// A LiveIndex is safe for concurrent use; Close it when done.
type LiveIndex struct {
	inner        *live.Index
	normalize    bool
	snapshotPath string   // from LiveOptions.SnapshotPath; "" disables
	wal          *wal.Log // from LiveOptions.WALDir; nil disables
}

// openWAL opens the write-ahead log configured by lopts (nil when
// journaling is disabled). The LiveIndex owns the returned log: the
// internal live index only appends to and replays from it.
func openWAL(lopts *LiveOptions, seriesLen int) (*wal.Log, error) {
	if lopts == nil || lopts.WALDir == "" {
		return nil, nil
	}
	policy, err := wal.ParseSyncPolicy(lopts.WALSync)
	if err != nil {
		return nil, err
	}
	return wal.Open(lopts.WALDir, seriesLen, &wal.Options{
		SegmentBytes: lopts.WALSegmentBytes,
		Sync:         policy,
	})
}

// NewLive creates an empty live index for series of the given length.
// Both option structs may be nil for the defaults.
func NewLive(seriesLen int, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	return newLive(seriesLen, nil, opts, lopts)
}

// BuildLive creates a live index seeded with an initial batch of series
// (each row copied), indexed synchronously as the first generation.
func BuildLive(rows [][]float32, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	col, err := series.FromSlices(rows)
	if err != nil {
		return nil, err
	}
	return newLive(col.Length, col, opts, lopts)
}

// BuildLiveFlat creates a live index seeded with flat row-major storage
// (retained without copying, like BuildFlat; the caller must not modify
// data afterwards).
func BuildLiveFlat(data []float32, seriesLen int, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	col, err := series.NewCollection(data, seriesLen)
	if err != nil {
		return nil, err
	}
	return newLive(seriesLen, col, opts, lopts)
}

// BuildLiveFromFile creates a live index seeded with a dataset file
// written by WriteSeriesFile or the messi-gen tool.
func BuildLiveFromFile(path string, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	col, err := dataset.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return newLive(col.Length, col, opts, lopts)
}

func newLive(seriesLen int, col *series.Collection, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	coreOpts, normalize, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	if normalize && col != nil {
		col.ZNormalizeAll()
	}
	w, err := openWAL(lopts, seriesLen)
	if err != nil {
		return nil, err
	}
	lo := lopts.toLive(coreOpts, opts.shards())
	lo.WAL = w
	inner, err := live.New(seriesLen, col, lo)
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, err
	}
	return &LiveIndex{inner: inner, normalize: normalize, snapshotPath: snapshotPath(lopts), wal: w}, nil
}

// prepareQuery applies normalization when the index was built with it.
func (ix *LiveIndex) prepareQuery(query []float32) []float32 {
	if !ix.normalize {
		return query
	}
	return series.ZNormalized(query)
}

// Append adds one series (copied) and returns its stable position. The
// series is searchable as soon as Append returns, before any rebuild.
func (ix *LiveIndex) Append(s []float32) (int, error) {
	if ix.normalize {
		s = series.ZNormalized(s)
	}
	return ix.inner.Append(s)
}

// AppendBatch adds a batch of series (copied) atomically, returning the
// position of the first; the batch occupies contiguous positions.
func (ix *LiveIndex) AppendBatch(rows [][]float32) (int, error) {
	if ix.normalize {
		normalized := make([][]float32, len(rows))
		for i, r := range rows {
			normalized[i] = series.ZNormalized(r)
		}
		rows = normalized
	}
	return ix.inner.AppendBatch(rows)
}

// Search answers an exact 1-NN query under Euclidean distance over all
// appended and indexed series.
//
// Deprecated: use Do with a SearchRequest (the zero Mode is exact 1-NN).
func (ix *LiveIndex) Search(query []float32) (Match, error) {
	res, err := ix.Do(context.Background(), SearchRequest{Query: query})
	if err != nil {
		return Match{}, err
	}
	return res.Best(), nil
}

// SearchKNN answers an exact k-NN query, returning up to k matches in
// ascending distance order.
//
// Deprecated: use Do with K set.
func (ix *LiveIndex) SearchKNN(query []float32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w, got %d", ErrBadK, k)
	}
	res, err := ix.Do(context.Background(), SearchRequest{Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba warping window given as a fraction of the series length
// (0.1 = the 10% window the paper uses). Fractions outside [0,1] are an
// error, not a silent clamp.
//
// Deprecated: use Do with DTW: true and Window set.
func (ix *LiveIndex) SearchDTW(query []float32, window float64) (Match, error) {
	res, err := ix.Do(context.Background(), SearchRequest{Query: query, DTW: true, Window: window})
	if err != nil {
		return Match{}, err
	}
	return res.Best(), nil
}

// Flush synchronously merges all buffered series into the immutable
// generation; afterwards (absent concurrent appends) the delta is empty.
// With LiveOptions.SnapshotPath set, the merged generation is then
// persisted there; a snapshot write failure is returned (the in-memory
// merge itself has already succeeded).
func (ix *LiveIndex) Flush() error {
	if err := ix.inner.Flush(); err != nil {
		return err
	}
	if ix.snapshotPath != "" && ix.inner.Base() != nil {
		return ix.saveBase(ix.snapshotPath)
	}
	return nil
}

// Series returns (a view of) the series at the given stable position.
// Callers must not modify it.
func (ix *LiveIndex) Series(position int) ([]float32, error) {
	return ix.inner.Series(position)
}

// Len reports the number of searchable series.
func (ix *LiveIndex) Len() int { return ix.inner.Len() }

// SeriesLen reports the length (points) of each indexed series.
func (ix *LiveIndex) SeriesLen() int { return ix.inner.SeriesLen() }

// EngineOptions returns the effective (defaulted) options of the
// embedded query engine — the admission-gate configuration in force.
func (ix *LiveIndex) EngineOptions() EngineOptions {
	o := ix.inner.Engine().Options()
	return EngineOptions{
		PoolWorkers:    o.PoolWorkers,
		QueryWorkers:   o.QueryWorkers,
		Queues:         o.Queues,
		MaxConcurrent:  o.MaxConcurrent,
		DegradeEpsilon: o.DegradeEpsilon,
		Metrics:        o.Metrics,
	}
}

// Close stops background rebuilds and the query pool, then closes the
// WAL (when one is configured). Appends and queries after Close fail;
// Close is idempotent. With LiveOptions.SnapshotPath set, Close first
// writes a snapshot of the current generation (series still in the
// delta are not included — call Flush first for a complete one); a
// snapshot failure is returned AND logged, and counts against
// messi_snapshot_save_failures_total when snapshot metrics are
// installed, so an operator sees the durability gap either way. With a
// WAL the gap is bounded anyway: journaled appends replay on the next
// boot even when the Close-time snapshot never landed.
func (ix *LiveIndex) Close() error {
	ix.inner.Close()
	var err error
	if ix.snapshotPath != "" && ix.inner.Base() != nil {
		if serr := ix.saveBase(ix.snapshotPath); serr != nil {
			err = fmt.Errorf("messi: close-time snapshot: %w", serr)
			slog.Warn("live index close-time snapshot failed",
				"path", ix.snapshotPath, "err", serr)
		}
	}
	if ix.wal != nil {
		if werr := ix.wal.Close(); werr != nil && !errors.Is(werr, wal.ErrClosed) && err == nil {
			err = fmt.Errorf("messi: wal close: %w", werr)
		}
	}
	return err
}

// LiveStats describes a live index's current shape.
type LiveStats struct {
	Series      int     // total searchable series (base + delta)
	BaseSeries  int     // series in the current immutable generation
	DeltaSeries int     // series buffered in the delta
	Generation  int64   // immutable generations built so far
	Rebuilding  bool    // a background rebuild is in flight
	Shards      int     // index shards per generation (1 = unsharded)
	Index       Stats   // current generation's tree shape, aggregated over shards
	PerShard    []Stats // per-shard tree shapes (nil when unsharded)
}

// Stats returns a point-in-time snapshot of the index shape.
func (ix *LiveIndex) Stats() LiveStats {
	s := ix.inner.Stats()
	out := LiveStats{
		Series:      s.Series,
		BaseSeries:  s.BaseSeries,
		DeltaSeries: s.DeltaSeries,
		Generation:  s.Generation,
		Rebuilding:  s.Rebuilding,
		Shards:      s.Shards,
		Index:       Stats(s.Tree),
	}
	if len(s.PerShard) > 0 {
		out.PerShard = make([]Stats, len(s.PerShard))
		for i, st := range s.PerShard {
			out.PerShard[i] = Stats(st)
		}
	}
	return out
}
