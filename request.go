package messi

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/engine"
	"repro/internal/series"
	"repro/internal/stats"
)

// This file is the unified query API: one SearchRequest served by one Do
// method on Index, LiveIndex, and Engine, covering the whole quality
// spectrum — exact, approximate, ε-bounded, and deadline-bounded answers —
// under every distance (Euclidean and constrained DTW) and answer shape
// (1-NN and k-NN). The older per-method entry points (Search, SearchKNN,
// SearchDTW, ApproxSearch, Query…) remain as thin deprecated shims.
//
// The unified method is named Do (as in http.Client.Do) because Go has no
// overloading and the name Search is already taken by the deprecated
// 1-NN methods this API supersedes.

// Typed sentinel errors shared by every query layer, matchable with
// errors.Is across Index, LiveIndex, Engine, and the HTTP handlers.
var (
	// ErrBadK reports a negative K in a request (or non-positive k in the
	// deprecated k-NN methods).
	ErrBadK = core.ErrBadK
	// ErrBadWindow reports a DTW window fraction outside [0,1].
	ErrBadWindow = core.ErrBadWindow
	// ErrWrongLength reports a query whose length does not match the
	// indexed series length.
	ErrWrongLength = core.ErrWrongLength
	// ErrBadEpsilon reports a negative or non-finite Epsilon.
	ErrBadEpsilon = core.ErrBadEpsilon
	// ErrQueryPanicked reports a query that panicked inside the engine.
	// The panic is recovered on the worker, fails only the offending
	// query, and leaves the pool serving; the wrapped error carries the
	// panic value and the stack is logged via slog.
	ErrQueryPanicked = engine.ErrQueryPanicked
)

// Mode selects the quality-of-service level of a query: how much answer
// quality the caller is willing to trade for latency.
type Mode int

const (
	// ModeExact (the zero value) runs the search to completion; the
	// answer is provably the nearest neighbor (or exact top-k).
	ModeExact = Mode(core.ModeExact)
	// ModeApprox runs only the BSF-seeding step of the exact algorithm —
	// the leaf matching the query's iSAX summary. Much cheaper; the
	// distance is always an upper bound on the exact one, and on real
	// data frequently equals it.
	ModeApprox = Mode(core.ModeApprox)
	// ModeEpsilon runs the exact algorithm with pruning bounds inflated
	// by (1+ε)², terminating as soon as the answer is provably within
	// (1+ε) of optimal. Epsilon = 0 is identical to ModeExact.
	ModeEpsilon = Mode(core.ModeEpsilon)
	// ModeDeadline runs the exact algorithm but stops at leaf-scan
	// granularity when the request's Deadline (or the context's) passes,
	// returning the best answer found so far flagged Exact=false. With
	// no deadline at all it is identical to ModeExact.
	ModeDeadline = Mode(core.ModeDeadline)
)

// String returns the wire name of the mode ("exact", "approx", "epsilon",
// "deadline").
func (m Mode) String() string { return core.Mode(m).String() }

// ParseMode parses a wire-format mode name. The empty string is ModeExact;
// "approximate" is accepted for ModeApprox.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "approx", "approximate":
		return ModeApprox, nil
	case "epsilon":
		return ModeEpsilon, nil
	case "deadline":
		return ModeDeadline, nil
	default:
		return 0, fmt.Errorf("messi: unknown search mode %q", s)
	}
}

// SearchRequest describes one similarity query for Do. The zero value of
// every optional field means its default: K=0 is 1-NN, DTW=false is
// Euclidean distance, Mode's zero value is ModeExact.
type SearchRequest struct {
	// Query is the query series; its length must match the index's.
	Query []float32
	// K is the number of nearest neighbors (0 and 1 both mean 1-NN).
	// K > 1 with DTW is not supported.
	K int
	// DTW selects constrained Dynamic Time Warping with a Sakoe-Chiba
	// band of Window (a fraction of the series length in [0,1]; 0.1 is
	// the paper's 10% window). False means Euclidean distance.
	DTW    bool
	Window float64
	// Mode is the quality-of-service level. Epsilon applies in
	// ModeEpsilon; Deadline applies in ModeDeadline.
	Mode    Mode
	Epsilon float64
	// Deadline is the query's latency budget, measured from the Do call.
	// Zero means no budget (the context's deadline, if any, still
	// applies in ModeDeadline).
	Deadline time.Duration
	// Counters, when true, collects per-query operation counts into
	// Result.Counters (a small amount of atomic-counter overhead).
	Counters bool
	// Trace, when true, collects a full per-query execution trace into
	// Result.Trace: the per-phase wall-time breakdown of Figure 13
	// accumulated across every worker of the query, the operation
	// counts of QueryCounters, and the query's wall-clock latency.
	// Costs two clock reads per worker phase transition plus the
	// Counters overhead; off (the default) costs nothing.
	Trace bool
}

// QueryCounters are per-query operation counts (see SearchRequest.Counters).
type QueryCounters struct {
	NodesVisited   int64 // index tree nodes considered
	LowerBounds    int64 // summary lower-bound computations
	RealDistances  int64 // full distance computations
	LeavesInserted int64 // leaves pushed into priority queues
	LeavesPruned   int64 // queue abandonments on a popped minimum
	BSFUpdates     int64 // improvements to the pruning bound
}

// TracePhase is one phase timing in a query trace, labeled with the
// paper's Figure 13 phase name.
type TracePhase struct {
	Name     string
	Duration time.Duration
}

// Trace is a per-query execution trace (see SearchRequest.Trace).
type Trace struct {
	// Phases holds the accumulated wall time of each Figure 13 phase in
	// phase order. Phases run concurrently on many workers, so these are
	// worker-seconds: their sum can exceed Elapsed.
	Phases []TracePhase
	// Elapsed is the query's wall-clock latency as observed by Do,
	// including admission-gate waiting on an Engine.
	Elapsed time.Duration
	// Counters are the query's operation counts (always collected when
	// tracing, regardless of SearchRequest.Counters).
	Counters QueryCounters
}

// Result is one Do answer.
type Result struct {
	// Matches holds up to K matches in ascending distance order, with
	// true (non-squared) distances like every Match in this package.
	Matches []Match
	// Exact reports whether the answer is provably exact. Approximate
	// answers and truncated deadline answers report false; ε-bounded
	// answers report true when the search happened to prove exactness
	// (common on real data) and false otherwise.
	Exact bool
	// EpsilonBound is the relative error bound actually proven: the
	// reported distance is within (1+EpsilonBound)× the optimal one. It
	// is 0 when Exact, at most the requested Epsilon for ModeEpsilon
	// answers, and +Inf when nothing was proven (ModeApprox, or a
	// deadline/cancellation truncation).
	EpsilonBound float64
	// Counters holds per-query operation counts when the request asked
	// for them, nil otherwise.
	Counters *QueryCounters
	// Trace holds the execution trace when the request asked for one,
	// nil otherwise.
	Trace *Trace
}

// Best returns the first (nearest) match, or a zero Match with
// Position -1 when the result is empty.
func (r Result) Best() Match {
	if len(r.Matches) == 0 {
		return Match{Position: -1}
	}
	return r.Matches[0]
}

// collectors carries the per-query measurement state buildRequest
// attaches to a request, so publicResult can roll it into the Result.
type collectors struct {
	ctrs         *stats.Counters  // non-nil when counting or tracing
	wantCounters bool             // fill Result.Counters
	bd           *stats.Breakdown // non-nil when tracing
	start        time.Time        // Do entry time when tracing
}

// buildRequest is the one shared request-normalization path under every
// frontend's Do: it validates the request, applies z-normalization when
// the index uses it, converts the window fraction to points, resolves
// the effective absolute deadline from the request budget and the
// context, and attaches the counter/trace collectors the request asked
// for.
func buildRequest(ctx context.Context, req SearchRequest, seriesLen int, normalize bool) (core.Request, collectors, error) {
	if req.K < 0 {
		return core.Request{}, collectors{}, fmt.Errorf("%w, got %d", ErrBadK, req.K)
	}
	if req.DTW && req.K > 1 {
		return core.Request{}, collectors{}, fmt.Errorf("messi: k-NN under DTW is not supported (k=%d): %w", req.K, ErrBadK)
	}
	window := 0
	if req.DTW {
		if err := checkWindowFraction(req.Window); err != nil {
			return core.Request{}, collectors{}, err
		}
		window = dtw.WindowSize(seriesLen, req.Window)
	}
	query := req.Query
	if normalize {
		query = series.ZNormalized(query)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var deadline time.Time
	if req.Mode == ModeDeadline {
		if req.Deadline > 0 {
			deadline = time.Now().Add(req.Deadline)
		}
		if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
	}
	col := collectors{wantCounters: req.Counters}
	if req.Counters || req.Trace {
		col.ctrs = &stats.Counters{}
	}
	if req.Trace {
		col.bd = &stats.Breakdown{}
		col.start = time.Now()
	}
	creq := core.Request{
		Query:     query,
		K:         req.K,
		DTW:       req.DTW,
		Window:    window,
		Mode:      core.Mode(req.Mode),
		Epsilon:   req.Epsilon,
		Deadline:  deadline,
		Cancel:    ctx.Done(),
		Counters:  col.ctrs,
		Breakdown: col.bd,
	}
	if err := creq.Validate(); err != nil {
		return core.Request{}, collectors{}, err
	}
	return creq, col, nil
}

// publicResult converts a core result (squared distances) into the public
// shape (true distances, counters snapshot, trace).
func publicResult(res core.Result, col collectors) Result {
	out := Result{
		Matches:      make([]Match, 0, len(res.Matches)),
		Exact:        res.Exact,
		EpsilonBound: res.EpsilonBound,
	}
	for _, m := range res.Matches {
		if m.Position < 0 {
			continue
		}
		out.Matches = append(out.Matches, Match{Position: m.Position, Distance: math.Sqrt(m.Dist)})
	}
	var qc QueryCounters
	if col.ctrs != nil {
		s := col.ctrs.Snapshot()
		qc = QueryCounters{
			NodesVisited:   s.NodesVisited,
			LowerBounds:    s.LowerBoundCalcs,
			RealDistances:  s.RealDistCalcs,
			LeavesInserted: s.LeavesInserted,
			LeavesPruned:   s.LeavesPruned,
			BSFUpdates:     s.BSFUpdates,
		}
		if col.wantCounters {
			c := qc
			out.Counters = &c
		}
	}
	if col.bd != nil {
		tr := &Trace{
			Phases:   make([]TracePhase, 0, int(stats.NumPhases)),
			Elapsed:  time.Since(col.start),
			Counters: qc,
		}
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			tr.Phases = append(tr.Phases, TracePhase{Name: p.String(), Duration: col.bd.Get(p)})
		}
		out.Trace = tr
	}
	return out
}

// Do serves one query on the index across the whole quality spectrum —
// the unified entry point the deprecated Search/ApproxSearch/SearchKNN/
// SearchDTW methods delegate to. A context cancellation stops the search
// at leaf-scan granularity and returns the best answer so far flagged
// Exact=false.
func (ix *Index) Do(ctx context.Context, req SearchRequest) (Result, error) {
	creq, col, err := buildRequest(ctx, req, ix.inner.SeriesLen(), ix.normalize)
	if err != nil {
		return Result{}, err
	}
	res, err := ix.inner.Do(creq, core.SearchOptions{})
	if err != nil {
		return Result{}, err
	}
	return publicResult(res, col), nil
}

// Do serves one query over the union of the immutable generation and the
// delta buffer (see Index.Do). The delta is always answered exactly; the
// quality mode governs the tree search it seeds.
func (ix *LiveIndex) Do(ctx context.Context, req SearchRequest) (Result, error) {
	creq, col, err := buildRequest(ctx, req, ix.inner.SeriesLen(), ix.normalize)
	if err != nil {
		return Result{}, err
	}
	res, err := ix.inner.Do(creq)
	if err != nil {
		return Result{}, err
	}
	return publicResult(res, col), nil
}

// Do serves one query through the persistent engine: the pool answers it
// under the admission gate, and with EngineOptions.DegradeEpsilon set an
// exact request arriving under overload is degraded to an ε-bounded one
// instead of paying queueing latency (the Result reports what was actually
// proven).
func (e *Engine) Do(ctx context.Context, req SearchRequest) (Result, error) {
	creq, col, err := buildRequest(ctx, req, e.ix.SeriesLen(), e.ix.normalize)
	if err != nil {
		return Result{}, err
	}
	res, err := e.inner.Do(creq)
	if err != nil {
		return Result{}, err
	}
	return publicResult(res, col), nil
}
