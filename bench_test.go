// Benchmarks regenerating every figure of the paper's evaluation (§IV,
// Figures 5-19) as testing.B benchmarks. Each BenchmarkFigNN condenses the
// corresponding figure's sweep into sub-benchmarks; the cmd/messi-bench
// tool runs the full sweeps and prints the paper-style tables.
//
// Workloads are scaled down (20K series instead of the paper's 100M) so
// `go test -bench=.` completes in minutes; see EXPERIMENTS.md for how the
// scaled shapes map to the paper's claims.
package messi

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtw"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/paris"
	"repro/internal/scan"
	"repro/internal/serial"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/stats"
)

const (
	benchSeries  = 20000
	benchLength  = 256
	benchQueries = 8
	benchLeafCap = 100 // benchSeries/200, the experiments package scaling
	benchDTWSize = 2000
)

// benchData lazily generates and caches collections per (kind, count).
var (
	benchMu    sync.Mutex
	benchCache = map[string]*series.Collection{}
)

func benchCollection(b *testing.B, kind dataset.Kind, count int) *series.Collection {
	b.Helper()
	length := benchLength
	if kind == dataset.SALDLike {
		length = 128
	}
	key := fmt.Sprintf("%s/%d", kind, count)
	benchMu.Lock()
	defer benchMu.Unlock()
	if c, ok := benchCache[key]; ok {
		return c
	}
	c, err := dataset.Generate(kind, count, length, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchCache[key] = c
	return c
}

func benchQueriesFor(b *testing.B, kind dataset.Kind) *series.Collection {
	b.Helper()
	length := benchLength
	if kind == dataset.SALDLike {
		length = 128
	}
	key := fmt.Sprintf("queries/%s", kind)
	benchMu.Lock()
	defer benchMu.Unlock()
	if c, ok := benchCache[key]; ok {
		return c
	}
	c, err := dataset.Queries(kind, benchQueries, length, 1001)
	if err != nil {
		b.Fatal(err)
	}
	benchCache[key] = c
	return c
}

func messiOpts() core.Options  { return core.Options{LeafCapacity: benchLeafCap} }
func parisOpts() paris.Options { return paris.Options{LeafCapacity: benchLeafCap} }

func buildMESSI(b *testing.B, data *series.Collection, opts core.Options) *core.Index {
	b.Helper()
	ix, err := core.Build(data, opts)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

func buildParIS(b *testing.B, data *series.Collection, opts paris.Options) *paris.Index {
	b.Helper()
	ix, err := paris.Build(data, opts)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// BenchmarkFig05ChunkSize — index creation vs. chunk size.
func BenchmarkFig05ChunkSize(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	for _, chunk := range []int{10, 100, 1000, 20000} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			opts := messiOpts()
			opts.ChunkSize = chunk
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, opts)
			}
		})
	}
}

// BenchmarkFig06LeafSizeBuild — index creation vs. leaf size.
func BenchmarkFig06LeafSizeBuild(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	for _, leaf := range []int{50, 200, 1000, 5000} {
		b.Run(fmt.Sprintf("leaf=%d", leaf), func(b *testing.B) {
			opts := messiOpts()
			opts.LeafCapacity = leaf
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, opts)
			}
		})
	}
}

// BenchmarkFig07LeafSizeQuery — query answering vs. leaf size (sq and mq).
func BenchmarkFig07LeafSizeQuery(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	for _, leaf := range []int{50, 200, 1000, 5000} {
		opts := messiOpts()
		opts.LeafCapacity = leaf
		ix := buildMESSI(b, data, opts)
		for _, mode := range []struct {
			name   string
			queues int
		}{{"sq", 1}, {"mq", 0}} {
			b.Run(fmt.Sprintf("leaf=%d/%s", leaf, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := queries.At(i % queries.Count())
					if _, err := ix.Search(q, core.SearchOptions{Queues: mode.queues}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig08BufferSize — index creation vs. initial iSAX buffer size.
func BenchmarkFig08BufferSize(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	for _, initCap := range []int{2, 5, 100, 1000} {
		b.Run(fmt.Sprintf("init=%d", initCap), func(b *testing.B) {
			opts := messiOpts()
			opts.InitBufferCap = initCap
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, opts)
			}
		})
	}
}

// BenchmarkFig09BuildCores — index creation vs. worker count, ParIS vs
// MESSI.
func BenchmarkFig09BuildCores(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	for _, workers := range []int{1, 4, 24} {
		b.Run(fmt.Sprintf("ParIS/workers=%d", workers), func(b *testing.B) {
			opts := parisOpts()
			opts.IndexWorkers = workers
			for i := 0; i < b.N; i++ {
				buildParIS(b, data, opts)
			}
		})
		b.Run(fmt.Sprintf("MESSI/workers=%d", workers), func(b *testing.B) {
			opts := messiOpts()
			opts.IndexWorkers = workers
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, opts)
			}
		})
	}
}

// BenchmarkFig10BuildDataSize — index creation vs. data size, ParIS vs
// MESSI.
func BenchmarkFig10BuildDataSize(b *testing.B) {
	for _, n := range []int{benchSeries / 2, benchSeries, benchSeries * 2} {
		data := benchCollection(b, dataset.RandomWalk, n)
		b.Run(fmt.Sprintf("ParIS/series=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildParIS(b, data, parisOpts())
			}
		})
		b.Run(fmt.Sprintf("MESSI/series=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, messiOpts())
			}
		})
	}
}

// queryBenchAlgos runs one sub-benchmark per algorithm on a prepared pair
// of indexes.
func queryBenchAlgos(b *testing.B, data *series.Collection, queries *series.Collection,
	messiIx *core.Index, parisIx *paris.Index, workers int, prefix string) {

	run := func(name string, fn func(q []float32) error) {
		b.Run(prefix+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(queries.At(i % queries.Count())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("UCR-P", func(q []float32) error {
		_, err := scan.Search1NN(data, q, workersOrDefault(workers, 48), nil)
		return err
	})
	run("ParIS", func(q []float32) error {
		_, err := parisIx.Search(q, paris.SearchOptions{Workers: workers})
		return err
	})
	run("ParIS-TS", func(q []float32) error {
		_, err := parisIx.SearchTS(q, paris.SearchOptions{Workers: workers})
		return err
	})
	run("MESSI-sq", func(q []float32) error {
		_, err := messiIx.Search(q, core.SearchOptions{Workers: workers, Queues: 1})
		return err
	})
	run("MESSI-mq", func(q []float32) error {
		_, err := messiIx.Search(q, core.SearchOptions{Workers: workers})
		return err
	})
}

func workersOrDefault(workers, def int) int {
	if workers > 0 {
		return workers
	}
	return def
}

// BenchmarkFig11QueryCores — query answering vs. worker count, all
// algorithms.
func BenchmarkFig11QueryCores(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	messiIx := buildMESSI(b, data, messiOpts())
	parisIx := buildParIS(b, data, parisOpts())
	for _, workers := range []int{2, 8, 48} {
		queryBenchAlgos(b, data, queries, messiIx, parisIx, workers,
			fmt.Sprintf("workers=%d/", workers))
	}
}

// BenchmarkFig12QueryDataSize — query answering vs. data size, all
// algorithms.
func BenchmarkFig12QueryDataSize(b *testing.B) {
	for _, n := range []int{benchSeries / 2, benchSeries * 2} {
		data := benchCollection(b, dataset.RandomWalk, n)
		queries := benchQueriesFor(b, dataset.RandomWalk)
		messiIx := buildMESSI(b, data, messiOpts())
		parisIx := buildParIS(b, data, parisOpts())
		queryBenchAlgos(b, data, queries, messiIx, parisIx, 0,
			fmt.Sprintf("series=%d/", n))
	}
}

// BenchmarkFig13QueueBreakdown — MESSI-sq vs MESSI-mq with the per-phase
// breakdown reported as custom metrics (ms per query, summed over
// workers).
func BenchmarkFig13QueueBreakdown(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())
	for _, mode := range []struct {
		name   string
		queues int
	}{{"sq", 1}, {"mq", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			bd := &stats.Breakdown{}
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := ix.Search(q, core.SearchOptions{Queues: mode.queues, Breakdown: bd}); err != nil {
					b.Fatal(err)
				}
			}
			for p := stats.Phase(0); p < stats.NumPhases; p++ {
				// Metric units must not contain whitespace.
				unit := strings.ReplaceAll(p.String(), " ", "-") + "-ns/q"
				b.ReportMetric(float64(bd.Get(p).Nanoseconds())/float64(b.N), unit)
			}
		})
	}
}

// BenchmarkFig14QueueCount — query answering vs. number of queues.
func BenchmarkFig14QueueCount(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())
	for _, queues := range []int{1, 4, 24, 48} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := ix.Search(q, core.SearchOptions{Queues: queues}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15BuildReal — index creation on the real-data stand-ins.
func BenchmarkFig15BuildReal(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.SALDLike, dataset.SeismicLike} {
		data := benchCollection(b, kind, benchSeries)
		b.Run(string(kind)+"/ParIS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildParIS(b, data, parisOpts())
			}
		})
		b.Run(string(kind)+"/MESSI", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildMESSI(b, data, messiOpts())
			}
		})
	}
}

// BenchmarkFig16QueryReal — query answering on the real-data stand-ins,
// all algorithms.
func BenchmarkFig16QueryReal(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.SALDLike, dataset.SeismicLike} {
		data := benchCollection(b, kind, benchSeries)
		queries := benchQueriesFor(b, kind)
		messiIx := buildMESSI(b, data, messiOpts())
		parisIx := buildParIS(b, data, parisOpts())
		queryBenchAlgos(b, data, queries, messiIx, parisIx, 0, string(kind)+"/")
	}
}

// BenchmarkFig17DistanceCounts — lower-bound and real distance calculation
// counts (reported as custom metrics), ParIS vs MESSI.
func BenchmarkFig17DistanceCounts(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.RandomWalk, dataset.SeismicLike, dataset.SALDLike} {
		data := benchCollection(b, kind, benchSeries)
		queries := benchQueriesFor(b, kind)
		messiIx := buildMESSI(b, data, messiOpts())
		parisIx := buildParIS(b, data, parisOpts())
		b.Run(string(kind)+"/ParIS", func(b *testing.B) {
			ctrs := &stats.Counters{}
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := parisIx.Search(q, paris.SearchOptions{Counters: ctrs}); err != nil {
					b.Fatal(err)
				}
			}
			s := ctrs.Snapshot()
			b.ReportMetric(float64(s.LowerBoundCalcs)/float64(b.N), "lb/query")
			b.ReportMetric(float64(s.RealDistCalcs)/float64(b.N), "real/query")
		})
		b.Run(string(kind)+"/MESSI", func(b *testing.B) {
			ctrs := &stats.Counters{}
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := messiIx.Search(q, core.SearchOptions{Counters: ctrs}); err != nil {
					b.Fatal(err)
				}
			}
			s := ctrs.Snapshot()
			b.ReportMetric(float64(s.LowerBoundCalcs)/float64(b.N), "lb/query")
			b.ReportMetric(float64(s.RealDistCalcs)/float64(b.N), "real/query")
		})
	}
}

// BenchmarkFig18BenefitBreakdown — ParIS-SISD → ParIS → ParIS-TS →
// MESSI-mq.
func BenchmarkFig18BenefitBreakdown(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	messiIx := buildMESSI(b, data, messiOpts())
	parisIx := buildParIS(b, data, parisOpts())
	run := func(name string, fn func(q []float32) error) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(queries.At(i % queries.Count())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("ParIS-SISD", func(q []float32) error {
		_, err := parisIx.Search(q, paris.SearchOptions{Kernel: paris.KernelSISD})
		return err
	})
	run("ParIS", func(q []float32) error {
		_, err := parisIx.Search(q, paris.SearchOptions{})
		return err
	})
	run("ParIS-TS", func(q []float32) error {
		_, err := parisIx.SearchTS(q, paris.SearchOptions{})
		return err
	})
	run("MESSI-mq", func(q []float32) error {
		_, err := messiIx.Search(q, core.SearchOptions{})
		return err
	})
}

// BenchmarkFig19DTW — DTW query answering: serial UCR Suite, UCR Suite-P,
// MESSI-DTW.
func BenchmarkFig19DTW(b *testing.B) {
	for _, n := range []int{benchDTWSize, benchDTWSize * 2} {
		data := benchCollection(b, dataset.RandomWalk, n)
		queries := benchQueriesFor(b, dataset.RandomWalk)
		ix := buildMESSI(b, data, messiOpts())
		window := dtw.WindowSize(benchLength, 0.1)
		b.Run(fmt.Sprintf("series=%d/UCR-DTW-serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := scan.SearchDTW(data, q, window, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("series=%d/UCR-P-DTW", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := scan.SearchDTW(data, q, window, 48, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("series=%d/MESSI-DTW", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := ix.SearchDTW(q, window, core.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks: the design alternatives §III discusses and
// rejects, quantified (DESIGN.md "design decisions"). ---

// BenchmarkAblationBufferDesign — MESSI's per-worker iSAX buffers vs the
// rejected no-buffer design (direct tree inserts under per-subtree locks)
// vs the ParIS-style locked shared buffers.
func BenchmarkAblationBufferDesign(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	b.Run("buffered-MESSI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildMESSI(b, data, messiOpts())
		}
	})
	b.Run("direct-no-buffers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildDirect(data, messiOpts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("locked-buffers-footnote3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildLockedBuffers(data, messiOpts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("locked-buffers-ParIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildParIS(b, data, parisOpts())
		}
	})
}

// BenchmarkAblationQueueStrategies — single shared queue (sq) vs Nq shared
// queues (mq) vs one private queue per worker (the rejected load-imbalance
// design).
func BenchmarkAblationQueueStrategies(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())
	modes := []struct {
		name string
		opt  core.SearchOptions
	}{
		{"single-queue", core.SearchOptions{Queues: 1}},
		{"multi-queue-24", core.SearchOptions{}},
		{"local-per-worker", core.SearchOptions{LocalQueues: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := ix.Search(q, mode.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationApproxVsExact — the approximate initial answer against
// the full exact search (the cost of exactness).
func BenchmarkAblationApproxVsExact(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())
	b.Run("approximate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := ix.ApproxSearch(q, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := ix.Search(q, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineThroughput — sustained concurrent query traffic, the
// serving scenario beyond the paper's one-query-at-a-time evaluation:
// `clients` goroutines each issue 1-NN queries as fast as they are
// answered. Modes:
//
//   - spawn-per-query: the paper's execution, Index.Search spawning Ns
//     fresh goroutines and allocating fresh priority queues per call;
//   - pooled-exclusive: the persistent engine with default scheduling
//     (each query owns the whole worker pool, queries queue for admission);
//   - pooled-shared: the engine splitting the pool across `clients`
//     concurrently admitted queries.
func BenchmarkEngineThroughput(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())

	runClients := func(b *testing.B, clients int, query func(q []float32) error) {
		b.Helper()
		b.ReportAllocs()
		var next atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= b.N {
						return
					}
					if err := query(queries.At(i % queries.Count())); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d/spawn-per-query", clients), func(b *testing.B) {
			runClients(b, clients, func(q []float32) error {
				_, err := ix.Search(q, core.SearchOptions{})
				return err
			})
		})
		b.Run(fmt.Sprintf("clients=%d/pooled-exclusive", clients), func(b *testing.B) {
			eng := engine.New(ix, engine.Options{})
			defer eng.Close()
			runClients(b, clients, func(q []float32) error {
				_, err := eng.Search(q)
				return err
			})
		})
		b.Run(fmt.Sprintf("clients=%d/pooled-shared", clients), func(b *testing.B) {
			perQuery := ix.Opts.SearchWorkers / clients
			if perQuery < 1 {
				perQuery = 1
			}
			eng := engine.New(ix, engine.Options{QueryWorkers: perQuery, MaxConcurrent: clients})
			defer eng.Close()
			runClients(b, clients, func(q []float32) error {
				_, err := eng.Search(q)
				return err
			})
		})
	}
}

// BenchmarkMetricsOverhead — the cost of the observability layer on the
// serving hot path: sustained engine throughput with a metrics registry
// attached versus without one (the library default, a nil registry that
// reduces every instrument to a nil check). The off case shares the
// bench-compare regression gate with BenchmarkEngineThroughput; the on
// case bounds what production servers pay for /metrics.
func BenchmarkMetricsOverhead(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())

	run := func(b *testing.B, reg *metrics.Registry) {
		b.Helper()
		b.ReportAllocs()
		eng := engine.New(ix, engine.Options{Metrics: reg})
		defer eng.Close()
		const clients = 8
		var next atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= b.N {
						return
					}
					if _, err := eng.Do(core.Request{Query: queries.At(i % queries.Count())}); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.Run("metrics=off", func(b *testing.B) { run(b, nil) })
	b.Run("metrics=on", func(b *testing.B) { run(b, metrics.NewRegistry()) })
}

// BenchmarkSnapshotLoad — restart cost: loading a snapshot versus
// rebuilding the index from raw data (the win snapshots exist for; the
// ROADMAP's restart-without-downtime scenario). Load skips the whole
// construction pipeline — PAA transforms, quantization, splits — and
// reads the checksummed series block in one pass.
func BenchmarkSnapshotLoad(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	ix, err := BuildFlat(data.Data, benchLength, &Options{LeafCapacity: benchLeafCap})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildFlat(data.Data, benchLength, &Options{LeafCapacity: benchLeafCap}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKNN — the k-NN extension across k (the paper's k-NN
// classification use case).
func BenchmarkKNN(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix := buildMESSI(b, data, messiOpts())
	for _, k := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := ix.SearchKNN(q, k, core.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntroClaims — the paper's introduction frames MESSI against the
// whole lineage: optimized serial scan (UCR Suite, 1 thread), the
// sequential index (the ADS+ stand-in, see internal/serial), the parallel
// index (ParIS), and MESSI. The §I ordering — each step roughly an order
// faster at paper scale — compresses on one core but must keep direction.
func BenchmarkIntroClaims(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	serialIx, err := serial.Build(data, serial.Options{LeafCapacity: benchLeafCap})
	if err != nil {
		b.Fatal(err)
	}
	parisIx := buildParIS(b, data, parisOpts())
	messiIx := buildMESSI(b, data, messiOpts())
	b.Run("serial-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := scan.Search1NN(data, q, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := serialIx.Search(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ParIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := parisIx.Search(q, paris.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MESSI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries.At(i % queries.Count())
			if _, err := messiIx.Search(q, core.SearchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedBuild — the sharded-build claim: S independent trees of
// n/S series, constructed concurrently with the index workers divided
// among them, finish faster than one tree of n series (shallower splits,
// smaller per-tree working sets, and no cross-shard synchronization).
// shards=1 is the single-tree baseline the CI gate tracks.
func BenchmarkShardedBuild(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	for _, S := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", S), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shard.Build(data, S, messiOpts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedQuery — exact 1-NN latency of the fan-out (shared BSF
// across shards) versus the single tree.
func BenchmarkShardedQuery(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	for _, S := range []int{1, 2, 4, 8} {
		x, err := shard.Build(data, S, messiOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", S), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries.At(i % queries.Count())
				if _, err := x.Search(q, core.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproxQuery — latency of the one-leaf-scan approximate answer
// through the unified Do API, the cheap end of the quality spectrum.
func BenchmarkApproxQuery(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix, err := BuildFlat(data.Data, data.Length, &Options{LeafCapacity: benchLeafCap})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries.At(i % queries.Count())
		if _, err := ix.Do(ctx, SearchRequest{Query: q, Mode: ModeApprox}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpsilonQuery — ε-bounded 1-NN latency at ε=0.05 versus the
// exact search on the same index: the price of the (1+ε) guarantee.
func BenchmarkEpsilonQuery(b *testing.B) {
	data := benchCollection(b, dataset.RandomWalk, benchSeries)
	queries := benchQueriesFor(b, dataset.RandomWalk)
	ix, err := BuildFlat(data.Data, data.Length, &Options{LeafCapacity: benchLeafCap})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, bench := range []struct {
		name string
		req  SearchRequest
	}{
		{"exact", SearchRequest{}},
		{"epsilon=0.05", SearchRequest{Mode: ModeEpsilon, Epsilon: 0.05}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := bench.req
				req.Query = queries.At(i % queries.Count())
				if _, err := ix.Do(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
