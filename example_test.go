package messi_test

import (
	"fmt"

	messi "repro"
)

// Build an index over a small collection and answer an exact 1-NN query.
func ExampleBuildFlat() {
	data := messi.RandomWalk(1000, 64, 7)
	ix, err := messi.BuildFlat(data, 64, nil)
	if err != nil {
		panic(err)
	}
	// Query with an indexed series: the nearest neighbor is itself.
	query := make([]float32, 64)
	copy(query, ix.Series(123))
	m, err := ix.Search(query)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Position, m.Distance)
	// Output: 123 0
}

// Exact k-NN returns matches in ascending distance order.
func ExampleIndex_SearchKNN() {
	data := messi.RandomWalk(500, 64, 8)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 32})
	if err != nil {
		panic(err)
	}
	query := make([]float32, 64)
	copy(query, ix.Series(42))
	matches, err := ix.SearchKNN(query, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(matches), matches[0].Position, matches[0].Distance)
	fmt.Println(matches[0].Distance <= matches[1].Distance)
	// Output:
	// 3 42 0
	// true
}

// DTW search with a 10% warping window finds time-shifted patterns.
func ExampleIndex_SearchDTW() {
	data := messi.RandomWalk(500, 64, 9)
	ix, err := messi.BuildFlat(data, 64, nil)
	if err != nil {
		panic(err)
	}
	query := make([]float32, 64)
	copy(query, ix.Series(7))
	m, err := ix.SearchDTW(query, 0.1)
	if err != nil {
		panic(err)
	}
	// DTW(a,a) is zero; an indexed series matches itself.
	fmt.Println(m.Position, m.Distance)
	// Output: 7 0
}

// Index every subsequence of a stream, the paper's prescription for
// streaming series.
func ExampleSlidingWindows() {
	stream := messi.RandomWalk(1, 4096, 10) // one long stream
	windows, err := messi.SlidingWindows(stream, 256, 16, true)
	if err != nil {
		panic(err)
	}
	ix, err := messi.BuildFlat(windows, 256, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.Len(), ix.SeriesLen())
	// Output: 241 256
}
