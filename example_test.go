package messi_test

import (
	"context"
	"fmt"
	"time"

	messi "repro"
)

// Build an index over a small collection and answer an exact 1-NN query.
func ExampleBuildFlat() {
	data := messi.RandomWalk(1000, 64, 7)
	ix, err := messi.BuildFlat(data, 64, nil)
	if err != nil {
		panic(err)
	}
	// Query with an indexed series: the nearest neighbor is itself.
	query := make([]float32, 64)
	s, err := ix.Series(123)
	if err != nil {
		panic(err)
	}
	copy(query, s)
	res, err := ix.Do(context.Background(), messi.SearchRequest{Query: query})
	if err != nil {
		panic(err)
	}
	m := res.Best()
	fmt.Println(m.Position, m.Distance, res.Exact)
	// Output: 123 0 true
}

// Exact k-NN returns matches in ascending distance order.
func ExampleIndex_Do_knn() {
	data := messi.RandomWalk(500, 64, 8)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 32})
	if err != nil {
		panic(err)
	}
	query := make([]float32, 64)
	s, err := ix.Series(42)
	if err != nil {
		panic(err)
	}
	copy(query, s)
	res, err := ix.Do(context.Background(), messi.SearchRequest{Query: query, K: 3})
	if err != nil {
		panic(err)
	}
	matches := res.Matches
	fmt.Println(len(matches), matches[0].Position, matches[0].Distance)
	fmt.Println(matches[0].Distance <= matches[1].Distance)
	// Output:
	// 3 42 0
	// true
}

// DTW search with a 10% warping window finds time-shifted patterns.
func ExampleIndex_Do_dtw() {
	data := messi.RandomWalk(500, 64, 9)
	ix, err := messi.BuildFlat(data, 64, nil)
	if err != nil {
		panic(err)
	}
	query := make([]float32, 64)
	s, err := ix.Series(7)
	if err != nil {
		panic(err)
	}
	copy(query, s)
	res, err := ix.Do(context.Background(), messi.SearchRequest{Query: query, DTW: true, Window: 0.1})
	if err != nil {
		panic(err)
	}
	// DTW(a,a) is zero; an indexed series matches itself.
	m := res.Best()
	fmt.Println(m.Position, m.Distance)
	// Output: 7 0
}

// The quality spectrum: an ε-bounded query answers within (1+ε) of
// optimal and reports the bound actually proven; a deadline-bounded query
// returns the best answer found within the budget.
func ExampleIndex_Do_epsilon() {
	data := messi.RandomWalk(2000, 64, 11)
	ix, err := messi.BuildFlat(data, 64, nil)
	if err != nil {
		panic(err)
	}
	query := make([]float32, 64)
	s, err := ix.Series(99)
	if err != nil {
		panic(err)
	}
	copy(query, s)
	res, err := ix.Do(context.Background(), messi.SearchRequest{
		Query:   query,
		Mode:    messi.ModeEpsilon,
		Epsilon: 0.05,
	})
	if err != nil {
		panic(err)
	}
	// A self-query's distance is 0, which no ε-pruning can displace.
	fmt.Println(res.Best().Position, res.EpsilonBound <= 0.05)

	// Deadline-bounded: generous budget, so the answer completes exactly.
	res, err = ix.Do(context.Background(), messi.SearchRequest{
		Query:    query,
		Mode:     messi.ModeDeadline,
		Deadline: time.Minute,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Best().Position, res.Exact)
	// Output:
	// 99 true
	// 99 true
}

// Index every subsequence of a stream, the paper's prescription for
// streaming series.
func ExampleSlidingWindows() {
	stream := messi.RandomWalk(1, 4096, 10) // one long stream
	windows, err := messi.SlidingWindows(stream, 256, 16, true)
	if err != nil {
		panic(err)
	}
	ix, err := messi.BuildFlat(windows, 256, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.Len(), ix.SeriesLen())
	// Output: 241 256
}
