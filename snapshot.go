package messi

import (
	"errors"
	"io"

	"repro/internal/live"
	"repro/internal/persist"
)

// This file is the public face of the snapshot subsystem
// (internal/persist): saving a built index to a versioned, checksummed
// binary file and loading it back in a fraction of the build time. A
// loaded index answers every query identically to the freshly built one.
//
//	ix, _ := messi.BuildFlat(data, 256, nil)
//	_ = ix.Save("index.snap")
//	...
//	ix2, _ := messi.Load("index.snap") // seconds, not an O(n) rebuild
//
// Snapshots record the index options that shape the structure (segments,
// cardinality, leaf capacity) and the normalization flag; runtime tuning
// (worker counts, queue counts) is not persisted and takes the usual
// defaults on load.

// ErrNoGeneration is returned when saving a LiveIndex that has no
// immutable generation to snapshot (nothing was ever indexed).
var ErrNoGeneration = errors.New("messi: live index has no generation to snapshot")

// Save writes the index to path as a snapshot. The write is atomic: a
// temporary file is written, synced, and renamed over path, so a crash
// cannot leave a truncated snapshot under the target name.
func (ix *Index) Save(path string) error {
	return persist.WriteFile(path, ix.inner, ix.normalize)
}

// WriteSnapshot streams the index snapshot to w (the same bytes Save
// writes to a file).
func (ix *Index) WriteSnapshot(w io.Writer) error {
	return persist.Write(w, ix.inner, ix.normalize)
}

// Load reads a snapshot written by Save (or messi-gen -snapshot) and
// restores the index without re-running construction. Corrupt or
// incompatible files fail with a descriptive error rather than a corrupt
// index: the format is checksummed section by section.
//
// On unix hosts the snapshot file is memory-mapped and the loaded index
// aliases the (copy-on-write, page-cache-backed) mapping for as long as
// the process lives — the intended shape for a server that loads one
// snapshot at boot. A process that loads snapshots repeatedly
// accumulates one mapping per Load; use ReadSnapshot over an opened file
// for a fully heap-allocated index instead.
func Load(path string) (*Index, error) {
	inner, normalize, err := persist.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner, normalize: normalize}, nil
}

// ReadSnapshot restores an index from a snapshot stream (the inverse of
// WriteSnapshot).
func ReadSnapshot(r io.Reader) (*Index, error) {
	inner, normalize, err := persist.Read(r)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner, normalize: normalize}, nil
}

// LoadLive boots a mutable live index from a snapshot: the snapshot
// becomes the first immutable generation and appends accumulate on top,
// exactly as if the original index had kept running. Structural options
// are taken from the snapshot; opts supplies runtime tuning and lopts the
// live-index behaviour (including SnapshotPath for automatic
// re-snapshots on Flush and Close).
func LoadLive(path string, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	base, normalize, err := persist.ReadFile(path)
	if err != nil {
		return nil, err
	}
	coreOpts, _, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	inner, err := live.NewFromIndex(base, lopts.toLive(coreOpts))
	if err != nil {
		return nil, err
	}
	return &LiveIndex{inner: inner, normalize: normalize, snapshotPath: snapshotPath(lopts)}, nil
}

// Save snapshots the live index to path: it first Flushes (merging all
// buffered series into the immutable generation), then writes that
// generation atomically. Concurrent appends arriving after the flush are
// not part of the snapshot.
func (ix *LiveIndex) Save(path string) error {
	if err := ix.inner.Flush(); err != nil {
		return err
	}
	return ix.saveBase(path)
}

// saveBase persists the current immutable generation as-is (no flush).
func (ix *LiveIndex) saveBase(path string) error {
	base := ix.inner.Base()
	if base == nil {
		return ErrNoGeneration
	}
	return persist.WriteFile(path, base, ix.normalize)
}

func snapshotPath(lopts *LiveOptions) string {
	if lopts == nil {
		return ""
	}
	return lopts.SnapshotPath
}
