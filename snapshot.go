package messi

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/wal"
)

// This file is the public face of the snapshot subsystem
// (internal/persist): saving a built index to a versioned, checksummed
// binary file and loading it back in a fraction of the build time. A
// loaded index answers every query identically to the freshly built one.
//
//	ix, _ := messi.BuildFlat(data, 256, nil)
//	_ = ix.Save("index.snap")
//	...
//	ix2, _ := messi.Load("index.snap") // seconds, not an O(n) rebuild
//
// Snapshots record the index options that shape the structure (segments,
// cardinality, leaf capacity) and the normalization flag; runtime tuning
// (worker counts, queue counts) is not persisted and takes the usual
// defaults on load.

// ErrNoGeneration is returned when saving a LiveIndex that has no
// immutable generation to snapshot (nothing was ever indexed).
var ErrNoGeneration = errors.New("messi: live index has no generation to snapshot")

// ErrShardedStream is returned by WriteSnapshot on a sharded index: the
// multi-shard snapshot is a directory layout (one file per shard plus a
// manifest), not a single stream. Use Save with a directory path instead.
var ErrShardedStream = errors.New("messi: sharded index snapshots are directories; use Save")

// Save writes the index to path as a snapshot. An unsharded index becomes
// a single file (written atomically: temp file, sync, rename); a sharded
// index becomes a snapshot DIRECTORY at path — one ordinary snapshot file
// per shard plus a checksummed manifest, written concurrently with the
// manifest last. Load accepts either shape.
func (ix *Index) Save(path string) error {
	if single := ix.inner.Single(); single != nil {
		return persist.WriteFile(path, single, ix.normalize)
	}
	return persist.WriteShardedDir(path, ix.inner, ix.normalize)
}

// WriteSnapshot streams the index snapshot to w (the same bytes Save
// writes to a file). Sharded indexes cannot be streamed (their snapshot
// is a directory): WriteSnapshot returns ErrShardedStream.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	single := ix.inner.Single()
	if single == nil {
		return ErrShardedStream
	}
	return persist.Write(w, single, ix.normalize)
}

// Load reads a snapshot written by Save (or messi-gen -snapshot) and
// restores the index without re-running construction. Corrupt or
// incompatible files fail with a descriptive error rather than a corrupt
// index: the format is checksummed section by section.
//
// On unix hosts the snapshot file is memory-mapped and the loaded index
// aliases the (copy-on-write, page-cache-backed) mapping for as long as
// the process lives — the intended shape for a server that loads one
// snapshot at boot. A process that loads snapshots repeatedly
// accumulates one mapping per Load; use ReadSnapshot over an opened file
// for a fully heap-allocated index instead.
// Sharded snapshot directories (written by Save on a sharded index) are
// detected by their manifest and loaded shard-parallel.
func Load(path string) (*Index, error) {
	if persist.IsShardedDir(path) {
		inner, normalize, err := persist.ReadShardedDir(path)
		if err != nil {
			return nil, err
		}
		return &Index{inner: inner, normalize: normalize}, nil
	}
	inner, normalize, err := persist.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{inner: shard.Wrap(inner), normalize: normalize}, nil
}

// ReadSnapshot restores an index from a snapshot stream (the inverse of
// WriteSnapshot).
func ReadSnapshot(r io.Reader) (*Index, error) {
	inner, normalize, err := persist.Read(r)
	if err != nil {
		return nil, err
	}
	return &Index{inner: shard.Wrap(inner), normalize: normalize}, nil
}

// LoadLive boots a mutable live index from a snapshot: the snapshot
// becomes the first immutable generation and appends accumulate on top,
// exactly as if the original index had kept running. Structural options
// are taken from the snapshot; opts supplies runtime tuning and lopts the
// live-index behaviour (including SnapshotPath for automatic
// re-snapshots on Flush and Close).
// A sharded snapshot directory boots a sharded live index: the base's
// shard count carries over, so appends keep the same round-robin routing.
// With LiveOptions.WALDir set, the log tail beyond the snapshot is
// replayed into the delta before LoadLive returns, so a crashed server
// restarts with every acked append searchable again.
func LoadLive(path string, opts *Options, lopts *LiveOptions) (*LiveIndex, error) {
	var (
		base      *shard.Index
		normalize bool
		err       error
	)
	if persist.IsShardedDir(path) {
		base, normalize, err = persist.ReadShardedDir(path)
	} else {
		var single *core.Index
		single, normalize, err = persist.ReadFile(path)
		base = shard.Wrap(single)
	}
	if err != nil {
		return nil, err
	}
	coreOpts, _, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	w, err := openWAL(lopts, base.SeriesLen())
	if err != nil {
		return nil, err
	}
	lo := lopts.toLive(coreOpts, opts.shards())
	lo.WAL = w
	inner, err := live.NewFromIndex(base, lo)
	if err != nil {
		if w != nil {
			w.Close()
		}
		return nil, err
	}
	return &LiveIndex{inner: inner, normalize: normalize, snapshotPath: snapshotPath(lopts), wal: w}, nil
}

// Save snapshots the live index to path: it first Flushes (merging all
// buffered series into the immutable generation), then writes that
// generation atomically. Concurrent appends arriving after the flush are
// not part of the snapshot.
func (ix *LiveIndex) Save(path string) error {
	if err := ix.inner.Flush(); err != nil {
		return err
	}
	return ix.saveBase(path)
}

// saveBase persists the current immutable generation as-is (no flush):
// a single snapshot file for an unsharded index, a snapshot directory
// for a sharded one. With a WAL configured, a successful save truncates
// the log's covered prefix — every journaled position below the saved
// generation's length is now durable in the snapshot, so replay never
// needs it again.
func (ix *LiveIndex) saveBase(path string) error {
	base := ix.inner.Base()
	if base == nil {
		return ErrNoGeneration
	}
	covered := int64(base.Len())
	var err error
	if single := base.Single(); single != nil {
		err = persist.WriteFile(path, single, ix.normalize)
	} else {
		err = persist.WriteShardedDir(path, base, ix.normalize)
	}
	if err != nil {
		return err
	}
	if ix.wal != nil {
		if terr := ix.wal.Truncate(covered); terr != nil && !errors.Is(terr, wal.ErrClosed) {
			return fmt.Errorf("messi: wal truncate after snapshot: %w", terr)
		}
	}
	return nil
}

func snapshotPath(lopts *LiveOptions) string {
	if lopts == nil {
		return ""
	}
	return lopts.SnapshotPath
}
