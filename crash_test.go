package messi

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/persist"
)

// The crash-recovery matrix: for every registered failpoint, run a live
// index through an append → rotate → snapshot → truncate → append
// workload with that point armed to fail once mid-stream, "crash" the
// process (abandon the instance without flushing), reboot from whatever
// survived on disk (snapshot and/or WAL), and assert that every acked
// append is recovered bitwise and nothing unacked appears. Run under
// -race in CI's chaos job.

const (
	crashSeriesLen = 32
	// Tiny segments force several rotations inside the workload, so the
	// wal.rotate point fires and recovery crosses segment boundaries.
	crashSegmentBytes = 512
)

// crashRow builds a deterministic series for position i, so reboots can
// reconstruct the expected bytes without shipping state around.
func crashRow(i int) []float32 {
	s := make([]float32, crashSeriesLen)
	for j := range s {
		s[j] = float32(i+1)*0.5 + float32(j)*0.25
	}
	return s
}

func TestCrashRecoveryMatrix(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	for _, shards := range []int{1, 2} {
		for _, name := range fault.Names() {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, name), func(t *testing.T) {
				runCrashScenario(t, name, shards, fault.Spec{Action: fault.Error}, true)
			})
		}
	}
}

// TestChaosSoak reruns the matrix with nastier specs — repeated faults
// (every hit fails, not just one) and partial writes that tear records.
// It is the CI chaos job's extra mile; locally it is opt-in because it
// multiplies the matrix.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("MESSI_CHAOS") == "" {
		t.Skip("set MESSI_CHAOS=1 to run the chaos soak (the CI chaos job does)")
	}
	t.Cleanup(fault.DisarmAll)
	specs := []struct {
		tag  string
		spec fault.Spec
	}{
		{"repeat", fault.Spec{Action: fault.Error, Repeat: true}},
		{"after2", fault.Spec{Action: fault.Error, After: 2}},
		{"torn", fault.Spec{Action: fault.PartialWrite, Keep: 5}},
	}
	for _, shards := range []int{1, 2} {
		for _, name := range fault.Names() {
			for _, sp := range specs {
				t.Run(fmt.Sprintf("shards=%d/%s/%s", shards, name, sp.tag), func(t *testing.T) {
					// After-N and torn variants may never reach their
					// firing hit on points the workload touches rarely.
					runCrashScenario(t, name, shards, sp.spec, false)
				})
			}
		}
	}
}

func runCrashScenario(t *testing.T, point string, shards int, spec fault.Spec, requireFire bool) {
	t.Cleanup(fault.DisarmAll)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "snap")
	// LeafCapacity 2 splits the tiny base into many leaves, so the exact
	// search below must drain its queue through scanLeaf (the core
	// failpoint) instead of answering from the BSF-seeding scan alone.
	opts := &Options{LeafCapacity: 2, IndexWorkers: 2, SearchWorkers: 2, Shards: shards}
	lopts := &LiveOptions{
		RebuildThreshold: 1 << 30, // rebuilds happen via explicit Flush/Save only
		ScanWorkers:      2,
		WALDir:           walDir,
		WALSync:          "always",
		WALSegmentBytes:  crashSegmentBytes,
	}

	ix, err := NewLive(crashSeriesLen, opts, lopts)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	appendOne := func() {
		if _, aerr := ix.Append(crashRow(acked)); aerr == nil {
			acked++
		} else if !errors.Is(aerr, fault.ErrInjected) {
			t.Fatalf("append %d failed with a non-injected error: %v", acked, aerr)
		}
	}

	// Phase 1 (clean): enough appends to span several WAL segments, then
	// a flush so a base generation exists for the query below.
	for i := 0; i < 10; i++ {
		appendOne()
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}

	firedBefore := fault.Fired(point)
	if err := fault.Arm(point, spec); err != nil {
		t.Fatal(err)
	}

	// Phase 2 (faulted): the full workload crosses every instrumented
	// site — WAL appends and rotations, a query (engine and core
	// points), a snapshot save (persist points, rebuild, truncation) —
	// and exactly one of them fails, depending on which point is armed.
	for i := 0; i < 5; i++ {
		appendOne()
	}
	// A query far from every indexed ramp: its best-so-far stays large,
	// so no leaf prunes and the search reaches the scan failpoints. It
	// may fail — query-path points are armed on purpose.
	_, _ = ix.Search(make([]float32, crashSeriesLen))
	snapErr := ix.Save(snapPath)
	if snapErr != nil && !errors.Is(snapErr, fault.ErrInjected) {
		t.Fatalf("save failed with a non-injected error: %v", snapErr)
	}
	for i := 0; i < 5; i++ {
		appendOne()
	}

	// Every point must actually have been reached by the workload —
	// except the sharded-manifest one, which only exists on disk when
	// the snapshot is a multi-shard directory.
	if requireFire && !(point == "persist.manifest.write" && shards == 1) {
		if fault.Fired(point) == firedBefore {
			t.Fatalf("failpoint %s never fired: the scenario does not reach it", point)
		}
	}

	// Crash: abandon the instance. Close releases goroutines and file
	// handles but does not flush the delta or write a snapshot (no
	// SnapshotPath configured), so on-disk state is exactly what a kill
	// at this instant would leave: the last snapshot, plus the WAL tail.
	fault.DisarmAll()
	ix.Close()

	// Reboot from whatever survived. An aborted sharded save may leave
	// an empty directory behind (never a partial manifest), which is not
	// a loadable snapshot.
	rec := rebootLive(t, snapPath, opts, lopts)
	defer rec.Close()

	if rec.Len() != acked {
		t.Fatalf("recovered %d series, acked %d (point %s, save err: %v)",
			rec.Len(), acked, point, snapErr)
	}
	for i := 0; i < acked; i++ {
		got, err := rec.Series(i)
		if err != nil {
			t.Fatalf("recovered series %d: %v", i, err)
		}
		want := crashRow(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("series %d[%d] = %v, want %v (not bitwise-recovered)", i, j, got[j], want[j])
			}
		}
	}

	// The recovered index serves: appends and queries keep working.
	if _, err := rec.Append(crashRow(acked)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if _, err := rec.Search(crashRow(0)); err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
}

// TestCrashTornRecordDropped kills the WAL mid-write: a partial write
// leaves torn bytes at the tail, the append is never acked, and a
// reboot recovers every acked series while dropping the torn record.
func TestCrashTornRecordDropped(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	dir := t.TempDir()
	opts := &Options{LeafCapacity: 64, IndexWorkers: 2, SearchWorkers: 2}
	lopts := &LiveOptions{
		RebuildThreshold: 1 << 30,
		ScanWorkers:      2,
		WALDir:           filepath.Join(dir, "wal"),
		WALSync:          "always",
	}
	ix, err := NewLive(crashSeriesLen, opts, lopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ix.Append(crashRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the next record 11 bytes in: CRC cannot match, so replay
	// must treat it as the torn tail of a crashed write.
	if err := fault.Arm("wal.append.write", fault.Spec{Action: fault.PartialWrite, Keep: 11}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Append(crashRow(6)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append: err = %v, want injected", err)
	}
	// The log is poisoned until reopened — further appends must refuse
	// rather than interleave good records after torn bytes.
	if _, err := ix.Append(crashRow(6)); err == nil {
		t.Fatal("append after torn write succeeded; want refusal until reopen")
	}
	ix.Close()

	rec, err := NewLive(crashSeriesLen, opts, lopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 6 {
		t.Fatalf("recovered %d series, want 6 (torn record must be dropped)", rec.Len())
	}
	// The repaired log accepts appends again.
	if _, err := rec.Append(crashRow(6)); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
}

// rebootLive reopens the on-disk state like a restarted server: from the
// snapshot plus the WAL tail when a loadable snapshot exists, from the
// WAL alone otherwise.
func rebootLive(t *testing.T, snapPath string, opts *Options, lopts *LiveOptions) *LiveIndex {
	t.Helper()
	if fi, err := os.Stat(snapPath); err == nil && (!fi.IsDir() || persist.IsShardedDir(snapPath)) {
		rec, err := LoadLive(snapPath, opts, lopts)
		if err != nil {
			t.Fatalf("reboot from snapshot: %v", err)
		}
		return rec
	}
	rec, err := NewLive(crashSeriesLen, opts, lopts)
	if err != nil {
		t.Fatalf("reboot from WAL alone: %v", err)
	}
	return rec
}

// TestQueryPanickedPublicSentinel pins the public error surface: a
// panic on a pool worker reaches API consumers as ErrQueryPanicked,
// matchable with errors.Is, and the serving pool survives it.
func TestQueryPanickedPublicSentinel(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	ix, err := BuildLiveFlat(RandomWalk(200, crashSeriesLen, 11), crashSeriesLen,
		&Options{LeafCapacity: 64, SearchWorkers: 2},
		&LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := crashRow(0)
	if err := fault.Arm("engine.unit", fault.Spec{Action: fault.Panic}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(q); !errors.Is(err, ErrQueryPanicked) {
		t.Fatalf("err = %v, want ErrQueryPanicked", err)
	}
	if _, err := ix.Search(q); err != nil {
		t.Fatalf("query after recovered panic: %v (pool must keep serving)", err)
	}
}

// TestCrashRecoveryTruncatedLog is the happy-path half of the matrix: a
// snapshot covering the whole log truncates it, a crash after further
// appends reboots from snapshot + short tail, and a second crash with
// NO snapshot at all reboots from the log alone.
func TestCrashRecoveryTruncatedLog(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	snapPath := filepath.Join(dir, "snap")
	opts := &Options{LeafCapacity: 64, IndexWorkers: 2, SearchWorkers: 2}
	lopts := &LiveOptions{
		RebuildThreshold: 1 << 30,
		ScanWorkers:      2,
		WALDir:           walDir,
		WALSync:          "always",
		WALSegmentBytes:  crashSegmentBytes,
	}

	ix, err := NewLive(crashSeriesLen, opts, lopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ix.Append(crashRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Save(snapPath); err != nil { // flush + snapshot + truncate
		t.Fatal(err)
	}
	for i := 20; i < 27; i++ { // tail beyond the snapshot
		if _, err := ix.Append(crashRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Close() // crash: tail never snapshotted

	rec, err := LoadLive(snapPath, opts, lopts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 27 {
		t.Fatalf("recovered %d series, want 27", rec.Len())
	}
	for i := 0; i < 27; i++ {
		got, err := rec.Series(i)
		if err != nil {
			t.Fatal(err)
		}
		want := crashRow(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("series %d[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	rec.Close()
}
