package messi

import (
	"io"

	"repro/internal/metrics"
	"repro/internal/persist"
)

// Metrics is a production metrics registry: atomic counters, gauges, and
// lock-free log2-bucketed latency histograms with Prometheus text-format
// exposition. Attach one to EngineOptions.Metrics or LiveOptions.Metrics
// to collect serving telemetry — admission-gate pressure, per-mode query
// latency histograms, cumulative pruning counters, rebuild and snapshot
// activity — and serve it with WriteText (messi-serve exposes it on
// GET /metrics).
//
// A nil *Metrics disables all measurement everywhere it is accepted: the
// hot paths pay a single nil check, so library users and benchmarks that
// never enable metrics keep their numbers. (It is an alias for the
// internal registry type, so the instruments it hands out are usable
// directly as well.)
type Metrics = metrics.Registry

// MetricLabel is one metric label pair for direct registry use.
type MetricLabel = metrics.Label

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// EnableSnapshotMetrics installs snapshot save/load telemetry (durations
// and bytes) on r, process-wide: the persist layer is package-level, so
// unlike engine/live metrics this hook is global. Passing nil uninstalls.
func EnableSnapshotMetrics(r *Metrics) { persist.SetMetrics(r) }

// WriteRuntimeMetrics writes a small set of Go runtime metrics (the
// conventional go_* names) in Prometheus text format — append it to a
// registry exposition for one complete scrape body.
func WriteRuntimeMetrics(w io.Writer) error { return metrics.WriteRuntime(w) }
