// Workload tuning: generate a hardness-tiered query workload, run it
// through the quality modes, and read the report to choose serving knobs.
//
// The harness answers three operator questions the benchmarks cannot:
// how does answer quality degrade as queries drift off the indexed data
// (member → near-dup → noise → ood → adversarial), which quality mode
// buys how much pruning on the hard tiers, and what ε budget keeps
// recall acceptable when exact search is too slow. docs/COOKBOOK.md
// walks through this program line by line.
package main

import (
	"fmt"
	"log"
	"os"

	messi "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	// 1. A collection and an index. Single-worker build and query keep
	//    the operation counters — and so the whole report — reproducible;
	//    drop those options when you care about speed instead.
	col, err := dataset.Generate(dataset.RandomWalk, 5000, 128, 1)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := messi.BuildFlat(col.Data, col.Length, &messi.Options{
		LeafCapacity:  64,
		IndexWorkers:  1,
		SearchWorkers: 1,
		QueueCount:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Five query tiers, ten queries each, all derived from seed 42.
	//    The same seed always produces byte-identical queries.
	sets, err := workload.GenerateAll(col, 10, 42, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run every tier through every quality mode, scoring against a
	//    brute-force ground-truth scan.
	rep, err := workload.Run(ix, col, sets, workload.Config{
		K:       5,
		Epsilon: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Read the matrix. Exact mode is the correctness floor (recall
	//    must be 1.0 everywhere); the pruning mean is the tuning signal:
	//    tiers where it collapses are where approx/epsilon modes pay.
	fmt.Printf("%-12s %-9s %9s %9s %9s\n", "tier", "mode", "recall@5", "exact", "pruning")
	for _, tr := range rep.Tiers {
		for _, mr := range tr.Modes {
			fmt.Printf("%-12s %-9s %9.4f %9.2f %9.4f\n",
				tr.Tier, mr.Mode, mr.RecallAtK, mr.ExactFraction, mr.PruningRatioMean)
		}
	}

	// 5. The full JSON report (what cmd/messi-workload emits, and what
	//    cmd/benchdiff's workload gate compares across commits).
	if err := rep.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
