// Seismic-monitoring scenario: index a large archive of waveform snippets
// and, when a new event arrives, retrieve the most similar historical
// waveforms at interactive latency. This mirrors the paper's motivating
// in-memory analytics setting (and its IRIS Seismic evaluation dataset,
// here replaced by the seismic-like generator — see DESIGN.md).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	messi "repro"
)

func main() {
	const (
		archive = 100000 // historical waveform snippets
		length  = 256
	)

	fmt.Printf("generating %d archived waveforms...\n", archive)
	data := messi.SeismicLike(archive, length, 11)

	start := time.Now()
	ix, err := messi.BuildFlat(data, length, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index built in %v — %d leaves, max depth %d\n",
		time.Since(start).Round(time.Millisecond), st.Leaves, st.MaxDepth)

	// A "new event" arrives: in a real deployment this would come from a
	// station feed; here it is a fresh draw from the same generator.
	events := messi.SeismicLike(5, length, 990011)
	for e := 0; e < 5; e++ {
		q := events[e*length : (e+1)*length]
		qStart := time.Now()
		res, err := ix.Do(context.Background(), messi.SearchRequest{Query: q, K: 5})
		if err != nil {
			log.Fatal(err)
		}
		similar := res.Matches
		elapsed := time.Since(qStart)
		fmt.Printf("\nevent %d: top-5 similar archived waveforms (in %v):\n",
			e, elapsed.Round(time.Microsecond))
		for rank, m := range similar {
			fmt.Printf("  %d. archive #%d  distance %.4f\n", rank+1, m.Position, m.Distance)
		}
		if elapsed < 100*time.Millisecond {
			fmt.Println("  → interactive (under the 100ms analysis threshold the paper targets)")
		}
	}
}
