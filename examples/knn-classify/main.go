// k-NN classification of waveforms with a MESSI index — the analytics use
// case the paper's introduction motivates ("complex analytics operations
// (such as searching for similar patterns, or classification)").
//
// We synthesize three classes of labelled series (distinct spectral
// shapes), index the training set, and classify a held-out test set by
// majority vote over each test series' k nearest neighbors. Every k-NN
// query is exact, so the classifier is the true k-NN classifier — just
// index-accelerated.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	messi "repro"
)

const (
	length     = 128
	perClass   = 3000
	testCount  = 300
	numClasses = 3
	k          = 7
)

// makeSeries draws one z-normalized series of the given class: each class
// mixes two harmonics with class-specific frequencies plus noise.
func makeSeries(rng *rand.Rand, class int) []float32 {
	freqs := [numClasses][2]float64{{2, 5}, {3, 7}, {4, 11}}
	phase := rng.Float64() * 2 * math.Pi
	s := make([]float32, length)
	for i := range s {
		t := float64(i) / length
		v := math.Sin(2*math.Pi*freqs[class][0]*t+phase) +
			0.6*math.Sin(2*math.Pi*freqs[class][1]*t+phase/2) +
			rng.NormFloat64()*0.35
		s[i] = float32(v)
	}
	return messi.ZNormalize(s)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Training set: perClass series per class, flat storage + labels.
	train := make([]float32, 0, numClasses*perClass*length)
	labels := make([]int, 0, numClasses*perClass)
	for c := 0; c < numClasses; c++ {
		for i := 0; i < perClass; i++ {
			train = append(train, makeSeries(rng, c)...)
			labels = append(labels, c)
		}
	}

	start := time.Now()
	ix, err := messi.BuildFlat(train, length, &messi.Options{LeafCapacity: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d labelled series in %v\n", ix.Len(), time.Since(start).Round(time.Millisecond))

	// Classify a held-out test set by majority vote among the k exact
	// nearest neighbors.
	correct := 0
	var queryTime time.Duration
	confusion := [numClasses][numClasses]int{}
	for t := 0; t < testCount; t++ {
		trueClass := t % numClasses
		q := makeSeries(rng, trueClass)
		qStart := time.Now()
		res, err := ix.Do(context.Background(), messi.SearchRequest{Query: q, K: k})
		if err != nil {
			log.Fatal(err)
		}
		neighbors := res.Matches
		queryTime += time.Since(qStart)
		votes := [numClasses]int{}
		for _, nb := range neighbors {
			votes[labels[nb.Position]]++
		}
		pred := 0
		for c := 1; c < numClasses; c++ {
			if votes[c] > votes[pred] {
				pred = c
			}
		}
		confusion[trueClass][pred]++
		if pred == trueClass {
			correct++
		}
	}

	fmt.Printf("classified %d test series with exact %d-NN in %v (avg %v/query)\n",
		testCount, k, queryTime.Round(time.Millisecond),
		(queryTime / testCount).Round(time.Microsecond))
	fmt.Printf("accuracy: %.1f%%\n", 100*float64(correct)/float64(testCount))
	fmt.Println("confusion matrix (rows = truth):")
	for c := 0; c < numClasses; c++ {
		fmt.Printf("  class %d: %v\n", c, confusion[c])
	}
}
