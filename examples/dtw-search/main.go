// DTW search: find a time-shifted pattern that Euclidean distance misses.
//
// The paper (§IV, "MESSI with DTW") shows the index answers constrained-
// DTW queries with no structural changes: the query's LB_Keogh envelope is
// built and the same tree is searched with envelope-based lower bounds.
// This example plants a time-shifted copy of a target pattern in the
// collection and shows that the DTW search retrieves it while plain
// Euclidean 1-NN picks a different (worse) series.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	messi "repro"
)

const length = 256

// pattern is a characteristic double-bump waveform, shifted by the given
// number of points.
func pattern(shift int) []float32 {
	s := make([]float32, length)
	for i := range s {
		t := float64(i-shift) / length
		s[i] = float32(math.Exp(-100*(t-0.3)*(t-0.3)) + 0.8*math.Exp(-150*(t-0.55)*(t-0.55)))
	}
	return messi.ZNormalize(s)
}

func main() {
	const count = 20000

	// Background collection plus one planted series: the query's pattern
	// shifted by 12 points (within a 10% warping window of 25).
	data := messi.RandomWalk(count, length, 3)
	planted := pattern(12)
	copy(data[(count-1)*length:], planted)

	ix, err := messi.BuildFlat(data, length, nil)
	if err != nil {
		log.Fatal(err)
	}

	query := pattern(0) // the unshifted pattern

	edStart := time.Now()
	edRes, err := ix.Do(context.Background(), messi.SearchRequest{Query: query})
	if err != nil {
		log.Fatal(err)
	}
	ed := edRes.Best()
	edElapsed := time.Since(edStart)

	dtwStart := time.Now()
	dtwRes, err := ix.Do(context.Background(), messi.SearchRequest{Query: query, DTW: true, Window: 0.10}) // the paper's 10% window
	if err != nil {
		log.Fatal(err)
	}
	warped := dtwRes.Best()
	dtwElapsed := time.Since(dtwStart)

	fmt.Printf("collection: %d series; planted shifted pattern at #%d\n\n", count, count-1)
	fmt.Printf("Euclidean 1-NN: #%d  distance %.3f  (%v)\n", ed.Position, ed.Distance, edElapsed.Round(time.Microsecond))
	fmt.Printf("DTW 1-NN (10%% window): #%d  distance %.3f  (%v)\n", warped.Position, warped.Distance, dtwElapsed.Round(time.Microsecond))

	if warped.Position == count-1 {
		fmt.Println("\nDTW recovered the shifted pattern; Euclidean could not align it.")
	} else {
		fmt.Println("\nunexpected: DTW did not retrieve the planted series")
	}
}
