// Quickstart: build a MESSI index over synthetic random-walk series and
// answer an exact nearest-neighbor query — the minimal end-to-end use of
// the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	messi "repro"
)

func main() {
	const (
		count  = 50000
		length = 256
	)

	// 1. Get data: 50K z-normalized random-walk series (the paper's
	//    synthetic workload). Any flat row-major []float32 works.
	data := messi.RandomWalk(count, length, 1)

	// 2. Build the index. nil options = the paper's defaults (16
	//    segments, 2000-series leaves, 24 index workers, ...).
	start := time.Now()
	ix, err := messi.BuildFlat(data, length, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed %d series in %v (%d root subtrees, %d leaves)\n",
		ix.Len(), time.Since(start).Round(time.Millisecond), st.RootChildren, st.Leaves)

	// 3. Query: find the nearest neighbor of a fresh series. The zero
	//    SearchRequest mode is exact 1-NN; the result says so.
	query := messi.RandomWalk(1, length, 424242)
	start = time.Now()
	res, err := ix.Do(context.Background(), messi.SearchRequest{Query: query})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Best()
	fmt.Printf("1-NN: series #%d at distance %.4f (exact=%v, answered in %v)\n",
		m.Position, m.Distance, res.Exact, time.Since(start).Round(time.Microsecond))

	// 4. Exactness check the hard way: linear scan.
	bestPos, bestDist := -1, float64(1e300)
	for i := 0; i < ix.Len(); i++ {
		var sq float64
		s, err := ix.Series(i)
		if err != nil {
			log.Fatal(err)
		}
		for j := range query {
			d := float64(query[j] - s[j])
			sq += d * d
		}
		if sq < bestDist {
			bestPos, bestDist = i, sq
		}
	}
	fmt.Printf("linear scan agrees: pos=%v (index answer is exact)\n", bestPos == m.Position)
}
