// Financial pattern search over a streaming price series — the finance
// use case from the paper's introduction, combined with its sliding-window
// prescription for streaming data (§II-A): slice a long price stream into
// z-normalized subsequences, index them, then find historical windows
// whose *shape* matches a recent pattern regardless of price level.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	messi "repro"
)

const (
	streamLen = 400000 // ticks in the price history
	window    = 256    // pattern length
	step      = 4      // window stride
)

func main() {
	// Synthesize a price stream: geometric-ish random walk with drift
	// regimes (random walks are the standard model for financial series,
	// as the paper notes when motivating its generator).
	rng := rand.New(rand.NewSource(42))
	stream := make([]float32, streamLen)
	price, drift := 100.0, 0.0
	for i := range stream {
		if i%5000 == 0 {
			drift = rng.NormFloat64() * 0.02
		}
		price += drift + rng.NormFloat64()*0.5
		stream[i] = float32(price)
	}

	// Index every z-normalized window of the history.
	windows, err := messi.SlidingWindows(stream, window, step, true)
	if err != nil {
		log.Fatal(err)
	}
	nWindows := len(windows) / window
	start := time.Now()
	ix, err := messi.BuildFlat(windows, window, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d overlapping windows of %d ticks in %v\n",
		nWindows, window, time.Since(start).Round(time.Millisecond))

	// Query: the most recent window — "when did the market last look
	// like it does right now?" Normalize a copy so magnitude is ignored.
	recent := make([]float32, window)
	copy(recent, stream[streamLen-window:])
	messi.ZNormalize(recent)

	qStart := time.Now()
	res, err := ix.Do(context.Background(), messi.SearchRequest{Query: recent, K: 8})
	if err != nil {
		log.Fatal(err)
	}
	matches := res.Matches
	elapsed := time.Since(qStart)

	fmt.Printf("\nwindows most similar to the last %d ticks (found in %v):\n", window, elapsed.Round(time.Microsecond))
	shown := 0
	for _, m := range matches {
		at := m.Position * step
		if at >= streamLen-window-step { // skip the query window itself
			continue
		}
		fmt.Printf("  tick %7d  shape distance %.4f\n", at, m.Distance)
		shown++
		if shown == 5 {
			break
		}
	}
	fmt.Println("\neach hit is an exact nearest neighbor over every historical window,")
	fmt.Println("at interactive latency — the exploratory loop the paper targets.")
}
