// Package messi is a pure-Go implementation of MESSI, the in-memory data
// series index of Peng, Fatourou and Palpanas (ICDE 2020): an iSAX tree
// built and queried by parallel workers, answering exact 1-NN (and k-NN)
// similarity queries under Euclidean distance or constrained Dynamic Time
// Warping.
//
// # Quick start
//
//	data := messi.RandomWalk(100_000, 256, 1) // or your own flat []float32
//	ix, err := messi.BuildFlat(data, 256, nil)
//	if err != nil { ... }
//	m, err := ix.Search(query)                // exact nearest neighbor
//	fmt.Println(m.Position, m.Distance)
//
// The index is immutable after Build and safe for concurrent queries.
//
// # Distances
//
// All Search functions return true (non-squared) distances. Internally the
// library works with squared distances; Match.Distance is the square root
// of the internal value. Data series are compared as-is: if you want the
// standard z-normalized similarity semantics, either normalize your data
// yourself or set Options.Normalize.
package messi

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/tree"
)

// Options configures index construction and default query parallelism.
// The zero value (or a nil *Options) selects the paper's defaults:
// 16 segments, 256-symbol alphabet, 2000-series leaves, 20K-series chunks,
// 24 index workers, 48 search workers, 24 priority queues.
type Options struct {
	// Segments is the number of PAA segments per iSAX word (w). The
	// series length must be a multiple of it. Default 16.
	Segments int
	// Cardinality is the alphabet size per segment; must be a power of
	// two up to 256. Default 256.
	Cardinality int
	// LeafCapacity is the maximum number of series per leaf before it
	// splits. Default 2000.
	LeafCapacity int
	// ChunkSize is the number of series per construction work unit.
	// Default 20000.
	ChunkSize int
	// InitialBufferSize is the initial per-worker iSAX buffer capacity
	// in series. Default 5.
	InitialBufferSize int
	// IndexWorkers (Nw) is the number of construction goroutines.
	// Default 24.
	IndexWorkers int
	// SearchWorkers (Ns) is the number of query goroutines. Default 48.
	SearchWorkers int
	// QueueCount (Nq) is the number of shared priority queues used
	// during query answering; 1 reproduces the paper's MESSI-sq variant.
	// Default 24.
	QueueCount int
	// Normalize, when true, z-normalizes every series in place during
	// Build and z-normalizes (a copy of) every query.
	Normalize bool
	// Shards partitions the collection across this many independent index
	// shards, built concurrently and queried by a fan-out that threads one
	// shared pruning bound — answers are identical to an unsharded index.
	// Series route round-robin (global position p lives in shard p%S).
	// 0 or 1 builds a single tree. With Shards > 1 even BuildFlat copies
	// each series into its shard's storage. Default 1.
	Shards int
}

// shards returns the effective shard count.
func (o *Options) shards() int {
	if o == nil || o.Shards <= 0 {
		return 1
	}
	return o.Shards
}

func (o *Options) toCore() (core.Options, bool, error) {
	if o == nil {
		return core.Options{}, false, nil
	}
	cardBits := 0
	if c := o.Cardinality; c != 0 {
		if c < 2 || c > 256 || bits.OnesCount(uint(c)) != 1 {
			return core.Options{}, false, fmt.Errorf("messi: cardinality %d is not a power of two in [2,256]", c)
		}
		cardBits = bits.TrailingZeros(uint(c))
	}
	return core.Options{
		Segments:      o.Segments,
		CardBits:      cardBits,
		LeafCapacity:  o.LeafCapacity,
		ChunkSize:     o.ChunkSize,
		InitBufferCap: o.InitialBufferSize,
		IndexWorkers:  o.IndexWorkers,
		SearchWorkers: o.SearchWorkers,
		QueueCount:    o.QueueCount,
	}, o.Normalize, nil
}

// Match is one query answer.
type Match struct {
	// Position is the index of the matching series in the build data
	// (its row for Build, its offset/length for BuildFlat).
	Position int
	// Distance is the true distance between query and match (Euclidean,
	// or constrained-DTW for SearchDTW).
	Distance float64
}

// Index is an immutable MESSI index over a series collection — a group
// of one or more shards (Options.Shards), queried identically either way.
type Index struct {
	inner     *shard.Index
	normalize bool
}

// Build indexes a slice of equal-length series (each row is copied into
// the index's contiguous storage).
func Build(rows [][]float32, opts *Options) (*Index, error) {
	col, err := series.FromSlices(rows)
	if err != nil {
		return nil, err
	}
	return buildCollection(col, opts)
}

// BuildFlat indexes flat row-major storage without copying: series i
// occupies data[i*seriesLen:(i+1)*seriesLen]. The caller must not modify
// data afterwards (with Options.Normalize the build itself rewrites it).
func BuildFlat(data []float32, seriesLen int, opts *Options) (*Index, error) {
	col, err := series.NewCollection(data, seriesLen)
	if err != nil {
		return nil, err
	}
	return buildCollection(col, opts)
}

// BuildFromFile indexes a dataset file written by WriteSeriesFile (or the
// messi-gen tool).
func BuildFromFile(path string, opts *Options) (*Index, error) {
	col, err := dataset.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return buildCollection(col, opts)
}

func buildCollection(col *series.Collection, opts *Options) (*Index, error) {
	coreOpts, normalize, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	if normalize {
		col.ZNormalizeAll()
	}
	inner, err := shard.Build(col, opts.shards(), coreOpts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner, normalize: normalize}, nil
}

// prepareQuery applies normalization when the index was built with it.
func (ix *Index) prepareQuery(query []float32) []float32 {
	if !ix.normalize {
		return query
	}
	return series.ZNormalized(query)
}

// Search answers an exact 1-NN query under Euclidean distance.
//
// Deprecated: use Do with a SearchRequest (the zero Mode is exact 1-NN).
func (ix *Index) Search(query []float32) (Match, error) {
	res, err := ix.Do(context.Background(), SearchRequest{Query: query})
	if err != nil {
		return Match{}, err
	}
	return res.Best(), nil
}

// ApproxSearch answers an approximate 1-NN query: the initial step of the
// exact algorithm only (the leaf matching the query's iSAX summary). It is
// much cheaper than Search and its answer is typically very close to
// exact; its distance is always an upper bound on the exact distance.
//
// Deprecated: use Do with Mode: ModeApprox.
func (ix *Index) ApproxSearch(query []float32) (Match, error) {
	res, err := ix.Do(context.Background(), SearchRequest{Query: query, Mode: ModeApprox})
	if err != nil {
		return Match{}, err
	}
	return res.Best(), nil
}

// SearchKNN answers an exact k-NN query under Euclidean distance,
// returning up to k matches in ascending distance order.
//
// Deprecated: use Do with K set.
func (ix *Index) SearchKNN(query []float32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w, got %d", ErrBadK, k)
	}
	res, err := ix.Do(context.Background(), SearchRequest{Query: query, K: k})
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba warping window given as a fraction of the series length
// (0.1 = the 10% window the paper uses). Fractions outside [0,1] are an
// error, not a silent clamp.
//
// Deprecated: use Do with DTW: true and Window set.
func (ix *Index) SearchDTW(query []float32, window float64) (Match, error) {
	res, err := ix.Do(context.Background(), SearchRequest{Query: query, DTW: true, Window: window})
	if err != nil {
		return Match{}, err
	}
	return res.Best(), nil
}

// checkWindowFraction validates a DTW warping-window fraction. The
// underlying absolute band radius is clamped by dtw.WindowSize, which
// silently accepted any fraction; the public API rejects out-of-range
// fractions instead, since they are always caller bugs.
func checkWindowFraction(window float64) error {
	if math.IsNaN(window) || window < 0 || window > 1 {
		return fmt.Errorf("%w: fraction %v outside [0,1]", ErrBadWindow, window)
	}
	return nil
}

// Series returns (a view of) the indexed series at the given position.
// Callers must not modify it. An out-of-range position is reported as an
// error, matching LiveIndex.Series (earlier versions panicked).
func (ix *Index) Series(position int) ([]float32, error) {
	if position < 0 || position >= ix.inner.Len() {
		return nil, fmt.Errorf("messi: position %d out of range [0,%d)", position, ix.inner.Len())
	}
	return ix.inner.At(position), nil
}

// Len reports the number of indexed series.
func (ix *Index) Len() int { return ix.inner.Len() }

// SeriesLen reports the length (points) of each indexed series.
func (ix *Index) SeriesLen() int { return ix.inner.SeriesLen() }

// Shards reports the number of index shards (1 = unsharded).
func (ix *Index) Shards() int { return ix.inner.NumShards() }

// Stats describes the shape of the built index tree.
type Stats struct {
	Series        int // series stored (== Len())
	RootChildren  int // non-empty root subtrees
	InternalNodes int
	Leaves        int
	MaxDepth      int // root children are depth 1
	MaxLeafFill   int // largest leaf occupancy
}

// Stats returns tree shape statistics, aggregated across shards (counts
// sum; depth and fill take the max).
func (ix *Index) Stats() Stats {
	s := ix.inner.Stats()
	return Stats(s)
}

// ShardStats returns each shard's own tree statistics, or nil for an
// unsharded index.
func (ix *Index) ShardStats() []Stats {
	if ix.inner.NumShards() == 1 {
		return nil
	}
	per := ix.inner.ShardStats()
	out := make([]Stats, len(per))
	for i, st := range per {
		out[i] = Stats(st)
	}
	return out
}

// compile-time check that the conversion above stays in sync with the
// internal stats type.
var _ = func() Stats { return Stats(tree.Stats{}) }
