package messi

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/scan"
	"repro/internal/series"
)

// qosIndexes builds the same collection unsharded and 4-way sharded: the
// quality-spectrum guarantees must hold identically on both backends.
func qosIndexes(t *testing.T, data []float32, length int) map[string]*Index {
	t.Helper()
	out := make(map[string]*Index, 2)
	for name, shards := range map[string]int{"single": 0, "sharded": 4} {
		ix, err := BuildFlat(data, length, &Options{LeafCapacity: 64, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = ix
	}
	return out
}

// bruteKNN answers k-NN by brute force over the raw data — the ground
// truth every quality guarantee is checked against.
func bruteKNN(t *testing.T, data []float32, length int, q []float32, k int) []float64 {
	t.Helper()
	col, err := series.NewCollection(data, length)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := scan.SearchKNN(col, q, k, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(ms))
	for i, m := range ms {
		dists[i] = math.Sqrt(m.Dist)
	}
	return dists
}

// TestEpsilonZeroEqualsExact: ε = 0 answers are bitwise identical to
// ModeExact — inflating bounds by (1+0)² is the same arithmetic — across
// 1-NN, k-NN, and DTW, on single-tree and sharded backends.
func TestEpsilonZeroEqualsExact(t *testing.T) {
	data := RandomWalk(3000, 64, 71)
	queries := RandomWalk(8, 64, 7171)
	for name, ix := range qosIndexes(t, data, 64) {
		for qi := 0; qi < 8; qi++ {
			q := queries[qi*64 : (qi+1)*64]
			shapes := []SearchRequest{
				{Query: q},
				{Query: q, K: 5},
				{Query: q, DTW: true, Window: 0.1},
			}
			for _, base := range shapes {
				exact, err := ix.Do(context.Background(), base)
				if err != nil {
					t.Fatal(err)
				}
				eps := base
				eps.Mode, eps.Epsilon = ModeEpsilon, 0
				got, err := ix.Do(context.Background(), eps)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Exact || got.EpsilonBound != 0 {
					t.Fatalf("%s query %d: ε=0 result not exact: %+v", name, qi, got)
				}
				if len(got.Matches) != len(exact.Matches) {
					t.Fatalf("%s query %d: ε=0 returned %d matches, exact %d", name, qi, len(got.Matches), len(exact.Matches))
				}
				for i := range exact.Matches {
					if got.Matches[i] != exact.Matches[i] {
						t.Fatalf("%s query %d rank %d: ε=0 %+v, exact %+v (must be bitwise identical)",
							name, qi, i, got.Matches[i], exact.Matches[i])
					}
				}
			}
		}
	}
}

// TestEpsilonBoundedGuarantee: an ε > 0 answer is never better than
// optimal and never worse than (1+ε)×optimal, and the bound the result
// reports is at most the requested ε. Verified against a brute-force
// scan, on both backends.
func TestEpsilonBoundedGuarantee(t *testing.T) {
	data := RandomWalk(4000, 64, 73)
	queries := RandomWalk(6, 64, 7373)
	indexes := qosIndexes(t, data, 64)
	for qi := 0; qi < 6; qi++ {
		q := queries[qi*64 : (qi+1)*64]
		optimal := bruteKNN(t, data, 64, q, 5)
		for name, ix := range indexes {
			for _, eps := range []float64{0.05, 0.25, 1.0} {
				res, err := ix.Do(context.Background(), SearchRequest{Query: q, Mode: ModeEpsilon, Epsilon: eps})
				if err != nil {
					t.Fatal(err)
				}
				d := res.Best().Distance
				if d < optimal[0]-1e-6 {
					t.Fatalf("%s ε=%v query %d: answer %v better than optimal %v", name, eps, qi, d, optimal[0])
				}
				if d > (1+eps)*optimal[0]+1e-6 {
					t.Fatalf("%s ε=%v query %d: answer %v violates (1+ε)×%v", name, eps, qi, d, optimal[0])
				}
				if res.Exact && math.Abs(d-optimal[0]) > 1e-5 {
					t.Fatalf("%s ε=%v query %d: claimed exact but %v != optimal %v", name, eps, qi, d, optimal[0])
				}
				if !res.Exact && res.EpsilonBound > eps+1e-9 {
					t.Fatalf("%s ε=%v query %d: reported bound %v exceeds requested ε", name, eps, qi, res.EpsilonBound)
				}

				// The k-NN guarantee applies rank-wise to the worst match.
				kres, err := ix.Do(context.Background(), SearchRequest{Query: q, K: 5, Mode: ModeEpsilon, Epsilon: eps})
				if err != nil {
					t.Fatal(err)
				}
				if len(kres.Matches) != 5 {
					t.Fatalf("%s ε=%v query %d: k-NN returned %d matches", name, eps, qi, len(kres.Matches))
				}
				for i, m := range kres.Matches {
					if m.Distance > (1+eps)*optimal[i]+1e-6 {
						t.Fatalf("%s ε=%v query %d rank %d: %v violates (1+ε)×%v", name, eps, qi, i, m.Distance, optimal[i])
					}
				}
			}
		}
	}
}

// TestApproxUpperBoundGuarantee: ModeApprox answers are flagged inexact,
// prove no bound, and are rank-wise upper bounds of the exact answer.
func TestApproxUpperBoundGuarantee(t *testing.T) {
	data := SeismicLike(3000, 64, 77)
	queries := SeismicLike(8, 64, 7777)
	for name, ix := range qosIndexes(t, data, 64) {
		for qi := 0; qi < 8; qi++ {
			q := queries[qi*64 : (qi+1)*64]
			exact, err := ix.Do(context.Background(), SearchRequest{Query: q, K: 3})
			if err != nil {
				t.Fatal(err)
			}
			approx, err := ix.Do(context.Background(), SearchRequest{Query: q, K: 3, Mode: ModeApprox})
			if err != nil {
				t.Fatal(err)
			}
			if approx.Exact {
				t.Fatalf("%s query %d: approximate answer claims exactness", name, qi)
			}
			if !math.IsInf(approx.EpsilonBound, 1) {
				t.Fatalf("%s query %d: approximate answer claims a proven bound %v", name, qi, approx.EpsilonBound)
			}
			for i := range approx.Matches {
				if i < len(exact.Matches) && approx.Matches[i].Distance < exact.Matches[i].Distance-1e-9 {
					t.Fatalf("%s query %d rank %d: approx %v beats exact %v",
						name, qi, i, approx.Matches[i].Distance, exact.Matches[i].Distance)
				}
			}
		}
	}
}

// TestDeadlineUnlimitedEqualsExact: ModeDeadline with no budget (or a
// generous one) completes the full exact search and says so.
func TestDeadlineUnlimitedEqualsExact(t *testing.T) {
	data := RandomWalk(2000, 64, 79)
	queries := RandomWalk(4, 64, 7979)
	for name, ix := range qosIndexes(t, data, 64) {
		for qi := 0; qi < 4; qi++ {
			q := queries[qi*64 : (qi+1)*64]
			exact, err := ix.Do(context.Background(), SearchRequest{Query: q})
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []time.Duration{0, time.Hour} {
				res, err := ix.Do(context.Background(), SearchRequest{Query: q, Mode: ModeDeadline, Deadline: budget})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Exact || res.EpsilonBound != 0 {
					t.Fatalf("%s query %d budget %v: not exact: %+v", name, qi, budget, res)
				}
				if res.Best() != exact.Best() {
					t.Fatalf("%s query %d budget %v: %+v, exact %+v", name, qi, budget, res.Best(), exact.Best())
				}
			}
		}
	}
}

// TestDeadlineTruncationContract: a canceled or deadline-expired query
// returns promptly with the best answer so far, flagged inexact, and the
// answer is still an upper bound on the optimal distance.
func TestDeadlineTruncationContract(t *testing.T) {
	data := RandomWalk(10000, 64, 83)
	q := RandomWalk(1, 64, 8383)
	optimal := bruteKNN(t, data, 64, q, 1)[0]
	for name, ix := range qosIndexes(t, data, 64) {
		// A context canceled before the call: the search must stop at the
		// first stop-check and report inexactness — never hang, never claim
		// exact.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := ix.Do(ctx, SearchRequest{Query: q, Mode: ModeDeadline})
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: pre-canceled query took %v", name, elapsed)
		}
		if res.Exact {
			t.Fatalf("%s: pre-canceled query claims exactness", name)
		}
		if len(res.Matches) > 0 && res.Best().Distance < optimal-1e-6 {
			t.Fatalf("%s: truncated answer %v better than optimal %v", name, res.Best().Distance, optimal)
		}

		// A microscopic budget: whatever is returned must satisfy the same
		// contract (tiny indexes may still finish — then Exact is true).
		res, err = ix.Do(context.Background(), SearchRequest{Query: q, Mode: ModeDeadline, Deadline: 10 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) > 0 && res.Best().Distance < optimal-1e-6 {
			t.Fatalf("%s: budgeted answer %v better than optimal %v", name, res.Best().Distance, optimal)
		}
		if res.Exact && math.Abs(res.Best().Distance-optimal) > 1e-5 {
			t.Fatalf("%s: claimed exact under budget but %v != optimal %v", name, res.Best().Distance, optimal)
		}
	}
}

// TestCancellationNoLeakedWorkers: queries canceled mid-flight terminate
// their worker goroutines on single-tree and sharded fan-out backends
// alike (run under -race in CI).
func TestCancellationNoLeakedWorkers(t *testing.T) {
	data := RandomWalk(10000, 64, 89)
	queries := RandomWalk(8, 64, 8989)
	for name, ix := range qosIndexes(t, data, 64) {
		before := runtime.NumGoroutine()
		for round := 0; round < 8; round++ {
			q := queries[(round%8)*64 : (round%8+1)*64]
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				// Alternate between Euclidean and DTW cancellation paths.
				req := SearchRequest{Query: q, Mode: ModeDeadline}
				if round%2 == 1 {
					req.DTW, req.Window = true, 0.1
				}
				if _, err := ix.Do(ctx, req); err != nil {
					t.Errorf("%s round %d: %v", name, round, err)
				}
			}()
			time.Sleep(100 * time.Microsecond)
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("%s round %d: canceled query did not return", name, round)
			}
		}
		// Workers must drain; allow the runtime a moment to reap them.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before+2 {
			t.Fatalf("%s: %d goroutines before, %d after cancellations — leaked workers", name, before, n)
		}
	}
}

// TestSentinelErrors: every frontend reports malformed requests through
// the same errors.Is-matchable sentinels, on the unified API and the
// deprecated shims alike.
func TestSentinelErrors(t *testing.T) {
	data := RandomWalk(300, 64, 91)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	lix, err := BuildLiveFlat(RandomWalk(300, 64, 92), 64, &Options{LeafCapacity: 64, SearchWorkers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	eng := ix.NewEngine(&EngineOptions{PoolWorkers: 2})
	defer eng.Close()

	ctx := context.Background()
	good := make([]float32, 64)
	frontends := map[string]func(SearchRequest) error{
		"index":  func(r SearchRequest) error { _, err := ix.Do(ctx, r); return err },
		"live":   func(r SearchRequest) error { _, err := lix.Do(ctx, r); return err },
		"engine": func(r SearchRequest) error { _, err := eng.Do(ctx, r); return err },
	}
	cases := []struct {
		name string
		req  SearchRequest
		want error
	}{
		{"negative k", SearchRequest{Query: good, K: -1}, ErrBadK},
		{"dtw knn", SearchRequest{Query: good, DTW: true, Window: 0.1, K: 3}, ErrBadK},
		{"window above 1", SearchRequest{Query: good, DTW: true, Window: 1.5}, ErrBadWindow},
		{"window NaN", SearchRequest{Query: good, DTW: true, Window: math.NaN()}, ErrBadWindow},
		{"wrong length", SearchRequest{Query: make([]float32, 5)}, ErrWrongLength},
		{"negative epsilon", SearchRequest{Query: good, Mode: ModeEpsilon, Epsilon: -0.1}, ErrBadEpsilon},
		{"epsilon NaN", SearchRequest{Query: good, Mode: ModeEpsilon, Epsilon: math.NaN()}, ErrBadEpsilon},
	}
	for fname, do := range frontends {
		for _, tc := range cases {
			err := do(tc.req)
			if err == nil {
				t.Errorf("%s/%s: no error", fname, tc.name)
			} else if !errors.Is(err, tc.want) {
				t.Errorf("%s/%s: error %q does not match sentinel", fname, tc.name, err)
			}
		}
	}

	// The deprecated shims speak the same sentinels.
	if _, err := ix.SearchKNN(good, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("Index.SearchKNN(k=0): %v, want ErrBadK", err)
	}
	if _, err := ix.SearchDTW(good, -0.5); !errors.Is(err, ErrBadWindow) {
		t.Errorf("Index.SearchDTW(-0.5): %v, want ErrBadWindow", err)
	}
	if _, err := ix.Search(make([]float32, 3)); !errors.Is(err, ErrWrongLength) {
		t.Errorf("Index.Search(short): %v, want ErrWrongLength", err)
	}
	if _, err := lix.SearchKNN(good, -2); !errors.Is(err, ErrBadK) {
		t.Errorf("LiveIndex.SearchKNN(k=-2): %v, want ErrBadK", err)
	}
	if _, err := eng.QueryDTW(good, 7); !errors.Is(err, ErrBadWindow) {
		t.Errorf("Engine.QueryDTW(7): %v, want ErrBadWindow", err)
	}
}

// TestEngineDoSpectrum: the engine's unified method matches the
// deprecated always-exact shims for exact requests and keeps the quality
// contract for the rest of the spectrum.
func TestEngineDoSpectrum(t *testing.T) {
	data := RandomWalk(2500, 64, 93)
	for _, shards := range []int{0, 4} {
		ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		eng := ix.NewEngine(&EngineOptions{PoolWorkers: 4})
		q := make([]float32, 64)
		copy(q, mustSeries(t, ix, 1234))

		res, err := eng.Do(context.Background(), SearchRequest{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		shim, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Best() != shim {
			t.Fatalf("shards=%d: Do %+v, Query shim %+v", shards, res, shim)
		}

		res, err = eng.Do(context.Background(), SearchRequest{Query: q, Mode: ModeEpsilon, Epsilon: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best().Position != 1234 || res.Best().Distance != 0 {
			t.Fatalf("shards=%d: ε self-query answered %+v", shards, res.Best())
		}

		res, err = eng.Do(context.Background(), SearchRequest{Query: q, Mode: ModeDeadline, Deadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Best() != shim {
			t.Fatalf("shards=%d: generous deadline %+v, exact %+v", shards, res.Best(), shim)
		}

		res, err = eng.Do(context.Background(), SearchRequest{Query: q, DTW: true, Window: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Best().Position != 1234 {
			t.Fatalf("shards=%d: DTW self-query %+v", shards, res.Best())
		}
		eng.Close()
	}
}

// TestDegradeEpsilonKeepsGuarantee: under a saturated admission gate with
// DegradeEpsilon set, every query still answers within the degraded
// (1+ε) guarantee — degraded or not — and with the policy off every
// answer stays exact.
func TestDegradeEpsilonKeepsGuarantee(t *testing.T) {
	data := RandomWalk(4000, 64, 97)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	queries := RandomWalk(16, 64, 9797)
	optimal := make([]float64, 16)
	for i := range optimal {
		optimal[i] = bruteKNN(t, data, 64, queries[i*64:(i+1)*64], 1)[0]
	}
	const eps = 0.5
	for _, degrade := range []float64{0, eps} {
		eng := ix.NewEngine(&EngineOptions{PoolWorkers: 2, MaxConcurrent: 1, DegradeEpsilon: degrade})
		results := make([]Result, 16)
		errs := make([]error, 16)
		done := make(chan int)
		for i := 0; i < 16; i++ {
			go func(i int) {
				results[i], errs[i] = eng.Do(context.Background(), SearchRequest{Query: queries[i*64 : (i+1)*64]})
				done <- i
			}(i)
		}
		for i := 0; i < 16; i++ {
			<-done
		}
		for i := 0; i < 16; i++ {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			d := results[i].Best().Distance
			if degrade == 0 && !results[i].Exact {
				t.Fatalf("degradation off: query %d inexact: %+v", i, results[i])
			}
			if d > (1+degrade)*optimal[i]+1e-6 {
				t.Fatalf("degrade=%v query %d: answer %v violates (1+ε)×%v", degrade, i, d, optimal[i])
			}
			if d < optimal[i]-1e-6 {
				t.Fatalf("degrade=%v query %d: answer %v better than optimal %v", degrade, i, d, optimal[i])
			}
		}
		eng.Close()
	}
}

// TestLiveDoSpectrum: the live index serves the spectrum over base+delta;
// series still in the delta are always answered exactly, whatever the
// mode.
func TestLiveDoSpectrum(t *testing.T) {
	lix, err := BuildLiveFlat(RandomWalk(1500, 64, 101), 64,
		&Options{LeafCapacity: 64, SearchWorkers: 4},
		&LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 4000 + float32(i)
	}
	pos, err := lix.Append(novel)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeExact, ModeApprox, ModeEpsilon, ModeDeadline} {
		res, err := lix.Do(context.Background(), SearchRequest{Query: novel, Mode: mode, Epsilon: 0.1, Deadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if res.Best().Position != pos || res.Best().Distance != 0 {
			t.Fatalf("mode %v: delta series answered %+v, want exact position %d", mode, res.Best(), pos)
		}
	}

	// An empty base (delta-only index): the exhaustive delta scan is the
	// whole answer, so even ModeApprox is exact.
	fresh, err := NewLive(64, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	only := RandomWalk(1, 64, 103)
	if _, err := fresh.Append(only); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.Do(context.Background(), SearchRequest{Query: only, Mode: ModeApprox})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Best().Distance != 0 {
		t.Fatalf("delta-only approx query: %+v, want exact self-match", res)
	}
}
