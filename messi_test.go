package messi

import (
	"math"
	"path/filepath"
	"testing"
)

// mustSeries fetches an indexed series, failing the test on range errors.
func mustSeries(t testing.TB, ix *Index, pos int) []float32 {
	t.Helper()
	s, err := ix.Series(pos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildAndSearch(t *testing.T) {
	data := RandomWalk(2000, 64, 1)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2000 || ix.SeriesLen() != 64 {
		t.Fatalf("shape: %d×%d", ix.Len(), ix.SeriesLen())
	}
	// Self-queries must return themselves at distance 0.
	for i := 0; i < 20; i++ {
		pos := i * 97 % 2000
		q := make([]float32, 64)
		copy(q, mustSeries(t, ix, pos))
		m, err := ix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if m.Distance != 0 {
			t.Fatalf("self query %d: distance %v", pos, m.Distance)
		}
	}
}

func TestBuildFromRows(t *testing.T) {
	rows := [][]float32{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
		{9, 9, 9, 9, 0, 0, 0, 0, 9, 9, 9, 9, 0, 0, 0, 0},
	}
	ix, err := Build(rows, &Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ix.Search(rows[2])
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 2 || m.Distance != 0 {
		t.Errorf("got %+v, want exact row 2", m)
	}
	// Build must copy: mutating the caller's rows does not affect results.
	rows[2][0] = 1000
	m2, err := ix.Search(mustSeries(t, ix, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Distance != 0 {
		t.Error("index storage aliased caller rows")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("nil rows accepted")
	}
	if _, err := BuildFlat(make([]float32, 10), 3, nil); err == nil {
		t.Error("non-multiple flat data accepted")
	}
	if _, err := BuildFlat(make([]float32, 100), 100, &Options{Cardinality: 100}); err == nil {
		t.Error("non-power-of-two cardinality accepted")
	}
	if _, err := BuildFlat(make([]float32, 100), 100, &Options{Segments: 16}); err == nil {
		t.Error("length 100 with 16 segments accepted")
	}
}

func TestCardinalityMapping(t *testing.T) {
	data := RandomWalk(200, 64, 2)
	for _, card := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		ix, err := BuildFlat(data, 64, &Options{Cardinality: card, LeafCapacity: 32})
		if err != nil {
			t.Fatalf("cardinality %d: %v", card, err)
		}
		q := make([]float32, 64)
		copy(q, mustSeries(t, ix, 7))
		m, err := ix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if m.Distance != 0 {
			t.Errorf("cardinality %d: self query distance %v", card, m.Distance)
		}
	}
}

func TestSearchReturnsTrueDistance(t *testing.T) {
	data := RandomWalk(500, 64, 3)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := RandomWalk(1, 64, 99)
	m, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the true distance directly.
	var sq float64
	best := mustSeries(t, ix, m.Position)
	for i := range q {
		d := float64(q[i] - best[i])
		sq += d * d
	}
	if math.Abs(m.Distance-math.Sqrt(sq)) > 1e-5 {
		t.Errorf("Distance %v, direct %v", m.Distance, math.Sqrt(sq))
	}
}

func TestSearchKNNOrdering(t *testing.T) {
	data := SeismicLike(1000, 64, 4)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := SeismicLike(1, 64, 105)
	ms, err := ix.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Distance < ms[i-1].Distance {
			t.Error("results not sorted")
		}
	}
	// First result must agree with 1-NN search.
	m1, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms[0].Distance-m1.Distance) > 1e-9 {
		t.Errorf("kNN[0] %v != 1NN %v", ms[0].Distance, m1.Distance)
	}
}

func TestSearchDTWWindow(t *testing.T) {
	data := RandomWalk(500, 64, 5)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	q := RandomWalk(1, 64, 106)
	ed, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	d10, err := ix.SearchDTW(q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// DTW under any window is never worse than the ED nearest neighbor.
	if d10.Distance > ed.Distance+1e-6 {
		t.Errorf("DTW %v exceeds ED %v", d10.Distance, ed.Distance)
	}
	// Out-of-range fractions are rejected — they used to be clamped
	// silently (window=-0.5 answered with err=nil), which hid caller bugs.
	if _, err := ix.SearchDTW(q, -0.5); err == nil {
		t.Error("negative window fraction accepted")
	}
}

func TestNormalizeOption(t *testing.T) {
	// Unnormalized data with wildly different scales: with Normalize the
	// index matches on shape, not magnitude.
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = make([]float32, 32)
		scale := float32(i + 1)
		for j := range rows[i] {
			rows[i][j] = scale * float32(j%7)
		}
	}
	ix, err := Build(rows, &Options{Normalize: true, LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	// A scaled copy of row 0's shape must match at distance ~0.
	q := make([]float32, 32)
	for j := range q {
		q[j] = 1000 * float32(j%7)
	}
	m, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance > 1e-4 {
		t.Errorf("normalized search distance %v, want ~0", m.Distance)
	}
}

func TestFileRoundTripThroughAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.bin")
	data := SALDLike(100, 128, 6)
	if err := WriteSeriesFile(path, data, 128); err != nil {
		t.Fatal(err)
	}
	got, length, err := ReadSeriesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if length != 128 || len(got) != len(data) {
		t.Fatalf("shape %d×%d", len(got)/length, length)
	}
	ix, err := BuildFromFile(path, &Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Errorf("Len = %d", ix.Len())
	}
	q := make([]float32, 128)
	copy(q, mustSeries(t, ix, 42))
	m, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance != 0 {
		t.Errorf("self query after file round trip: %v", m.Distance)
	}
}

func TestStats(t *testing.T) {
	data := RandomWalk(3000, 64, 7)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Series != 3000 {
		t.Errorf("Stats.Series = %d", s.Series)
	}
	if s.Leaves == 0 || s.RootChildren == 0 || s.MaxDepth == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
	if s.MaxLeafFill > 32 {
		t.Errorf("leaf overflow: %+v", s)
	}
}

func TestGeneratorsPanicOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero count")
		}
	}()
	RandomWalk(0, 64, 1)
}

func TestApproxSearchPublicAPI(t *testing.T) {
	data := RandomWalk(2000, 64, 11)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	q := RandomWalk(1, 64, 777)
	approx, err := ix.ApproxSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Distance < exact.Distance-1e-9 {
		t.Errorf("approximate %v below exact %v", approx.Distance, exact.Distance)
	}
	if _, err := ix.ApproxSearch(make([]float32, 3)); err == nil {
		t.Error("wrong-length approx query accepted")
	}
}

func TestSlidingWindowsPublicAPI(t *testing.T) {
	stream := RandomWalk(1, 1024, 12)
	flat, err := SlidingWindows(stream, 256, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat)%256 != 0 {
		t.Fatalf("flat length %d not a multiple of the window", len(flat))
	}
	if _, err := SlidingWindows(stream, 0, 1, false); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := SlidingWindows(stream[:10], 256, 1, false); err == nil {
		t.Error("short stream accepted")
	}
}

func TestReadSeriesFileErrors(t *testing.T) {
	if _, _, err := ReadSeriesFile("/nonexistent/path.bin"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteSeriesFileErrors(t *testing.T) {
	if err := WriteSeriesFile("/tmp/x.bin", make([]float32, 10), 3); err == nil {
		t.Error("non-multiple data accepted")
	}
}

func TestBuildFromFileMissing(t *testing.T) {
	if _, err := BuildFromFile("/nonexistent/path.bin", nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOptionsNilEqualsDefaults(t *testing.T) {
	data := RandomWalk(300, 64, 13)
	a, err := BuildFlat(data, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFlat(data, 64, &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("nil options %+v != zero options %+v", a.Stats(), b.Stats())
	}
}

func TestSeriesAccessor(t *testing.T) {
	rows := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	ix, err := Build(rows, &Options{Segments: 4, LeafCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSeries(t, ix, 1); got[0] != 5 || got[3] != 8 {
		t.Errorf("Series(1) = %v", got)
	}
	// Out-of-range positions are reported, not panics or silent nils.
	for _, pos := range []int{-1, len(rows), len(rows) + 10} {
		if _, err := ix.Series(pos); err == nil {
			t.Errorf("Series(%d) did not error", pos)
		}
	}
}
