package messi

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/engine"
)

// EngineOptions configures a persistent query Engine. Zero fields inherit
// from the index options.
type EngineOptions struct {
	// PoolWorkers is the number of long-lived worker goroutines shared by
	// all queries. Default: the index's SearchWorkers.
	PoolWorkers int
	// QueryWorkers is the per-query parallelism: how many pool work units
	// each query dispatches per phase. Default: PoolWorkers.
	QueryWorkers int
	// Queues is the number of priority queues per query. Default: the
	// index's QueueCount.
	Queues int
	// MaxConcurrent bounds how many queries execute concurrently; further
	// queries wait for admission. Default: PoolWorkers/QueryWorkers
	// (at least 1).
	MaxConcurrent int
	// DegradeEpsilon, when positive, is the overload policy of the
	// admission gate: an exact-mode Do request arriving while
	// MaxConcurrent queries are already executing is served as an
	// ε-bounded query with this ε instead of stacking queueing latency
	// on top of exact-search latency. Requests that chose their mode
	// explicitly are never rewritten, and the Result reports the bound
	// actually proven. Zero (the default) never degrades; the deprecated
	// always-exact Query methods are unaffected either way.
	DegradeEpsilon float64
	// Metrics, when non-nil, receives the engine's serving telemetry:
	// admission-gate pressure (queue depth, wait time, admitted/degraded/
	// deadline-expired/cancelled counts), per-mode latency histograms,
	// answer exactness outcomes, and cumulative pruning counters. Nil
	// (the default) disables all measurement.
	Metrics *Metrics
}

// toInternal converts the public options to the engine package's.
func (o *EngineOptions) toInternal() engine.Options {
	if o == nil {
		return engine.Options{}
	}
	return engine.Options{
		PoolWorkers:    o.PoolWorkers,
		QueryWorkers:   o.QueryWorkers,
		Queues:         o.Queues,
		MaxConcurrent:  o.MaxConcurrent,
		DegradeEpsilon: o.DegradeEpsilon,
		Metrics:        o.Metrics,
	}
}

// Engine is a persistent query engine over one Index: a long-lived worker
// pool that amortizes goroutine spawns and per-query allocations across
// queries, and runs many independent queries concurrently through the
// shared pool. Results are identical to the Index's one-shot Search
// functions. An Engine is safe for concurrent use; Close it when done.
//
//	eng := ix.NewEngine(nil)
//	defer eng.Close()
//	m, err := eng.Query(q)
type Engine struct {
	ix    *Index
	inner *engine.Engine
}

// NewEngine starts a persistent query engine over the index. opts may be
// nil for the defaults.
func (ix *Index) NewEngine(opts *EngineOptions) *Engine {
	return &Engine{ix: ix, inner: engine.NewSharded(ix.inner, opts.toInternal())}
}

// Options returns the engine's effective (defaulted) options — the
// admission-gate configuration actually in force.
func (e *Engine) Options() EngineOptions {
	o := e.inner.Options()
	return EngineOptions{
		PoolWorkers:    o.PoolWorkers,
		QueryWorkers:   o.QueryWorkers,
		Queues:         o.Queues,
		MaxConcurrent:  o.MaxConcurrent,
		DegradeEpsilon: o.DegradeEpsilon,
		Metrics:        o.Metrics,
	}
}

// Query answers an exact 1-NN query under Euclidean distance on the
// shared pool. It blocks until the query is admitted and answered, and is
// never subject to DegradeEpsilon.
//
// Deprecated: use Do with a SearchRequest (the zero Mode is exact 1-NN).
func (e *Engine) Query(query []float32) (Match, error) {
	m, err := e.inner.Search(e.ix.prepareQuery(query))
	if err != nil {
		return Match{}, err
	}
	return Match{Position: m.Position, Distance: math.Sqrt(m.Dist)}, nil
}

// QueryKNN answers an exact k-NN query, returning up to k matches in
// ascending distance order.
//
// Deprecated: use Do with K set.
func (e *Engine) QueryKNN(query []float32, k int) ([]Match, error) {
	ms, err := e.inner.SearchKNN(e.ix.prepareQuery(query), k)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Position: m.Position, Distance: math.Sqrt(m.Dist)}
	}
	return out, nil
}

// QueryDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba warping window given as a fraction of the series length in
// [0,1]. DTW spawns its own per-query workers, but the call still passes
// through the engine's admission gate, so concurrent DTW traffic is
// bounded like every other query.
//
// Deprecated: use Do with DTW: true and Window set.
func (e *Engine) QueryDTW(query []float32, window float64) (Match, error) {
	if err := checkWindowFraction(window); err != nil {
		return Match{}, err
	}
	r := dtw.WindowSize(e.ix.SeriesLen(), window)
	m, err := e.inner.SearchDTW(e.ix.prepareQuery(query), r, nil)
	if err != nil {
		return Match{}, err
	}
	return Match{Position: m.Position, Distance: math.Sqrt(m.Dist)}, nil
}

// QueryBatch answers many independent 1-NN queries concurrently through
// the pool; result i answers queries[i]. On error the returned slice is
// still full-length (failed entries are zero).
func (e *Engine) QueryBatch(queries [][]float32) ([]Match, error) {
	prepared := queries
	if e.ix.normalize {
		prepared = make([][]float32, len(queries))
		for i, q := range queries {
			prepared[i] = e.ix.prepareQuery(q)
		}
	}
	ms, batchErr := e.inner.SearchBatch(prepared)
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{Position: m.Position, Distance: math.Sqrt(m.Dist)}
	}
	return out, batchErr
}

// Index returns the index this engine serves.
func (e *Engine) Index() *Index { return e.ix }

// Close waits for in-flight queries, then stops the worker pool. Queries
// submitted after Close fail. Close is idempotent.
func (e *Engine) Close() { e.inner.Close() }
