package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// tiny keeps test runs fast: a small collection still exercises every tier
// and mode.
var tiny = []string{"-series", "400", "-length", "32", "-queries", "4", "-k", "3"}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out bytes.Buffer
	code, err := run(args, &out, io.Discard)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String(), code
}

// TestDeterministicBytes pins the headline acceptance criterion: two runs
// with the same seed produce byte-identical reports (and therefore
// byte-identical query-set digests).
func TestDeterministicBytes(t *testing.T) {
	args := append([]string{"-seed", "42"}, tiny...)
	a, codeA := runCLI(t, args...)
	b, codeB := runCLI(t, args...)
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exit codes %d, %d", codeA, codeB)
	}
	if a != b {
		t.Fatal("same seed produced different report bytes")
	}
	c, _ := runCLI(t, append([]string{"-seed", "7"}, tiny...)...)
	if a == c {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestReportShape(t *testing.T) {
	out, code := runCLI(t, append([]string{"-seed", "1"}, tiny...)...)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	rep, err := workload.ReadReport(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 1 || rep.Series != 400 || rep.Length != 32 || rep.K != 3 {
		t.Errorf("report header %+v does not echo the flags", rep)
	}
	if len(rep.Tiers) != len(workload.Tiers()) {
		t.Fatalf("%d tiers, want %d", len(rep.Tiers), len(workload.Tiers()))
	}
	for _, tr := range rep.Tiers {
		if len(tr.Modes) != 4 {
			t.Errorf("tier %s: %d modes, want 4", tr.Tier, len(tr.Modes))
		}
		if len(tr.QueriesSHA256) != 64 {
			t.Errorf("tier %s: bad digest %q", tr.Tier, tr.QueriesSHA256)
		}
		for _, mr := range tr.Modes {
			if mr.Mode == "exact" && mr.RecallAtK != 1 {
				t.Errorf("tier %s exact recall = %v, want 1", tr.Tier, mr.RecallAtK)
			}
			if mr.Latency != nil {
				t.Errorf("tier %s mode %s: latency present without -measure-latency", tr.Tier, mr.Mode)
			}
		}
	}
}

func TestModeSubsetAndLatency(t *testing.T) {
	args := append([]string{"-mode", "exact,epsilon", "-measure-latency"}, tiny...)
	out, _ := runCLI(t, args...)
	rep, err := workload.ReadReport(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tiers {
		if len(tr.Modes) != 2 {
			t.Fatalf("tier %s: %d modes, want 2", tr.Tier, len(tr.Modes))
		}
		for _, mr := range tr.Modes {
			if mr.Latency == nil {
				t.Errorf("tier %s mode %s: no latency with -measure-latency", tr.Tier, mr.Mode)
			}
		}
	}
}

func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	stdout, code := runCLI(t, append([]string{"-out", path}, tiny...)...)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if stdout != "" {
		t.Errorf("stdout not empty with -out: %q", stdout)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := workload.ReadReport(f); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-mode", "warp"},
		{"-mode", "exact,exact"},
		{"-mode", ","},
		{"positional"},
		{"-series", "0"},
	}
	for _, args := range cases {
		if _, err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) did not error", args)
		}
	}
}
