// Command messi-workload is the hardness-aware workload harness: it
// generates seeded query tiers of increasing difficulty (member, near-dup,
// noise, ood, adversarial), runs each tier through the unified Do API
// across the quality modes, scores the answers against a brute-force
// ground-truth scan, and emits a JSON report of per-tier recall@k, pruning
// ratios, and (optionally) latency percentiles.
//
// The defaults are fully deterministic: the index builds and queries
// single-worker, latency measurement is off, and every random choice flows
// from -seed. Two runs with the same flags produce byte-identical query
// sets and reports — the property cmd/benchdiff's workload gate relies on.
//
// Usage:
//
//	messi-workload -seed 42 -out workload.json
//	messi-workload -series 50000 -kind seismic -queries 50 -measure-latency
//	messi-workload -mode exact,epsilon -epsilon 0.1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	messi "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-workload:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the harness; factored out of main so tests can drive the
// exact CLI surface, byte-compare reports, and inspect errors.
func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("messi-workload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed       = fs.Int64("seed", 42, "master seed for data and query generation")
		nSeries    = fs.Int("series", 5000, "collection size (number of series)")
		length     = fs.Int("length", 128, "series length in points")
		kind       = fs.String("kind", "random", "dataset family: random, seismic, or sald")
		queries    = fs.Int("queries", 20, "queries per hardness tier")
		k          = fs.Int("k", 10, "neighbors per query scored by recall@k")
		leaf       = fs.Int("leaf", 0, "leaf capacity (0 = series/200 clamped to [16, 2000])")
		shards     = fs.Int("shards", 1, "index shard count")
		epsilon    = fs.Float64("epsilon", 0.05, "relative-error budget for the epsilon-mode row")
		deadline   = fs.Duration("deadline", time.Second, "per-query budget for the deadline-mode row")
		noiseSNR   = fs.Float64("snr", 10, "signal-to-noise ratio (dB) of the noise tier")
		nearDupSNR = fs.Float64("neardup-snr", 40, "signal-to-noise ratio (dB) of the near-dup tier")
		modes      = fs.String("mode", "exact,approx,epsilon,deadline", "comma-separated quality modes to run")
		latency    = fs.Bool("measure-latency", false, "add latency percentiles (makes reports run-dependent)")
		parallel   = fs.Bool("parallel", false, "build and query with default worker counts (counters become run-dependent)")
		out        = fs.String("out", "", "report output path (default stdout)")
		verbose    = fs.Bool("v", false, "log progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() > 0 {
		return 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	modeList, err := parseModes(*modes)
	if err != nil {
		return 0, err
	}
	dsKind := dataset.Kind(*kind)
	switch dsKind {
	case dataset.RandomWalk, dataset.SeismicLike, dataset.SALDLike:
	default:
		return 0, fmt.Errorf("unknown -kind %q (want random, seismic, or sald)", *kind)
	}

	progress := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	progress("generating %d %s series of length %d (seed %d)", *nSeries, dsKind, *length, *seed)
	data, err := dataset.Generate(dsKind, *nSeries, *length, *seed)
	if err != nil {
		return 0, err
	}

	opts := &messi.Options{
		LeafCapacity: *leaf,
		Shards:       *shards,
	}
	if *leaf <= 0 {
		opts.LeafCapacity = clamp(*nSeries/200, 16, 2000)
	}
	if !*parallel {
		// Single-worker build and query makes operation counters — and
		// therefore pruning ratios and the whole report — reproducible.
		opts.IndexWorkers = 1
		opts.SearchWorkers = 1
		opts.QueueCount = 1
	}
	progress("building index (leaf %d, shards %d, parallel %v)", opts.LeafCapacity, opts.Shards, *parallel)
	ix, err := messi.BuildFlat(data.Data, data.Length, opts)
	if err != nil {
		return 0, err
	}

	genOpts := &workload.GenOptions{NoiseSNR: *noiseSNR, NearDupSNR: *nearDupSNR}
	sets, err := workload.GenerateAll(data, *queries, *seed, genOpts)
	if err != nil {
		return 0, err
	}
	for _, set := range sets {
		progress("tier %-12s %d queries sha256=%s", set.Tier, set.Queries.Count(), set.SHA256()[:12])
	}

	cfg := workload.Config{
		K:              *k,
		Epsilon:        *epsilon,
		Deadline:       *deadline,
		Modes:          modeList,
		MeasureLatency: *latency,
	}
	progress("running %d tiers × %d modes", len(sets), len(modeList))
	rep, err := workload.Run(ix, data, sets, cfg)
	if err != nil {
		return 0, err
	}
	rep.Seed = *seed

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return 0, err
	}
	if *out != "" {
		progress("report written to %s", *out)
	}
	return 0, nil
}

// parseModes splits a comma-separated mode list into messi.Mode values,
// rejecting duplicates so a report never carries two rows for one mode.
func parseModes(s string) ([]messi.Mode, error) {
	var out []messi.Mode
	seen := map[messi.Mode]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, err := messi.ParseMode(part)
		if err != nil {
			return nil, err
		}
		if seen[m] {
			return nil, fmt.Errorf("duplicate mode %q", m)
		}
		seen[m] = true
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, errors.New("-mode selects no modes")
	}
	return out, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
