package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	messi "repro"
)

// writeQueryFixture writes a tiny dataset and a query file whose first
// query is an exact copy of series 42, so the round trip has a known
// answer.
func writeQueryFixture(t *testing.T, dir string) (dataPath, queryPath string) {
	t.Helper()
	data := messi.RandomWalk(500, 64, 21)
	dataPath = filepath.Join(dir, "data.bin")
	if err := messi.WriteSeriesFile(dataPath, data, 64); err != nil {
		t.Fatal(err)
	}
	queries := messi.RandomWalk(3, 64, 2121)
	copy(queries[0:64], data[42*64:43*64])
	queryPath = filepath.Join(dir, "queries.bin")
	if err := messi.WriteSeriesFile(queryPath, queries, 64); err != nil {
		t.Fatal(err)
	}
	return dataPath, queryPath
}

func TestRunEuclidean(t *testing.T) {
	dataPath, queryPath := writeQueryFixture(t, t.TempDir())
	var buf strings.Builder
	err := run([]string{"-data", dataPath, "-queries", queryPath, "-leaf", "64"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "indexed 500 series × 64 points") {
		t.Fatalf("missing build line in output:\n%s", out)
	}
	// Query 0 is an exact copy of series 42.
	if !regexp.MustCompile(`query\s+0: 1-NN pos=42 dist=0\.0000`).MatchString(out) {
		t.Fatalf("self query did not report pos=42 dist=0:\n%s", out)
	}
	if !strings.Contains(out, "answered 3 queries") {
		t.Fatalf("missing summary line in output:\n%s", out)
	}
}

func TestRunKNNAndDTW(t *testing.T) {
	dataPath, queryPath := writeQueryFixture(t, t.TempDir())
	var buf strings.Builder
	if err := run([]string{"-data", dataPath, "-queries", queryPath, "-leaf", "64", "-k", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`query\s+0: 3-NN best pos=42 dist=0\.0000`).MatchString(buf.String()) {
		t.Fatalf("3-NN self query did not report pos=42:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-data", dataPath, "-queries", queryPath, "-leaf", "64", "-dtw", "0.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`query\s+0: DTW 1-NN pos=42 dist=0\.0000`).MatchString(buf.String()) {
		t.Fatalf("DTW self query did not report pos=42:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing flags did not error")
	}
	dir := t.TempDir()
	dataPath, _ := writeQueryFixture(t, dir)
	short := messi.RandomWalk(2, 32, 1)
	shortPath := filepath.Join(dir, "short.bin")
	if err := messi.WriteSeriesFile(shortPath, short, 32); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dataPath, "-queries", shortPath}, &buf); err == nil {
		t.Error("mismatched query length did not error")
	}
}

// TestGenQueryRoundTripE2E is the real end-to-end path: build the
// messi-gen and messi-query binaries, generate a tiny dataset plus
// queries with one, answer them with the other.
func TestGenQueryRoundTripE2E(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available:", err)
	}
	moduleRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	genBin := filepath.Join(dir, "messi-gen")
	queryBin := filepath.Join(dir, "messi-query")

	for bin, pkg := range map[string]string{genBin: "repro/cmd/messi-gen", queryBin: "repro/cmd/messi-query"} {
		cmd := exec.Command(goBin, "build", "-o", bin, pkg)
		cmd.Dir = moduleRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	dataPath := filepath.Join(dir, "data.bin")
	queryPath := filepath.Join(dir, "queries.bin")
	runCmd := func(bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	genOut := runCmd(genBin, "-kind", "random", "-count", "400", "-length", "64", "-out", dataPath)
	if !strings.Contains(genOut, "wrote 400 series × 64 points") {
		t.Fatalf("unexpected messi-gen output: %q", genOut)
	}
	runCmd(genBin, "-kind", "random", "-count", "4", "-length", "64", "-seed", "999", "-out", queryPath)

	queryOut := runCmd(queryBin, "-data", dataPath, "-queries", queryPath, "-leaf", "64")
	if !strings.Contains(queryOut, "indexed 400 series × 64 points") {
		t.Fatalf("messi-query did not index the generated file:\n%s", queryOut)
	}
	matches := regexp.MustCompile(`query\s+\d+: 1-NN pos=\d+ dist=\d`).FindAllString(queryOut, -1)
	if len(matches) != 4 {
		t.Fatalf("expected 4 answered queries, found %d:\n%s", len(matches), queryOut)
	}
	if !strings.Contains(queryOut, "answered 4 queries") {
		t.Fatalf("missing summary:\n%s", queryOut)
	}
	if _, err := os.Stat(dataPath); err != nil {
		t.Fatal(err)
	}
}
