// Command messi-query builds a MESSI index over a dataset file and answers
// similarity queries, reporting per-query latency — the paper's
// exploratory-analysis scenario from the command line.
//
// Usage:
//
//	messi-gen -kind random -count 100000 -out data.bin
//	messi-gen -kind random -count 100 -seed 999 -out queries.bin
//	messi-query -data data.bin -queries queries.bin
//	messi-query -data data.bin -queries queries.bin -k 5
//	messi-query -data data.bin -queries queries.bin -dtw 0.1
//	messi-query -data data.bin -queries queries.bin -mode epsilon -epsilon 0.05
//	messi-query -data data.bin -queries queries.bin -mode deadline -deadline 2ms
//
// The -mode flag selects the quality-of-service level (exact, approx,
// epsilon, deadline); inexact answers are annotated with the quality
// actually proven.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	messi "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-query:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("messi-query", flag.ContinueOnError)
	var (
		dataPath  = fs.String("data", "", "dataset file to index (required)")
		queryPath = fs.String("queries", "", "query file (required)")
		k         = fs.Int("k", 1, "neighbors per query")
		dtwWin    = fs.Float64("dtw", -1, "DTW warping window fraction in [0,1] (e.g. 0.1); <0 = Euclidean")
		leafCap   = fs.Int("leaf", 0, "leaf capacity (default 2000)")
		workers   = fs.Int("workers", 0, "search workers (default 48)")
		queues    = fs.Int("queues", 0, "priority queues (default 24)")
		modeFlag  = fs.String("mode", "", "quality mode: exact (default), approx, epsilon, deadline")
		epsilon   = fs.Float64("epsilon", 0, "relative error budget for -mode epsilon (0.05 = within 5% of optimal)")
		deadline  = fs.Duration("deadline", 0, "per-query latency budget for -mode deadline (e.g. 2ms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *queryPath == "" {
		return errors.New("-data and -queries are required")
	}
	mode, err := messi.ParseMode(*modeFlag)
	if err != nil {
		return err
	}

	opts := &messi.Options{
		LeafCapacity:  *leafCap,
		SearchWorkers: *workers,
		QueueCount:    *queues,
	}
	buildStart := time.Now()
	ix, err := messi.BuildFromFile(*dataPath, opts)
	if err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Fprintf(stdout, "indexed %d series × %d points in %v (%d root subtrees, %d leaves, depth %d)\n",
		ix.Len(), ix.SeriesLen(), time.Since(buildStart).Round(time.Millisecond),
		st.RootChildren, st.Leaves, st.MaxDepth)

	qdata, qlen, err := messi.ReadSeriesFile(*queryPath)
	if err != nil {
		return err
	}
	if qlen != ix.SeriesLen() {
		return fmt.Errorf("query length %d does not match indexed length %d", qlen, ix.SeriesLen())
	}
	nq := len(qdata) / qlen

	var total time.Duration
	for qi := 0; qi < nq; qi++ {
		q := qdata[qi*qlen : (qi+1)*qlen]
		req := messi.SearchRequest{
			Query:    q,
			Mode:     mode,
			Epsilon:  *epsilon,
			Deadline: *deadline,
		}
		switch {
		case *dtwWin >= 0:
			// DTW takes precedence over -k (k-NN under DTW is unsupported).
			req.DTW, req.Window = true, *dtwWin
		case *k > 1:
			req.K = *k
		}
		start := time.Now()
		res, err := ix.Do(context.Background(), req)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		total += elapsed
		if len(res.Matches) == 0 {
			fmt.Fprintf(stdout, "query %3d: no answer within budget (%v)\n", qi, elapsed.Round(time.Microsecond))
			continue
		}
		best := res.Best()
		switch {
		case req.DTW:
			fmt.Fprintf(stdout, "query %3d: DTW 1-NN pos=%d dist=%.4f%s (%v)\n",
				qi, best.Position, best.Distance, qualityNote(res), elapsed.Round(time.Microsecond))
		case req.K > 1:
			worst := res.Matches[len(res.Matches)-1]
			fmt.Fprintf(stdout, "query %3d: %d-NN best pos=%d dist=%.4f worst dist=%.4f%s (%v)\n",
				qi, req.K, best.Position, best.Distance, worst.Distance, qualityNote(res), elapsed.Round(time.Microsecond))
		default:
			fmt.Fprintf(stdout, "query %3d: 1-NN pos=%d dist=%.4f%s (%v)\n",
				qi, best.Position, best.Distance, qualityNote(res), elapsed.Round(time.Microsecond))
		}
	}
	if nq > 0 {
		fmt.Fprintf(stdout, "answered %d queries, avg %v/query\n", nq, (total / time.Duration(nq)).Round(time.Microsecond))
	}
	return nil
}

// qualityNote annotates inexact answers with the quality actually proven;
// exact answers (the default mode) stay unannotated.
func qualityNote(res messi.Result) string {
	if res.Exact {
		return ""
	}
	if math.IsInf(res.EpsilonBound, 1) {
		return " [approx]"
	}
	return fmt.Sprintf(" [within %.3g of optimal]", 1+res.EpsilonBound)
}
