// Command messi-query builds a MESSI index over a dataset file and answers
// similarity queries, reporting per-query latency — the paper's
// exploratory-analysis scenario from the command line.
//
// Usage:
//
//	messi-gen -kind random -count 100000 -out data.bin
//	messi-gen -kind random -count 100 -seed 999 -out queries.bin
//	messi-query -data data.bin -queries queries.bin
//	messi-query -data data.bin -queries queries.bin -k 5
//	messi-query -data data.bin -queries queries.bin -dtw 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	messi "repro"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file to index (required)")
		queryPath = flag.String("queries", "", "query file (required)")
		k         = flag.Int("k", 1, "neighbors per query")
		dtwWin    = flag.Float64("dtw", -1, "DTW warping window fraction (e.g. 0.1); <0 = Euclidean")
		leafCap   = flag.Int("leaf", 0, "leaf capacity (default 2000)")
		workers   = flag.Int("workers", 0, "search workers (default 48)")
		queues    = flag.Int("queues", 0, "priority queues (default 24)")
	)
	flag.Parse()
	if *dataPath == "" || *queryPath == "" {
		fatal(fmt.Errorf("-data and -queries are required"))
	}

	opts := &messi.Options{
		LeafCapacity:  *leafCap,
		SearchWorkers: *workers,
		QueueCount:    *queues,
	}
	buildStart := time.Now()
	ix, err := messi.BuildFromFile(*dataPath, opts)
	if err != nil {
		fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed %d series × %d points in %v (%d root subtrees, %d leaves, depth %d)\n",
		ix.Len(), ix.SeriesLen(), time.Since(buildStart).Round(time.Millisecond),
		st.RootChildren, st.Leaves, st.MaxDepth)

	qdata, qlen, err := messi.ReadSeriesFile(*queryPath)
	if err != nil {
		fatal(err)
	}
	if qlen != ix.SeriesLen() {
		fatal(fmt.Errorf("query length %d does not match indexed length %d", qlen, ix.SeriesLen()))
	}
	nq := len(qdata) / qlen

	var total time.Duration
	for qi := 0; qi < nq; qi++ {
		q := qdata[qi*qlen : (qi+1)*qlen]
		start := time.Now()
		switch {
		case *dtwWin >= 0:
			m, err := ix.SearchDTW(q, *dtwWin)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			total += elapsed
			fmt.Printf("query %3d: DTW 1-NN pos=%d dist=%.4f (%v)\n", qi, m.Position, m.Distance, elapsed.Round(time.Microsecond))
		case *k > 1:
			ms, err := ix.SearchKNN(q, *k)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			total += elapsed
			fmt.Printf("query %3d: %d-NN best pos=%d dist=%.4f worst dist=%.4f (%v)\n",
				qi, *k, ms[0].Position, ms[0].Distance, ms[len(ms)-1].Distance, elapsed.Round(time.Microsecond))
		default:
			m, err := ix.Search(q)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			total += elapsed
			fmt.Printf("query %3d: 1-NN pos=%d dist=%.4f (%v)\n", qi, m.Position, m.Distance, elapsed.Round(time.Microsecond))
		}
	}
	fmt.Printf("answered %d queries, avg %v/query\n", nq, (total / time.Duration(nq)).Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "messi-query:", err)
	os.Exit(1)
}
