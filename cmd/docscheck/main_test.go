package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates path under dir, making parent directories as needed.
func write(t *testing.T, dir, path, content string) string {
	t.Helper()
	full := filepath.Join(dir, path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return full
}

// inDir chdirs into dir for the duration of the test so relative links
// resolve the way they do in CI (run from the repo root).
func inDir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func runCheck(t *testing.T, files ...string) (int, string) {
	t.Helper()
	var sb strings.Builder
	code, err := run(files, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return code, sb.String()
}

func TestCleanDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Target Heading\n\ntext\n")
	write(t, dir, "doc.md", strings.Join([]string{
		"# My Doc",
		"",
		"See [other](other.md) and [its heading](other.md#target-heading).",
		"Same-file: [here](#my-doc).",
		"External: [gh](https://example.com/x) and [mail](mailto:a@b.c).",
		"",
		"```go",
		"x := 1",
		"_ = x",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 0 {
		t.Fatalf("want clean, got exit %d:\n%s", code, out)
	}
}

func TestBrokenLinkAndAnchor(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Real Heading\n")
	write(t, dir, "doc.md", strings.Join([]string{
		"[gone](missing.md)",
		"[bad anchor](other.md#no-such-heading)",
		"[bad self](#nope)",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 {
		t.Fatalf("want exit 1, got %d:\n%s", code, out)
	}
	for _, want := range []string{"missing.md does not exist", "#no-such-heading", "#nope"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRepoEscapingLinkSkipped(t *testing.T) {
	dir := t.TempDir()
	// Mimics the CI badge: a GitHub web path that climbs out of the repo.
	write(t, dir, "doc.md", "[badge](../../actions/workflows/ci.yml)\n")
	inDir(t, dir)
	if code, out := runCheck(t, "doc.md"); code != 0 {
		t.Fatalf("repo-escaping link should be skipped, got exit %d:\n%s", code, out)
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", strings.Join([]string{
		"# Setup",
		"## Setup",
		"[first](#setup) [second](#setup-1) [third](#setup-2)",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 {
		t.Fatalf("want exit 1 (no #setup-2), got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "#setup-2") || strings.Contains(out, "#setup-1") {
		t.Errorf("only #setup-2 should fail:\n%s", out)
	}
}

func TestLinksInsideFencesIgnored(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", strings.Join([]string{
		"```",
		"[not a link](missing.md)",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	if code, out := runCheck(t, "doc.md"); code != 0 {
		t.Fatalf("fenced pseudo-link should be ignored, got exit %d:\n%s", code, out)
	}
}

func TestBadGoBlock(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", strings.Join([]string{
		"```go",
		"func { nope",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 || !strings.Contains(out, "go block parses neither") {
		t.Fatalf("want parse failure, got exit %d:\n%s", code, out)
	}
}

func TestFullFileGoBlockMustBeGofmtClean(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", strings.Join([]string{
		"```go",
		"package main",
		"func main(){println(1)}",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 || !strings.Contains(out, "not gofmt-clean") {
		t.Fatalf("want gofmt failure, got exit %d:\n%s", code, out)
	}
}

func TestFileMarkerMatch(t *testing.T) {
	dir := t.TempDir()
	const prog = "package main\n\nfunc main() {\n\tprintln(1)\n}\n"
	write(t, dir, "examples/x/main.go", prog)
	write(t, dir, "doc.md", strings.Join([]string{
		"<!-- docscheck:file examples/x/main.go -->",
		"```go",
		strings.TrimSuffix(prog, "\n"),
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	if code, out := runCheck(t, "doc.md"); code != 0 {
		t.Fatalf("matching marker should pass, got exit %d:\n%s", code, out)
	}
}

func TestFileMarkerDrift(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "examples/x/main.go", "package main\n\nfunc main() {\n\tprintln(2)\n}\n")
	write(t, dir, "doc.md", strings.Join([]string{
		"<!-- docscheck:file examples/x/main.go -->",
		"```go",
		"package main",
		"",
		"func main() {",
		"\tprintln(1)",
		"}",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 || !strings.Contains(out, "differs from examples/x/main.go") {
		t.Fatalf("want drift failure, got exit %d:\n%s", code, out)
	}
}

func TestFileMarkerMissingTarget(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.md", strings.Join([]string{
		"<!-- docscheck:file nope/main.go -->",
		"```go",
		"package main",
		"```",
		"",
	}, "\n"))
	inDir(t, dir)
	code, out := runCheck(t, "doc.md")
	if code != 1 || !strings.Contains(out, "docscheck:file nope/main.go") {
		t.Fatalf("want missing-target failure, got exit %d:\n%s", code, out)
	}
}

func TestNoArgsErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run(nil, &sb); err == nil {
		t.Fatal("want error on no files")
	}
}

// TestRepoDocsAreClean runs the checker over the repository's real docs —
// the same invocation CI uses — so a broken link or drifted cookbook
// block fails `go test ./...` locally, not just in the docs job.
func TestRepoDocsAreClean(t *testing.T) {
	inDir(t, "../..")
	code, out := runCheck(t, "README.md", "docs/ARCHITECTURE.md", "docs/COOKBOOK.md")
	if code != 0 {
		t.Fatalf("repo docs have problems:\n%s", out)
	}
}
