// Command docscheck is the CI documentation gate. Over a set of markdown
// files it verifies:
//
//   - every relative link resolves to an existing file, and every anchor
//     (same-file or cross-file) matches a heading in its target, using
//     GitHub's heading-slug rules;
//   - every ```go code block parses — full files as files, fragments
//     wrapped in a synthetic package/function — and full-file blocks are
//     gofmt-clean;
//   - every block annotated `<!-- docscheck:file <path> -->` is
//     byte-identical to that file, so a cookbook's embedded program can
//     never drift from the runnable example it documents.
//
// External URLs are not fetched (CI must not flake on the network), and
// relative links that escape the repository root (GitHub web paths like
// badge targets) are skipped as unverifiable.
//
// Usage:
//
//	docscheck README.md docs/*.md
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run checks every named markdown file, printing one line per problem.
// Exit code 0 means clean, 1 means findings.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("docscheck", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	files := fs.Args()
	if len(files) == 0 {
		return 0, errors.New("no markdown files given")
	}
	root, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	problems := 0
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		for _, p := range checkFile(root, path, string(b)) {
			fmt.Fprintf(stdout, "%s: %s\n", path, p)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(stdout, "\n%d problem(s)\n", problems)
		return 1, nil
	}
	fmt.Fprintf(stdout, "docs clean: %d file(s)\n", len(files))
	return 0, nil
}

// checkFile returns every problem found in one markdown document.
func checkFile(root, path, content string) []string {
	var problems []string
	lines := strings.Split(content, "\n")

	problems = append(problems, checkLinks(root, path, lines)...)
	problems = append(problems, checkCodeBlocks(root, path, lines)...)
	return problems
}

var (
	linkRe   = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	markerRe = regexp.MustCompile(`<!-- docscheck:file ([^ ]+) -->`)
	fenceRe  = regexp.MustCompile("^```([a-zA-Z0-9]*)")
)

// checkLinks verifies relative link targets and heading anchors.
func checkLinks(root, path string, lines []string) []string {
	var problems []string
	inFence := false
	for i, line := range lines {
		if fenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; never fetched
			}
			file, anchor, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				abs, err := filepath.Abs(resolved)
				if err != nil || !strings.HasPrefix(abs+string(filepath.Separator), root+string(filepath.Separator)) {
					continue // escapes the repo (GitHub web path); unverifiable
				}
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("line %d: broken link %q: %s does not exist", i+1, target, resolved))
					continue
				}
			}
			if anchor == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // anchors only checkable in markdown
			}
			b, err := os.ReadFile(resolved)
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: cannot read %s for anchor check: %v", i+1, resolved, err))
				continue
			}
			if !hasAnchor(string(b), anchor) {
				problems = append(problems, fmt.Sprintf("line %d: link %q: no heading in %s slugs to #%s", i+1, target, resolved, anchor))
			}
		}
	}
	return problems
}

// hasAnchor reports whether any heading in the document slugs to anchor.
func hasAnchor(content, anchor string) bool {
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if fenceRe.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(heading, " ") {
			continue
		}
		slug := slugify(strings.TrimSpace(heading))
		// GitHub disambiguates duplicate headings with -1, -2, …
		if n := seen[slug]; n > 0 {
			seen[slug]++
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			seen[slug] = 1
		}
		if slug == anchor {
			return true
		}
	}
	return false
}

// slugify applies GitHub's heading-anchor rules: lowercase, spaces to
// hyphens, punctuation dropped (hyphens and underscores kept).
func slugify(heading string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// checkCodeBlocks validates ```go fences and docscheck:file markers.
func checkCodeBlocks(root, path string, lines []string) []string {
	var problems []string
	pendingFile := "" // set by a docscheck:file marker awaiting its block
	pendingLine := 0
	for i := 0; i < len(lines); i++ {
		if m := markerRe.FindStringSubmatch(lines[i]); m != nil {
			pendingFile, pendingLine = m[1], i+1
			continue
		}
		fence := fenceRe.FindStringSubmatch(lines[i])
		if fence == nil {
			if pendingFile != "" && strings.TrimSpace(lines[i]) != "" {
				problems = append(problems, fmt.Sprintf("line %d: docscheck:file marker not followed by a code block", pendingLine))
				pendingFile = ""
			}
			continue
		}
		// Collect the fenced block.
		start := i + 1
		j := start
		for j < len(lines) && !strings.HasPrefix(lines[j], "```") {
			j++
		}
		if j == len(lines) {
			problems = append(problems, fmt.Sprintf("line %d: unterminated code fence", i+1))
			return problems
		}
		block := strings.Join(lines[start:j], "\n")
		lang := fence[1]

		if pendingFile != "" {
			want, err := os.ReadFile(filepath.Join(root, pendingFile))
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: docscheck:file %s: %v", pendingLine, pendingFile, err))
			} else if block+"\n" != string(want) {
				problems = append(problems, fmt.Sprintf("line %d: code block differs from %s — update the doc or the file", pendingLine, pendingFile))
			}
			pendingFile = ""
		}
		if lang == "go" {
			problems = append(problems, checkGoBlock(block, start+1)...)
		}
		i = j
	}
	return problems
}

// checkGoBlock parses one ```go block: full files directly (and they must
// be gofmt-clean), fragments wrapped in a synthetic package or function.
func checkGoBlock(src string, line int) []string {
	fset := token.NewFileSet()
	if isFullFile(src) {
		if _, err := parser.ParseFile(fset, "block.go", src, 0); err != nil {
			return []string{fmt.Sprintf("line %d: go block does not parse: %v", line, err)}
		}
		formatted, err := format.Source([]byte(src))
		if err == nil && string(formatted) != src+"\n" && string(formatted) != src {
			return []string{fmt.Sprintf("line %d: go block is not gofmt-clean", line)}
		}
		return nil
	}
	for _, candidate := range []string{
		"package p\n" + src,
		"package p\nfunc _() {\n" + src + "\n}",
		"package p\ntype _ interface {\n" + src + "\n}", // bare method signatures
	} {
		if _, err := parser.ParseFile(fset, "block.go", candidate, 0); err == nil {
			return nil
		}
	}
	return []string{fmt.Sprintf("line %d: go block parses neither as declarations nor as statements", line)}
}

// isFullFile reports whether a go block carries its own package clause
// (possibly under a leading comment).
func isFullFile(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		switch {
		case t == "" || strings.HasPrefix(t, "//"):
			continue
		case strings.HasPrefix(t, "/*"):
			return false // block comments before package: treat as fragment
		default:
			return strings.HasPrefix(t, "package ")
		}
	}
	return false
}
