package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineThroughput/clients=1/pooled-exclusive-8         	     100	   1000000 ns/op	     512 B/op	       3 allocs/op
BenchmarkEngineThroughput/clients=8/pooled-shared-8            	     100	   2000000 ns/op
BenchmarkFig05ChunkSize/chunk=10-8                             	      10	  50000000 ns/op
BenchmarkFig07LeafSizeQuery/leaf=50/sq-8                       	     100	    300000 ns/op
PASS
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoRegressionPasses(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "2000000", "2100000") // +5%, under the gate
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP, "-match", "BenchmarkEngineThroughput|BenchmarkFig05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d for a +5%% change, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output: %s", out.String())
	}
}

// TestInjectedRegressionFails: the acceptance check — a >30% slowdown in
// a gated benchmark must fail the gate.
func TestInjectedRegressionFails(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "   1000000 ns/op", "   1400000 ns/op") // +40%
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP, "-match", "BenchmarkEngineThroughput"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d for a +40%% regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output does not flag the regression: %s", out.String())
	}
}

// TestUnmatchedBenchmarksIgnored: a regression outside -match does not
// trip the gate.
func TestUnmatchedBenchmarksIgnored(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "    300000 ns/op", "    900000 ns/op") // 3x, but a query bench
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP,
		"-match", "^BenchmarkEngineThroughput|^BenchmarkFig05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (regression is outside the gate)\n%s", code, out.String())
	}
}

func TestGOMAXPROCSSuffixStripped(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "-8 ", "-16") // different core count
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	if code, err := run([]string{"-base", base, "-head", headP}, &out); err != nil || code != 0 {
		t.Fatalf("code %d err %v: suffix-stripped names must still match\n%s", code, err, out.String())
	}
}

func TestErrors(t *testing.T) {
	base := writeFile(t, "base.txt", baseBench)
	var out strings.Builder
	if _, err := run([]string{"-base", base}, &out); err == nil {
		t.Error("missing -head did not error")
	}
	empty := writeFile(t, "empty.txt", "PASS\n")
	if _, err := run([]string{"-base", base, "-head", empty}, &out); err == nil {
		t.Error("empty head file did not error")
	}
	headP := writeFile(t, "head.txt", baseBench)
	if _, err := run([]string{"-base", base, "-head", headP, "-match", "NoSuchBenchmark"}, &out); err == nil {
		t.Error("zero matched benchmarks did not error")
	}
}

// workloadJSON renders a minimal messi-workload report with the given
// recall and pruning for a single exact-mode member-tier cell.
func workloadJSON(recall, pruning float64, digest string) string {
	return fmt.Sprintf(`{
  "schema": "messi-workload/v1",
  "seed": 42, "series": 100, "length": 32, "k": 5, "shards": 1,
  "epsilon": 0.05, "deadline_ms": 1000,
  "tiers": [{
    "tier": "member", "queries": 4, "queries_sha256": %q,
    "modes": [{
      "mode": "exact", "recall_at_k": %v, "exact_fraction": 1,
      "mean_epsilon_bound": -1, "pruning_ratio_mean": %v,
      "pruning_ratio_curve": [%v]
    }]
  }]
}`, digest, recall, pruning, pruning)
}

func TestWorkloadGatePasses(t *testing.T) {
	base := writeFile(t, "base.json", workloadJSON(1, 0.9, "aa"))
	head := writeFile(t, "head.json", workloadJSON(0.98, 0.85, "aa"))
	var out strings.Builder
	code, err := run([]string{"-workload-base", base, "-workload-head", head}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d for within-budget drops, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no workload regressions") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestWorkloadRecallDropFails(t *testing.T) {
	base := writeFile(t, "base.json", workloadJSON(1, 0.9, "aa"))
	head := writeFile(t, "head.json", workloadJSON(0.90, 0.9, "aa")) // -0.10 > 0.05 budget
	var out strings.Builder
	code, err := run([]string{"-workload-base", base, "-workload-head", head}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d for a recall drop, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "RECALL DROP") {
		t.Fatalf("output does not flag the drop: %s", out.String())
	}
}

func TestWorkloadPruningDropFails(t *testing.T) {
	base := writeFile(t, "base.json", workloadJSON(1, 0.9, "aa"))
	head := writeFile(t, "head.json", workloadJSON(1, 0.7, "aa")) // -0.20 > 0.10 budget
	var out strings.Builder
	code, err := run([]string{"-workload-base", base, "-workload-head", head}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d for a pruning drop, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "PRUNING DROP") {
		t.Fatalf("output does not flag the drop: %s", out.String())
	}
}

func TestWorkloadDigestMismatchNoted(t *testing.T) {
	base := writeFile(t, "base.json", workloadJSON(1, 0.9, "aa"))
	head := writeFile(t, "head.json", workloadJSON(1, 0.9, "bb"))
	var out strings.Builder
	code, err := run([]string{"-workload-base", base, "-workload-head", head}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	if !strings.Contains(out.String(), "query sets differ") {
		t.Fatalf("digest mismatch not surfaced: %s", out.String())
	}
}

// TestBothGatesCombine: bench and workload gates run in one invocation and
// either can fail the exit code.
func TestBothGatesCombine(t *testing.T) {
	benchBase := writeFile(t, "base.txt", baseBench)
	benchHead := writeFile(t, "head.txt", baseBench) // unchanged: bench gate passes
	wlBase := writeFile(t, "base.json", workloadJSON(1, 0.9, "aa"))
	wlHead := writeFile(t, "head.json", workloadJSON(0.5, 0.9, "aa")) // recall collapses
	var out strings.Builder
	code, err := run([]string{
		"-base", benchBase, "-head", benchHead,
		"-workload-base", wlBase, "-workload-head", wlHead,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (workload gate failed)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") || !strings.Contains(out.String(), "RECALL DROP") {
		t.Fatalf("combined output missing a section: %s", out.String())
	}
}

func TestWorkloadErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-workload-base", "only.json"}, &out); err == nil {
		t.Error("missing -workload-head did not error")
	}
	if _, err := run(nil, &out); err == nil {
		t.Error("no inputs at all did not error")
	}
	bad := writeFile(t, "bad.json", `{"schema":"other/v9"}`)
	good := writeFile(t, "good.json", workloadJSON(1, 0.9, "aa"))
	if _, err := run([]string{"-workload-base", bad, "-workload-head", good}, &out); err == nil {
		t.Error("wrong schema did not error")
	}
}
