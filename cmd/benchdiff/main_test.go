package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEngineThroughput/clients=1/pooled-exclusive-8         	     100	   1000000 ns/op	     512 B/op	       3 allocs/op
BenchmarkEngineThroughput/clients=8/pooled-shared-8            	     100	   2000000 ns/op
BenchmarkFig05ChunkSize/chunk=10-8                             	      10	  50000000 ns/op
BenchmarkFig07LeafSizeQuery/leaf=50/sq-8                       	     100	    300000 ns/op
PASS
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoRegressionPasses(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "2000000", "2100000") // +5%, under the gate
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP, "-match", "BenchmarkEngineThroughput|BenchmarkFig05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d for a +5%% change, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output: %s", out.String())
	}
}

// TestInjectedRegressionFails: the acceptance check — a >30% slowdown in
// a gated benchmark must fail the gate.
func TestInjectedRegressionFails(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "   1000000 ns/op", "   1400000 ns/op") // +40%
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP, "-match", "BenchmarkEngineThroughput"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d for a +40%% regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output does not flag the regression: %s", out.String())
	}
}

// TestUnmatchedBenchmarksIgnored: a regression outside -match does not
// trip the gate.
func TestUnmatchedBenchmarksIgnored(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "    300000 ns/op", "    900000 ns/op") // 3x, but a query bench
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	code, err := run([]string{"-base", base, "-head", headP,
		"-match", "^BenchmarkEngineThroughput|^BenchmarkFig05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (regression is outside the gate)\n%s", code, out.String())
	}
}

func TestGOMAXPROCSSuffixStripped(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "-8 ", "-16") // different core count
	base := writeFile(t, "base.txt", baseBench)
	headP := writeFile(t, "head.txt", head)
	var out strings.Builder
	if code, err := run([]string{"-base", base, "-head", headP}, &out); err != nil || code != 0 {
		t.Fatalf("code %d err %v: suffix-stripped names must still match\n%s", code, err, out.String())
	}
}

func TestErrors(t *testing.T) {
	base := writeFile(t, "base.txt", baseBench)
	var out strings.Builder
	if _, err := run([]string{"-base", base}, &out); err == nil {
		t.Error("missing -head did not error")
	}
	empty := writeFile(t, "empty.txt", "PASS\n")
	if _, err := run([]string{"-base", base, "-head", empty}, &out); err == nil {
		t.Error("empty head file did not error")
	}
	headP := writeFile(t, "head.txt", baseBench)
	if _, err := run([]string{"-base", base, "-head", headP, "-match", "NoSuchBenchmark"}, &out); err == nil {
		t.Error("zero matched benchmarks did not error")
	}
}
