// Command benchdiff is the CI performance-regression gate: it parses two
// `go test -bench` text outputs (base and head), compares ns/op per
// benchmark, prints a markdown table, and exits non-zero when any
// benchmark matching -match regressed by more than -threshold.
//
// It complements benchstat (which renders the human-facing comparison in
// the job summary): benchstat needs multiple samples for its statistics,
// while the CI gate runs a single -benchtime=1x pass per ref and needs a
// deterministic pass/fail on a plain ratio.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... > head.txt
//	git checkout $BASE && go test -run='^$' -bench=. -benchtime=1x ./... > base.txt
//	benchdiff -base base.txt -head head.txt -match 'BenchmarkEngineThroughput' -threshold 0.30
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the comparison, returning the process exit code: 0 when no
// gated benchmark regressed beyond the threshold, 1 otherwise.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("base", "", "base `go test -bench` output file (required)")
		headPath  = fs.String("head", "", "head `go test -bench` output file (required)")
		match     = fs.String("match", ".", "regexp of benchmark names the gate applies to")
		threshold = fs.Float64("threshold", 0.30, "fail when head ns/op exceeds base by more than this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *basePath == "" || *headPath == "" {
		return 0, errors.New("-base and -head are required")
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return 0, fmt.Errorf("bad -match: %w", err)
	}
	if *threshold <= 0 {
		return 0, fmt.Errorf("threshold must be positive, got %v", *threshold)
	}

	base, err := parseFile(*basePath)
	if err != nil {
		return 0, err
	}
	head, err := parseFile(*headPath)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; ok && re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no benchmarks matched %q in both files", *match)
	}

	fmt.Fprintf(stdout, "| benchmark | base ns/op | head ns/op | delta | gate (>%+.0f%%) |\n", *threshold*100)
	fmt.Fprintln(stdout, "| --- | ---: | ---: | ---: | --- |")
	failed := 0
	for _, name := range names {
		b, h := base[name], head[name]
		delta := h/b - 1
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stdout, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", name, b, h, delta*100, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "\n%d benchmark(s) regressed by more than %.0f%%\n", failed, *threshold*100)
		return 1, nil
	}
	fmt.Fprintf(stdout, "\nno regressions beyond %.0f%% across %d benchmark(s)\n", *threshold*100, len(names))
	return 0, nil
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return m, nil
}

// parse extracts ns/op per benchmark from `go test -bench` text output.
// Result lines look like:
//
//	BenchmarkName/sub=1-8   	     100	  12345 ns/op	  67 B/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs on machines with
// different core counts still compare. Benchmarks appearing several
// times (e.g. -count > 1) are averaged.
func parse(r io.Reader) (map[string]float64, error) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Locate the "<value> ns/op" pair; position varies with extra
		// metrics but ns/op always names its preceding value.
		nsPerOp := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
				}
				nsPerOp = v
				break
			}
		}
		if nsPerOp < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		sums[name] += nsPerOp
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}
