// Command benchdiff is the CI performance-regression gate: it parses two
// `go test -bench` text outputs (base and head), compares ns/op per
// benchmark, prints a markdown table, and exits non-zero when any
// benchmark matching -match regressed by more than -threshold.
//
// It complements benchstat (which renders the human-facing comparison in
// the job summary): benchstat needs multiple samples for its statistics,
// while the CI gate runs a single -benchtime=1x pass per ref and needs a
// deterministic pass/fail on a plain ratio.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... > head.txt
//	git checkout $BASE && go test -run='^$' -bench=. -benchtime=1x ./... > base.txt
//	benchdiff -base base.txt -head head.txt -match 'BenchmarkEngineThroughput' -threshold 0.30
//
// It also gates answer quality: given two cmd/messi-workload JSON reports
// it compares recall@k and mean pruning ratio per (tier, mode) cell and
// fails when head drops below base by more than -recall-drop or
// -pruning-drop. The workload gate can run alongside the bench gate or on
// its own:
//
//	benchdiff -workload-base base.json -workload-head head.json
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the comparison, returning the process exit code: 0 when no
// gated benchmark regressed beyond the threshold, 1 otherwise.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("base", "", "base `go test -bench` output file")
		headPath  = fs.String("head", "", "head `go test -bench` output file")
		match     = fs.String("match", ".", "regexp of benchmark names the gate applies to")
		threshold = fs.Float64("threshold", 0.30, "fail when head ns/op exceeds base by more than this fraction")

		wlBase      = fs.String("workload-base", "", "base cmd/messi-workload JSON report")
		wlHead      = fs.String("workload-head", "", "head cmd/messi-workload JSON report")
		recallDrop  = fs.Float64("recall-drop", 0.05, "fail when a cell's recall@k drops below base by more than this")
		pruningDrop = fs.Float64("pruning-drop", 0.10, "fail when a cell's mean pruning ratio drops below base by more than this")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	haveBench := *basePath != "" || *headPath != ""
	haveWorkload := *wlBase != "" || *wlHead != ""
	if !haveBench && !haveWorkload {
		return 0, errors.New("-base/-head or -workload-base/-workload-head are required")
	}
	if haveBench && (*basePath == "" || *headPath == "") {
		return 0, errors.New("-base and -head must be given together")
	}
	if haveWorkload && (*wlBase == "" || *wlHead == "") {
		return 0, errors.New("-workload-base and -workload-head must be given together")
	}

	failed := 0
	if haveBench {
		n, err := runBench(*basePath, *headPath, *match, *threshold, stdout)
		if err != nil {
			return 0, err
		}
		failed += n
	}
	if haveWorkload {
		if haveBench {
			fmt.Fprintln(stdout)
		}
		n, err := runWorkload(*wlBase, *wlHead, *recallDrop, *pruningDrop, stdout)
		if err != nil {
			return 0, err
		}
		failed += n
	}
	if failed > 0 {
		return 1, nil
	}
	return 0, nil
}

// runBench compares two `go test -bench` outputs, returning how many gated
// benchmarks regressed.
func runBench(basePath, headPath, match string, threshold float64, stdout io.Writer) (int, error) {
	re, err := regexp.Compile(match)
	if err != nil {
		return 0, fmt.Errorf("bad -match: %w", err)
	}
	if threshold <= 0 {
		return 0, fmt.Errorf("threshold must be positive, got %v", threshold)
	}

	base, err := parseFile(basePath)
	if err != nil {
		return 0, err
	}
	head, err := parseFile(headPath)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; ok && re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no benchmarks matched %q in both files", match)
	}

	fmt.Fprintf(stdout, "| benchmark | base ns/op | head ns/op | delta | gate (>%+.0f%%) |\n", threshold*100)
	fmt.Fprintln(stdout, "| --- | ---: | ---: | ---: | --- |")
	failed := 0
	for _, name := range names {
		b, h := base[name], head[name]
		delta := h/b - 1
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Fprintf(stdout, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", name, b, h, delta*100, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "\n%d benchmark(s) regressed by more than %.0f%%\n", failed, threshold*100)
	} else {
		fmt.Fprintf(stdout, "\nno regressions beyond %.0f%% across %d benchmark(s)\n", threshold*100, len(names))
	}
	return failed, nil
}

// runWorkload compares two messi-workload reports per (tier, mode) cell,
// returning how many cells regressed on recall or pruning.
func runWorkload(basePath, headPath string, recallDrop, pruningDrop float64, stdout io.Writer) (int, error) {
	if recallDrop < 0 || pruningDrop < 0 {
		return 0, errors.New("-recall-drop and -pruning-drop must be non-negative")
	}
	base, err := readWorkloadFile(basePath)
	if err != nil {
		return 0, err
	}
	head, err := readWorkloadFile(headPath)
	if err != nil {
		return 0, err
	}

	type cell struct{ recall, pruning float64 }
	index := func(rep *workload.Report) (map[string]cell, map[string]string) {
		cells := map[string]cell{}
		digests := map[string]string{}
		for _, tr := range rep.Tiers {
			digests[tr.Tier] = tr.QueriesSHA256
			for _, mr := range tr.Modes {
				cells[tr.Tier+"/"+mr.Mode] = cell{mr.RecallAtK, mr.PruningRatioMean}
			}
		}
		return cells, digests
	}
	baseCells, baseDigests := index(base)
	headCells, headDigests := index(head)

	keys := make([]string, 0, len(headCells))
	for key := range headCells {
		if _, ok := baseCells[key]; ok {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, errors.New("no (tier, mode) cells present in both workload reports")
	}

	for tier, d := range headDigests {
		if bd, ok := baseDigests[tier]; ok && bd != d {
			fmt.Fprintf(stdout, "note: tier %s query sets differ between base and head (seed or generator changed)\n", tier)
		}
	}

	fmt.Fprintf(stdout, "| tier/mode | recall base | recall head | pruning base | pruning head | gate (drop >%.2f / >%.2f) |\n",
		recallDrop, pruningDrop)
	fmt.Fprintln(stdout, "| --- | ---: | ---: | ---: | ---: | --- |")
	failed := 0
	for _, key := range keys {
		b, h := baseCells[key], headCells[key]
		verdict := "ok"
		if b.recall-h.recall > recallDrop {
			verdict = "RECALL DROP"
			failed++
		} else if b.pruning-h.pruning > pruningDrop {
			verdict = "PRUNING DROP"
			failed++
		}
		fmt.Fprintf(stdout, "| %s | %.4f | %.4f | %.4f | %.4f | %s |\n",
			key, b.recall, h.recall, b.pruning, h.pruning, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "\n%d workload cell(s) regressed beyond the recall/pruning budgets\n", failed)
	} else {
		fmt.Fprintf(stdout, "\nno workload regressions across %d cell(s)\n", len(keys))
	}
	return failed, nil
}

func readWorkloadFile(path string) (*workload.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := workload.ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return m, nil
}

// parse extracts ns/op per benchmark from `go test -bench` text output.
// Result lines look like:
//
//	BenchmarkName/sub=1-8   	     100	  12345 ns/op	  67 B/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs on machines with
// different core counts still compare. Benchmarks appearing several
// times (e.g. -count > 1) are averaged.
func parse(r io.Reader) (map[string]float64, error) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Locate the "<value> ns/op" pair; position varies with extra
		// metrics but ns/op always names its preceding value.
		nsPerOp := -1.0
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q", sc.Text())
				}
				nsPerOp = v
				break
			}
		}
		if nsPerOp < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		sums[name] += nsPerOp
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}
