package main

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	messi "repro"
)

// newObservableServer builds a server the way run() does: one registry
// shared by the engine and the HTTP layer.
func newObservableServer(t *testing.T, slowQuery time.Duration) (*server, *messi.Index) {
	t.Helper()
	data := messi.RandomWalk(1200, 64, 17)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	reg := messi.NewMetrics()
	eng := ix.NewEngine(&messi.EngineOptions{PoolWorkers: 4, Metrics: reg})
	t.Cleanup(eng.Close)
	s := newServer(reg, "", slowQuery)
	s.install(&engineBackend{eng: eng})
	return s, ix
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

// Exposition format 0.0.4: every line is a HELP comment, a TYPE comment,
// or a sample with an optional label set and a float value.
var (
	helpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$`)
)

// scrape fetches /metrics, validates every line of the exposition, and
// returns the per-sample values keyed by the full sample name (with
// labels).
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rr := getPath(t, h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples := make(map[string]float64)
	for i, line := range strings.Split(rr.Body.String(), "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpLine.MatchString(line) {
				t.Fatalf("line %d: malformed HELP line %q", i+1, line)
			}
		case strings.HasPrefix(line, "#"):
			if !typeLine.MatchString(line) {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample line %q", i+1, line)
			}
			name := line[:strings.LastIndexByte(line, ' ')]
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil && m[2] != "NaN" && m[2] != "+Inf" && m[2] != "-Inf" {
				t.Fatalf("line %d: unparseable value in %q: %v", i+1, line, err)
			}
			samples[name] = v
		}
	}
	return samples
}

// TestMetricsExposition: /metrics serves valid Prometheus text covering
// the engine and HTTP instruments, and counters are monotone across two
// scrapes with traffic in between.
func TestMetricsExposition(t *testing.T) {
	s, ix := newObservableServer(t, 0)
	query, err := ix.Series(3)
	if err != nil {
		t.Fatal(err)
	}
	search := func() {
		rr := postJSON(t, s, "/v1/search", searchRequest{Query: query})
		if rr.Code != http.StatusOK {
			t.Fatalf("search: status %d, body %s", rr.Code, rr.Body)
		}
	}
	search()

	first := scrape(t, s)
	for _, want := range []string{
		`messi_queries_admitted_total`,
		`messi_query_duration_seconds_count{mode="exact"}`,
		`messi_query_duration_seconds_sum{mode="exact"}`,
		`messi_lower_bound_calcs_total`,
		`messi_real_dist_calcs_total`,
		`messi_admission_queue_depth`,
		`messi_engine_pool_workers`,
		`messi_http_request_seconds_count{path="/v1/search"}`,
		`go_goroutines`,
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("scrape is missing sample %q", want)
		}
	}
	if got := first[`messi_query_duration_seconds_count{mode="exact"}`]; got != 1 {
		t.Errorf("exact query count = %v after one query, want 1", got)
	}
	// The cumulative histogram buckets must be monotone non-decreasing
	// and end at the _count in the +Inf bucket.
	prev := -1.0
	for name, v := range first {
		if strings.HasPrefix(name, `messi_query_duration_seconds_bucket{mode="exact"`) && strings.Contains(name, `le="+Inf"`) {
			if v != first[`messi_query_duration_seconds_count{mode="exact"}`] {
				t.Errorf("+Inf bucket %v != count", v)
			}
		}
		_ = prev
	}

	search()
	search()
	second := scrape(t, s)
	for name, before := range first {
		if !strings.HasSuffix(strings.SplitN(name, "{", 2)[0], "_total") &&
			!strings.Contains(name, "_count") && !strings.Contains(name, "_bucket") {
			continue // gauges may move either way
		}
		if strings.HasPrefix(name, "go_") {
			continue // runtime totals are not under test
		}
		after, ok := second[name]
		if !ok {
			t.Errorf("counter %q disappeared between scrapes", name)
			continue
		}
		if after < before {
			t.Errorf("counter %q went backwards: %v → %v", name, before, after)
		}
	}
	if got := second[`messi_query_duration_seconds_count{mode="exact"}`]; got != 3 {
		t.Errorf("exact query count = %v after three queries, want 3", got)
	}
}

// TestReadiness: before a backend is installed every endpoint (including
// the health probes) answers 503 — except /metrics, which must be
// scrapeable during a long boot; after install the server is ready.
func TestReadiness(t *testing.T) {
	s := newServer(messi.NewMetrics(), "", 0)
	for _, path := range []string{"/healthz", "/readyz", "/v1/stats"} {
		if rr := getPath(t, s, path); rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s before install: status %d, want 503", path, rr.Code)
		}
	}
	if rr := postJSON(t, s, "/v1/search", searchRequest{Query: make([]float32, 64)}); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("/v1/search before install: status %d, want 503", rr.Code)
	}
	if rr := getPath(t, s, "/metrics"); rr.Code != http.StatusOK {
		t.Errorf("/metrics before install: status %d, want 200", rr.Code)
	}

	data := messi.RandomWalk(300, 64, 5)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&messi.EngineOptions{PoolWorkers: 2})
	t.Cleanup(eng.Close)
	s.install(&engineBackend{eng: eng})

	for _, path := range []string{"/healthz", "/readyz"} {
		rr := getPath(t, s, path)
		if rr.Code != http.StatusOK {
			t.Errorf("%s after install: status %d, want 200", path, rr.Code)
		}
		if !strings.Contains(rr.Body.String(), "ok") {
			t.Errorf("%s body %q, want ok", path, rr.Body)
		}
		if rr.Header().Get("X-Request-Id") == "" {
			t.Errorf("%s: no X-Request-Id header", path)
		}
	}
}

// TestTraceFlag: "trace": true returns phase timings and operation
// counts inline; "counters": true returns only the counts; a plain
// request returns neither.
func TestTraceFlag(t *testing.T) {
	s, ix := newObservableServer(t, 0)
	query, err := ix.Series(7)
	if err != nil {
		t.Fatal(err)
	}

	rr := postJSON(t, s, "/v1/search", searchRequest{Query: query, Trace: true})
	if rr.Code != http.StatusOK {
		t.Fatalf("trace search: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if resp.Trace == nil {
		t.Fatal("trace:true returned no trace")
	}
	if len(resp.Trace.Phases) != 5 {
		t.Fatalf("trace has %d phases, want the 5 of Figure 13", len(resp.Trace.Phases))
	}
	for _, p := range resp.Trace.Phases {
		if p.Name == "" {
			t.Fatal("trace phase with empty name")
		}
		if p.Seconds < 0 {
			t.Fatalf("trace phase %q has negative time %v", p.Name, p.Seconds)
		}
	}
	if resp.Trace.ElapsedSeconds <= 0 {
		t.Fatalf("trace elapsed_seconds = %v, want > 0", resp.Trace.ElapsedSeconds)
	}
	if resp.Trace.Counters.RealDistances == 0 {
		t.Fatal("trace counters report zero real distance computations")
	}

	rr = postJSON(t, s, "/v1/search", searchRequest{Query: query, Counters: true})
	resp = decode[queryResponse](t, rr)
	if resp.Counters == nil || resp.Counters.RealDistances == 0 {
		t.Fatalf("counters:true returned %+v", resp.Counters)
	}
	if resp.Trace != nil {
		t.Fatal("counters:true returned a trace")
	}

	rr = postJSON(t, s, "/v1/search", searchRequest{Query: query})
	resp = decode[queryResponse](t, rr)
	if resp.Counters != nil || resp.Trace != nil {
		t.Fatal("plain request returned counters or trace")
	}
}

// TestStatsServerFields: /v1/stats reports uptime, queries served, and
// the effective admission-gate configuration.
func TestStatsServerFields(t *testing.T) {
	s, ix := newObservableServer(t, 0)
	query, err := ix.Series(0)
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, s, "/v1/search", searchRequest{Query: query})
	postJSON(t, s, "/v1/query/batch", batchRequest{Queries: [][]float32{query, query}})

	rr := getPath(t, s, "/v1/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rr.Code)
	}
	st := decode[statsResponse](t, rr)
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.QueriesServed != 3 {
		t.Errorf("queries_served = %d, want 3 (one search + two batch)", st.QueriesServed)
	}
	if st.Admission == nil {
		t.Fatal("stats report no admission configuration")
	}
	if st.Admission.PoolWorkers != 4 {
		t.Errorf("admission pool_workers = %d, want 4", st.Admission.PoolWorkers)
	}
	if st.Admission.MaxConcurrent < 1 {
		t.Errorf("admission max_concurrent = %d, want >= 1", st.Admission.MaxConcurrent)
	}
}

// TestSlowQueryLog: with -slow-query set, a query over the threshold is
// logged with its request ID and trace keys, and the response still
// omits the trace the client never asked for.
func TestSlowQueryLog(t *testing.T) {
	s, ix := newObservableServer(t, time.Nanosecond) // everything is slow
	query, err := ix.Series(1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(old)

	rr := postJSON(t, s, "/v1/search", searchRequest{Query: query})
	if rr.Code != http.StatusOK {
		t.Fatalf("search: status %d", rr.Code)
	}
	if resp := decode[queryResponse](t, rr); resp.Trace != nil {
		t.Fatal("forced slow-query trace leaked into the response")
	}
	id := rr.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}
	logged := buf.String()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query log line in %q", logged)
	}
	for _, key := range []string{"id=" + id, "path=/v1/search", "mode=exact", "real_distances=", "distance_calculation="} {
		if !strings.Contains(logged, key) {
			t.Errorf("slow-query log %q is missing %q", logged, key)
		}
	}
}
