// Command messi-serve builds a MESSI index over a dataset file and serves
// similarity queries over HTTP through a persistent query engine
// (messi.Engine) — the sustained-multi-query serving scenario, as opposed
// to messi-query's one-shot exploratory runs.
//
// Usage:
//
//	messi-gen -kind random -count 100000 -out data.bin
//	messi-serve -data data.bin -addr :8080
//	messi-serve -data data.bin -live -rebuild-threshold 50000
//
// API (JSON over HTTP):
//
//	GET  /healthz         → 200 "ok" once serving
//	GET  /v1/stats        → index shape, generation and delta occupancy
//	POST /v1/query        → {"query":[...], "k":5}         → {"matches":[{"position":..,"distance":..}]}
//	POST /v1/query/batch  → {"queries":[[...],[...], ...]} → {"results":[[...],[...]]}
//	POST /v1/series       → {"series":[[...], ...]}        → {"first_position":..,"count":..} (live mode only)
//
// With -live the server runs a messi.LiveIndex: POST /v1/series appends
// new series that are searchable immediately, and a background rebuild
// merges them into the next index generation once the delta buffer
// crosses -rebuild-threshold. Without -live the index is immutable and
// /v1/series is not registered.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests, then closes the engine pool.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	messi "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("messi-serve", flag.ContinueOnError)
	var (
		dataPath  = fs.String("data", "", "dataset file to index (required)")
		addr      = fs.String("addr", ":8080", "listen address")
		leafCap   = fs.Int("leaf", 0, "leaf capacity (default 2000)")
		pool      = fs.Int("pool", 0, "engine pool workers (default: search workers)")
		perQuery  = fs.Int("per-query", 0, "worker units per query (default: whole pool)")
		queues    = fs.Int("queues", 0, "priority queues per query (default 24)")
		admit     = fs.Int("admit", 0, "max concurrently executing queries (default pool/per-query)")
		normalize = fs.Bool("normalize", false, "z-normalize data and queries")
		liveMode  = fs.Bool("live", false, "serve a mutable live index accepting appends on POST /v1/series")
		threshold = fs.Int("rebuild-threshold", 0, "live mode: delta series triggering a background rebuild (default 100000)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return errors.New("-data is required")
	}

	opts := &messi.Options{LeafCapacity: *leafCap, Normalize: *normalize}
	var handler http.Handler
	buildStart := time.Now()
	if *liveMode {
		lix, err := messi.BuildLiveFromFile(*dataPath, opts, &messi.LiveOptions{
			RebuildThreshold: *threshold,
			Engine: messi.EngineOptions{
				PoolWorkers:   *pool,
				QueryWorkers:  *perQuery,
				Queues:        *queues,
				MaxConcurrent: *admit,
			},
		})
		if err != nil {
			return err
		}
		defer lix.Close()
		log.Printf("live-indexed %d series × %d points in %v (rebuild threshold %d)",
			lix.Len(), lix.SeriesLen(), time.Since(buildStart).Round(time.Millisecond), *threshold)
		handler = newHandler(&liveBackend{lix: lix})
	} else {
		ix, err := messi.BuildFromFile(*dataPath, opts)
		if err != nil {
			return err
		}
		log.Printf("indexed %d series × %d points in %v", ix.Len(), ix.SeriesLen(),
			time.Since(buildStart).Round(time.Millisecond))

		eng := ix.NewEngine(&messi.EngineOptions{
			PoolWorkers:   *pool,
			QueryWorkers:  *perQuery,
			Queues:        *queues,
			MaxConcurrent: *admit,
		})
		defer eng.Close()
		handler = newHandler(&engineBackend{eng: eng})
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound slow clients: a connection may not hold a goroutine and
		// fd forever by trickling bytes (batch bodies can be large, so
		// the full-request ReadTimeout stays generous).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}

// jsonMatch is the wire form of one answer.
type jsonMatch struct {
	Position int     `json:"position"`
	Distance float64 `json:"distance"`
}

type queryRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k,omitempty"`
}

type queryResponse struct {
	Matches []jsonMatch `json:"matches"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
}

type batchResponse struct {
	Results [][]jsonMatch `json:"results"`
}

type appendRequest struct {
	Series [][]float32 `json:"series"`
}

type appendResponse struct {
	FirstPosition int `json:"first_position"`
	Count         int `json:"count"`
}

type statsResponse struct {
	Series        int   `json:"series"`
	SeriesLen     int   `json:"series_len"`
	RootChildren  int   `json:"root_children"`
	InternalNodes int   `json:"internal_nodes"`
	Leaves        int   `json:"leaves"`
	MaxDepth      int   `json:"max_depth"`
	MaxLeafFill   int   `json:"max_leaf_fill"`
	Live          bool  `json:"live"`
	Generation    int64 `json:"generation,omitempty"`
	BaseSeries    int   `json:"base_series,omitempty"`
	DeltaSeries   int   `json:"delta_series,omitempty"`
	Rebuilding    bool  `json:"rebuilding,omitempty"`
}

// backend abstracts the two serving modes: a static index behind the
// persistent engine, or a mutable live index accepting appends.
type backend interface {
	query(q []float32) (messi.Match, error)
	queryKNN(q []float32, k int) ([]messi.Match, error)
	queryBatch(qs [][]float32) ([]messi.Match, error)
	stats() statsResponse
}

// appender is implemented by backends that accept new series (live mode).
type appender interface {
	appendSeries(rows [][]float32) (int, error)
}

// engineBackend serves an immutable index through messi.Engine.
type engineBackend struct {
	eng *messi.Engine
}

func (b *engineBackend) query(q []float32) (messi.Match, error) { return b.eng.Query(q) }
func (b *engineBackend) queryKNN(q []float32, k int) ([]messi.Match, error) {
	return b.eng.QueryKNN(q, k)
}
func (b *engineBackend) queryBatch(qs [][]float32) ([]messi.Match, error) {
	return b.eng.QueryBatch(qs)
}
func (b *engineBackend) stats() statsResponse {
	ix := b.eng.Index()
	st := ix.Stats()
	return statsResponse{
		Series:        st.Series,
		SeriesLen:     ix.SeriesLen(),
		RootChildren:  st.RootChildren,
		InternalNodes: st.InternalNodes,
		Leaves:        st.Leaves,
		MaxDepth:      st.MaxDepth,
		MaxLeafFill:   st.MaxLeafFill,
	}
}

// liveBackend serves a messi.LiveIndex (streaming ingestion mode).
type liveBackend struct {
	lix *messi.LiveIndex
}

func (b *liveBackend) query(q []float32) (messi.Match, error) { return b.lix.Search(q) }
func (b *liveBackend) queryKNN(q []float32, k int) ([]messi.Match, error) {
	return b.lix.SearchKNN(q, k)
}
func (b *liveBackend) queryBatch(qs [][]float32) ([]messi.Match, error) {
	// A fixed submitter fleet claiming queries via Fetch&Inc, mirroring
	// Engine.SearchBatch: the engine's admission control caps useful
	// parallelism downstream, this just keeps the pipe full.
	out := make([]messi.Match, len(qs))
	errs := make([]error, len(qs))
	submitters := 8
	if submitters > len(qs) {
		submitters = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				out[i], errs[i] = b.lix.Search(qs[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return out, nil
}
func (b *liveBackend) appendSeries(rows [][]float32) (int, error) {
	return b.lix.AppendBatch(rows)
}
func (b *liveBackend) stats() statsResponse {
	st := b.lix.Stats()
	return statsResponse{
		Series:        st.Series,
		SeriesLen:     b.lix.SeriesLen(),
		RootChildren:  st.Index.RootChildren,
		InternalNodes: st.Index.InternalNodes,
		Leaves:        st.Index.Leaves,
		MaxDepth:      st.Index.MaxDepth,
		MaxLeafFill:   st.Index.MaxLeafFill,
		Live:          true,
		Generation:    st.Generation,
		BaseSeries:    st.BaseSeries,
		DeltaSeries:   st.DeltaSeries,
		Rebuilding:    st.Rebuilding,
	}
}

// newHandler builds the HTTP API around a serving backend. The append
// endpoint is registered only when the backend supports it (live mode).
func newHandler(b backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.stats())
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.K < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be non-negative, got %d", req.K))
			return
		}
		var matches []messi.Match
		var err error
		if req.K > 1 {
			matches, err = b.queryKNN(req.Query, req.K)
		} else {
			var m messi.Match
			m, err = b.query(req.Query)
			matches = []messi.Match{m}
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Matches: toJSONMatches(matches)})
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, "queries must be non-empty")
			return
		}
		matches, err := b.queryBatch(req.Queries)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp := batchResponse{Results: make([][]jsonMatch, len(matches))}
		for i, m := range matches {
			resp.Results[i] = toJSONMatches([]messi.Match{m})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	if app, ok := b.(appender); ok {
		mux.HandleFunc("POST /v1/series", func(w http.ResponseWriter, r *http.Request) {
			var req appendRequest
			if !readJSON(w, r, &req) {
				return
			}
			if len(req.Series) == 0 {
				writeError(w, http.StatusBadRequest, "series must be non-empty")
				return
			}
			first, err := app.appendSeries(req.Series)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, appendResponse{FirstPosition: first, Count: len(req.Series)})
		})
	}
	return mux
}

func toJSONMatches(ms []messi.Match) []jsonMatch {
	out := make([]jsonMatch, len(ms))
	for i, m := range ms {
		out[i] = jsonMatch{Position: m.Position, Distance: m.Distance}
	}
	return out
}

// readJSON decodes the request body, writing a 400 and reporting false on
// malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
