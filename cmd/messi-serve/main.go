// Command messi-serve builds a MESSI index over a dataset file and serves
// similarity queries over HTTP through a persistent query engine
// (messi.Engine) — the sustained-multi-query serving scenario, as opposed
// to messi-query's one-shot exploratory runs.
//
// Usage:
//
//	messi-gen -kind random -count 100000 -out data.bin
//	messi-serve -data data.bin -addr :8080
//
// API (JSON over HTTP):
//
//	GET  /healthz         → 200 "ok" once serving
//	GET  /v1/stats        → index shape and engine configuration
//	POST /v1/query        → {"query":[...], "k":5}         → {"matches":[{"position":..,"distance":..}]}
//	POST /v1/query/batch  → {"queries":[[...],[...], ...]} → {"results":[[...],[...]]}
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests, then closes the engine pool.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	messi "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("messi-serve", flag.ContinueOnError)
	var (
		dataPath  = fs.String("data", "", "dataset file to index (required)")
		addr      = fs.String("addr", ":8080", "listen address")
		leafCap   = fs.Int("leaf", 0, "leaf capacity (default 2000)")
		pool      = fs.Int("pool", 0, "engine pool workers (default: search workers)")
		perQuery  = fs.Int("per-query", 0, "worker units per query (default: whole pool)")
		queues    = fs.Int("queues", 0, "priority queues per query (default 24)")
		admit     = fs.Int("admit", 0, "max concurrently executing queries (default pool/per-query)")
		normalize = fs.Bool("normalize", false, "z-normalize data and queries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return errors.New("-data is required")
	}

	buildStart := time.Now()
	ix, err := messi.BuildFromFile(*dataPath, &messi.Options{LeafCapacity: *leafCap, Normalize: *normalize})
	if err != nil {
		return err
	}
	log.Printf("indexed %d series × %d points in %v", ix.Len(), ix.SeriesLen(),
		time.Since(buildStart).Round(time.Millisecond))

	eng := ix.NewEngine(&messi.EngineOptions{
		PoolWorkers:   *pool,
		QueryWorkers:  *perQuery,
		Queues:        *queues,
		MaxConcurrent: *admit,
	})
	defer eng.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(eng),
		// Bound slow clients: a connection may not hold a goroutine and
		// fd forever by trickling bytes (batch bodies can be large, so
		// the full-request ReadTimeout stays generous).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return <-errc
}

// jsonMatch is the wire form of one answer.
type jsonMatch struct {
	Position int     `json:"position"`
	Distance float64 `json:"distance"`
}

type queryRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k,omitempty"`
}

type queryResponse struct {
	Matches []jsonMatch `json:"matches"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
}

type batchResponse struct {
	Results [][]jsonMatch `json:"results"`
}

type statsResponse struct {
	Series        int `json:"series"`
	SeriesLen     int `json:"series_len"`
	RootChildren  int `json:"root_children"`
	InternalNodes int `json:"internal_nodes"`
	Leaves        int `json:"leaves"`
	MaxDepth      int `json:"max_depth"`
}

// newHandler builds the HTTP API around a running engine.
func newHandler(eng *messi.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		ix := eng.Index()
		st := ix.Stats()
		writeJSON(w, http.StatusOK, statsResponse{
			Series:        st.Series,
			SeriesLen:     ix.SeriesLen(),
			RootChildren:  st.RootChildren,
			InternalNodes: st.InternalNodes,
			Leaves:        st.Leaves,
			MaxDepth:      st.MaxDepth,
		})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		if !readJSON(w, r, &req) {
			return
		}
		if req.K < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be non-negative, got %d", req.K))
			return
		}
		var matches []messi.Match
		var err error
		if req.K > 1 {
			matches, err = eng.QueryKNN(req.Query, req.K)
		} else {
			var m messi.Match
			m, err = eng.Query(req.Query)
			matches = []messi.Match{m}
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Matches: toJSONMatches(matches)})
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !readJSON(w, r, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, "queries must be non-empty")
			return
		}
		matches, err := eng.QueryBatch(req.Queries)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp := batchResponse{Results: make([][]jsonMatch, len(matches))}
		for i, m := range matches {
			resp.Results[i] = toJSONMatches([]messi.Match{m})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

func toJSONMatches(ms []messi.Match) []jsonMatch {
	out := make([]jsonMatch, len(ms))
	for i, m := range ms {
		out[i] = jsonMatch{Position: m.Position, Distance: m.Distance}
	}
	return out
}

// readJSON decodes the request body, writing a 400 and reporting false on
// malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
