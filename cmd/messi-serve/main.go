// Command messi-serve builds a MESSI index over a dataset file and serves
// similarity queries over HTTP through a persistent query engine
// (messi.Engine) — the sustained-multi-query serving scenario, as opposed
// to messi-query's one-shot exploratory runs.
//
// Usage:
//
//	messi-gen -kind random -count 100000 -out data.bin
//	messi-serve -data data.bin -addr :8080
//	messi-serve -data data.bin -live -rebuild-threshold 50000
//	messi-gen   -kind random -count 100000 -snapshot index.snap
//	messi-serve -snapshot index.snap            # restart in seconds, no rebuild
//
// API (JSON over HTTP):
//
//	GET  /healthz         → 200 "ok" once the index is built/loaded, 503 "loading" before
//	GET  /readyz          → alias of /healthz for readiness probes
//	GET  /metrics         → Prometheus text-format metrics (see below)
//	GET  /v1/stats        → index shape, generation and delta occupancy, uptime,
//	                        queries served, admission-gate configuration
//	POST /v1/search       → {"query":[...], "k":5, "dtw":false, "window":0, "mode":"exact", "epsilon":0, "deadline_ms":0}
//	                      → {"matches":[{"position":..,"distance":..}], "exact":true, "epsilon_bound":...}
//	POST /v1/knn          → same request with k ≥ 1 required
//	POST /v1/query        → {"query":[...], "k":5}         → same response (legacy alias of /v1/search)
//	POST /v1/dtw          → {"query":[...], "window":0.1}  → same response with DTW forced on
//	POST /v1/query/batch  → {"queries":[[...],[...], ...]} → {"results":[[...],[...]]}
//	POST /v1/series       → {"series":[[...], ...]}        → {"first_position":..,"count":..} (live mode only)
//	POST /v1/snapshot     → {"path":"..."} (optional)      → {"path":..,"series":..,"bytes":..}
//
// Every query endpoint accepts the quality-spectrum fields: "mode" is one
// of "exact" (default), "approx", "epsilon", "deadline"; "epsilon" is the
// relative error budget for mode=epsilon; "deadline_ms" is the latency
// budget for mode=deadline. Responses report "exact" (whether the answer
// is provably exact) and, for inexact answers with a proven bound,
// "epsilon_bound". With -degrade-epsilon the admission gate serves
// exact-mode requests arriving under overload as ε-bounded ones instead
// of queueing them.
//
// Observability: GET /metrics serves the process's metrics registry in
// Prometheus text format — admission-gate pressure and outcomes, per-mode
// query latency histograms, cumulative pruning counters, per-route HTTP
// latency, live-index rebuild and snapshot I/O activity, plus basic Go
// runtime stats. Query endpoints additionally accept "counters": true
// (per-query operation counts in the response) and "trace": true (the
// full per-phase wall-time breakdown of the paper's Figure 13, plus
// counters and wall-clock latency, inline in the response). With
// -slow-query the server logs the full trace of any query slower than
// the threshold. Logs are structured (key=value via log/slog) and every
// HTTP response carries an X-Request-Id header that slow-query log lines
// reference.
//
// With -live the server runs a messi.LiveIndex: POST /v1/series appends
// new series that are searchable immediately, and a background rebuild
// merges them into the next index generation once the delta buffer
// crosses -rebuild-threshold. Without -live the index is immutable and
// /v1/series is not registered.
//
// With -wal DIR (live mode only) every acked append is journaled to a
// write-ahead log in DIR before it becomes searchable, and a restart
// replays the log tail on top of the boot snapshot — acked series
// survive a crash even when they never made it into a snapshot.
// -wal-sync selects the durability policy ("always" fsyncs per append
// and survives power loss; "interval" batches fsyncs; "none" relies on
// the OS page cache) and -wal-segment the rotation size. Snapshots
// written on flush, shutdown, or POST /v1/snapshot truncate the log's
// covered prefix, keeping replay time bounded.
//
// With -shards the index is partitioned across S independent shards built
// concurrently and queried by a fan-out with a shared pruning bound;
// /v1/stats then reports a per_shard breakdown. Answers are identical to
// an unsharded index.
//
// With -pprof the server additionally exposes net/http/pprof on a
// separate listener (keep it on loopback: it is unauthenticated), so the
// serving hot paths can be profiled in production:
//
//	messi-serve -data data.bin -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// With -snapshot the server boots from the named index snapshot when it
// exists (falling back to building from -data when it does not), and the
// same path is the default target of POST /v1/snapshot — so a serve →
// snapshot → restart cycle needs no other coordination. In live mode the
// snapshot is also rewritten automatically on flush and shutdown.
//
// The listener opens before the index is built or loaded, so health
// probes get an honest 503 during a long boot instead of a connection
// refused; every API endpoint returns 503 until the index is ready.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests, then closes the engine pool.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	messi "repro"
	"repro/internal/metrics"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("messi-serve", flag.ContinueOnError)
	var (
		dataPath  = fs.String("data", "", "dataset file to index (this or -snapshot is required)")
		snapPath  = fs.String("snapshot", "", "index snapshot: booted from when present, default target of POST /v1/snapshot")
		addr      = fs.String("addr", ":8080", "listen address")
		leafCap   = fs.Int("leaf", 0, "leaf capacity (default 2000)")
		pool      = fs.Int("pool", 0, "engine pool workers (default: search workers)")
		perQuery  = fs.Int("per-query", 0, "worker units per query (default: whole pool)")
		queues    = fs.Int("queues", 0, "priority queues per query (default 24)")
		admit     = fs.Int("admit", 0, "max concurrently executing queries (default pool/per-query)")
		degrade   = fs.Float64("degrade-epsilon", 0, "overload policy: serve exact queries arriving at a full admission gate as ε-bounded with this ε (0 disables)")
		normalize = fs.Bool("normalize", false, "z-normalize data and queries")
		liveMode  = fs.Bool("live", false, "serve a mutable live index accepting appends on POST /v1/series")
		shards    = fs.Int("shards", 0, "partition the index across this many shards (default 1)")
		threshold = fs.Int("rebuild-threshold", 0, "live mode: delta series triggering a background rebuild (default 100000)")
		walDir    = fs.String("wal", "", "live mode: write-ahead log directory — acked appends are journaled and replayed on restart")
		walSync   = fs.String("wal-sync", "always", "WAL durability policy: always (fsync per append), interval, or none")
		walSeg    = fs.Int64("wal-segment", 0, "WAL segment size in bytes before rotation (default 64 MiB)")
		slowQuery = fs.Duration("slow-query", 0, "log the full execution trace of queries slower than this (e.g. 250ms; 0 disables)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); keep it loopback-only, the listener is unauthenticated")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" && *snapPath == "" {
		return errors.New("one of -data or -snapshot is required")
	}
	if *walDir != "" && !*liveMode {
		return errors.New("-wal requires -live (only a live index journals appends)")
	}
	// A typo'd durability policy must fail at startup, not after a long
	// dataset load.
	if _, err := wal.ParseSyncPolicy(*walSync); err != nil {
		return err
	}
	if *pprofAddr != "" {
		// Profiling runs on its own listener so the debug surface never
		// shares a port (or a handler namespace) with the query API.
		_, stopPprof, err := startPprof(*pprofAddr)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	// One registry for the whole process: the engine, the live index, the
	// snapshot layer, and the HTTP layer all record into it, and
	// GET /metrics serves it.
	reg := messi.NewMetrics()
	messi.EnableSnapshotMetrics(reg)

	opts := &messi.Options{LeafCapacity: *leafCap, Normalize: *normalize, Shards: *shards}
	engOpts := messi.EngineOptions{
		PoolWorkers:    *pool,
		QueryWorkers:   *perQuery,
		Queues:         *queues,
		MaxConcurrent:  *admit,
		DegradeEpsilon: *degrade,
		Metrics:        reg,
	}

	// The listener opens before the index boots so health probes see an
	// honest 503 ("loading") instead of a connection refused during a
	// long build; the backend is installed once boot succeeds.
	s := newServer(reg, *snapPath, *slowQuery)
	srv := &http.Server{
		Handler: s,
		// Bound slow clients: a connection may not hold a goroutine and
		// fd forever by trickling bytes (batch bodies can be large, so
		// the full-request ReadTimeout stays generous).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	slog.Info("listening", "addr", ln.Addr().String())
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	// In live mode with a snapshot path, a graceful shutdown must not
	// lose series still sitting in the delta: Close alone snapshots only
	// the already-merged generation, so drain the delta first.
	persistOnShutdown := func() {}
	if *liveMode {
		lix, source, err := bootLive(*dataPath, *snapPath, opts, &messi.LiveOptions{
			RebuildThreshold: *threshold,
			SnapshotPath:     *snapPath,
			Engine:           engOpts,
			Metrics:          reg,
			WALDir:           *walDir,
			WALSync:          *walSync,
			WALSegmentBytes:  *walSeg,
		})
		if err != nil {
			srv.Close()
			return err
		}
		defer func() {
			// A failed close-time snapshot (or WAL close) is a durability
			// gap worth a log line even on the way out.
			if err := lix.Close(); err != nil {
				slog.Error("live index close failed", "err", err)
			}
		}()
		warnShardMismatch(*shards, lix.Stats().Shards)
		slog.Info("index ready", "source", source, "series", lix.Len(),
			"series_len", lix.SeriesLen(), "rebuild_threshold", *threshold, "wal", *walDir)
		s.install(&liveBackend{lix: lix})
		if *snapPath != "" {
			persistOnShutdown = func() {
				if err := lix.Save(*snapPath); err != nil {
					slog.Error("shutdown snapshot failed", "path", *snapPath, "err", err)
					return
				}
				slog.Info("shutdown snapshot saved", "path", *snapPath,
					"series", lix.Len(), "gen", lix.Stats().Generation)
			}
		}
	} else {
		ix, source, err := bootStatic(*dataPath, *snapPath, opts)
		if err != nil {
			srv.Close()
			return err
		}
		warnShardMismatch(*shards, ix.Shards())
		slog.Info("index ready", "source", source, "series", ix.Len(), "series_len", ix.SeriesLen())

		eng := ix.NewEngine(&engOpts)
		defer eng.Close()
		s.install(&engineBackend{eng: eng})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down", "addr", ln.Addr().String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	persistOnShutdown()
	return <-errc
}

// warnShardMismatch logs when the -shards flag disagrees with the served
// index's actual shard count — booting from an existing snapshot keeps
// the snapshot's own partition (a snapshot cannot be re-sharded on load),
// so the flag is silently superseded and the operator should know.
func warnShardMismatch(requested, actual int) {
	if requested > 0 && requested != actual {
		slog.Warn("-shards ignored: the loaded snapshot keeps its own partition; re-shard by rebuilding from -data",
			"requested", requested, "actual", actual)
	}
}

// startPprof serves the net/http/pprof handlers on their own listener —
// production hot paths can be profiled (CPU, heap, mutex, goroutine)
// without exposing the debug surface through the query API's port. It
// returns the bound address and a shutdown func. Registration is
// explicit on a private mux: the pprof package's import side effect
// touches only http.DefaultServeMux, which this binary never serves.
func startPprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			slog.Error("pprof server failed", "err", err)
		}
	}()
	slog.Info("pprof listening", "addr", ln.Addr().String())
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// boot resolves what the server serves: the snapshot when one is
// available, the dataset file otherwise. It returns a human-readable
// source description for the boot log. Load failures name the failing
// path — a dataset error is additionally logged before it aborts startup,
// so a restart loop is diagnosable from the server's own output, not
// just the exit status.
func boot[T any](dataPath, snapPath, loadedAs, builtAs string,
	loadSnap func(string) (T, error), build func(string) (T, error)) (T, string, error) {

	var zero T
	start := time.Now()
	if snapPath != "" {
		if _, err := os.Stat(snapPath); err == nil {
			ix, err := loadSnap(snapPath)
			if err != nil {
				return zero, "", fmt.Errorf("load snapshot %s: %w", snapPath, err)
			}
			return ix, fmt.Sprintf("%s %s in %v", loadedAs, snapPath, time.Since(start).Round(time.Millisecond)), nil
		}
		slog.Info("snapshot not found, building from dataset", "path", snapPath, "data", dataPath)
		if dataPath == "" {
			return zero, "", fmt.Errorf("snapshot %s does not exist and no -data to build from", snapPath)
		}
	}
	ix, err := build(dataPath)
	if err != nil {
		err = fmt.Errorf("load dataset %s: %w", dataPath, err)
		slog.Error("boot failed", "path", dataPath, "err", err)
		return zero, "", err
	}
	return ix, fmt.Sprintf("%s %s in %v", builtAs, dataPath, time.Since(start).Round(time.Millisecond)), nil
}

func bootStatic(dataPath, snapPath string, opts *messi.Options) (*messi.Index, string, error) {
	return boot(dataPath, snapPath, "loaded snapshot", "indexed",
		messi.Load,
		func(p string) (*messi.Index, error) { return messi.BuildFromFile(p, opts) })
}

// bootLive is bootStatic for -live mode: a snapshot becomes the live
// index's first generation, a dataset file is live-indexed from scratch.
func bootLive(dataPath, snapPath string, opts *messi.Options, lopts *messi.LiveOptions) (*messi.LiveIndex, string, error) {
	return boot(dataPath, snapPath, "loaded live snapshot", "live-indexed",
		func(p string) (*messi.LiveIndex, error) { return messi.LoadLive(p, opts, lopts) },
		func(p string) (*messi.LiveIndex, error) { return messi.BuildLiveFromFile(p, opts, lopts) })
}

// jsonMatch is the wire form of one answer.
type jsonMatch struct {
	Position int     `json:"position"`
	Distance float64 `json:"distance"`
}

// searchRequest is the wire form of a quality-spectrum query, shared by
// /v1/search, /v1/knn, /v1/query and /v1/dtw.
type searchRequest struct {
	Query      []float32 `json:"query"`
	K          int       `json:"k,omitempty"`
	DTW        bool      `json:"dtw,omitempty"`
	Window     float64   `json:"window,omitempty"`
	Mode       string    `json:"mode,omitempty"`
	Epsilon    float64   `json:"epsilon,omitempty"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	// Counters asks for per-query operation counts in the response;
	// Trace additionally asks for the per-phase wall-time breakdown and
	// the query's latency (a superset of Counters).
	Counters bool `json:"counters,omitempty"`
	Trace    bool `json:"trace,omitempty"`
}

// The legacy endpoints accept the same superset body.
type (
	queryRequest = searchRequest
	dtwRequest   = searchRequest
)

// toSearchRequest converts the wire form to the library request.
func (sr searchRequest) toSearchRequest() (messi.SearchRequest, error) {
	mode, err := messi.ParseMode(sr.Mode)
	if err != nil {
		return messi.SearchRequest{}, err
	}
	return messi.SearchRequest{
		Query:    sr.Query,
		K:        sr.K,
		DTW:      sr.DTW,
		Window:   sr.Window,
		Mode:     mode,
		Epsilon:  sr.Epsilon,
		Deadline: time.Duration(sr.DeadlineMS) * time.Millisecond,
		Counters: sr.Counters,
		Trace:    sr.Trace,
	}, nil
}

// jsonCounters is the wire form of per-query operation counts.
type jsonCounters struct {
	NodesVisited   int64 `json:"nodes_visited"`
	LowerBounds    int64 `json:"lower_bounds"`
	RealDistances  int64 `json:"real_distances"`
	LeavesInserted int64 `json:"leaves_inserted"`
	LeavesPruned   int64 `json:"leaves_pruned"`
	BSFUpdates     int64 `json:"bsf_updates"`
}

func toJSONCounters(c messi.QueryCounters) jsonCounters {
	return jsonCounters{
		NodesVisited:   c.NodesVisited,
		LowerBounds:    c.LowerBounds,
		RealDistances:  c.RealDistances,
		LeavesInserted: c.LeavesInserted,
		LeavesPruned:   c.LeavesPruned,
		BSFUpdates:     c.BSFUpdates,
	}
}

// jsonTracePhase is one Figure 13 phase timing in a trace response.
type jsonTracePhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// jsonTrace is the wire form of a per-query execution trace. Phase times
// are worker-seconds (phases run on many workers concurrently), so their
// sum can exceed elapsed_seconds.
type jsonTrace struct {
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Phases         []jsonTracePhase `json:"phases"`
	Counters       jsonCounters     `json:"counters"`
}

func toJSONTrace(tr *messi.Trace) *jsonTrace {
	out := &jsonTrace{
		ElapsedSeconds: tr.Elapsed.Seconds(),
		Phases:         make([]jsonTracePhase, len(tr.Phases)),
		Counters:       toJSONCounters(tr.Counters),
	}
	for i, p := range tr.Phases {
		out.Phases[i] = jsonTracePhase{Name: p.Name, Seconds: p.Duration.Seconds()}
	}
	return out
}

type queryResponse struct {
	Matches []jsonMatch `json:"matches"`
	// Exact reports whether the answer is provably exact; EpsilonBound is
	// the proven relative error bound for inexact answers that have one
	// (omitted when exact, or when nothing was proven — mode=approx and
	// deadline truncations).
	Exact        bool          `json:"exact"`
	EpsilonBound *float64      `json:"epsilon_bound,omitempty"`
	Counters     *jsonCounters `json:"counters,omitempty"`
	Trace        *jsonTrace    `json:"trace,omitempty"`
}

// toQueryResponse converts a library result to the wire form. +Inf (no
// proven bound) is not representable in JSON and means "omit".
func toQueryResponse(res messi.Result) queryResponse {
	resp := queryResponse{Matches: toJSONMatches(res.Matches), Exact: res.Exact}
	if !res.Exact && !math.IsInf(res.EpsilonBound, 1) {
		eb := res.EpsilonBound
		resp.EpsilonBound = &eb
	}
	if res.Counters != nil {
		c := toJSONCounters(*res.Counters)
		resp.Counters = &c
	}
	if res.Trace != nil {
		resp.Trace = toJSONTrace(res.Trace)
	}
	return resp
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
}

type batchResponse struct {
	Results [][]jsonMatch `json:"results"`
}

type appendRequest struct {
	Series [][]float32 `json:"series"`
}

type appendResponse struct {
	FirstPosition int `json:"first_position"`
	Count         int `json:"count"`
}

type snapshotRequest struct {
	Path string `json:"path,omitempty"`
}

type snapshotResponse struct {
	Path   string `json:"path"`
	Series int    `json:"series"`
	Bytes  int64  `json:"bytes"`
}

// admissionConfig is the engine's effective admission-gate configuration,
// reported by /v1/stats so operators can see the limits in force.
type admissionConfig struct {
	PoolWorkers    int     `json:"pool_workers"`
	QueryWorkers   int     `json:"query_workers"`
	Queues         int     `json:"queues"`
	MaxConcurrent  int     `json:"max_concurrent"`
	DegradeEpsilon float64 `json:"degrade_epsilon,omitempty"`
}

type statsResponse struct {
	Series        int          `json:"series"`
	SeriesLen     int          `json:"series_len"`
	RootChildren  int          `json:"root_children"`
	InternalNodes int          `json:"internal_nodes"`
	Leaves        int          `json:"leaves"`
	MaxDepth      int          `json:"max_depth"`
	MaxLeafFill   int          `json:"max_leaf_fill"`
	Shards        int          `json:"shards,omitempty"`    // >1 when sharded
	PerShard      []shardStats `json:"per_shard,omitempty"` // one entry per shard when sharded
	Live          bool         `json:"live"`
	Generation    int64        `json:"generation,omitempty"`
	BaseSeries    int          `json:"base_series,omitempty"`
	DeltaSeries   int          `json:"delta_series,omitempty"`
	Rebuilding    bool         `json:"rebuilding,omitempty"`
	// Server-level fields, filled by the HTTP layer (not the backend).
	UptimeSeconds float64          `json:"uptime_seconds,omitempty"`
	QueriesServed int64            `json:"queries_served,omitempty"`
	Admission     *admissionConfig `json:"admission,omitempty"`
}

// shardStats is one shard's slice of the stats (tree counts are per
// shard; the top-level fields aggregate them).
type shardStats struct {
	Shard       int `json:"shard"`
	Series      int `json:"series"`
	Leaves      int `json:"leaves"`
	MaxDepth    int `json:"max_depth"`
	MaxLeafFill int `json:"max_leaf_fill"`
}

// toShardStats converts the library's per-shard stats to the wire form.
func toShardStats(per []messi.Stats) []shardStats {
	out := make([]shardStats, len(per))
	for i, st := range per {
		out[i] = shardStats{
			Shard:       i,
			Series:      st.Series,
			Leaves:      st.Leaves,
			MaxDepth:    st.MaxDepth,
			MaxLeafFill: st.MaxLeafFill,
		}
	}
	return out
}

// backend abstracts the two serving modes: a static index behind the
// persistent engine, or a mutable live index accepting appends.
type backend interface {
	// do answers one quality-spectrum query; the context's cancellation
	// and deadline thread into the search.
	do(ctx context.Context, req messi.SearchRequest) (messi.Result, error)
	queryBatch(qs [][]float32) ([]messi.Match, error)
	stats() statsResponse
	// engineOptions reports the effective admission-gate configuration.
	engineOptions() messi.EngineOptions
	// snapshot persists the served index to path (atomically) and
	// reports how many series it covers. Live backends flush first, so
	// the snapshot includes everything appended so far.
	snapshot(path string) (int, error)
}

// appender is implemented by backends that accept new series (live mode).
type appender interface {
	appendSeries(rows [][]float32) (int, error)
}

// engineBackend serves an immutable index through messi.Engine.
type engineBackend struct {
	eng *messi.Engine
}

func (b *engineBackend) do(ctx context.Context, req messi.SearchRequest) (messi.Result, error) {
	return b.eng.Do(ctx, req)
}
func (b *engineBackend) queryBatch(qs [][]float32) ([]messi.Match, error) {
	return b.eng.QueryBatch(qs)
}
func (b *engineBackend) engineOptions() messi.EngineOptions { return b.eng.Options() }
func (b *engineBackend) snapshot(path string) (int, error) {
	ix := b.eng.Index()
	if err := ix.Save(path); err != nil {
		return 0, err
	}
	return ix.Len(), nil
}
func (b *engineBackend) stats() statsResponse {
	ix := b.eng.Index()
	st := ix.Stats()
	resp := statsResponse{
		Series:        st.Series,
		SeriesLen:     ix.SeriesLen(),
		RootChildren:  st.RootChildren,
		InternalNodes: st.InternalNodes,
		Leaves:        st.Leaves,
		MaxDepth:      st.MaxDepth,
		MaxLeafFill:   st.MaxLeafFill,
	}
	if ix.Shards() > 1 {
		resp.Shards = ix.Shards()
		resp.PerShard = toShardStats(ix.ShardStats())
	}
	return resp
}

// liveBackend serves a messi.LiveIndex (streaming ingestion mode).
type liveBackend struct {
	lix *messi.LiveIndex
}

func (b *liveBackend) do(ctx context.Context, req messi.SearchRequest) (messi.Result, error) {
	return b.lix.Do(ctx, req)
}
func (b *liveBackend) queryBatch(qs [][]float32) ([]messi.Match, error) {
	// A fixed submitter fleet claiming queries via Fetch&Inc, mirroring
	// Engine.SearchBatch: the engine's admission control caps useful
	// parallelism downstream, this just keeps the pipe full.
	out := make([]messi.Match, len(qs))
	errs := make([]error, len(qs))
	submitters := 8
	if submitters > len(qs) {
		submitters = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				res, err := b.lix.Do(context.Background(), messi.SearchRequest{Query: qs[i]})
				if err == nil {
					out[i] = res.Best()
				}
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return out, nil
}
func (b *liveBackend) appendSeries(rows [][]float32) (int, error) {
	return b.lix.AppendBatch(rows)
}
func (b *liveBackend) engineOptions() messi.EngineOptions { return b.lix.EngineOptions() }
func (b *liveBackend) snapshot(path string) (int, error) {
	if err := b.lix.Save(path); err != nil {
		return 0, err
	}
	return b.lix.Len(), nil
}
func (b *liveBackend) stats() statsResponse {
	st := b.lix.Stats()
	resp := statsResponse{
		Series:        st.Series,
		SeriesLen:     b.lix.SeriesLen(),
		RootChildren:  st.Index.RootChildren,
		InternalNodes: st.Index.InternalNodes,
		Leaves:        st.Index.Leaves,
		MaxDepth:      st.Index.MaxDepth,
		MaxLeafFill:   st.Index.MaxLeafFill,
		Live:          true,
		Generation:    st.Generation,
		BaseSeries:    st.BaseSeries,
		DeltaSeries:   st.DeltaSeries,
		Rebuilding:    st.Rebuilding,
	}
	if st.Shards > 1 {
		resp.Shards = st.Shards
		resp.PerShard = toShardStats(st.PerShard)
	}
	return resp
}

// backendBox wraps the backend interface for atomic.Pointer.
type backendBox struct{ b backend }

// server is the HTTP layer around a serving backend: routing, readiness
// gating, per-route latency metrics, request IDs, and slow-query trace
// logging. The backend is installed only after boot completes, so every
// endpoint (including the health probes) answers 503 while a snapshot
// load or index build is still running behind an already-open listener.
type server struct {
	mux   *http.ServeMux
	reg   *messi.Metrics
	start time.Time

	backend atomic.Pointer[backendBox] // nil until install

	defaultSnapshotPath string        // -snapshot: POST /v1/snapshot target when the body names none
	slowQuery           time.Duration // -slow-query: trace-log threshold (0 disables)

	queries atomic.Int64 // quality-spectrum and batch queries answered
	reqID   atomic.Int64 // X-Request-Id source
}

// newServer builds the HTTP API recording into reg. The returned server
// is not ready (everything 503s) until install is called with a backend.
func newServer(reg *messi.Metrics, defaultSnapshotPath string, slowQuery time.Duration) *server {
	s := &server{
		mux:                 http.NewServeMux(),
		reg:                 reg,
		start:               time.Now(),
		defaultSnapshotPath: defaultSnapshotPath,
		slowQuery:           slowQuery,
	}
	s.routes()
	return s
}

// install makes b the serving backend; the server reports ready from now
// on. Safe to call while requests are in flight.
func (s *server) install(b backend) { s.backend.Store(&backendBox{b: b}) }

// current returns the serving backend, or nil before install.
func (s *server) current() backend {
	if box := s.backend.Load(); box != nil {
		return box.b
	}
	return nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// newHandler builds a ready HTTP API around a backend with a private
// metrics registry — the embedding/test entry point. run() instead wires
// one shared registry through every layer and installs the backend only
// after boot.
func newHandler(b backend, defaultSnapshotPath string) http.Handler {
	s := newServer(messi.NewMetrics(), defaultSnapshotPath, 0)
	s.install(b)
	return s
}

// servedRoutes returns every route pattern the server registers, in
// documentation order — the single source of truth the README's endpoint
// table is checked against (TestREADMEDocumentsServedRoutes). routes()
// panics if this list and the handler map ever disagree, so a route
// cannot be added in one place only.
func servedRoutes() []string {
	return []string{
		"GET /healthz",
		"GET /readyz",
		"GET /metrics",
		"GET /v1/stats",
		"POST /v1/search",
		"POST /v1/knn",
		"POST /v1/query",
		"POST /v1/dtw",
		"POST /v1/query/batch",
		"POST /v1/series",
		"POST /v1/snapshot",
	}
}

func (s *server) routes() {
	health := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.current() == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "loading")
			return
		}
		fmt.Fprintln(w, "ok")
	}
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":    health,
		"GET /readyz":     health, // alias for readiness probes
		"GET /metrics":    s.handleMetrics,
		"GET /v1/stats":   s.handleStats,
		"POST /v1/search": s.searchHandler(nil),
		"POST /v1/query":  s.searchHandler(nil), // legacy alias of /v1/search
		"POST /v1/knn": s.searchHandler(func(sr *searchRequest) error {
			if sr.K < 1 {
				return fmt.Errorf("k must be at least 1, got %d", sr.K)
			}
			return nil
		}),
		"POST /v1/dtw": s.searchHandler(func(sr *searchRequest) error {
			sr.DTW = true
			return nil
		}),
		"POST /v1/query/batch": s.handleBatch,
		"POST /v1/snapshot":    s.handleSnapshot,
		"POST /v1/series":      s.handleAppend,
	}
	served := servedRoutes()
	if len(handlers) != len(served) {
		panic(fmt.Sprintf("servedRoutes lists %d routes, handlers map has %d", len(served), len(handlers)))
	}
	for _, pattern := range served {
		h, ok := handlers[pattern]
		if !ok {
			panic("servedRoutes lists " + pattern + " but no handler is registered for it")
		}
		s.route(pattern, h)
	}
}

// route registers one endpoint wrapped with per-route telemetry: a
// latency histogram and per-status-class request counters labeled with
// the route path (a fixed set, so label cardinality is bounded), plus a
// request ID issued into the context and echoed as X-Request-Id.
func (s *server) route(pattern string, h http.HandlerFunc) {
	path := pattern[strings.IndexByte(pattern, ' ')+1:]
	dur := s.reg.Histogram("messi_http_request_seconds",
		"Wall time of HTTP requests by route.", metrics.L("path", path))
	var classes [5]*metrics.Counter
	for i := range classes {
		classes[i] = s.reg.Counter("messi_http_requests_total",
			"HTTP requests served, by route and status class.",
			metrics.L("path", path), metrics.L("code", fmt.Sprintf("%dxx", i+1)))
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%08x", s.reqID.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
		dur.Observe(time.Since(start))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if c := status/100 - 1; c >= 0 && c < len(classes) {
			classes[c].Inc()
		}
	})
}

// statusWriter records the status code for the per-route counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// reqIDKey carries the per-request ID through the context.
type reqIDKey struct{}

// requestID returns the request's ID, or "" outside a routed request.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// readyBackend returns the serving backend, writing a 503 and returning
// nil while the index is still booting.
func (s *server) readyBackend(w http.ResponseWriter) backend {
	b := s.current()
	if b == nil {
		writeError(w, http.StatusServiceUnavailable, "index is still loading")
	}
	return b
}

// handleMetrics serves the registry plus Go runtime stats in Prometheus
// text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		return // client went away mid-scrape; nothing to salvage
	}
	_ = messi.WriteRuntimeMetrics(w)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	b := s.readyBackend(w)
	if b == nil {
		return
	}
	resp := b.stats()
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.QueriesServed = s.queries.Load()
	eo := b.engineOptions()
	resp.Admission = &admissionConfig{
		PoolWorkers:    eo.PoolWorkers,
		QueryWorkers:   eo.QueryWorkers,
		Queues:         eo.Queues,
		MaxConcurrent:  eo.MaxConcurrent,
		DegradeEpsilon: eo.DegradeEpsilon,
	}
	writeJSON(w, http.StatusOK, resp)
}

// searchHandler serves the whole quality spectrum; prep adjusts the
// decoded request for endpoint-specific contracts (forcing DTW on for
// /v1/dtw, requiring k for /v1/knn) before it reaches the library.
func (s *server) searchHandler(prep func(*searchRequest) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		b := s.readyBackend(w)
		if b == nil {
			return
		}
		var req searchRequest
		if !readJSON(w, r, &req) {
			return
		}
		if prep != nil {
			if err := prep(&req); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		mreq, err := req.toSearchRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Slow-query logging needs the trace even when the client did not
		// ask for one: collect it unconditionally and strip it from the
		// response below.
		wantTrace := mreq.Trace
		if s.slowQuery > 0 {
			mreq.Trace = true
		}
		start := time.Now()
		res, err := b.do(r.Context(), mreq)
		elapsed := time.Since(start)
		s.queries.Add(1)
		if err != nil {
			writeError(w, errorStatus(err), err.Error())
			return
		}
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			s.logSlowQuery(r, mreq, res, elapsed)
		}
		if !wantTrace {
			res.Trace = nil
		}
		writeJSON(w, http.StatusOK, toQueryResponse(res))
	}
}

// logSlowQuery logs the full execution trace of one slow query: what it
// asked for, how long it ran, and where the time and the work went.
func (s *server) logSlowQuery(r *http.Request, req messi.SearchRequest, res messi.Result, elapsed time.Duration) {
	attrs := []any{
		"id", requestID(r.Context()),
		"path", r.URL.Path,
		"elapsed", elapsed,
		"mode", req.Mode.String(),
		"k", req.K,
		"dtw", req.DTW,
		"exact", res.Exact,
	}
	if tr := res.Trace; tr != nil {
		for _, p := range tr.Phases {
			attrs = append(attrs, phaseKey(p.Name), p.Duration)
		}
		c := tr.Counters
		attrs = append(attrs,
			"nodes_visited", c.NodesVisited,
			"lower_bounds", c.LowerBounds,
			"real_distances", c.RealDistances,
			"leaves_inserted", c.LeavesInserted,
			"leaves_pruned", c.LeavesPruned,
			"bsf_updates", c.BSFUpdates,
		)
	}
	slog.Warn("slow query", attrs...)
}

// phaseKey turns a Figure 13 phase label into a log attribute key
// ("MESSI tree pass" → "messi_tree_pass").
func phaseKey(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "_"))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	b := s.readyBackend(w)
	if b == nil {
		return
	}
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be non-empty")
		return
	}
	matches, err := b.queryBatch(req.Queries)
	s.queries.Add(int64(len(req.Queries)))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := batchResponse{Results: make([][]jsonMatch, len(matches))}
	for i, m := range matches {
		resp.Results[i] = toJSONMatches([]messi.Match{m})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	b := s.readyBackend(w)
	if b == nil {
		return
	}
	// The body is optional: an empty POST snapshots to the default.
	var req snapshotRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	path := req.Path
	if path == "" {
		path = s.defaultSnapshotPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no snapshot path: pass {\"path\":...} or start with -snapshot")
		return
	}
	series, err := b.snapshot(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Path: path, Series: series, Bytes: snapshotSize(path)})
}

// handleAppend serves POST /v1/series. The route always exists (so it
// can 503 during boot like everything else), but a backend that cannot
// append — static mode — answers 404 exactly as when the route was not
// registered at all.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	b := s.readyBackend(w)
	if b == nil {
		return
	}
	app, ok := b.(appender)
	if !ok {
		http.NotFound(w, r)
		return
	}
	var req appendRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Series) == 0 {
		writeError(w, http.StatusBadRequest, "series must be non-empty")
		return
	}
	first, err := app.appendSeries(req.Series)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, appendResponse{FirstPosition: first, Count: len(req.Series)})
}

// snapshotSize reports the on-disk size of a snapshot: the file's size,
// or for a sharded snapshot directory the sum of the files inside it
// (a bare directory Stat would report the inode size, ~4 KiB).
func snapshotSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	if !fi.IsDir() {
		return fi.Size()
	}
	var total int64
	entries, err := os.ReadDir(path)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			total += info.Size()
		}
	}
	return total
}

func toJSONMatches(ms []messi.Match) []jsonMatch {
	out := make([]jsonMatch, len(ms))
	for i, m := range ms {
		out[i] = jsonMatch{Position: m.Position, Distance: m.Distance}
	}
	return out
}

// readJSON decodes the request body, writing a 400 and reporting false on
// malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("write response failed", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// errorStatus classifies a query error: the library's typed sentinels are
// the client's fault (400), a context torn down mid-query maps to 503,
// and anything else is the server's problem (500).
func errorStatus(err error) int {
	switch {
	case errors.Is(err, messi.ErrBadK),
		errors.Is(err, messi.ErrBadWindow),
		errors.Is(err, messi.ErrWrongLength),
		errors.Is(err, messi.ErrBadEpsilon):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
