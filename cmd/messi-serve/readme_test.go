package main

import (
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	messi "repro"
)

// readmeRoutes parses the endpoint table in README.md into a set of
// "METHOD /path" patterns. Table rows look like:
//
//	| `/v1/search` | POST | ... |
func readmeRoutes(t *testing.T) map[string]bool {
	t.Helper()
	b, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `(/[^`]*)` \\| ([A-Z]+) \\|")
	routes := map[string]bool{}
	for _, line := range strings.Split(string(b), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			routes[m[2]+" "+m[1]] = true
		}
	}
	if len(routes) == 0 {
		t.Fatal("no endpoint table rows found in README.md — did the table format change?")
	}
	return routes
}

// TestREADMEDocumentsServedRoutes pins the README's endpoint table to the
// routes the server actually registers, in both directions: every served
// route is documented, and nothing documented is unserved.
func TestREADMEDocumentsServedRoutes(t *testing.T) {
	documented := readmeRoutes(t)
	served := map[string]bool{}
	for _, pattern := range servedRoutes() {
		served[pattern] = true
		if !documented[pattern] {
			t.Errorf("served route %q is missing from README.md's endpoint table", pattern)
		}
	}
	for pattern := range documented {
		if !served[pattern] {
			t.Errorf("README.md documents %q but the server does not register it", pattern)
		}
	}
}

// TestServedRoutesRegister drives every listed route through the real
// mux: each must resolve to a registered pattern (not the catch-all 404),
// proving servedRoutes() and routes() stay in lockstep.
func TestServedRoutesRegister(t *testing.T) {
	s := newServer(messi.NewMetrics(), "", 0)
	for _, pattern := range servedRoutes() {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("malformed route pattern %q", pattern)
		}
		_, got := s.mux.Handler(httptest.NewRequest(method, path, nil))
		if got != pattern {
			t.Errorf("route %q resolves to mux pattern %q", pattern, got)
		}
	}
}
