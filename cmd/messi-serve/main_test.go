package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	messi "repro"
)

// doer is the unified query method shared by Index and LiveIndex.
type doer interface {
	Do(context.Context, messi.SearchRequest) (messi.Result, error)
}

// exactDo answers a request through the library's unified API, failing
// the test on error — the reference answer served responses must match.
func exactDo(t *testing.T, ix doer, req messi.SearchRequest) messi.Result {
	t.Helper()
	res, err := ix.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustSeries fetches an indexed series, failing the test on range errors.
func mustSeries(t *testing.T, ix *messi.Index, pos int) []float32 {
	t.Helper()
	s, err := ix.Series(pos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestHandler builds a small index and the HTTP API around it.
func newTestHandler(t *testing.T) (http.Handler, *messi.Index) {
	t.Helper()
	data := messi.RandomWalk(1500, 64, 11)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&messi.EngineOptions{PoolWorkers: 4})
	t.Cleanup(eng.Close)
	return newHandler(&engineBackend{eng: eng}, ""), ix
}

// newLiveTestHandler builds a small live index and the HTTP API around it.
func newLiveTestHandler(t *testing.T) (http.Handler, *messi.LiveIndex) {
	t.Helper()
	data := messi.RandomWalk(800, 64, 12)
	lix, err := messi.BuildLiveFlat(data, 64, &messi.Options{LeafCapacity: 64, SearchWorkers: 4},
		&messi.LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lix.Close() })
	return newHandler(&liveBackend{lix: lix}, ""), lix
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func decode[T any](t *testing.T, rr *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rr.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	h, _ := newTestHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rr.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: status %d, body %s", rr.Code, rr.Body)
	}
	st := decode[statsResponse](t, rr)
	if st.Series != ix.Len() || st.SeriesLen != ix.SeriesLen() {
		t.Fatalf("stats %+v do not match index %d×%d", st, ix.Len(), ix.SeriesLen())
	}
	if st.Leaves == 0 {
		t.Fatal("stats report zero leaves")
	}
	if st.MaxLeafFill != ix.Stats().MaxLeafFill || st.MaxLeafFill == 0 {
		t.Fatalf("stats max_leaf_fill = %d, index reports %d", st.MaxLeafFill, ix.Stats().MaxLeafFill)
	}
	if st.Live {
		t.Fatal("static index reported live=true")
	}
}

// TestAppendNotRegisteredStatic: /v1/series must not exist without -live.
func TestAppendNotRegisteredStatic(t *testing.T) {
	h, _ := newTestHandler(t)
	rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{make([]float32, 64)}})
	if rr.Code == http.StatusOK {
		t.Fatalf("static handler accepted an append (status %d)", rr.Code)
	}
}

// TestLiveAppendAndQuery: appended series are immediately searchable and
// the live stats expose generation and delta occupancy.
func TestLiveAppendAndQuery(t *testing.T) {
	h, lix := newLiveTestHandler(t)

	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 1000 + float32(i)
	}
	rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{novel}})
	if rr.Code != http.StatusOK {
		t.Fatalf("append: status %d, body %s", rr.Code, rr.Body)
	}
	ar := decode[appendResponse](t, rr)
	if ar.FirstPosition != 800 || ar.Count != 1 {
		t.Fatalf("append response %+v, want first_position 800 count 1", ar)
	}

	rr = postJSON(t, h, "/v1/query", queryRequest{Query: novel})
	if rr.Code != http.StatusOK {
		t.Fatalf("query: status %d, body %s", rr.Code, rr.Body)
	}
	qr := decode[queryResponse](t, rr)
	if len(qr.Matches) != 1 || qr.Matches[0].Position != 800 || qr.Matches[0].Distance != 0 {
		t.Fatalf("freshly appended series not found: %+v", qr.Matches)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	srr := httptest.NewRecorder()
	h.ServeHTTP(srr, req)
	st := decode[statsResponse](t, srr)
	if !st.Live || st.Series != 801 || st.DeltaSeries != 1 || st.BaseSeries != 800 || st.Generation != 1 {
		t.Fatalf("live stats %+v", st)
	}

	// After a flush the appended series is part of the next generation.
	if err := lix.Flush(); err != nil {
		t.Fatal(err)
	}
	srr = httptest.NewRecorder()
	h.ServeHTTP(srr, req)
	st = decode[statsResponse](t, srr)
	if st.DeltaSeries != 0 || st.BaseSeries != 801 || st.Generation != 2 {
		t.Fatalf("post-flush live stats %+v", st)
	}
	rr = postJSON(t, h, "/v1/query", queryRequest{Query: novel})
	qr = decode[queryResponse](t, rr)
	if len(qr.Matches) != 1 || qr.Matches[0].Position != 800 || qr.Matches[0].Distance != 0 {
		t.Fatalf("appended series lost across rebuild: %+v", qr.Matches)
	}
}

// TestLiveWALRestartRecoversAppends: series appended over HTTP into a
// WAL-backed live index survive a crash (no flush, no snapshot) and are
// searchable again after the reboot.
func TestLiveWALRestartRecoversAppends(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	lopts := &messi.LiveOptions{RebuildThreshold: 1 << 30, ScanWorkers: 2, WALDir: walDir}
	lix, err := messi.NewLive(64, &messi.Options{LeafCapacity: 64, SearchWorkers: 2}, lopts)
	if err != nil {
		t.Fatal(err)
	}
	h := newHandler(&liveBackend{lix: lix}, "")
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 100 + float32(i)
	}
	if rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{novel}}); rr.Code != http.StatusOK {
		t.Fatalf("append: status %d, body %s", rr.Code, rr.Body)
	}
	lix.Close() // crash: nothing was ever flushed or snapshotted

	rec, err := messi.NewLive(64, &messi.Options{LeafCapacity: 64, SearchWorkers: 2}, lopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rec.Close() })
	if rec.Len() != 1 {
		t.Fatalf("recovered %d series, want 1", rec.Len())
	}
	h = newHandler(&liveBackend{lix: rec}, "")
	rr := postJSON(t, h, "/v1/query", queryRequest{Query: novel})
	if rr.Code != http.StatusOK {
		t.Fatalf("query after reboot: status %d, body %s", rr.Code, rr.Body)
	}
	qr := decode[queryResponse](t, rr)
	if len(qr.Matches) != 1 || qr.Matches[0].Position != 0 || qr.Matches[0].Distance != 0 {
		t.Fatalf("journaled series not recovered: %+v", qr.Matches)
	}
}

// TestLiveBatchEndpoint: batch answers in live mode match one-shot live
// searches, including over freshly appended series.
func TestLiveBatchEndpoint(t *testing.T) {
	h, lix := newLiveTestHandler(t)
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = -500 - float32(i)
	}
	if rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{novel}}); rr.Code != http.StatusOK {
		t.Fatalf("append: status %d, body %s", rr.Code, rr.Body)
	}
	queries := make([][]float32, 5)
	for i := range queries {
		s, err := lix.Series(i * 150)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = make([]float32, 64)
		copy(queries[i], s)
	}
	queries = append(queries, novel)
	rr := postJSON(t, h, "/v1/query/batch", batchRequest{Queries: queries})
	if rr.Code != http.StatusOK {
		t.Fatalf("live batch: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[batchResponse](t, rr)
	if len(resp.Results) != len(queries) {
		t.Fatalf("live batch returned %d results, want %d", len(resp.Results), len(queries))
	}
	for i, ms := range resp.Results {
		want := exactDo(t, lix, messi.SearchRequest{Query: queries[i]}).Best()
		if len(ms) != 1 || ms[0].Position != want.Position {
			t.Fatalf("live batch result %d: served %+v, library %+v", i, ms, want)
		}
	}
	if last := resp.Results[len(queries)-1][0]; last.Position != 800 || last.Distance != 0 {
		t.Fatalf("batch did not find the appended series: %+v", last)
	}
}

// TestLiveBadAppends: malformed append bodies are rejected.
func TestLiveBadAppends(t *testing.T) {
	h, _ := newLiveTestHandler(t)
	if rr := postJSON(t, h, "/v1/series", appendRequest{}); rr.Code != http.StatusBadRequest {
		t.Errorf("empty append: status %d, want 400", rr.Code)
	}
	if rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{{1, 2}}}); rr.Code != http.StatusBadRequest {
		t.Errorf("short series append: status %d, want 400", rr.Code)
	}
}

// TestQueryEndpoint: the served 1-NN answer must equal the library answer.
func TestQueryEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 123))
	want := exactDo(t, ix, messi.SearchRequest{Query: q}).Best()

	rr := postJSON(t, h, "/v1/query", queryRequest{Query: q})
	if rr.Code != http.StatusOK {
		t.Fatalf("query: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if len(resp.Matches) != 1 {
		t.Fatalf("query returned %d matches, want 1", len(resp.Matches))
	}
	if got := resp.Matches[0]; got.Position != want.Position || got.Distance != want.Distance {
		t.Fatalf("served %+v, library %+v", got, want)
	}
}

func TestQueryKNNEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 7))
	want := exactDo(t, ix, messi.SearchRequest{Query: q, K: 3}).Matches

	rr := postJSON(t, h, "/v1/query", queryRequest{Query: q, K: 3})
	if rr.Code != http.StatusOK {
		t.Fatalf("k-NN query: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if len(resp.Matches) != len(want) {
		t.Fatalf("k-NN returned %d matches, want %d", len(resp.Matches), len(want))
	}
	for i, m := range resp.Matches {
		if m.Position != want[i].Position || m.Distance != want[i].Distance {
			t.Fatalf("k-NN match %d: served %+v, library %+v", i, m, want[i])
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	queries := make([][]float32, 4)
	for i := range queries {
		queries[i] = make([]float32, 64)
		copy(queries[i], mustSeries(t, ix, i*100))
	}
	rr := postJSON(t, h, "/v1/query/batch", batchRequest{Queries: queries})
	if rr.Code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[batchResponse](t, rr)
	if len(resp.Results) != len(queries) {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), len(queries))
	}
	for i, ms := range resp.Results {
		want := exactDo(t, ix, messi.SearchRequest{Query: queries[i]}).Best()
		if len(ms) != 1 || ms[0].Position != want.Position {
			t.Fatalf("batch result %d: served %+v, library %+v", i, ms, want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	h, _ := newTestHandler(t)
	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
	}{
		{"malformed JSON", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader([]byte("{nope")))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			return rr
		}},
		{"wrong query length", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/v1/query", queryRequest{Query: make([]float32, 7)})
		}},
		{"negative k", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/v1/query", queryRequest{Query: make([]float32, 64), K: -2})
		}},
		{"empty batch", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/v1/query/batch", batchRequest{})
		}},
		{"batch with bad query", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/v1/query/batch", batchRequest{Queries: [][]float32{make([]float32, 5)}})
		}},
	}
	for _, tc := range cases {
		if rr := tc.do(); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rr.Code, rr.Body)
		}
	}
}

// TestRunFlagValidation: run() rejects a missing -data without starting.
func TestRunFlagValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("run without -data or -snapshot did not error")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-data", "/nonexistent/file.bin"}); err == nil {
		t.Fatal("run with missing dataset file did not error")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-data", "x.bin", "-wal", "wal"}); err == nil ||
		!strings.Contains(err.Error(), "-live") {
		t.Fatalf("run with -wal but no -live: err = %v, want a -live hint", err)
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-data", "/nonexistent/file.bin",
		"-live", "-wal", "wal", "-wal-sync", "sometimes"}); err == nil ||
		!strings.Contains(err.Error(), "sync policy") {
		t.Fatalf("run with bad -wal-sync: err = %v, want a sync policy error", err)
	}
}

// TestRunLiveDatasetLoadError: a bad dataset in -live mode must abort
// startup with an error naming the failing path (and run's caller exits
// non-zero on it) — not fail silently before the listener opens.
func TestRunLiveDatasetLoadError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.bin")
	err := run([]string{"-addr", "127.0.0.1:0", "-live", "-data", missing})
	if err == nil {
		t.Fatal("run -live with missing dataset file did not error")
	}
	if !strings.Contains(err.Error(), missing) {
		t.Fatalf("error %q does not name the failing path %q", err, missing)
	}

	// Same for a present-but-corrupt dataset file.
	corrupt := filepath.Join(t.TempDir(), "corrupt.bin")
	if err := os.WriteFile(corrupt, []byte("this is not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-addr", "127.0.0.1:0", "-live", "-data", corrupt})
	if err == nil {
		t.Fatal("run -live with corrupt dataset file did not error")
	}
	if !strings.Contains(err.Error(), corrupt) {
		t.Fatalf("error %q does not name the failing path %q", err, corrupt)
	}
}

// TestSnapshotEndpointAndBoot: POST /v1/snapshot writes a loadable
// snapshot, and bootStatic prefers it over rebuilding.
func TestSnapshotEndpointAndBoot(t *testing.T) {
	h, ix := newTestHandler(t)
	path := filepath.Join(t.TempDir(), "served.snap")

	rr := postJSON(t, h, "/v1/snapshot", snapshotRequest{Path: path})
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d, body %s", rr.Code, rr.Body)
	}
	sr := decode[snapshotResponse](t, rr)
	if sr.Path != path || sr.Series != ix.Len() || sr.Bytes == 0 {
		t.Fatalf("snapshot response %+v", sr)
	}

	loaded, err := messi.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 42))
	want := exactDo(t, ix, messi.SearchRequest{Query: q}).Best()
	got := exactDo(t, loaded, messi.SearchRequest{Query: q}).Best()
	if got != want {
		t.Fatalf("loaded snapshot answered %+v, served index %+v", got, want)
	}

	// bootStatic: snapshot present → loaded (no -data needed).
	booted, source, err := bootStatic("", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if booted.Len() != ix.Len() {
		t.Fatalf("booted %d series, want %d", booted.Len(), ix.Len())
	}
	if !strings.Contains(source, "snapshot") {
		t.Fatalf("boot source %q does not mention the snapshot", source)
	}
	// Snapshot absent and no data: a startup error, not a silent build.
	if _, _, err := bootStatic("", filepath.Join(t.TempDir(), "missing.snap"), nil); err == nil {
		t.Fatal("bootStatic with missing snapshot and no data did not error")
	}
}

// TestSnapshotEndpointDefaults: empty body uses the -snapshot default;
// no default at all is a 400.
func TestSnapshotEndpointDefaults(t *testing.T) {
	h, _ := newTestHandler(t) // constructed with no default path
	rr := postJSON(t, h, "/v1/snapshot", snapshotRequest{})
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("snapshot without any path: status %d, want 400", rr.Code)
	}

	data := messi.RandomWalk(900, 64, 13)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&messi.EngineOptions{PoolWorkers: 4})
	t.Cleanup(eng.Close)
	def := filepath.Join(t.TempDir(), "default.snap")
	hd := newHandler(&engineBackend{eng: eng}, def)

	req := httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil)
	rr = httptest.NewRecorder()
	hd.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot to default: status %d, body %s", rr.Code, rr.Body)
	}
	if sr := decode[snapshotResponse](t, rr); sr.Path != def {
		t.Fatalf("snapshot wrote to %q, want default %q", sr.Path, def)
	}
	if _, err := messi.Load(def); err != nil {
		t.Fatalf("default-path snapshot not loadable: %v", err)
	}
}

// TestLiveSnapshotEndpoint: in live mode the endpoint flushes first, so
// freshly appended series are part of the snapshot, and bootLive resumes
// from it.
func TestLiveSnapshotEndpoint(t *testing.T) {
	h, lix := newLiveTestHandler(t)
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 777 + float32(i)
	}
	if rr := postJSON(t, h, "/v1/series", appendRequest{Series: [][]float32{novel}}); rr.Code != http.StatusOK {
		t.Fatalf("append: status %d, body %s", rr.Code, rr.Body)
	}
	path := filepath.Join(t.TempDir(), "live.snap")
	rr := postJSON(t, h, "/v1/snapshot", snapshotRequest{Path: path})
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d, body %s", rr.Code, rr.Body)
	}
	if sr := decode[snapshotResponse](t, rr); sr.Series != lix.Len() {
		t.Fatalf("snapshot response %+v, want %d series", sr, lix.Len())
	}

	booted, source, err := bootLive("", path, nil, &messi.LiveOptions{ScanWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer booted.Close()
	if !strings.Contains(source, "snapshot") {
		t.Fatalf("boot source %q does not mention the snapshot", source)
	}
	m, err := booted.Search(novel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 800 || m.Distance != 0 {
		t.Fatalf("appended series missing from live snapshot boot: %+v", m)
	}
}

func TestPprofListener(t *testing.T) {
	addr, stop, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %.200s", body)
	}
}

// TestDTWEndpoint: the served DTW answer equals the library answer, on
// both the static and the live backend.
func TestDTWEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 55))
	want := exactDo(t, ix, messi.SearchRequest{Query: q, DTW: true, Window: 0.1}).Best()
	rr := postJSON(t, h, "/v1/dtw", dtwRequest{Query: q, Window: 0.1})
	if rr.Code != http.StatusOK {
		t.Fatalf("dtw: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if len(resp.Matches) != 1 || resp.Matches[0].Position != want.Position || resp.Matches[0].Distance != want.Distance {
		t.Fatalf("served %+v, library %+v", resp.Matches, want)
	}

	lh, lix := newLiveTestHandler(t)
	lq := make([]float32, 64)
	ls, err := lix.Series(7)
	if err != nil {
		t.Fatal(err)
	}
	copy(lq, ls)
	lwant := exactDo(t, lix, messi.SearchRequest{Query: lq, DTW: true, Window: 0.1}).Best()
	rr = postJSON(t, lh, "/v1/dtw", dtwRequest{Query: lq, Window: 0.1})
	if rr.Code != http.StatusOK {
		t.Fatalf("live dtw: status %d, body %s", rr.Code, rr.Body)
	}
	lresp := decode[queryResponse](t, rr)
	if len(lresp.Matches) != 1 || lresp.Matches[0].Position != lwant.Position {
		t.Fatalf("live served %+v, library %+v", lresp.Matches, lwant)
	}
}

// TestDTWEndpointBadRequests: out-of-range windows and wrong-length
// queries are 400s (client errors), never 500s.
func TestDTWEndpointBadRequests(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func(t *testing.T) http.Handler
	}{
		{"static", func(t *testing.T) http.Handler { h, _ := newTestHandler(t); return h }},
		{"live", func(t *testing.T) http.Handler { h, _ := newLiveTestHandler(t); return h }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			h := mode.mk(t)
			good := make([]float32, 64)
			for _, window := range []float64{-0.5, 1.5, 100} {
				rr := postJSON(t, h, "/v1/dtw", map[string]any{"query": good, "window": window})
				if rr.Code != http.StatusBadRequest {
					t.Errorf("window %v: status %d, want 400 (body %s)", window, rr.Code, rr.Body)
				}
			}
			rr := postJSON(t, h, "/v1/dtw", dtwRequest{Query: make([]float32, 5), Window: 0.1})
			if rr.Code != http.StatusBadRequest {
				t.Errorf("wrong-length query: status %d, want 400 (body %s)", rr.Code, rr.Body)
			}
		})
	}
}

// TestShardedServe: a sharded backend answers identically to an unsharded
// one and /v1/stats exposes the per-shard breakdown.
func TestShardedServe(t *testing.T) {
	data := messi.RandomWalk(1200, 64, 14)
	plain, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sharded.NewEngine(&messi.EngineOptions{PoolWorkers: 4})
	t.Cleanup(eng.Close)
	h := newHandler(&engineBackend{eng: eng}, "")

	q := make([]float32, 64)
	copy(q, mustSeries(t, plain, 321))
	want := exactDo(t, plain, messi.SearchRequest{Query: q}).Best()
	rr := postJSON(t, h, "/v1/query", queryRequest{Query: q})
	if rr.Code != http.StatusOK {
		t.Fatalf("sharded query: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if len(resp.Matches) != 1 || resp.Matches[0].Position != want.Position || resp.Matches[0].Distance != want.Distance {
		t.Fatalf("sharded served %+v, unsharded library %+v", resp.Matches, want)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	srr := httptest.NewRecorder()
	h.ServeHTTP(srr, req)
	st := decode[statsResponse](t, srr)
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("sharded stats %+v", st)
	}
	sum := 0
	for i, ps := range st.PerShard {
		if ps.Shard != i || ps.Series == 0 || ps.Leaves == 0 {
			t.Fatalf("per-shard entry %d: %+v", i, ps)
		}
		sum += ps.Series
	}
	if sum != 1200 || st.Series != 1200 {
		t.Fatalf("per-shard series sum %d, aggregate %d, want 1200", sum, st.Series)
	}
}

// TestSnapshotSizeForDirectory: the snapshot endpoint's bytes field sums
// a sharded snapshot directory's files instead of reporting the
// directory inode size.
func TestSnapshotSizeForDirectory(t *testing.T) {
	data := messi.RandomWalk(800, 64, 15)
	ix, err := messi.BuildFlat(data, 64, &messi.Options{LeafCapacity: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.NewEngine(&messi.EngineOptions{PoolWorkers: 4})
	t.Cleanup(eng.Close)
	h := newHandler(&engineBackend{eng: eng}, "")
	dir := filepath.Join(t.TempDir(), "sized.snapdir")
	rr := postJSON(t, h, "/v1/snapshot", snapshotRequest{Path: dir})
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d, body %s", rr.Code, rr.Body)
	}
	sr := decode[snapshotResponse](t, rr)
	// 800 series × 64 points × 4 bytes alone is ~200 KiB; a directory
	// inode stat would report ~4 KiB.
	if sr.Bytes < 100_000 {
		t.Fatalf("snapshot bytes %d implausibly small for the sharded directory", sr.Bytes)
	}
}

// TestSearchEndpointSpectrum: /v1/search serves the whole quality
// spectrum with the exactness contract in the response, on the static
// and the live backend alike.
func TestSearchEndpointSpectrum(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 99))
	want := exactDo(t, ix, messi.SearchRequest{Query: q}).Best()

	// Default mode is exact and says so.
	rr := postJSON(t, h, "/v1/search", searchRequest{Query: q})
	if rr.Code != http.StatusOK {
		t.Fatalf("search: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if !resp.Exact || resp.EpsilonBound != nil {
		t.Fatalf("exact search response %+v, want exact with no bound", resp)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Position != want.Position {
		t.Fatalf("search served %+v, library %+v", resp.Matches, want)
	}

	// Approximate answers are flagged inexact and never better than exact.
	rr = postJSON(t, h, "/v1/search", searchRequest{Query: q, Mode: "approx"})
	if rr.Code != http.StatusOK {
		t.Fatalf("approx search: status %d, body %s", rr.Code, rr.Body)
	}
	resp = decode[queryResponse](t, rr)
	if resp.Exact {
		t.Fatal("approx answer claimed exactness")
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Distance < want.Distance-1e-9 {
		t.Fatalf("approx answer %+v beats the exact one %+v", resp.Matches, want)
	}

	// An ε query over a self-match proves exactness (distance 0).
	rr = postJSON(t, h, "/v1/search", searchRequest{Query: q, Mode: "epsilon", Epsilon: 0.05})
	if rr.Code != http.StatusOK {
		t.Fatalf("epsilon search: status %d, body %s", rr.Code, rr.Body)
	}
	resp = decode[queryResponse](t, rr)
	if len(resp.Matches) != 1 || resp.Matches[0].Position != want.Position {
		t.Fatalf("epsilon search served %+v, library %+v", resp.Matches, want)
	}
	if !resp.Exact && (resp.EpsilonBound == nil || *resp.EpsilonBound > 0.05) {
		t.Fatalf("epsilon response %+v proves no usable bound", resp)
	}

	// A generous deadline completes exactly.
	rr = postJSON(t, h, "/v1/search", searchRequest{Query: q, Mode: "deadline", DeadlineMS: 60000})
	if rr.Code != http.StatusOK {
		t.Fatalf("deadline search: status %d, body %s", rr.Code, rr.Body)
	}
	resp = decode[queryResponse](t, rr)
	if !resp.Exact || resp.Matches[0].Position != want.Position {
		t.Fatalf("deadline search with a generous budget: %+v, want exact %+v", resp, want)
	}

	// The live backend speaks the same spectrum.
	lh, lix := newLiveTestHandler(t)
	lq := make([]float32, 64)
	ls, err := lix.Series(11)
	if err != nil {
		t.Fatal(err)
	}
	copy(lq, ls)
	rr = postJSON(t, lh, "/v1/search", searchRequest{Query: lq, Mode: "epsilon", Epsilon: 0.1})
	if rr.Code != http.StatusOK {
		t.Fatalf("live epsilon search: status %d, body %s", rr.Code, rr.Body)
	}
	resp = decode[queryResponse](t, rr)
	if len(resp.Matches) != 1 || resp.Matches[0].Position != 11 || resp.Matches[0].Distance != 0 {
		t.Fatalf("live epsilon self-query: %+v", resp.Matches)
	}
}

// TestKNNEndpoint: /v1/knn requires k and returns sorted matches.
func TestKNNEndpoint(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 7))

	if rr := postJSON(t, h, "/v1/knn", searchRequest{Query: q}); rr.Code != http.StatusBadRequest {
		t.Fatalf("knn without k: status %d, want 400", rr.Code)
	}

	want := exactDo(t, ix, messi.SearchRequest{Query: q, K: 3}).Matches
	rr := postJSON(t, h, "/v1/knn", searchRequest{Query: q, K: 3})
	if rr.Code != http.StatusOK {
		t.Fatalf("knn: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if !resp.Exact || len(resp.Matches) != len(want) {
		t.Fatalf("knn response %+v, want %d exact matches", resp, len(want))
	}
	for i, m := range resp.Matches {
		if m.Position != want[i].Position || m.Distance != want[i].Distance {
			t.Fatalf("knn match %d: served %+v, library %+v", i, m, want[i])
		}
	}
}

// TestSearchEndpointBadRequests: typed sentinel errors from the library
// surface as 400s, whatever layer raises them.
func TestSearchEndpointBadRequests(t *testing.T) {
	h, _ := newTestHandler(t)
	good := make([]float32, 64)
	cases := []struct {
		name string
		req  searchRequest
	}{
		{"unknown mode", searchRequest{Query: good, Mode: "psychic"}},
		{"negative k", searchRequest{Query: good, K: -1}},
		{"negative epsilon", searchRequest{Query: good, Mode: "epsilon", Epsilon: -0.5}},
		{"wrong length", searchRequest{Query: make([]float32, 5)}},
		{"bad dtw window", searchRequest{Query: good, DTW: true, Window: 3}},
		{"dtw knn", searchRequest{Query: good, DTW: true, Window: 0.1, K: 4}},
	}
	for _, tc := range cases {
		if rr := postJSON(t, h, "/v1/search", tc.req); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rr.Code, rr.Body)
		}
	}
}

// TestDTWEndpointModes: /v1/dtw accepts the quality fields too.
func TestDTWEndpointModes(t *testing.T) {
	h, ix := newTestHandler(t)
	q := make([]float32, 64)
	copy(q, mustSeries(t, ix, 31))
	rr := postJSON(t, h, "/v1/dtw", searchRequest{Query: q, Window: 0.1, Mode: "approx"})
	if rr.Code != http.StatusOK {
		t.Fatalf("approx dtw: status %d, body %s", rr.Code, rr.Body)
	}
	resp := decode[queryResponse](t, rr)
	if resp.Exact {
		t.Fatal("approx DTW answer claimed exactness")
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("approx dtw matches: %+v", resp.Matches)
	}
}
