// Command messi-bench regenerates the figures of the paper's evaluation
// section (Figures 5-19) at a configurable scale.
//
// Usage:
//
//	messi-bench -fig 17                # one figure
//	messi-bench -fig all               # every figure, in order
//	messi-bench -fig 11 -series 200000 -queries 100 -v
//	messi-bench -fig spectrum          # quality/latency spectrum of the Do API
//	messi-bench -fig spectrum -mode epsilon -epsilon 0.1
//	messi-bench -fig spectrum -deadline 500us
//	messi-bench -fig hardness          # quality/pruning across query-hardness tiers
//
// Absolute times depend on the host; the comparisons (which algorithm
// wins, by what factor, where the curves bend) are the reproduction
// targets — see EXPERIMENTS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("messi-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig       = fs.String("fig", "all", "figure number (5-19), 'spectrum', 'hardness', or 'all'")
		seriesN   = fs.Int("series", 0, "base collection size in series (default 100000)")
		length    = fs.Int("length", 0, "series length in points (default 256)")
		queries   = fs.Int("queries", 0, "queries per measurement (default 10)")
		dtwSeries = fs.Int("dtw-series", 0, "collection size for the DTW figure (default 5000)")
		seed      = fs.Int64("seed", 0, "generator seed (default 1)")
		verbose   = fs.Bool("v", false, "log progress to stderr")
		mode      = fs.String("mode", "", "spectrum: restrict to one quality mode (exact, approx, epsilon, deadline)")
		epsilon   = fs.Float64("epsilon", 0, "spectrum: relative error budget of the epsilon row (default 0.05)")
		deadline  = fs.Duration("deadline", 0, "spectrum: latency budget of the deadline row (default 1ms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{
		Series:    *seriesN,
		Length:    *length,
		Queries:   *queries,
		DTWSeries: *dtwSeries,
		Seed:      *seed,
		Mode:      *mode,
		Epsilon:   *epsilon,
		Deadline:  *deadline,
	}
	if *verbose {
		cfg.Progress = stderr
	}

	if *fig == "all" {
		return experiments.RunAll(cfg, stdout)
	}
	if *fig == "spectrum" {
		table, err := experiments.Spectrum(cfg)
		if err != nil {
			return err
		}
		_, err = table.WriteTo(stdout)
		return err
	}
	if *fig == "hardness" {
		table, err := experiments.Hardness(cfg)
		if err != nil {
			return err
		}
		_, err = table.WriteTo(stdout)
		return err
	}
	n, err := strconv.Atoi(*fig)
	if err != nil {
		return fmt.Errorf("-fig must be a number, 'spectrum', 'hardness', or 'all', got %q", *fig)
	}
	table, err := experiments.Run(n, cfg)
	if err != nil {
		return err
	}
	_, err = table.WriteTo(stdout)
	return err
}
