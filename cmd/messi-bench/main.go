// Command messi-bench regenerates the figures of the paper's evaluation
// section (Figures 5-19) at a configurable scale.
//
// Usage:
//
//	messi-bench -fig 17                # one figure
//	messi-bench -fig all               # every figure, in order
//	messi-bench -fig 11 -series 200000 -queries 100 -v
//
// Absolute times depend on the host; the comparisons (which algorithm
// wins, by what factor, where the curves bend) are the reproduction
// targets — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure number (5-19) or 'all'")
		seriesN   = flag.Int("series", 0, "base collection size in series (default 100000)")
		length    = flag.Int("length", 0, "series length in points (default 256)")
		queries   = flag.Int("queries", 0, "queries per measurement (default 10)")
		dtwSeries = flag.Int("dtw-series", 0, "collection size for the DTW figure (default 5000)")
		seed      = flag.Int64("seed", 0, "generator seed (default 1)")
		verbose   = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	cfg := experiments.Config{
		Series:    *seriesN,
		Length:    *length,
		Queries:   *queries,
		DTWSeries: *dtwSeries,
		Seed:      *seed,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	if *fig == "all" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	n, err := strconv.Atoi(*fig)
	if err != nil {
		fatal(fmt.Errorf("-fig must be a number or 'all', got %q", *fig))
	}
	table, err := experiments.Run(n, cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := table.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "messi-bench:", err)
	os.Exit(1)
}
