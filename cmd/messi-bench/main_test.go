package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunOneTinyFigure: run() produces a well-formed table for a single
// figure at smoke scale.
func TestRunOneTinyFigure(t *testing.T) {
	var out, errw strings.Builder
	args := []string{"-fig", "8", "-series", "1000", "-length", "64", "-queries", "1"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errw.String())
	}
	if !strings.Contains(out.String(), "Figure 8") {
		t.Fatalf("output does not contain the figure header:\n%s", out.String())
	}
}

// TestRunFlagValidation: bad flags fail without running anything.
func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-fig", "nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("non-numeric -fig accepted")
	}
	if err := run([]string{"-fig", "4"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-no-such-flag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunHardness: -fig hardness produces the hardness table at smoke
// scale.
func TestRunHardness(t *testing.T) {
	var out, errw strings.Builder
	args := []string{"-fig", "hardness", "-series", "800", "-length", "32", "-queries", "2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, errw.String())
	}
	if !strings.Contains(out.String(), "Hardness") || !strings.Contains(out.String(), "adversarial") {
		t.Fatalf("output missing hardness table:\n%s", out.String())
	}
}
