// Command messi-vet machine-checks the repository's concurrency and
// durability invariants with the analyzer suite in internal/analyze:
//
//	atomicpair  best-so-far (dist,pos) published as one atomic pair
//	rcupublish  RCU generations immutable after the atomic.Pointer swap
//	errwrap     %w wrapping + errors.Is for Err* sentinels
//	faultsite   failpoints named, registered eagerly, matrix-covered
//	metricname  messi_* snake_case metrics, one kind per name
//
// It runs two ways:
//
// Standalone (the CI lint job's whole-program pass — required for the
// cross-package Finish rules like crash-matrix coverage):
//
//	go run ./cmd/messi-vet ./...
//
// As a vet tool (unit-at-a-time, sharing go vet's build cache and
// export data; Finish rules are skipped because no single unit sees
// the whole program):
//
//	go build -o /tmp/messi-vet ./cmd/messi-vet
//	go vet -vettool=/tmp/messi-vet ./...
//
// Diagnostics can be suppressed with a reviewed
// `//messi-vet:ignore <analyzer> <reason>` comment on the flagged line
// or the line directly above it.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("messi-vet", flag.ExitOnError)
	var (
		vFlag     = fs.String("V", "", "print version and exit (-V=full, for the go command's tool protocol)")
		flagsFlag = fs.Bool("flags", false, "print a JSON description of supported flags and exit (go vet protocol)")
		testsFlag = fs.Bool("tests", true, "standalone mode: also analyze test files and _test packages")
		listFlag  = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: messi-vet [flags] [package patterns]\n\nAnalyzers:\n")
		for _, a := range analyze.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		// go vet's tool-identification protocol: the output keys its
		// action cache, so it must change whenever the binary does.
		return printVersion()
	case *flagsFlag:
		// go vet queries pass-through flags; messi-vet accepts none.
		fmt.Println("[]")
		return 0
	case *listFlag:
		for _, a := range analyze.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitCheck(rest[0])
	}
	return standalone(fs.Args(), *testsFlag)
}

// printVersion implements -V=full: name, a fixed tag, and a content
// hash of the executable so rebuilding the tool invalidates go vet's
// cached results.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
	return 0
}

// standalone loads whole packages (tests included) and runs every
// analyzer, Finish rules included.
func standalone(patterns []string, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := analyze.Load(analyze.LoadConfig{Tests: tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "messi-vet:", err)
		return 2
	}
	diags, err := analyze.Run(fset, pkgs, analyze.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "messi-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the JSON configuration the go command hands a vettool
// for one compilation unit (see x/tools' unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit described by a go vet .cfg
// file. Dependencies are type-checked from the export data the go
// command already built (falling back to source if that fails), so a
// vettool run shares go vet's incremental cost profile. Whole-program
// Finish rules are skipped: no unit sees the full package graph.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "messi-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "messi-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "messi-vet:", err)
			return 2
		}
		files = append(files, f)
	}

	// Import paths of test variants look like "path [path.test]" (and
	// external test packages like "path_test [path.test]"); analyzers
	// key exemptions on the base path.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}

	check := func(imp types.Importer) (*types.Package, *types.Info, error) {
		info := analyze.NewTypesInfo()
		conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
		tpkg, err := conf.Check(path, fset, files, info)
		return tpkg, info, err
	}
	lookup := func(p string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[p]; ok {
			p = canon
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	tpkg, info, err := check(importer.ForCompiler(fset, cfg.Compiler, lookup))
	if err != nil {
		// Export data can be unreadable when the toolchain and this
		// binary disagree; source is slower but always available.
		tpkg, info, err = check(analyze.NewImporter(fset))
	}
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "messi-vet: type-checking %s: %v\n", path, err)
		return 2
	}

	pkg := &analyze.Package{
		Path:  path,
		Dir:   cfg.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	// Strip Finish hooks: whole-program rules need the full package
	// graph, which unit mode never sees. The standalone CI pass runs
	// them.
	var unitAnalyzers []*analyze.Analyzer
	for _, a := range analyze.Analyzers() {
		ua := *a
		ua.Finish = nil
		unitAnalyzers = append(unitAnalyzers, &ua)
	}
	diags, err := analyze.Run(fset, []*analyze.Package{pkg}, unitAnalyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "messi-vet:", err)
		return 2
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeVetx writes the (empty) facts file the go command expects a
// vettool to produce; messi-vet exchanges no facts between units.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("messi-vet\n"), 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "messi-vet:", err)
		return 2
	}
	return 0
}
