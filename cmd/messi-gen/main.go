// Command messi-gen writes synthetic dataset files in the binary format
// understood by messi-query, messi-serve, and messi.BuildFromFile.
//
// Usage:
//
//	messi-gen -kind random  -count 100000 -length 256 -out random.bin
//	messi-gen -kind seismic -count 100000 -out seismic.bin
//	messi-gen -kind sald    -count 200000 -out sald.bin   # length defaults to 128
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("messi-gen", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "random", "dataset family: random, seismic, or sald")
		count  = fs.Int("count", 100000, "number of series")
		length = fs.Int("length", 0, "series length (default: 256, or 128 for sald)")
		seed   = fs.Int64("seed", 1, "generator seed")
		out    = fs.String("out", "", "output file path (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *out == "" {
		return errors.New("-out is required")
	}
	k := dataset.Kind(*kind)
	n := *length
	if n == 0 {
		n = k.DefaultLength()
	}
	col, err := dataset.Generate(k, *count, n, *seed)
	if err != nil {
		return err
	}
	if err := dataset.WriteFile(*out, col); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d series × %d points (%d MB) to %s\n",
		col.Count(), col.Length, col.Bytes()>>20, *out)
	return nil
}
