// Command messi-gen writes synthetic dataset files in the binary format
// understood by messi-query, messi-serve, and messi.BuildFromFile — and,
// with -snapshot, ready-to-serve index snapshots that messi-serve boots
// from in a fraction of the build time.
//
// Usage:
//
//	messi-gen -kind random  -count 100000 -length 256 -out random.bin
//	messi-gen -kind seismic -count 100000 -out seismic.bin
//	messi-gen -kind sald    -count 200000 -out sald.bin   # length defaults to 128
//	messi-gen -kind random  -count 100000 -snapshot index.snap
//	messi-gen -kind random  -count 100000 -out data.bin -snapshot index.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	messi "repro"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "messi-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("messi-gen", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "random", "dataset family: random, seismic, or sald")
		count     = fs.Int("count", 100000, "number of series")
		length    = fs.Int("length", 0, "series length (default: 256, or 128 for sald)")
		seed      = fs.Int64("seed", 1, "generator seed")
		out       = fs.String("out", "", "output dataset file path (this or -snapshot is required)")
		snapshot  = fs.String("snapshot", "", "also build an index over the data and write it as a snapshot here")
		leafCap   = fs.Int("leaf", 0, "snapshot index leaf capacity (default 2000)")
		normalize = fs.Bool("normalize", false, "snapshot index: z-normalize the data before building")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *out == "" && *snapshot == "" {
		return errors.New("one of -out or -snapshot is required")
	}
	k := dataset.Kind(*kind)
	n := *length
	if n == 0 {
		n = k.DefaultLength()
	}
	col, err := dataset.Generate(k, *count, n, *seed)
	if err != nil {
		return err
	}
	// The raw dataset is written first: with -normalize the index build
	// rewrites the generated data in place, and the dataset file should
	// hold the unnormalized series either way.
	if *out != "" {
		if err := dataset.WriteFile(*out, col); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d series × %d points (%d MB) to %s\n",
			col.Count(), col.Length, col.Bytes()>>20, *out)
	}
	if *snapshot != "" {
		ix, err := messi.BuildFlat(col.Data, col.Length, &messi.Options{
			LeafCapacity: *leafCap,
			Normalize:    *normalize,
		})
		if err != nil {
			return err
		}
		if err := ix.Save(*snapshot); err != nil {
			return err
		}
		size := int64(0)
		if fi, err := os.Stat(*snapshot); err == nil {
			size = fi.Size()
		}
		fmt.Fprintf(stdout, "wrote index snapshot of %d series × %d points (%d MB) to %s\n",
			ix.Len(), ix.SeriesLen(), size>>20, *snapshot)
	}
	return nil
}
