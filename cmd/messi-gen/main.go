// Command messi-gen writes synthetic dataset files in the binary format
// understood by messi-query and messi.BuildFromFile.
//
// Usage:
//
//	messi-gen -kind random  -count 100000 -length 256 -out random.bin
//	messi-gen -kind seismic -count 100000 -out seismic.bin
//	messi-gen -kind sald    -count 200000 -out sald.bin   # length defaults to 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		kind   = flag.String("kind", "random", "dataset family: random, seismic, or sald")
		count  = flag.Int("count", 100000, "number of series")
		length = flag.Int("length", 0, "series length (default: 256, or 128 for sald)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output file path (required)")
	)
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	k := dataset.Kind(*kind)
	n := *length
	if n == 0 {
		n = k.DefaultLength()
	}
	col, err := dataset.Generate(k, *count, n, *seed)
	if err != nil {
		fatal(err)
	}
	if err := dataset.WriteFile(*out, col); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d series × %d points (%d MB) to %s\n",
		col.Count(), col.Length, col.Bytes()>>20, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "messi-gen:", err)
	os.Exit(1)
}
