package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	messi "repro"
	"repro/internal/dataset"
)

// mustSeries fetches an indexed series, failing the test on range errors.
func mustSeries(t *testing.T, ix *messi.Index, pos int) []float32 {
	t.Helper()
	s, err := ix.Series(pos)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.bin")
	var buf strings.Builder
	err := run([]string{"-kind", "random", "-count", "200", "-length", "64", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 200 series × 64 points") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	col, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if col.Count() != 200 || col.Length != 64 {
		t.Fatalf("file shape %d×%d, want 200×64", col.Count(), col.Length)
	}
}

func TestRunDefaultLengthPerKind(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sald.bin")
	var buf strings.Builder
	if err := run([]string{"-kind", "sald", "-count", "10", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	col, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if col.Length != 128 {
		t.Fatalf("sald default length %d, want 128", col.Length)
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-count", "10"}, &buf); err == nil {
		t.Error("missing -out and -snapshot did not error")
	}
	out := filepath.Join(t.TempDir(), "x.bin")
	if err := run([]string{"-kind", "nope", "-count", "10", "-out", out}, &buf); err == nil {
		t.Error("unknown kind did not error")
	}
}

// TestRunEmitsSnapshot: -snapshot writes a ready-to-serve snapshot that
// Load restores to the same index a fresh build over -out produces.
func TestRunEmitsSnapshot(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "data.bin")
	snap := filepath.Join(dir, "index.snap")
	var buf strings.Builder
	err := run([]string{"-kind", "random", "-count", "500", "-length", "64",
		"-out", out, "-snapshot", snap, "-leaf", "64"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "index snapshot of 500 series") {
		t.Fatalf("unexpected output: %q", buf.String())
	}

	loaded, err := messi.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	built, err := messi.BuildFromFile(out, &messi.Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != built.Len() || loaded.Stats() != built.Stats() {
		t.Fatalf("snapshot stats %+v, rebuilt stats %+v", loaded.Stats(), built.Stats())
	}
	q := make([]float32, 64)
	copy(q, mustSeries(t, built, 123))
	wantRes, err := built.Do(context.Background(), messi.SearchRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := loaded.Do(context.Background(), messi.SearchRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gotRes.Best(), wantRes.Best(); got != want {
		t.Fatalf("snapshot answered %+v, rebuild %+v", got, want)
	}
}

// TestRunSnapshotOnly: -snapshot without -out writes only the snapshot.
func TestRunSnapshotOnly(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "only.snap")
	var buf strings.Builder
	if err := run([]string{"-kind", "random", "-count", "100", "-length", "32", "-snapshot", snap}, &buf); err != nil {
		t.Fatal(err)
	}
	ix, err := messi.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 || ix.SeriesLen() != 32 {
		t.Fatalf("snapshot shape %d×%d, want 100×32", ix.Len(), ix.SeriesLen())
	}
}
