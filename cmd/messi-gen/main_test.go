package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.bin")
	var buf strings.Builder
	err := run([]string{"-kind", "random", "-count", "200", "-length", "64", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote 200 series × 64 points") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	col, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if col.Count() != 200 || col.Length != 64 {
		t.Fatalf("file shape %d×%d, want 200×64", col.Count(), col.Length)
	}
}

func TestRunDefaultLengthPerKind(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sald.bin")
	var buf strings.Builder
	if err := run([]string{"-kind", "sald", "-count", "10", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	col, err := dataset.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if col.Length != 128 {
		t.Fatalf("sald default length %d, want 128", col.Length)
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-count", "10"}, &buf); err == nil {
		t.Error("missing -out did not error")
	}
	out := filepath.Join(t.TempDir(), "x.bin")
	if err := run([]string{"-kind", "nope", "-count", "10", "-out", out}, &buf); err == nil {
		t.Error("unknown kind did not error")
	}
}
