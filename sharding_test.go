package messi

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardedPublicEquivalence: Options.Shards ∈ {2,4,8} answers 1-NN,
// k-NN and DTW queries (direct and through the engine) identically to the
// unsharded index.
func TestShardedPublicEquivalence(t *testing.T) {
	data := RandomWalk(2500, 64, 31)
	plain, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	queries := RandomWalk(8, 64, 3131)
	for _, S := range []int{2, 4, 8} {
		sharded, err := BuildFlat(data, 64, &Options{LeafCapacity: 64, Shards: S})
		if err != nil {
			t.Fatalf("Shards=%d: %v", S, err)
		}
		if sharded.Shards() != S || sharded.Len() != plain.Len() {
			t.Fatalf("Shards=%d: shape %d shards × %d series", S, sharded.Shards(), sharded.Len())
		}
		eng := sharded.NewEngine(&EngineOptions{PoolWorkers: 4})
		for qi := 0; qi < 8; qi++ {
			q := queries[qi*64 : (qi+1)*64]
			want, err := plain.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Shards=%d query %d: %+v, unsharded %+v", S, qi, got, want)
			}
			viaEng, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if viaEng != want {
				t.Fatalf("Shards=%d query %d via engine: %+v, unsharded %+v", S, qi, viaEng, want)
			}
			wantK, err := plain.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := sharded.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			engK, err := eng.QueryKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK) != len(wantK) || len(engK) != len(wantK) {
				t.Fatalf("Shards=%d query %d: k-NN lengths %d/%d, want %d", S, qi, len(gotK), len(engK), len(wantK))
			}
			for i := range wantK {
				if gotK[i] != wantK[i] || engK[i] != wantK[i] {
					t.Fatalf("Shards=%d query %d rank %d: direct %+v engine %+v, unsharded %+v",
						S, qi, i, gotK[i], engK[i], wantK[i])
				}
			}
			wantD, err := plain.SearchDTW(q, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := sharded.SearchDTW(q, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if gotD != wantD {
				t.Fatalf("Shards=%d query %d: DTW %+v, unsharded %+v", S, qi, gotD, wantD)
			}
		}
		eng.Close()
	}
}

// TestShardedSnapshotDirRoundTrip: a sharded index saves as a manifest
// directory, loads back shard-parallel, and keeps answering identically
// — including when booted as a live index that then grows.
func TestShardedSnapshotDirRoundTrip(t *testing.T) {
	data := RandomWalk(1000, 64, 41)
	sharded, err := BuildFlat(data, 64, &Options{LeafCapacity: 64, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "index.snapdir")
	if err := sharded.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Streaming a sharded snapshot is a directory-shaped operation.
	if err := sharded.WriteSnapshot(nopWriter{}); !errors.Is(err, ErrShardedStream) {
		t.Fatalf("WriteSnapshot on a sharded index: %v, want ErrShardedStream", err)
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 4 || loaded.Len() != 1000 {
		t.Fatalf("loaded %d shards × %d series", loaded.Shards(), loaded.Len())
	}
	q := make([]float32, 64)
	copy(q, mustSeries(t, sharded, 421))
	want, err := sharded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("loaded answered %+v, original %+v", got, want)
	}

	// Live boot from the sharded directory: the shard count carries over
	// and appended series stay searchable across a flush.
	lix, err := LoadLive(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	if lix.Stats().Shards != 4 {
		t.Fatalf("live boot kept %d shards, want 4", lix.Stats().Shards)
	}
	novel := make([]float32, 64)
	for i := range novel {
		novel[i] = 5000 + float32(i)
	}
	pos, err := lix.Append(novel)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1000 {
		t.Fatalf("append position %d, want 1000", pos)
	}
	if err := lix.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := lix.Search(novel)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 1000 || m.Distance != 0 {
		t.Fatalf("appended series lost across sharded rebuild: %+v", m)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestDTWWindowValidation: out-of-range window fractions error on both
// index kinds (the silent-clamp bug this release fixes).
func TestDTWWindowValidation(t *testing.T) {
	data := RandomWalk(300, 64, 51)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	lix, err := BuildLiveFlat(RandomWalk(300, 64, 52), 64, &Options{LeafCapacity: 64, SearchWorkers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lix.Close()
	q := make([]float32, 64)

	for _, window := range []float64{-0.5, -1e-9, 1.0000001, 42, math.NaN()} {
		if _, err := ix.SearchDTW(q, window); err == nil {
			t.Errorf("Index.SearchDTW accepted window %v", window)
		} else if !strings.Contains(err.Error(), "window") {
			t.Errorf("Index.SearchDTW window %v: undescriptive error %q", window, err)
		}
		if _, err := lix.SearchDTW(q, window); err == nil {
			t.Errorf("LiveIndex.SearchDTW accepted window %v", window)
		}
	}
	// The boundary fractions stay valid.
	for _, window := range []float64{0, 0.1, 1} {
		if _, err := ix.SearchDTW(q, window); err != nil {
			t.Errorf("Index.SearchDTW rejected window %v: %v", window, err)
		}
		if _, err := lix.SearchDTW(q, window); err != nil {
			t.Errorf("LiveIndex.SearchDTW rejected window %v: %v", window, err)
		}
	}
}

// TestAPIBoundaryEdgeCases pins the public query-validation contract:
// wrong-length queries, bad k values, empty batches, and empty live
// indexes all behaved correctly but nothing asserted it.
func TestAPIBoundaryEdgeCases(t *testing.T) {
	data := RandomWalk(200, 64, 61)
	ix, err := BuildFlat(data, 64, &Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-length-search", func(t *testing.T) {
		if _, err := ix.Search(make([]float32, 7)); err == nil {
			t.Error("Search accepted a wrong-length query")
		}
		if _, err := ix.SearchKNN(make([]float32, 7), 3); err == nil {
			t.Error("SearchKNN accepted a wrong-length query")
		}
		if _, err := ix.SearchDTW(make([]float32, 7), 0.1); err == nil {
			t.Error("SearchDTW accepted a wrong-length query")
		}
	})

	t.Run("knn-k-range", func(t *testing.T) {
		q := make([]float32, 64)
		for _, k := range []int{0, -3} {
			if _, err := ix.SearchKNN(q, k); err == nil {
				t.Errorf("SearchKNN accepted k=%d", k)
			}
		}
		// k beyond the collection clamps to Len(), not an error.
		ms, err := ix.SearchKNN(q, ix.Len()+100)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != ix.Len() {
			t.Errorf("SearchKNN(k>Len) returned %d matches, want %d", len(ms), ix.Len())
		}
	})

	t.Run("query-batch", func(t *testing.T) {
		eng := ix.NewEngine(&EngineOptions{PoolWorkers: 2})
		defer eng.Close()
		// Empty batch: empty results, no error.
		ms, err := eng.QueryBatch(nil)
		if err != nil || len(ms) != 0 {
			t.Errorf("empty batch: %d results, err %v", len(ms), err)
		}
		// Partial error: the slice stays full-length, good entries are
		// answered, and the error names the failing query.
		good := make([]float32, 64)
		copy(good, mustSeries(t, ix, 3))
		ms, err = eng.QueryBatch([][]float32{good, make([]float32, 5), good})
		if err == nil {
			t.Fatal("batch with a wrong-length query did not error")
		}
		if !strings.Contains(err.Error(), "1") {
			t.Errorf("batch error %q does not identify query 1", err)
		}
		if len(ms) != 3 {
			t.Fatalf("batch returned %d results, want full-length 3", len(ms))
		}
		if ms[0].Position != 3 || ms[2].Position != 3 {
			t.Errorf("good batch entries not answered: %+v", ms)
		}
		if ms[1].Position != 0 || ms[1].Distance != 0 {
			t.Errorf("failed batch entry not zero: %+v", ms[1])
		}
	})

	t.Run("empty-live-search", func(t *testing.T) {
		lix, err := NewLive(64, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer lix.Close()
		q := make([]float32, 64)
		if _, err := lix.Search(q); err == nil {
			t.Error("Search on an empty live index did not error")
		}
		if _, err := lix.SearchKNN(q, 3); err == nil {
			t.Error("SearchKNN on an empty live index did not error")
		}
		if _, err := lix.SearchDTW(q, 0.1); err == nil {
			t.Error("SearchDTW on an empty live index did not error")
		}
	})
}
