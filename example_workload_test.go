package messi_test

import (
	"fmt"

	messi "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// The hardness-aware workload harness scores the index across query
// tiers of increasing difficulty. Exact mode keeps perfect recall on
// every tier — hardness shows up as lost pruning, not lost answers.
// examples/workload-tuning and docs/COOKBOOK.md build on this flow.
func Example_workloadHarness() {
	col, err := dataset.Generate(dataset.RandomWalk, 2000, 64, 7)
	if err != nil {
		panic(err)
	}
	// Single-worker build and query make the report reproducible.
	ix, err := messi.BuildFlat(col.Data, col.Length, &messi.Options{
		LeafCapacity:  64,
		IndexWorkers:  1,
		SearchWorkers: 1,
		QueueCount:    1,
	})
	if err != nil {
		panic(err)
	}
	sets, err := workload.GenerateAll(col, 5, 42, nil)
	if err != nil {
		panic(err)
	}
	rep, err := workload.Run(ix, col, sets, workload.Config{
		K:     3,
		Modes: []messi.Mode{messi.ModeExact},
	})
	if err != nil {
		panic(err)
	}

	pruning := map[string]float64{}
	perfect := true
	for _, tr := range rep.Tiers {
		for _, mr := range tr.Modes {
			if mr.RecallAtK != 1 {
				perfect = false
			}
			pruning[tr.Tier] = mr.PruningRatioMean
		}
	}
	fmt.Println("tiers:", len(rep.Tiers))
	fmt.Println("exact recall 1.0 on every tier:", perfect)
	fmt.Println("adversarial prunes worse than member:",
		pruning["adversarial"] < pruning["member"])
	// Output:
	// tiers: 5
	// exact recall 1.0 on every tier: true
	// adversarial prunes worse than member: true
}
