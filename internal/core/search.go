package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/paa"
	"repro/internal/pqueue"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/vector"
)

// SearchOptions configures one query. Zero fields inherit the index
// options (which themselves default to the paper's values).
type SearchOptions struct {
	Workers int // Ns: search worker goroutines
	Queues  int // Nq: priority queues; 1 = MESSI-sq, >1 = MESSI-mq

	// LocalQueues selects the rejected per-thread-queue design the paper
	// discusses in §III-B (one private queue per worker, no sharing or
	// stealing): it suffers load imbalance and exists for the ablation
	// benchmarks. It forces Queues == Workers.
	LocalQueues bool

	// Counters, when non-nil, accumulates operation counts (Figure 17).
	Counters *stats.Counters
	// Breakdown, when non-nil, accumulates per-phase wall time across
	// all workers (Figure 13). Enabling it adds clock reads to hot
	// paths; leave nil when benchmarking end-to-end latency.
	Breakdown *stats.Breakdown
}

func (o SearchOptions) withDefaults(ixOpts Options) SearchOptions {
	if o.Workers <= 0 {
		o.Workers = ixOpts.SearchWorkers
	}
	if o.LocalQueues {
		o.Queues = o.Workers
	} else if o.Queues <= 0 {
		o.Queues = ixOpts.QueueCount
	}
	return o
}

// bound abstracts the pruning threshold shared by all search workers: the
// 1-NN BSF (stats.BSF) or the k-NN top-k set. Load returns the current
// squared pruning threshold; Update offers an improvement.
type bound interface {
	Load() float64
	Update(dist float64, pos int64) bool
}

// Search answers an exact 1-NN query (Algorithm 5). The query must be
// z-normalized by the caller if the indexed data is (the public API layer
// handles this).
func (ix *Index) Search(query []float32, opt SearchOptions) (Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return Match{}, err
	}
	opt = opt.withDefaults(ix.Opts)
	bd := opt.Breakdown

	var tInit time.Time
	if bd.Enabled() {
		tInit = time.Now()
	}
	qpaa := paa.Transform(query, ix.Schema.Segments, nil)
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	bsf := stats.NewBSF()
	ix.approxSearch(query, qpaa, qword, bsf, opt.Counters)
	if bd.Enabled() {
		bd.Add(stats.PhaseInit, time.Since(tInit))
	}

	ix.runSearchWorkers(query, qpaa, bsf, opt)

	d, pos := bsf.Best()
	return Match{Position: int(pos), Dist: d}, nil
}

// runSearchWorkers executes the two-stage parallel search of Algorithm 6
// against an arbitrary bound (1-NN BSF or k-NN top-k).
func (ix *Index) runSearchWorkers(query []float32, qpaa []float64, bnd bound, opt SearchOptions) {
	queues := pqueue.NewSet[*tree.Node](opt.Queues, 64)
	var rootCtr atomic.Int64
	var insertBarrier sync.WaitGroup // all-inserted barrier (Algorithm 6 line 7)
	insertBarrier.Add(opt.Workers)
	var wg sync.WaitGroup
	for pid := 0; pid < opt.Workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ix.searchWorker(query, qpaa, bnd, queues, &rootCtr, &insertBarrier, pid, opt)
		}(pid)
	}
	wg.Wait()
}

// searchWorker is Algorithm 6: claim root subtrees via Fetch&Inc and push
// non-prunable leaves into the queues; after the barrier, drain queues
// until every queue is finished.
func (ix *Index) searchWorker(query []float32, qpaa []float64, bnd bound,
	queues *pqueue.Set[*tree.Node], rootCtr *atomic.Int64, barrier *sync.WaitGroup,
	pid int, opt SearchOptions) {

	ctrs, bd := opt.Counters, opt.Breakdown
	cursor := pid % opt.Queues // round-robin insertion cursor (line 2)

	var tStart time.Time
	if bd.Enabled() {
		tStart = time.Now()
	}
	var insertTime time.Duration
	for {
		i := int(rootCtr.Add(1) - 1)
		if i >= len(ix.activeRoots) {
			break
		}
		root := ix.Tree.Root(int(ix.activeRoots[i]))
		ix.traverse(root, qpaa, bnd, queues, &cursor, &insertTime, ctrs, bd)
	}
	if bd.Enabled() {
		bd.Add(stats.PhaseTreePass, time.Since(tStart)-insertTime)
		bd.Add(stats.PhasePQInsert, insertTime)
	}

	barrier.Done()
	barrier.Wait()

	if opt.LocalQueues {
		// Ablation mode: drain only this worker's private queue; no
		// stealing. Workers whose queues drain early sit idle — the
		// load imbalance the paper rejected this design for.
		ix.processQueue(queues.Queue(pid%opt.Queues), query, qpaa, bnd, ctrs, bd)
		return
	}

	// Queue processing (lines 8-13). The next queue to work on is chosen
	// starting from a randomized position — the load-balancing scheme the
	// paper settled on ("workers use randomization to choose the priority
	// queues they will work on").
	rnd := uint64(pid)*0x9E3779B97F4A7C15 + 0x1234567
	q := pid % opt.Queues
	for {
		ix.processQueue(queues.Queue(q), query, qpaa, bnd, ctrs, bd)
		rnd = rnd*6364136223846793005 + 1442695040888963407 // LCG step
		q = queues.NextUnfinished(int(rnd>>33) % opt.Queues)
		if q < 0 {
			return
		}
	}
}

// traverse is Algorithm 7: prune subtrees whose lower bound exceeds the
// BSF; push surviving leaves into the queues round-robin.
func (ix *Index) traverse(node *tree.Node, qpaa []float64, bnd bound,
	queues *pqueue.Set[*tree.Node], cursor *int, insertTime *time.Duration,
	ctrs *stats.Counters, bd *stats.Breakdown) {

	ctrs.AddNodesVisited(1)
	dist := ix.Schema.MinDistPAAPrefix(qpaa, node.Symbols, node.Bits)
	ctrs.AddLowerBound(1)
	if dist >= bnd.Load() {
		return
	}
	if node.IsLeaf() {
		if node.LeafLen() == 0 {
			return
		}
		if bd.Enabled() {
			t0 := time.Now()
			queues.PushRoundRobin(cursor, dist, node)
			*insertTime += time.Since(t0)
		} else {
			queues.PushRoundRobin(cursor, dist, node)
		}
		ctrs.AddLeavesInserted(1)
		return
	}
	ix.traverse(node.Left, qpaa, bnd, queues, cursor, insertTime, ctrs, bd)
	ix.traverse(node.Right, qpaa, bnd, queues, cursor, insertTime, ctrs, bd)
}

// processQueue is Algorithm 8: repeatedly DeleteMin; once the popped bound
// is no better than the BSF (or the queue is empty), mark the queue
// finished and return.
func (ix *Index) processQueue(q *pqueue.Queue[*tree.Node], query []float32, qpaa []float64,
	bnd bound, ctrs *stats.Counters, bd *stats.Breakdown) {

	for {
		if q.Finished() {
			return
		}
		var t0 time.Time
		if bd.Enabled() {
			t0 = time.Now()
		}
		item, ok := q.PopMin()
		if bd.Enabled() {
			bd.Add(stats.PhasePQRemove, time.Since(t0))
		}
		if !ok {
			q.MarkFinished()
			return
		}
		if item.Priority >= bnd.Load() {
			// Everything left in this min-queue is at least as far:
			// abandon the whole queue (Algorithm 8 lines 8-10).
			ctrs.AddLeavesPruned(1)
			q.MarkFinished()
			return
		}
		if bd.Enabled() {
			t0 = time.Now()
		}
		ix.scanLeaf(item.Value, query, qpaa, bnd, ctrs)
		if bd.Enabled() {
			bd.Add(stats.PhaseDistCalc, time.Since(t0))
		}
	}
}

// scanLeaf is Algorithm 9 (CalculateRealDistance): per entry, a cheap
// per-series lower bound first, then the early-abandoning real distance
// only if the lower bound cannot prune.
func (ix *Index) scanLeaf(leaf *tree.Node, query []float32, qpaa []float64,
	bnd bound, ctrs *stats.Counters) {

	w := ix.Schema.Segments
	n := leaf.LeafLen()
	var lbCount, realCount int64
	for i := 0; i < n; i++ {
		lbCount++
		lb := ix.Schema.MinDistPAAWord(qpaa, leaf.Word(i, w))
		limit := bnd.Load()
		if lb >= limit {
			continue
		}
		pos := leaf.Positions[i]
		d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, limit)
		realCount++
		if d < limit {
			if bnd.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
		}
	}
	ctrs.AddLowerBound(lbCount)
	ctrs.AddRealDist(realCount)
}

// ApproxSearch answers an approximate 1-NN query: only the BSF-seeding
// step of the exact algorithm (descend to the query's leaf, best real
// distance inside it). The paper's progressive-search citation observes
// this initial answer is usually very close to the exact one; the exact
// search refines it. Falls back to the exact search in the rare case the
// descent lands on an empty leaf.
func (ix *Index) ApproxSearch(query []float32, opt SearchOptions) (Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return Match{}, err
	}
	qpaa := paa.Transform(query, ix.Schema.Segments, nil)
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	bsf := stats.NewBSF()
	ix.approxSearch(query, qpaa, qword, bsf, opt.Counters)
	d, pos := bsf.Best()
	if pos < 0 {
		return ix.Search(query, opt)
	}
	return Match{Position: int(pos), Dist: d}, nil
}

// approxSearch seeds the BSF (Figure 4(a)): descend to the leaf matching
// the query's iSAX word and take the best real distance inside it.
func (ix *Index) approxSearch(query []float32, qpaa []float64, qword []uint8,
	bnd bound, ctrs *stats.Counters) {

	root := ix.Tree.Root(ix.Schema.RootIndex(qword))
	if root == nil {
		// The query's own subtree is empty: fall back to the root child
		// with the smallest lower bound.
		best := math.Inf(1)
		for _, slot := range ix.activeRoots {
			r := ix.Tree.Root(int(slot))
			d := ix.Schema.MinDistPAAPrefix(qpaa, r.Symbols, r.Bits)
			ctrs.AddLowerBound(1)
			if d < best {
				best = d
				root = r
			}
		}
	}
	if root == nil {
		return // empty tree; validateQuery prevents this for public entry points
	}
	leaf := ix.Tree.DescendToLeaf(root, qword)
	for i := 0; i < leaf.LeafLen(); i++ {
		pos := leaf.Positions[i]
		d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, bnd.Load())
		ctrs.AddRealDist(1)
		if d < bnd.Load() {
			if bnd.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
		}
	}
}
