package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/pqueue"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/vector"
)

// fpScanLeaf is the failpoint inside the leaf-scan kernel — the
// deepest point of query execution, where a panic exercises the whole
// recovery chain (pool worker → per-query recorder → ErrQueryPanicked).
// An Error spec panics too: scanLeaf has no error return, and the
// engine's recovery is exactly what turns worker failures into typed
// per-query errors.
var fpScanLeaf = fault.Register("core.scanleaf")

// SearchOptions configures one query. Zero fields inherit the index
// options (which themselves default to the paper's values).
type SearchOptions struct {
	Workers int // Ns: search worker goroutines
	Queues  int // Nq: priority queues; 1 = MESSI-sq, >1 = MESSI-mq

	// LocalQueues selects the rejected per-thread-queue design the paper
	// discusses in §III-B (one private queue per worker, no sharing or
	// stealing): it suffers load imbalance and exists for the ablation
	// benchmarks. It forces Queues == Workers.
	LocalQueues bool

	// Seeds are externally known candidate matches (for example the best
	// matches from a delta-buffer scan in a live index) applied to the
	// pruning bound before the search starts. They tighten pruning and
	// take part in the answer: a seed whose distance remains best is
	// returned as-is, so its Position may lie outside this index's
	// collection. With GlobalPos set, seed positions are taken as already
	// global and are not remapped.
	Seeds []Match

	// GlobalPos maps this index's local series positions into the
	// caller's global position space (a sharded collection, where this
	// index holds only every S-th series). When set, the pruning bound —
	// the 1-NN BSF or the k-NN top-k — carries global positions: every
	// candidate found in this index is mapped on update, and Best/Matches
	// report global positions. Nil means the identity (an unsharded
	// index).
	GlobalPos func(int64) int64

	// Shared, when non-nil, replaces the run's private 1-NN best-so-far
	// with a caller-owned bound threaded through several concurrent runs —
	// the sharded fan-out, where a tight bound found in one shard prunes
	// the searches of all the others. The shared BSF holds global
	// positions (see GlobalPos); after every sibling run finishes, the
	// fused answer is the shared bound's Best. Ignored by k-NN runs,
	// which merge per-shard top-k sets instead.
	Shared *stats.BSF

	// QoS, when non-nil, carries the query's quality-of-service state:
	// ε-inflated pruning and deadline/cancellation stop checks, with the
	// bookkeeping that proves the answer's quality afterwards. Like
	// Shared, one QoS is threaded through every shard run of a fan-out.
	// Nil means plain exact search with zero added hot-path work.
	QoS *QoS

	// Counters, when non-nil, accumulates operation counts (Figure 17).
	Counters *stats.Counters
	// Breakdown, when non-nil, accumulates per-phase wall time across
	// all workers (Figure 13). Enabling it adds clock reads to hot
	// paths; leave nil when benchmarking end-to-end latency.
	Breakdown *stats.Breakdown
}

func (o SearchOptions) withDefaults(ixOpts Options) SearchOptions {
	if o.Workers <= 0 {
		o.Workers = ixOpts.SearchWorkers
	}
	if o.LocalQueues {
		o.Queues = o.Workers
	} else if o.Queues <= 0 {
		o.Queues = ixOpts.QueueCount
	}
	return o
}

// bound abstracts the pruning threshold shared by all search workers: the
// 1-NN BSF (stats.BSF) or the k-NN top-k set. Load returns the current
// squared pruning threshold; Update offers an improvement.
type bound interface {
	Load() float64
	Update(dist float64, pos int64) bool
}

// mappedBound wraps a bound whose positions live in a global space (a
// sharded collection's), translating this index's local positions on every
// update. Loads pass through untouched — the pruning threshold is the same
// number in every space.
type mappedBound struct {
	inner    bound
	toGlobal func(int64) int64
}

func (m mappedBound) Load() float64 { return m.inner.Load() }
func (m mappedBound) Update(dist float64, pos int64) bool {
	return m.inner.Update(dist, m.toGlobal(pos))
}

// workerBound wraps b with the run's position mapping when one is set.
func workerBound(b bound, toGlobal func(int64) int64) bound {
	if toGlobal == nil {
		return b
	}
	return mappedBound{inner: b, toGlobal: toGlobal}
}

// scanBlock is the number of leaf candidates a worker processes between
// refreshes of the shared pruning bound. Within a block the worker prunes
// against a locally cached copy — a stale (larger) threshold only admits
// extra candidates, never wrongly prunes — so the shared-atomic read
// leaves the per-candidate loop.
const scanBlock = 64

// leafScratch is the per-worker scratch for segment-major leaf scans: the
// whole leaf's lower-bound accumulators. Workers borrow one from
// scratchPool for the duration of a drain phase.
type leafScratch struct {
	lb []float64
}

// bounds returns the accumulator slice sized for an n-entry leaf.
func (s *leafScratch) bounds(n int) []float64 {
	if cap(s.lb) < n {
		s.lb = make([]float64, n)
	}
	return s.lb[:n]
}

// accumulate streams a leaf's symbol columns against the distance
// table's rows, leaving each entry's unscaled lower-bound sum in the
// scratch buffer — the one canonical column kernel shared by the
// Euclidean and DTW leaf scans. The ascending-segment accumulation
// order is what makes the result (after scaling) bitwise identical to
// the scalar per-entry kernels; keep it if you touch this.
func (s *leafScratch) accumulate(leaf *tree.Node, tab *isax.DistTable, w int) []float64 {
	lbs := s.bounds(leaf.LeafLen())
	row := tab.Row(0)
	for e, sym := range leaf.Col(0) {
		lbs[e] = row[sym]
	}
	for seg := 1; seg < w; seg++ {
		row = tab.Row(seg)
		for e, sym := range leaf.Col(seg) {
			lbs[e] += row[sym]
		}
	}
	return lbs
}

var scratchPool = sync.Pool{New: func() any { return new(leafScratch) }}

// QueryState holds the per-query scratch resources — PAA buffer, iSAX word
// buffer, the per-query distance table, and the priority-queue set — that
// a long-lived query engine reuses across queries instead of reallocating
// per search. A QueryState may back at most one SearchRun at a time; the
// zero value is ready to use.
type QueryState struct {
	paaBuf  []float64
	wordBuf []uint8
	table   *isax.DistTable
	queues  pqueue.Set[*tree.Node]
}

// NewQueryState returns an empty reusable scratch state.
func NewQueryState() *QueryState { return &QueryState{} }

// SearchRun is one in-flight exact query: the shared per-query state
// (pruning bound, priority queues, root-claim counter) that any number of
// workers operate on. It decomposes Algorithm 6 into two phases so that
// workers can be either goroutines spawned for this query (Run) or units
// dispatched onto a persistent pool (internal/engine):
//
//	InsertPhase — claim root subtrees via Fetch&Inc, prune, push
//	              non-prunable leaves into the queues (lines 1-6);
//	DrainPhase  — after every InsertPhase call has returned (the
//	              all-inserted barrier of line 7), drain queues until all
//	              are finished (lines 8-13).
//
// All phase methods are safe for concurrent use; pid distinguishes
// workers for queue-cursor and randomization purposes.
type SearchRun struct {
	ix          *Index
	query       []float32
	table       *isax.DistTable // per-query MINDIST table, built once in init
	pooledTable bool            // table borrowed from ix.tables (no QueryState)
	bnd         bound
	bsf         *stats.BSF // set for 1-NN runs
	top         *topK      // set for k-NN runs
	queues      *pqueue.Set[*tree.Node]
	rootCtr     atomic.Int64
	opt         SearchOptions
	qos         *QoS    // nil for plain exact runs
	escale      float64 // qos.Scale(): (1+ε)² lower-bound inflation, 1 = exact
}

// NewSearchRun prepares an exact 1-NN query: it validates the query,
// computes its PAA and iSAX summaries, seeds the BSF with the approximate
// search, and readies the queue set. st may be nil (fresh allocations) or
// a reused QueryState. The query must already be z-normalized if the
// indexed data is (the public API layer handles this).
func (ix *Index) NewSearchRun(query []float32, st *QueryState, opt SearchOptions) (*SearchRun, error) {
	if err := ix.validateQuery(query); err != nil {
		return nil, err
	}
	bsf := opt.Shared
	if bsf == nil {
		bsf = stats.NewBSF()
	}
	r := &SearchRun{ix: ix, query: query, bnd: workerBound(bsf, opt.GlobalPos), bsf: bsf,
		opt: opt.withDefaults(ix.Opts), qos: opt.QoS, escale: opt.QoS.Scale()}
	r.init(st)
	return r, nil
}

// NewKNNRun prepares an exact k-NN query (see NewSearchRun); k is clamped
// to the collection size.
func (ix *Index) NewKNNRun(query []float32, k int, st *QueryState, opt SearchOptions) (*SearchRun, error) {
	if err := ix.validateKNN(query, k); err != nil {
		return nil, err
	}
	// Seeds may reference series outside this index (a live index's delta
	// buffer), so the answer set can be larger than the collection.
	if k > ix.Data.Count()+len(opt.Seeds) {
		k = ix.Data.Count() + len(opt.Seeds)
	}
	best := newTopK(k)
	r := &SearchRun{ix: ix, query: query, bnd: workerBound(best, opt.GlobalPos), top: best,
		opt: opt.withDefaults(ix.Opts), qos: opt.QoS, escale: opt.QoS.Scale()}
	r.init(st)
	return r, nil
}

// globalBnd returns the bound in its global-position space (the BSF or
// top-k set itself, before local-position mapping) — the right target for
// seeds, whose positions are already global.
func (r *SearchRun) globalBnd() bound {
	if r.bsf != nil {
		return r.bsf
	}
	return r.top
}

// init computes the query summaries (into st's buffers when available),
// builds the per-query distance table, seeds the bound via the
// approximate search, and sizes the queue set.
func (r *SearchRun) init(st *QueryState) {
	bd := r.opt.Breakdown
	var tInit time.Time
	if bd.Enabled() {
		tInit = time.Now()
	}
	var paaBuf []float64
	var wordBuf []uint8
	if st != nil {
		paaBuf, wordBuf = st.paaBuf, st.wordBuf
	}
	qpaa := paa.Transform(r.query, r.ix.Schema.Segments, paaBuf)
	qword := r.ix.Schema.WordFromPAA(qpaa, wordBuf)
	if st != nil {
		st.paaBuf, st.wordBuf = qpaa, qword
		// The table's geometry is schema-bound; a pooled state may have
		// last served a different generation (engine Swap) or a sibling
		// shard, so recheck — same geometry means the buffer is reusable.
		if st.table == nil || !st.table.Schema().SameGeometry(r.ix.Schema) {
			st.table = r.ix.Schema.NewDistTable()
		}
		r.table = st.table
		st.queues.Resize(r.opt.Queues, 64)
		r.queues = &st.queues
	} else {
		r.table, r.pooledTable = r.ix.getTable(), true
		r.queues = pqueue.NewSet[*tree.Node](r.opt.Queues, 64)
	}
	r.table.BuildPAA(qpaa)
	for _, s := range r.opt.Seeds {
		r.globalBnd().Update(s.Dist, int64(s.Position))
	}
	r.ix.approxSearch(r.query, qpaa, qword, r.table, r.bnd, r.opt.Counters)
	if bd.Enabled() {
		bd.Add(stats.PhaseInit, time.Since(tInit))
	}
}

// Run executes the query with opt.Workers goroutines spawned for this run
// only — the paper's original per-query execution mode (Algorithm 5/6).
func (r *SearchRun) Run() {
	var insertBarrier sync.WaitGroup // all-inserted barrier (Algorithm 6 line 7)
	insertBarrier.Add(r.opt.Workers)
	var wg sync.WaitGroup
	for pid := 0; pid < r.opt.Workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			r.InsertPhase(pid)
			insertBarrier.Done()
			insertBarrier.Wait()
			r.DrainPhase(pid)
		}(pid)
	}
	wg.Wait()
}

// Best returns the 1-NN answer. Call only after all workers finished.
func (r *SearchRun) Best() Match {
	d, pos := r.bsf.Best()
	return Match{Position: int(pos), Dist: d}
}

// Matches returns the k-NN answers sorted by ascending distance. Call
// only after all workers finished.
func (r *SearchRun) Matches() []Match { return r.top.results() }

// releaseTable returns a pool-borrowed table after the run completes.
// Only the Index-owned entry points call it; externally created runs
// (NewSearchRun with a nil state) simply let their table be collected.
func (r *SearchRun) releaseTable() {
	if r.pooledTable {
		r.ix.putTable(r.table)
		r.table, r.pooledTable = nil, false
	}
}

// InsertPhase is the tree-traversal half of Algorithm 6: claim root
// subtrees via Fetch&Inc and push non-prunable leaves into the queues.
// Every participating worker must call it exactly once, and all calls
// must return before the first DrainPhase call starts.
func (r *SearchRun) InsertPhase(pid int) {
	ctrs, bd := r.opt.Counters, r.opt.Breakdown
	cursor := pid % r.opt.Queues // round-robin insertion cursor (line 2)

	var tStart time.Time
	if bd.Enabled() {
		tStart = time.Now()
	}
	var insertTime time.Duration
	for {
		i := int(r.rootCtr.Add(1) - 1)
		if i >= len(r.ix.activeRoots) {
			break
		}
		if r.qos.ShouldStop() {
			// Root subtree i (at least) goes unexplored.
			r.qos.MarkTruncated()
			break
		}
		root := r.ix.Tree.Root(int(r.ix.activeRoots[i]))
		r.traverse(root, &cursor, &insertTime, ctrs, bd)
	}
	if bd.Enabled() {
		bd.Add(stats.PhaseTreePass, time.Since(tStart)-insertTime)
		bd.Add(stats.PhasePQInsert, insertTime)
	}
}

// DrainPhase is the queue-processing half of Algorithm 6 (lines 8-13):
// drain queues until every queue is finished.
func (r *SearchRun) DrainPhase(pid int) {
	ctrs, bd := r.opt.Counters, r.opt.Breakdown
	scratch := scratchPool.Get().(*leafScratch)
	defer scratchPool.Put(scratch)

	if r.opt.LocalQueues {
		// Ablation mode: drain only this worker's private queue; no
		// stealing. Workers whose queues drain early sit idle — the
		// load imbalance the paper rejected this design for.
		r.processQueue(r.queues.Queue(pid%r.opt.Queues), scratch, ctrs, bd)
		return
	}

	// The next queue to work on is chosen starting from a randomized
	// position — the load-balancing scheme the paper settled on ("workers
	// use randomization to choose the priority queues they will work on").
	rnd := uint64(pid)*0x9E3779B97F4A7C15 + 0x1234567
	q := pid % r.opt.Queues
	for {
		r.processQueue(r.queues.Queue(q), scratch, ctrs, bd)
		rnd = rnd*6364136223846793005 + 1442695040888963407 // LCG step
		q = r.queues.NextUnfinished(int(rnd>>33) % r.opt.Queues)
		if q < 0 {
			return
		}
	}
}

// Search answers an exact 1-NN query (Algorithm 5). The query must be
// z-normalized by the caller if the indexed data is (the public API layer
// handles this).
func (ix *Index) Search(query []float32, opt SearchOptions) (Match, error) {
	r, err := ix.NewSearchRun(query, nil, opt)
	if err != nil {
		return Match{}, err
	}
	r.Run()
	r.releaseTable()
	return r.Best(), nil
}

// traverse is Algorithm 7: prune subtrees whose lower bound exceeds the
// BSF; push surviving leaves into the queues round-robin. Node bounds are
// one table lookup per segment against the run's distance table.
func (r *SearchRun) traverse(node *tree.Node, cursor *int, insertTime *time.Duration,
	ctrs *stats.Counters, bd *stats.Breakdown) {

	ctrs.AddNodesVisited(1)
	dist := r.table.MinDistPrefix(node.Symbols, node.Bits)
	ctrs.AddLowerBound(1)
	if limit := r.bnd.Load(); dist*r.escale >= limit {
		if dist < limit {
			// Pruned only because of the (1+ε)² inflation: this subtree
			// could hold something better than the BSF, but nothing below
			// dist — record it as an answer-quality witness.
			r.qos.PruneEps(dist)
		}
		return
	}
	if node.IsLeaf() {
		if node.LeafLen() == 0 {
			return
		}
		if bd.Enabled() {
			t0 := time.Now()
			r.queues.PushRoundRobin(cursor, dist, node)
			*insertTime += time.Since(t0)
		} else {
			r.queues.PushRoundRobin(cursor, dist, node)
		}
		ctrs.AddLeavesInserted(1)
		return
	}
	r.traverse(node.Left, cursor, insertTime, ctrs, bd)
	r.traverse(node.Right, cursor, insertTime, ctrs, bd)
}

// processQueue is Algorithm 8: repeatedly DeleteMin; once the popped bound
// is no better than the BSF (or the queue is empty), mark the queue
// finished and return.
func (r *SearchRun) processQueue(q *pqueue.Queue[*tree.Node], scratch *leafScratch,
	ctrs *stats.Counters, bd *stats.Breakdown) {

	for {
		if q.Finished() {
			return
		}
		if r.qos.ShouldStop() {
			// Deadline passed or request cancelled: abandon the queue at
			// leaf-scan granularity. The answer only loses exactness if
			// unscanned work actually remained.
			if _, ok := q.PopMin(); ok {
				r.qos.MarkTruncated()
			}
			q.MarkFinished()
			return
		}
		var t0 time.Time
		if bd.Enabled() {
			t0 = time.Now()
		}
		item, ok := q.PopMin()
		if bd.Enabled() {
			bd.Add(stats.PhasePQRemove, time.Since(t0))
		}
		if !ok {
			q.MarkFinished()
			return
		}
		if limit := r.bnd.Load(); item.Priority*r.escale >= limit {
			// Everything left in this min-queue is at least as far:
			// abandon the whole queue (Algorithm 8 lines 8-10). Under
			// ε-inflation the popped minimum bounds every remaining item,
			// so it is the single witness for the whole queue.
			if item.Priority < limit {
				r.qos.PruneEps(item.Priority)
			}
			ctrs.AddLeavesPruned(1)
			q.MarkFinished()
			return
		}
		if bd.Enabled() {
			t0 = time.Now()
		}
		r.ix.scanLeaf(item.Value, r.query, r.table, scratch, r.bnd, r.qos, r.escale, ctrs)
		if bd.Enabled() {
			bd.Add(stats.PhaseDistCalc, time.Since(t0))
		}
	}
}

// scanLeaf is Algorithm 9 (CalculateRealDistance), restructured around
// the segment-major leaf layout: first the whole leaf's lower bounds are
// accumulated into the worker's scratch buffer by streaming each symbol
// column against its distance-table row (w tight table-load-and-add
// column loops — no per-entry word gather, no branches), then only the
// surviving candidates get the early-abandoning real-distance kernel.
// The pruning bound is cached locally and refreshed per scanBlock (and
// after every improvement) instead of loading the shared atomic twice
// per candidate.
func (ix *Index) scanLeaf(leaf *tree.Node, query []float32, tab *isax.DistTable,
	scratch *leafScratch, bnd bound, qos *QoS, escale float64, ctrs *stats.Counters) {

	// Worker-panic tests poison one leaf scan here to prove the engine
	// confines the blast radius to a single query. Disarmed, this is
	// one atomic load per leaf — invisible next to the scan itself.
	if err := fpScanLeaf.Hit(); err != nil {
		panic(err)
	}
	n := leaf.LeafLen()
	if n == 0 {
		return
	}
	lbs := scratch.accumulate(leaf, tab, ix.Schema.Segments)

	scale := tab.Scale()
	limit := bnd.Load()
	var realCount int64
	for base := 0; base < n; base += scanBlock {
		end := base + scanBlock
		if end > n {
			end = n
		}
		for e := base; e < end; e++ {
			if lb := lbs[e] * scale; lb*escale >= limit {
				if escale > 1 && lb < limit {
					// Candidate skipped only because of ε-inflation.
					qos.PruneEps(lb)
				}
				continue
			}
			pos := leaf.Positions[e]
			d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, limit)
			realCount++
			if d < limit {
				if bnd.Update(d, int64(pos)) {
					ctrs.AddBSFUpdate()
				}
				limit = bnd.Load()
			}
		}
		if end < n {
			limit = bnd.Load()
		}
	}
	ctrs.AddLowerBound(int64(n))
	ctrs.AddRealDist(realCount)
}

// ApproxSearch answers an approximate 1-NN query: only the BSF-seeding
// step of the exact algorithm (descend to the query's leaf, best real
// distance inside it). The paper's progressive-search citation observes
// this initial answer is usually very close to the exact one; the exact
// search refines it. Falls back to the exact search in the rare case the
// descent lands on an empty leaf.
func (ix *Index) ApproxSearch(query []float32, opt SearchOptions) (Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return Match{}, err
	}
	qpaa := paa.Transform(query, ix.Schema.Segments, nil)
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	bsf := stats.NewBSF()
	// Seeds (delta-scan results in a live index) compete with the leaf's
	// candidates exactly as in an exact run; their positions are global.
	for _, s := range opt.Seeds {
		bsf.Update(s.Dist, int64(s.Position))
	}
	// No distance table here: the approximate search only needs one in
	// the rare empty-subtree fallback, and its point is to be cheap.
	ix.approxSearch(query, qpaa, qword, nil, workerBound(bsf, opt.GlobalPos), opt.Counters)
	d, pos := bsf.Best()
	if pos < 0 {
		return ix.Search(query, opt)
	}
	return Match{Position: int(pos), Dist: d}, nil
}

// ApproxKNN is the k-NN form of ApproxSearch: the query's own leaf (plus
// any seeds) populates a top-k set. It reports at most k matches — fewer
// when the leaf holds fewer series — in ascending distance order.
func (ix *Index) ApproxKNN(query []float32, k int, opt SearchOptions) ([]Match, error) {
	if err := ix.validateKNN(query, k); err != nil {
		return nil, err
	}
	if k > ix.Data.Count()+len(opt.Seeds) {
		k = ix.Data.Count() + len(opt.Seeds)
	}
	top := newTopK(k)
	for _, s := range opt.Seeds {
		top.Update(s.Dist, int64(s.Position))
	}
	qpaa := paa.Transform(query, ix.Schema.Segments, nil)
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	ix.approxSearch(query, qpaa, qword, nil, workerBound(top, opt.GlobalPos), opt.Counters)
	ms := top.results()
	if len(ms) == 0 {
		return ix.SearchKNN(query, k, opt)
	}
	return ms, nil
}

// approxSearch seeds the BSF (Figure 4(a)): descend to the leaf matching
// the query's iSAX word and take the best real distance inside it. The
// bound is loaded once per candidate and refreshed only after an update.
// tab may be nil (the scalar kernel serves the rare empty-subtree
// fallback); exact runs pass their already-built table.
func (ix *Index) approxSearch(query []float32, qpaa []float64, qword []uint8,
	tab *isax.DistTable, bnd bound, ctrs *stats.Counters) {

	root := ix.Tree.Root(ix.Schema.RootIndex(qword))
	if root == nil {
		// The query's own subtree is empty: fall back to the root child
		// with the smallest lower bound.
		best := math.Inf(1)
		for _, slot := range ix.activeRoots {
			r := ix.Tree.Root(int(slot))
			var d float64
			if tab != nil {
				d = tab.MinDistPrefix(r.Symbols, r.Bits)
			} else {
				d = ix.Schema.MinDistPAAPrefix(qpaa, r.Symbols, r.Bits)
			}
			ctrs.AddLowerBound(1)
			if d < best {
				best = d
				root = r
			}
		}
	}
	if root == nil {
		return // empty tree; validateQuery prevents this for public entry points
	}
	leaf := ix.Tree.DescendToLeaf(root, qword)
	limit := bnd.Load()
	for i := 0; i < leaf.LeafLen(); i++ {
		pos := leaf.Positions[i]
		d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, limit)
		ctrs.AddRealDist(1)
		if d < limit {
			if bnd.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
			limit = bnd.Load()
		}
	}
}
