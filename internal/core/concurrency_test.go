package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// An index must support many concurrent queries: queries share nothing but
// the immutable index, so results must be identical to sequential runs.
func TestConcurrentQueriesOnSharedIndex(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 3000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 12, 64, 200)

	want := make([]float64, queries.Count())
	for qi := range want {
		m, err := ix.Search(queries.At(qi), SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = m.Dist
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*queries.Count())
	for r := 0; r < rounds; r++ {
		for qi := 0; qi < queries.Count(); qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				m, err := ix.Search(queries.At(qi), SearchOptions{Workers: 4})
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(m.Dist-want[qi]) > 1e-9*(1+want[qi]) {
					t.Errorf("concurrent query %d: %v want %v", qi, m.Dist, want[qi])
				}
			}(qi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Mixed concurrent workload: 1-NN, k-NN and DTW queries interleaved.
func TestConcurrentMixedQueryKinds(t *testing.T) {
	ix := buildTestIndex(t, dataset.SeismicLike, 1500, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.SeismicLike, 6, 64, 201)
	var wg sync.WaitGroup
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		wg.Add(3)
		go func() {
			defer wg.Done()
			if _, err := ix.Search(q, SearchOptions{}); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := ix.SearchKNN(q, 3, SearchOptions{}); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := ix.SearchDTW(q, 6, SearchOptions{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// Duplicated series: every copy is a valid 1-NN at distance zero, k-NN
// must return distinct positions.
func TestDuplicateSeries(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 100, 64, 202)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate series 0 over positions 1..9.
	for i := 1; i < 10; i++ {
		copy(data.At(i), data.At(0))
	}
	ix, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ix.Search(data.At(0), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist != 0 || m.Position < 0 || m.Position > 9 {
		t.Fatalf("duplicate search: %+v", m)
	}
	ms, err := ix.SearchKNN(data.At(0), 10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 10 {
		t.Fatalf("got %d matches", len(ms))
	}
	seen := map[int]bool{}
	for _, mm := range ms {
		if mm.Dist != 0 {
			t.Fatalf("duplicate at distance %v", mm.Dist)
		}
		if seen[mm.Position] {
			t.Fatalf("position %d returned twice", mm.Position)
		}
		seen[mm.Position] = true
	}
}

// Constant (all-zero after z-norm) series must be indexable and findable.
func TestConstantSeries(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 50, 64, 203)
	if err != nil {
		t.Fatal(err)
	}
	zero := data.At(7)
	for i := range zero {
		zero[i] = 0
	}
	ix, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, 64)
	m, err := ix.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 7 || m.Dist != 0 {
		t.Fatalf("constant query: %+v", m)
	}
}

// Workers far exceeding data and queues must still terminate and be exact.
func TestManyMoreWorkersThanWork(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 64, 64, Options{
		LeafCapacity: 4, ChunkSize: 2, IndexWorkers: 32, SearchWorkers: 64, QueueCount: 48,
	})
	queries, _ := dataset.Queries(dataset.RandomWalk, 5, 64, 204)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForce1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: %v want %v", qi, got.Dist, want.Dist)
		}
	}
}

// The BSF-update counter should stay small (the paper reports 10-12
// updates per query on average) — a sanity check that the approximate
// answer seeds well and the queues process in bound order.
func TestBSFUpdateCountIsSmall(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 4000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 10, 64, 205)
	ctrs := &stats.Counters{}
	for qi := 0; qi < queries.Count(); qi++ {
		if _, err := ix.Search(queries.At(qi), SearchOptions{Counters: ctrs}); err != nil {
			t.Fatal(err)
		}
	}
	perQuery := float64(ctrs.Snapshot().BSFUpdates) / float64(queries.Count())
	if perQuery > 40 {
		t.Errorf("BSF updated %.1f times per query; expected a small number (paper: 10-12)", perQuery)
	}
}

// Chunk size larger than the collection: a single chunk must still be
// processed fully.
func TestChunkLargerThanCollection(t *testing.T) {
	opts := smallOpts()
	opts.ChunkSize = 1 << 20
	ix := buildTestIndex(t, dataset.RandomWalk, 500, 64, opts)
	if got := ix.Stats().Series; got != 500 {
		t.Fatalf("indexed %d series, want 500", got)
	}
}

// Leaf capacity 1 forces maximal splitting; the index must stay correct.
func TestLeafCapacityOne(t *testing.T) {
	opts := smallOpts()
	opts.LeafCapacity = 1
	ix := buildTestIndex(t, dataset.RandomWalk, 300, 64, opts)
	if err := ix.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	queries, _ := dataset.Queries(dataset.RandomWalk, 5, 64, 206)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForce1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: %v want %v", qi, got.Dist, want.Dist)
		}
	}
}
