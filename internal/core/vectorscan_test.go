package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dtw"
	"repro/internal/paa"
	"repro/internal/tree"
	"repro/internal/vector"
)

// naive1NN is a reference exact search built entirely on the pre-table
// scalar kernels and per-entry word gathers: walk every leaf, prune each
// entry with MinDistPAAWordNaive against the running best, early-abandon
// the real distance. The vectorized engine must return identical answers.
func naive1NN(ix *Index, query []float32) Match {
	w := ix.Schema.Segments
	qpaa := paa.Transform(query, w, nil)
	wordBuf := make([]uint8, w)
	best := Match{Position: -1, Dist: math.Inf(1)}
	ix.Tree.ForEachLeaf(func(n *tree.Node) {
		for i := 0; i < n.LeafLen(); i++ {
			if ix.Schema.MinDistPAAWordNaive(qpaa, n.Word(i, w, wordBuf)) >= best.Dist {
				continue
			}
			pos := n.Positions[i]
			d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, best.Dist)
			if d < best.Dist {
				best = Match{Position: int(pos), Dist: d}
			}
		}
	})
	return best
}

// naiveKNN is naive1NN's k-NN counterpart (insertion into a sorted
// slice; fine at test scale).
func naiveKNN(ix *Index, query []float32, k int) []Match {
	w := ix.Schema.Segments
	qpaa := paa.Transform(query, w, nil)
	wordBuf := make([]uint8, w)
	var top []Match
	limit := func() float64 {
		if len(top) < k {
			return math.Inf(1)
		}
		return top[len(top)-1].Dist
	}
	ix.Tree.ForEachLeaf(func(n *tree.Node) {
		for i := 0; i < n.LeafLen(); i++ {
			if ix.Schema.MinDistPAAWordNaive(qpaa, n.Word(i, w, wordBuf)) >= limit() {
				continue
			}
			pos := n.Positions[i]
			d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, limit())
			if d >= limit() {
				continue
			}
			j := len(top)
			top = append(top, Match{})
			for j > 0 && (top[j-1].Dist > d) {
				top[j] = top[j-1]
				j--
			}
			top[j] = Match{Position: int(pos), Dist: d}
			if len(top) > k {
				top = top[:k]
			}
		}
	})
	return top
}

// naiveDTW mirrors the DTW cascade with the scalar envelope kernel.
func naiveDTW(ix *Index, query []float32, window int) Match {
	w := ix.Schema.Segments
	u, l := dtw.Envelope(query, window)
	uMax := paa.SegmentMax(u, w, nil)
	lMin := paa.SegmentMin(l, w, nil)
	wordBuf := make([]uint8, w)
	best := Match{Position: -1, Dist: math.Inf(1)}
	ix.Tree.ForEachLeaf(func(n *tree.Node) {
		for i := 0; i < n.LeafLen(); i++ {
			if ix.Schema.MinDistEnvelopeWord(uMax, lMin, n.Word(i, w, wordBuf)) >= best.Dist {
				continue
			}
			pos := n.Positions[i]
			candidate := ix.Data.At(int(pos))
			if dtw.LBKeogh(candidate, l, u, best.Dist) >= best.Dist {
				continue
			}
			d := dtw.Distance(query, candidate, window, best.Dist)
			if d < best.Dist {
				best = Match{Position: int(pos), Dist: d}
			}
		}
	})
	return best
}

// TestVectorizedSearchMatchesNaiveKernels is the tentpole's acceptance
// test: the table/SoA read path returns identical 1-NN, k-NN, and DTW
// answers to reference searches running the original scalar kernels.
func TestVectorizedSearchMatchesNaiveKernels(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 4000, 64, smallOpts())
	queries, err := dataset.Generate(dataset.RandomWalk, 30, 64, 23)
	if err != nil {
		t.Fatal(err)
	}
	const k, window = 5, 4
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)

		got, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := naive1NN(ix, q); got != want {
			t.Fatalf("query %d: 1-NN %+v, naive kernels say %+v", qi, got, want)
		}

		gotK, err := ix.SearchKNN(q, k, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantK := naiveKNN(ix, q, k)
		if len(gotK) != len(wantK) {
			t.Fatalf("query %d: k-NN returned %d matches, naive %d", qi, len(gotK), len(wantK))
		}
		for i := range gotK {
			if gotK[i] != wantK[i] {
				t.Fatalf("query %d: k-NN[%d] = %+v, naive %+v", qi, i, gotK[i], wantK[i])
			}
		}

		gotD, err := ix.SearchDTW(q, window, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveDTW(ix, q, window); gotD != want {
			t.Fatalf("query %d: DTW %+v, naive kernels say %+v", qi, gotD, want)
		}
	}
}

// TestScanLeafBoundsMatchScalarKernel checks, on real tree leaves, that
// the segment-major column accumulation produces bitwise-identical lower
// bounds to the per-entry scalar kernel.
func TestScanLeafBoundsMatchScalarKernel(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 3000, 64, smallOpts())
	queries, err := dataset.Generate(dataset.RandomWalk, 5, 64, 31)
	if err != nil {
		t.Fatal(err)
	}
	w := ix.Schema.Segments
	tab := ix.Schema.NewDistTable()
	var scratch leafScratch
	wordBuf := make([]uint8, w)
	for qi := 0; qi < queries.Count(); qi++ {
		qpaa := paa.Transform(queries.At(qi), w, nil)
		tab.BuildPAA(qpaa)
		ix.Tree.ForEachLeaf(func(leaf *tree.Node) {
			n := leaf.LeafLen()
			if n == 0 {
				return
			}
			lbs := scratch.accumulate(leaf, tab, w)
			for e := 0; e < n; e++ {
				got := lbs[e] * tab.Scale()
				want := ix.Schema.MinDistPAAWord(qpaa, leaf.Word(e, w, wordBuf))
				if got != want {
					t.Fatalf("query %d entry %d: column bound %v, scalar %v", qi, e, got, want)
				}
			}
		})
	}
}

// BenchmarkLeafScan measures the lower-bound stage of the leaf scan over
// a realistically filled tree: the pre-PR shape (entry-major words, one
// scalar kernel call per entry) against the segment-major column loops
// over the per-query distance table. Real-distance work is excluded so
// the numbers isolate the kernel the PR vectorized.
func BenchmarkLeafScan(b *testing.B) {
	data, err := dataset.Generate(dataset.RandomWalk, 40000, 256, 11)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(data, Options{IndexWorkers: 8})
	if err != nil {
		b.Fatal(err)
	}
	w := ix.Schema.Segments
	var leaves []*tree.Node
	var entries int
	ix.Tree.ForEachLeaf(func(n *tree.Node) {
		if n.LeafLen() > 0 {
			leaves = append(leaves, n)
			entries += n.LeafLen()
		}
	})
	// Entry-major copies of every leaf's words: the pre-PR layout.
	aos := make([][]uint8, len(leaves))
	for li, leaf := range leaves {
		flat := make([]uint8, leaf.LeafLen()*w)
		for i := 0; i < leaf.LeafLen(); i++ {
			leaf.Word(i, w, flat[i*w:(i+1)*w])
		}
		aos[li] = flat
	}
	qpaa := paa.Transform(data.At(0), w, nil)
	tab := ix.Schema.NewDistTable()
	tab.BuildPAA(qpaa)
	var scratch leafScratch
	var sink float64
	b.Logf("%d leaves, %d entries", len(leaves), entries)

	b.Run("entry-major-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			min := math.Inf(1)
			for li := range leaves {
				flat := aos[li]
				for e := 0; e < len(flat)/w; e++ {
					if lb := ix.Schema.MinDistPAAWord(qpaa, flat[e*w:(e+1)*w]); lb < min {
						min = lb
					}
				}
			}
			sink += min
		}
	})
	b.Run("segment-major-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			min := math.Inf(1)
			for _, leaf := range leaves {
				lbs := scratch.accumulate(leaf, tab, w)
				scale := tab.Scale()
				for _, lb := range lbs {
					if v := lb * scale; v < min {
						min = v
					}
				}
			}
			sink += min
		}
	})
	_ = sink
}
