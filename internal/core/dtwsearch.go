package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtw"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/pqueue"
	"repro/internal/stats"
	"repro/internal/tree"
)

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba band of the given radius (in points; use dtw.WindowSize to
// convert the paper's percentage windows).
//
// Per §IV ("MESSI with DTW"): "no changes are required in the index
// structure; we just have to build the envelope of the LB_Keogh method
// around the query series, and then search the index using this envelope."
// Concretely, node pruning uses MINDIST between the envelope's per-segment
// bounds and the node summary — served from the same per-query distance
// table as the Euclidean path, built from the envelope summary instead of
// the PAA — and per-series filtering cascades that bound, then LB_Keogh on
// the raw series, then the early-abandoning DTW itself.
func (ix *Index) SearchDTW(query []float32, window int, opt SearchOptions) (Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return Match{}, err
	}
	if err := dtw.CheckWindow(ix.Data.Length, window); err != nil {
		return Match{}, fmt.Errorf("%w: %w", ErrBadWindow, err)
	}
	opt = opt.withDefaults(ix.Opts)
	bd := opt.Breakdown

	var tInit time.Time
	if bd.Enabled() {
		tInit = time.Now()
	}
	env := ix.newDTWQuery(query, window)
	defer ix.putTable(env.tab)
	env.qos, env.escale = opt.QoS, opt.QoS.Scale()
	bsf := opt.Shared
	if bsf == nil {
		bsf = stats.NewBSF()
	}
	// Seeds are already global; candidates found in this index are mapped
	// into the global space on every bound update (see
	// SearchOptions.GlobalPos).
	for _, s := range opt.Seeds {
		bsf.Update(s.Dist, int64(s.Position))
	}
	bnd := workerBound(bsf, opt.GlobalPos)
	ix.approxSearchDTW(env, bnd, opt.Counters)
	if bd.Enabled() {
		bd.Add(stats.PhaseInit, time.Since(tInit))
	}

	queues := pqueue.NewSet[*tree.Node](opt.Queues, 64)
	var rootCtr atomic.Int64
	var barrier sync.WaitGroup
	barrier.Add(opt.Workers)
	var wg sync.WaitGroup
	for pid := 0; pid < opt.Workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ix.dtwWorker(env, bnd, queues, &rootCtr, &barrier, pid, opt)
		}(pid)
	}
	wg.Wait()

	d, pos := bsf.Best()
	return Match{Position: int(pos), Dist: d}, nil
}

// dtwQuery bundles the per-query DTW state: the query, its LB_Keogh
// envelope, and the distance table built from the envelope's per-segment
// summary (max of the upper envelope, min of the lower) used against iSAX
// words and prefixes.
type dtwQuery struct {
	query  []float32
	window int
	upper  []float32 // pointwise envelope
	lower  []float32
	tab    *isax.DistTable // built from the envelope summary
	qword  []uint8         // query's own word, for the approximate descent
	qos    *QoS            // nil for plain exact runs
	escale float64         // qos.Scale(); see SearchRun.escale
}

func (ix *Index) newDTWQuery(query []float32, window int) *dtwQuery {
	u, l := dtw.Envelope(query, window)
	w := ix.Schema.Segments
	qpaa := paa.Transform(query, w, nil)
	tab := ix.getTable() // returned to the pool by SearchDTW
	tab.BuildEnvelope(paa.SegmentMax(u, w, nil), paa.SegmentMin(l, w, nil))
	return &dtwQuery{
		query:  query,
		window: window,
		upper:  u,
		lower:  l,
		tab:    tab,
		qword:  ix.Schema.WordFromPAA(qpaa, nil),
		escale: 1,
	}
}

func (ix *Index) dtwWorker(env *dtwQuery, bsf bound, queues *pqueue.Set[*tree.Node],
	rootCtr *atomic.Int64, barrier *sync.WaitGroup, pid int, opt SearchOptions) {

	ctrs := opt.Counters
	cursor := pid % opt.Queues
	for {
		i := int(rootCtr.Add(1) - 1)
		if i >= len(ix.activeRoots) {
			break
		}
		if env.qos.ShouldStop() {
			env.qos.MarkTruncated()
			break
		}
		ix.traverseDTW(ix.Tree.Root(int(ix.activeRoots[i])), env, bsf, queues, &cursor, ctrs)
	}
	barrier.Done()
	barrier.Wait()

	scratch := scratchPool.Get().(*leafScratch)
	defer scratchPool.Put(scratch)
	rnd := uint64(pid)*0x9E3779B97F4A7C15 + 0x9876543
	q := pid % opt.Queues
	for {
		ix.processQueueDTW(queues.Queue(q), env, scratch, bsf, ctrs)
		rnd = rnd*6364136223846793005 + 1442695040888963407
		q = queues.NextUnfinished(int(rnd>>33) % opt.Queues)
		if q < 0 {
			return
		}
	}
}

func (ix *Index) traverseDTW(node *tree.Node, env *dtwQuery, bsf bound,
	queues *pqueue.Set[*tree.Node], cursor *int, ctrs *stats.Counters) {

	ctrs.AddNodesVisited(1)
	dist := env.tab.MinDistPrefix(node.Symbols, node.Bits)
	ctrs.AddLowerBound(1)
	if limit := bsf.Load(); dist*env.escale >= limit {
		if dist < limit {
			env.qos.PruneEps(dist)
		}
		return
	}
	if node.IsLeaf() {
		if node.LeafLen() == 0 {
			return
		}
		queues.PushRoundRobin(cursor, dist, node)
		ctrs.AddLeavesInserted(1)
		return
	}
	ix.traverseDTW(node.Left, env, bsf, queues, cursor, ctrs)
	ix.traverseDTW(node.Right, env, bsf, queues, cursor, ctrs)
}

func (ix *Index) processQueueDTW(q *pqueue.Queue[*tree.Node], env *dtwQuery,
	scratch *leafScratch, bsf bound, ctrs *stats.Counters) {

	for {
		if q.Finished() {
			return
		}
		if env.qos.ShouldStop() {
			if _, ok := q.PopMin(); ok {
				env.qos.MarkTruncated()
			}
			q.MarkFinished()
			return
		}
		item, ok := q.PopMin()
		if !ok {
			q.MarkFinished()
			return
		}
		if limit := bsf.Load(); item.Priority*env.escale >= limit {
			if item.Priority < limit {
				env.qos.PruneEps(item.Priority)
			}
			ctrs.AddLeavesPruned(1)
			q.MarkFinished()
			return
		}
		ix.scanLeafDTW(item.Value, env, scratch, bsf, ctrs)
	}
}

// scanLeafDTW cascades three bounds per entry — envelope-vs-word MINDIST,
// LB_Keogh on the raw candidate, then the early-abandoning DTW — with the
// MINDIST stage computed for the whole leaf at once by streaming the
// segment-major symbol columns against the envelope distance table (same
// kernel shape as the Euclidean scanLeaf). The pruning bound is cached
// locally and refreshed per scanBlock and after improvements.
func (ix *Index) scanLeafDTW(leaf *tree.Node, env *dtwQuery, scratch *leafScratch,
	bsf bound, ctrs *stats.Counters) {

	n := leaf.LeafLen()
	if n == 0 {
		return
	}
	lbs := scratch.accumulate(leaf, env.tab, ix.Schema.Segments)

	scale := env.tab.Scale()
	limit := bsf.Load()
	lbCount := int64(n)
	var realCount int64
	for base := 0; base < n; base += scanBlock {
		end := base + scanBlock
		if end > n {
			end = n
		}
		for e := base; e < end; e++ {
			if lb := lbs[e] * scale; lb*env.escale >= limit {
				if env.escale > 1 && lb < limit {
					env.qos.PruneEps(lb)
				}
				continue
			}
			pos := leaf.Positions[e]
			candidate := ix.Data.At(int(pos))
			lbCount++
			if dtw.LBKeogh(candidate, env.lower, env.upper, limit) >= limit {
				continue
			}
			realCount++
			d := dtw.Distance(env.query, candidate, env.window, limit)
			if d < limit {
				if bsf.Update(d, int64(pos)) {
					ctrs.AddBSFUpdate()
				}
				limit = bsf.Load()
			}
		}
		if end < n {
			limit = bsf.Load()
		}
	}
	ctrs.AddLowerBound(lbCount)
	ctrs.AddRealDist(realCount)
}

// ApproxDTW answers an approximate 1-NN DTW query: only the BSF-seeding
// descent of SearchDTW (plus any seeds). Its distance is an upper bound on
// the exact constrained-DTW distance. Falls back to the exact search when
// the descent finds nothing.
func (ix *Index) ApproxDTW(query []float32, window int, opt SearchOptions) (Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return Match{}, err
	}
	if err := dtw.CheckWindow(ix.Data.Length, window); err != nil {
		return Match{}, fmt.Errorf("%w: %w", ErrBadWindow, err)
	}
	env := ix.newDTWQuery(query, window)
	defer ix.putTable(env.tab)
	bsf := stats.NewBSF()
	for _, s := range opt.Seeds {
		bsf.Update(s.Dist, int64(s.Position))
	}
	ix.approxSearchDTW(env, workerBound(bsf, opt.GlobalPos), opt.Counters)
	d, pos := bsf.Best()
	if pos < 0 {
		return ix.SearchDTW(query, window, opt)
	}
	return Match{Position: int(pos), Dist: d}, nil
}

// approxSearchDTW seeds the DTW BSF from the leaf matching the query's own
// word (warping alignment keeps the query's natural leaf a good candidate).
// The bound is loaded once per candidate and refreshed after updates.
func (ix *Index) approxSearchDTW(env *dtwQuery, bsf bound, ctrs *stats.Counters) {
	root := ix.Tree.Root(ix.Schema.RootIndex(env.qword))
	if root == nil {
		best := math.Inf(1)
		for _, slot := range ix.activeRoots {
			r := ix.Tree.Root(int(slot))
			d := env.tab.MinDistPrefix(r.Symbols, r.Bits)
			ctrs.AddLowerBound(1)
			if d < best {
				best = d
				root = r
			}
		}
	}
	if root == nil {
		return
	}
	leaf := ix.Tree.DescendToLeaf(root, env.qword)
	limit := bsf.Load()
	for i := 0; i < leaf.LeafLen(); i++ {
		pos := leaf.Positions[i]
		d := dtw.Distance(env.query, ix.Data.At(int(pos)), env.window, limit)
		ctrs.AddRealDist(1)
		if d < limit {
			if bsf.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
			limit = bsf.Load()
		}
	}
}
