package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dtw"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

// smallOpts keeps trees interesting (many splits) at test scale.
func smallOpts() Options {
	return Options{
		LeafCapacity:  32,
		ChunkSize:     64,
		IndexWorkers:  4,
		SearchWorkers: 8,
		QueueCount:    4,
	}
}

func buildTestIndex(t testing.TB, kind dataset.Kind, count, length int, opts Options) *Index {
	t.Helper()
	data, err := dataset.Generate(kind, count, length, 11)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// bruteForce1NN is the gold standard against which every algorithm is
// checked.
func bruteForce1NN(data *series.Collection, query []float32) Match {
	best := Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := vector.SquaredEuclidean(data.At(i), query)
		if d < best.Dist {
			best = Match{Position: i, Dist: d}
		}
	}
	return best
}

func bruteForceKNN(data *series.Collection, query []float32, k int) []Match {
	all := make([]Match, data.Count())
	for i := 0; i < data.Count(); i++ {
		all[i] = Match{Position: i, Dist: vector.SquaredEuclidean(data.At(i), query)}
	}
	// selection sort of the first k (fine at test scale)
	for i := 0; i < k && i < len(all); i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].Dist < all[min].Dist ||
				(all[j].Dist == all[min].Dist && all[j].Position < all[min].Position) {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func bruteForceDTW(data *series.Collection, query []float32, window int) Match {
	best := Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := dtw.Distance(query, data.At(i), window, best.Dist)
		if d < best.Dist {
			best = Match{Position: i, Dist: d}
		}
	}
	return best
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	// Length not a multiple of segments.
	bad, _ := series.NewEmptyCollection(4, 100)
	if _, err := Build(bad, Options{Segments: 16}); err == nil {
		t.Error("non-multiple length accepted")
	}
}

func TestBuildConservesSeries(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 3000, 64, smallOpts())
	st := ix.Stats()
	if st.Series != 3000 {
		t.Fatalf("tree holds %d series, want 3000", st.Series)
	}
	if err := ix.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(ix.ActiveRoots()) != st.RootChildren {
		t.Errorf("activeRoots %d != root children %d", len(ix.ActiveRoots()), st.RootChildren)
	}
}

func TestBuildDeterministicTreeShape(t *testing.T) {
	// Different worker interleavings may reorder leaf entries, but the
	// multiset of series per leaf-prefix is deterministic; we check the
	// weaker but robust property that shape statistics agree.
	a := buildTestIndex(t, dataset.RandomWalk, 2000, 64, smallOpts())
	opts := smallOpts()
	opts.IndexWorkers = 1
	b := buildTestIndex(t, dataset.RandomWalk, 2000, 64, opts)
	sa, sb := a.Stats(), b.Stats()
	if sa.Series != sb.Series || sa.RootChildren != sb.RootChildren {
		t.Errorf("parallel %+v vs serial %+v", sa, sb)
	}
}

func TestBuildTimedReportsPhases(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 2000, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	var bt BuildTiming
	if _, err := BuildTimed(data, smallOpts(), &bt); err != nil {
		t.Fatal(err)
	}
	if bt.Summarize <= 0 || bt.TreeBuild <= 0 {
		t.Errorf("phases not recorded: %+v", bt)
	}
	if bt.Total() != bt.Summarize+bt.TreeBuild {
		t.Errorf("Total inconsistent: %+v", bt)
	}
}

func TestBuildSingleSeries(t *testing.T) {
	data, _ := dataset.Generate(dataset.RandomWalk, 1, 64, 5)
	ix, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ix.Search(data.At(0), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 0 || m.Dist != 0 {
		t.Errorf("self-search = %+v", m)
	}
}

func TestSearchValidation(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 100, 64, smallOpts())
	if _, err := ix.Search(make([]float32, 32), SearchOptions{}); err == nil {
		t.Error("wrong-length query accepted")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 4000, 64, smallOpts())
	queries, err := dataset.Queries(dataset.RandomWalk, 30, 64, 77)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForce1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: dist %v, want %v (pos %d vs %d)",
				qi, got.Dist, want.Dist, got.Position, want.Position)
		}
	}
}

func TestSearchSingleQueueMatchesBruteForce(t *testing.T) {
	ix := buildTestIndex(t, dataset.SeismicLike, 3000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.SeismicLike, 20, 64, 78)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForce1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{Queues: 1}) // MESSI-sq
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: sq dist %v, want %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestSearchAcrossWorkerAndQueueCounts(t *testing.T) {
	ix := buildTestIndex(t, dataset.SALDLike, 2000, 128, smallOpts())
	queries, _ := dataset.Queries(dataset.SALDLike, 5, 128, 79)
	for _, workers := range []int{1, 2, 7, 16} {
		for _, queues := range []int{1, 2, 5, 16} {
			for qi := 0; qi < queries.Count(); qi++ {
				q := queries.At(qi)
				want := bruteForce1NN(ix.Data, q)
				got, err := ix.Search(q, SearchOptions{Workers: workers, Queues: queues})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
					t.Fatalf("workers=%d queues=%d query %d: %v want %v",
						workers, queues, qi, got.Dist, want.Dist)
				}
			}
		}
	}
}

func TestSearchSelfQueriesFindThemselves(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 1000, 64, smallOpts())
	for i := 0; i < 50; i++ {
		m, err := ix.Search(ix.Data.At(i*7%1000), SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("self query %d: dist %v, want 0", i, m.Dist)
		}
	}
}

func TestSearchCounters(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 4000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 5, 64, 80)
	for qi := 0; qi < queries.Count(); qi++ {
		ctrs := &stats.Counters{}
		got, err := ix.Search(queries.At(qi), SearchOptions{Counters: ctrs})
		if err != nil {
			t.Fatal(err)
		}
		snap := ctrs.Snapshot()
		if snap.LowerBoundCalcs == 0 {
			t.Error("no lower-bound calcs recorded")
		}
		if snap.RealDistCalcs == 0 {
			t.Error("no real-distance calcs recorded")
		}
		// Pruning must actually prune: far fewer real distances than the
		// collection size.
		if snap.RealDistCalcs > int64(ix.Data.Count())/2 {
			t.Errorf("pruning ineffective: %d real calcs for %d series",
				snap.RealDistCalcs, ix.Data.Count())
		}
		if got.Position < 0 {
			t.Error("no result position")
		}
	}
}

func TestSearchBreakdownSumsToSomething(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 3000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 3, 64, 81)
	bd := &stats.Breakdown{}
	for qi := 0; qi < queries.Count(); qi++ {
		if _, err := ix.Search(queries.At(qi), SearchOptions{Breakdown: bd}); err != nil {
			t.Fatal(err)
		}
	}
	if bd.Total() <= 0 {
		t.Error("breakdown recorded nothing")
	}
	if bd.Get(stats.PhaseTreePass) <= 0 {
		t.Error("tree pass phase empty")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 2500, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 10, 64, 82)
	for _, k := range []int{1, 3, 10, 25} {
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)
			want := bruteForceKNN(ix.Data, q, k)
			got, err := ix.SearchKNN(q, k, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, qi, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
					t.Fatalf("k=%d query %d rank %d: dist %v, want %v",
						k, qi, i, got[i].Dist, want[i].Dist)
				}
			}
			// Results must be sorted and distinct.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatalf("k=%d results unsorted", k)
				}
				if got[i].Position == got[i-1].Position {
					t.Fatalf("k=%d duplicate position %d", k, got[i].Position)
				}
			}
		}
	}
}

func TestKNNValidation(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 100, 64, smallOpts())
	if _, err := ix.SearchKNN(ix.Data.At(0), 0, SearchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ix.SearchKNN(ix.Data.At(0), -3, SearchOptions{}); err == nil {
		t.Error("negative k accepted")
	}
	// k larger than the collection is clamped.
	got, err := ix.SearchKNN(ix.Data.At(0), 1000, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("clamped k returned %d results, want 100", len(got))
	}
}

func TestSearchDTWMatchesBruteForce(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 1500, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 8, 64, 83)
	window := dtw.WindowSize(64, 0.1)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForceDTW(ix.Data, q, window)
		got, err := ix.SearchDTW(q, window, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: DTW dist %v, want %v (pos %d vs %d)",
				qi, got.Dist, want.Dist, got.Position, want.Position)
		}
	}
}

func TestSearchDTWZeroWindowEqualsED(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 800, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 5, 64, 84)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		ed, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dt, err := ix.SearchDTW(q, 0, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ed.Dist-dt.Dist) > 1e-6*(1+ed.Dist) {
			t.Fatalf("query %d: DTW(r=0) %v != ED %v", qi, dt.Dist, ed.Dist)
		}
	}
}

func TestSearchDTWValidation(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 100, 64, smallOpts())
	if _, err := ix.SearchDTW(ix.Data.At(0), -1, SearchOptions{}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := ix.SearchDTW(ix.Data.At(0), 64, SearchOptions{}); err == nil {
		t.Error("window >= length accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Segments != 16 || o.CardBits != 8 || o.LeafCapacity != 2000 ||
		o.ChunkSize != 20000 || o.InitBufferCap != 5 ||
		o.IndexWorkers != 24 || o.SearchWorkers != 48 || o.QueueCount != 24 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o = Options{Segments: 8, QueueCount: 3}.withDefaults()
	if o.Segments != 8 || o.QueueCount != 3 {
		t.Error("explicit values overridden")
	}
	o = Options{IndexWorkers: -5}.withDefaults()
	if o.IndexWorkers != 24 {
		t.Error("negative value not clamped to default")
	}
}
