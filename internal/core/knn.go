package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// topK is the k-NN generalization of the BSF: a bounded max-heap of the k
// best matches. The pruning threshold is the k-th best distance (or +Inf
// until k results exist), published through an atomic so that the hot-path
// Load stays lock-free; mutations take the mutex.
//
// This implements the "complex analytics algorithms (e.g., k-NN
// classification)" use case the paper's introduction motivates; the k=1
// case degenerates to exactly the paper's BSF protocol.
type topK struct {
	mu        sync.Mutex
	k         int
	heap      []Match // max-heap on Dist
	threshold atomic.Uint64
	updates   atomic.Int64
}

func newTopK(k int) *topK {
	t := &topK{k: k}
	t.threshold.Store(math.Float64bits(math.Inf(1)))
	return t
}

// Load returns the current squared pruning threshold.
func (t *topK) Load() float64 { return math.Float64frombits(t.threshold.Load()) }

// Update offers a candidate; it reports whether the top-k set changed.
func (t *topK) Update(dist float64, pos int64) bool {
	if dist >= t.Load() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the lock (the threshold may have moved).
	if len(t.heap) == t.k && dist >= t.heap[0].Dist {
		return false
	}
	// Reject duplicates of the same position (can arrive from the
	// approximate-search leaf being rescanned during queue processing).
	for _, m := range t.heap {
		if m.Position == int(pos) {
			return false
		}
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Match{Position: int(pos), Dist: dist})
		t.siftUp(len(t.heap) - 1)
	} else {
		t.heap[0] = Match{Position: int(pos), Dist: dist}
		t.siftDown(0)
	}
	if len(t.heap) == t.k {
		t.threshold.Store(math.Float64bits(t.heap[0].Dist))
	}
	t.updates.Add(1)
	return true
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.heap[p].Dist >= t.heap[i].Dist {
			break
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && t.heap[r].Dist > t.heap[l].Dist {
			big = r
		}
		if t.heap[i].Dist >= t.heap[big].Dist {
			return
		}
		t.heap[i], t.heap[big] = t.heap[big], t.heap[i]
		i = big
	}
}

// results returns the matches sorted by ascending distance.
func (t *topK) results() []Match {
	t.mu.Lock()
	out := make([]Match, len(t.heap))
	copy(out, t.heap)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Position < out[j].Position
	})
	return out
}

// validateKNN checks the query shape and k for a k-NN search.
func (ix *Index) validateKNN(query []float32, k int) error {
	if err := ix.validateQuery(query); err != nil {
		return err
	}
	if k <= 0 {
		return fmt.Errorf("%w, got %d", ErrBadK, k)
	}
	return nil
}

// SearchKNN answers an exact k-NN query using the MESSI machinery with the
// top-k bound in place of the single BSF. It returns at most k matches
// sorted by ascending distance.
func (ix *Index) SearchKNN(query []float32, k int, opt SearchOptions) ([]Match, error) {
	r, err := ix.NewKNNRun(query, k, nil, opt)
	if err != nil {
		return nil, err
	}
	r.Run()
	r.releaseTable()
	return r.Matches(), nil
}

// assert interface satisfaction: both bounds plug into the same search.
var (
	_ bound = (*topK)(nil)
	_ bound = (*stats.BSF)(nil)
)
