package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/series"
)

func TestBuildDirectConservesSeries(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 3000, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirect(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Series != 3000 {
		t.Fatalf("tree holds %d series, want 3000", st.Series)
	}
	if err := ix.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDirectValidation(t *testing.T) {
	if _, err := BuildDirect(nil, Options{}); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := BuildDirect(empty, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	bad, _ := series.NewEmptyCollection(4, 100)
	if _, err := BuildDirect(bad, Options{Segments: 16}); err == nil {
		t.Error("non-multiple length accepted")
	}
}

// The direct (no-buffer) build must produce an index that answers queries
// identically to the buffered build.
func TestBuildDirectSearchMatchesBuffered(t *testing.T) {
	data, err := dataset.Generate(dataset.SeismicLike, 2500, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildDirect(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := dataset.Queries(dataset.SeismicLike, 15, 64, 120)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		a, err := buffered.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := direct.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Dist-b.Dist) > 1e-9*(1+a.Dist) {
			t.Fatalf("query %d: buffered %v vs direct %v", qi, a.Dist, b.Dist)
		}
	}
}

// Both builds store the same multiset of series per root subtree.
func TestBuildDirectSameRootDistribution(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 2000, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	buffered, _ := Build(data, smallOpts())
	direct, _ := BuildDirect(data, smallOpts())
	if len(buffered.ActiveRoots()) != len(direct.ActiveRoots()) {
		t.Fatalf("active roots differ: %d vs %d",
			len(buffered.ActiveRoots()), len(direct.ActiveRoots()))
	}
	for i, slot := range buffered.ActiveRoots() {
		if direct.ActiveRoots()[i] != slot {
			t.Fatalf("root slot %d differs", i)
		}
		if buffered.Tree.Root(int(slot)).Size != direct.Tree.Root(int(slot)).Size {
			t.Fatalf("root %d sizes differ: %d vs %d", slot,
				buffered.Tree.Root(int(slot)).Size, direct.Tree.Root(int(slot)).Size)
		}
	}
}

func TestLocalQueuesSearchMatchesBruteForce(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 3000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 15, 64, 121)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := bruteForce1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{LocalQueues: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: local-queue dist %v, want %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestLocalQueuesForcesQueueCount(t *testing.T) {
	o := SearchOptions{LocalQueues: true, Workers: 7, Queues: 3}.withDefaults(Options{}.withDefaults())
	if o.Queues != 7 {
		t.Errorf("LocalQueues should force Queues == Workers, got %d", o.Queues)
	}
}

func TestApproxSearchUpperBoundsExact(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 4000, 64, smallOpts())
	queries, _ := dataset.Queries(dataset.RandomWalk, 20, 64, 122)
	exactAtLeastOnce := false
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		approx, err := ix.ApproxSearch(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if approx.Dist < exact.Dist-1e-9 {
			t.Fatalf("query %d: approximate %v below exact %v (impossible)", qi, approx.Dist, exact.Dist)
		}
		if math.Abs(approx.Dist-exact.Dist) < 1e-9 {
			exactAtLeastOnce = true
		}
	}
	// The paper reports the initial BSF is usually very close to final;
	// on random walks the approximate answer is frequently exact.
	if !exactAtLeastOnce {
		t.Error("approximate search never matched the exact answer across 20 queries (suspicious)")
	}
}

func TestApproxSearchSelfQueryIsExact(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 1000, 64, smallOpts())
	for i := 0; i < 10; i++ {
		m, err := ix.ApproxSearch(ix.Data.At(i*101%1000), SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("self approx query %d: dist %v", i, m.Dist)
		}
	}
}

func TestApproxSearchValidation(t *testing.T) {
	ix := buildTestIndex(t, dataset.RandomWalk, 100, 64, smallOpts())
	if _, err := ix.ApproxSearch(make([]float32, 16), SearchOptions{}); err == nil {
		t.Error("wrong-length query accepted")
	}
}

func TestBuildLockedBuffersMatchesBuild(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 2500, 64, 14)
	if err != nil {
		t.Fatal(err)
	}
	locked, err := BuildLockedBuffers(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st := locked.Stats(); st.Series != 2500 {
		t.Fatalf("locked build holds %d series", st.Series)
	}
	if err := locked.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	buffered, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := dataset.Queries(dataset.RandomWalk, 10, 64, 140)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		a, err := buffered.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := locked.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Dist-b.Dist) > 1e-9*(1+a.Dist) {
			t.Fatalf("query %d: buffered %v vs locked %v", qi, a.Dist, b.Dist)
		}
	}
}

func TestBuildLockedBuffersValidation(t *testing.T) {
	if _, err := BuildLockedBuffers(nil, Options{}); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := BuildLockedBuffers(empty, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	bad, _ := series.NewEmptyCollection(4, 100)
	if _, err := BuildLockedBuffers(bad, Options{Segments: 16}); err == nil {
		t.Error("non-multiple length accepted")
	}
}
