package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/series"
	"repro/internal/tree"
)

// BuildTiming records the two construction phases separately, matching the
// stacked bars of Figure 9 ("Calculate iSAX Representations" and "Tree
// Index Construction").
type BuildTiming struct {
	Summarize time.Duration // phase 1: iSAX summary computation into buffers
	TreeBuild time.Duration // phase 2: subtree construction from buffers
}

// Total returns the end-to-end construction time.
func (bt BuildTiming) Total() time.Duration { return bt.Summarize + bt.TreeBuild }

// Build constructs a MESSI index over the collection using the paper's
// two-phase parallel pipeline (Algorithms 1-4). The collection must be
// non-empty and its series length a multiple of Options.Segments. The
// collection is retained by the index (not copied) and must not be
// modified afterwards.
func Build(data *series.Collection, opts Options) (*Index, error) {
	return BuildTimed(data, opts, nil)
}

// BuildTimed is Build with optional per-phase timing (timing may be nil).
func BuildTimed(data *series.Collection, opts Options, timing *BuildTiming) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("core: cannot build an index over an empty collection")
	}
	opts = opts.withDefaults()
	schema, err := isax.NewSchema(data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.New(schema, opts.LeafCapacity)
	if err != nil {
		return nil, err
	}
	ix := &Index{Data: data, Schema: schema, Tree: tr, Opts: opts}

	nw := opts.IndexWorkers
	bufs := buffer.NewBuffers(schema.RootFanout(), nw, schema.Segments, opts.InitBufferCap)

	// Phase 1 — CalculateiSAXSummaries (Algorithm 3): workers claim
	// fixed-size chunks of the raw array via Fetch&Inc and append each
	// series' word to their own part of the destination subtree's buffer.
	//
	// The paper runs both phases in the same worker threads separated by
	// a barrier (Algorithm 2); two goroutine waves joined by WaitGroups
	// have identical synchronization semantics and let us time the
	// phases separately.
	start := time.Now()
	var chunkCtr atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < nw; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			summarizeWorker(ix, bufs, &chunkCtr, pid)
		}(pid)
	}
	wg.Wait()
	summarizeDone := time.Now()

	// Phase 2 — TreeConstruction (Algorithm 4): workers claim whole
	// iSAX buffers (root subtrees) via Fetch&Inc; each subtree is built
	// by exactly one worker, so inserts need no synchronization.
	var bufCtr atomic.Int64
	for pid := 0; pid < nw; pid++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			treeWorker(ix, bufs, &bufCtr)
		}()
	}
	wg.Wait()

	if timing != nil {
		timing.Summarize = summarizeDone.Sub(start)
		timing.TreeBuild = time.Since(summarizeDone)
	}

	for l := 0; l < schema.RootFanout(); l++ {
		if tr.Root(l) != nil {
			ix.activeRoots = append(ix.activeRoots, int32(l))
		}
	}
	return ix, nil
}

// summarizeWorker is one phase-1 worker: it converts raw series to iSAX
// words chunk by chunk.
func summarizeWorker(ix *Index, bufs *buffer.Buffers, chunkCtr *atomic.Int64, pid int) {
	data := ix.Data
	schema := ix.Schema
	chunk := ix.Opts.ChunkSize
	count := data.Count()
	paaBuf := make([]float64, schema.Segments)
	word := make([]uint8, schema.Segments)
	for {
		b := int(chunkCtr.Add(1) - 1)
		lo := b * chunk
		if lo >= count {
			return
		}
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		for j := lo; j < hi; j++ {
			paa.Transform(data.At(j), schema.Segments, paaBuf)
			schema.WordFromPAA(paaBuf, word)
			l := schema.RootIndex(word)
			bufs.Append(l, pid, word, int32(j))
		}
	}
}

// treeWorker is one phase-2 worker: it drains whole buffers into their
// subtrees.
func treeWorker(ix *Index, bufs *buffer.Buffers, bufCtr *atomic.Int64) {
	fanout := ix.Schema.RootFanout()
	for {
		l := int(bufCtr.Add(1) - 1)
		if l >= fanout {
			return
		}
		if bufs.BufferLen(l) == 0 {
			continue
		}
		root := ix.Tree.EnsureRoot(l)
		bufs.ForEach(l, func(word []uint8, pos int32) {
			ix.Tree.Insert(root, word, pos)
		})
	}
}
