// Package core implements the paper's primary contribution: the MESSI
// in-memory data series index. It contains the parallel index-construction
// pipeline of §III-A (Algorithms 1-4) and the parallel exact query
// answering of §III-B (Algorithms 5-9), plus the DTW mode (Figure 19) and
// a k-NN extension of the same machinery.
//
// # Contracts
//
// An *Index is immutable once Build returns: every search method is safe
// for unlimited concurrent use, and nothing in the package mutates the
// tree, the series block, or the iSAX summaries after construction. All
// distances handled internally are squared Euclidean (or squared
// LB_Keogh/DTW); public Match values carry the square root.
//
// Request/Result and the QoS type extend the paper's exact search into a
// quality spectrum: exact, approximate (leaf-only), epsilon (prune at
// lb·(1+ε)², answer proven within 1+ε of optimal), and deadline (stop at
// a time budget, report the proven bound). Validation failures are the
// sentinel errors ErrBadK, ErrBadWindow, ErrWrongLength, and ErrBadEpsilon
// so callers can map them to API responses without string matching.
//
// # Concurrency invariants
//
//   - The best-so-far bound (stats.BSF) is updated lock-free: the (dist,
//     pos) pair is published as an immutable record behind an atomic
//     pointer, with a separate monotone bits cache for cheap Load. A
//     stale Load only admits extra candidates — it never wrongly prunes —
//     so readers may lag writers safely.
//   - Query workers share pqueue.Set priority queues; a worker that finds
//     a queue empty steals from the others before exiting (Algorithm 6's
//     termination), so no leaf is dropped when workers finish unevenly.
//   - SearchOptions.Shared threads an external BSF through the search so
//     several index shards (or the delta scan of a live index) tighten
//     one another's pruning; SearchOptions.GlobalPos remaps local leaf
//     positions into the caller's global position space before they are
//     published to the shared bound.
//   - Per-query scratch (PAA buffer, iSAX word, distance table, queues)
//     is confined to the query that allocated it; the sync.Pool reuse in
//     internal/engine relies on queries never retaining scratch past
//     return.
//   - Operation counters (stats.Counters) are atomic adds; a nil counter
//     set disables collection at zero cost.
package core
