package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/series"
	"repro/internal/tree"
)

// This file implements the design alternatives the paper evaluated and
// rejected, so the ablation benchmarks can quantify the choices:
//
//   - BuildDirect: "we also tried a design of MESSI with no iSAX buffers,
//     but this led to slower performance (due to the worse cache
//     locality)" (§III-A). Workers insert straight into the tree, which
//     additionally requires one lock per root subtree (footnote 4:
//     parallelizing within a subtree would need split synchronization —
//     locking the whole subtree is the coarse-grained version of that).
//   - BuildLockedBuffers: footnote 3 — "We have also tried an alternative
//     technique where each buffer was protected by a lock and many threads
//     were accessing each buffer. However, this resulted in worse
//     performance due to the encountered contention in accessing the iSAX
//     buffers." Identical to Build except that the per-worker buffer
//     parts are replaced by one locked buffer per subtree; combined with
//     Build and the ParIS baseline it isolates the lock cost from the
//     chunk-assignment policy.
//   - LocalQueues search mode: "using a local queue per thread results in
//     severe load imbalance, since, depending on the workload, the size of
//     the different queues may vary significantly" (§III-B). Workers drain
//     only their own queue and never steal.
//
// None of these is used by the production Build/Search paths.

// BuildDirect constructs the index without iSAX buffers: phase 1 and
// phase 2 are fused, and each insertion locks its destination root
// subtree. Results are identical to Build (same entries per leaf prefix);
// only the construction schedule differs.
func BuildDirect(data *series.Collection, opts Options) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("core: cannot build an index over an empty collection")
	}
	opts = opts.withDefaults()
	schema, err := isax.NewSchema(data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.New(schema, opts.LeafCapacity)
	if err != nil {
		return nil, err
	}
	ix := &Index{Data: data, Schema: schema, Tree: tr, Opts: opts}

	locks := make([]sync.Mutex, schema.RootFanout())
	var chunkCtr atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < opts.IndexWorkers; pid++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			directWorker(ix, locks, &chunkCtr)
		}()
	}
	wg.Wait()

	for l := 0; l < schema.RootFanout(); l++ {
		if tr.Root(l) != nil {
			ix.activeRoots = append(ix.activeRoots, int32(l))
		}
	}
	return ix, nil
}

// BuildLockedBuffers is the footnote-3 variant: MESSI's chunked phase 1
// and subtree-partitioned phase 2, but with one shared, lock-protected
// buffer per root subtree instead of per-worker parts. Entries carry
// their words in a side array (like ParIS's SAX array) because a shared
// buffer cannot be structure-of-arrays per worker.
func BuildLockedBuffers(data *series.Collection, opts Options) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("core: cannot build an index over an empty collection")
	}
	opts = opts.withDefaults()
	schema, err := isax.NewSchema(data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.New(schema, opts.LeafCapacity)
	if err != nil {
		return nil, err
	}
	ix := &Index{Data: data, Schema: schema, Tree: tr, Opts: opts}

	w := schema.Segments
	sax := make([]uint8, data.Count()*w)
	recv := buffer.NewLockedBuffers(schema.RootFanout())

	var chunkCtr atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < opts.IndexWorkers; pid++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := opts.ChunkSize
			count := data.Count()
			paaBuf := make([]float64, w)
			for {
				b := int(chunkCtr.Add(1) - 1)
				lo := b * chunk
				if lo >= count {
					return
				}
				hi := lo + chunk
				if hi > count {
					hi = count
				}
				for j := lo; j < hi; j++ {
					paa.Transform(data.At(j), w, paaBuf)
					word := sax[j*w : (j+1)*w]
					schema.WordFromPAA(paaBuf, word)
					recv.Append(schema.RootIndex(word), int32(j))
				}
			}
		}()
	}
	wg.Wait()

	var bufCtr atomic.Int64
	for pid := 0; pid < opts.IndexWorkers; pid++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fanout := schema.RootFanout()
			for {
				l := int(bufCtr.Add(1) - 1)
				if l >= fanout {
					return
				}
				positions := recv.Positions(l)
				if len(positions) == 0 {
					continue
				}
				root := tr.EnsureRoot(l)
				for _, pos := range positions {
					tr.Insert(root, sax[int(pos)*w:(int(pos)+1)*w], pos)
				}
			}
		}()
	}
	wg.Wait()

	for l := 0; l < schema.RootFanout(); l++ {
		if tr.Root(l) != nil {
			ix.activeRoots = append(ix.activeRoots, int32(l))
		}
	}
	return ix, nil
}

func directWorker(ix *Index, locks []sync.Mutex, chunkCtr *atomic.Int64) {
	data := ix.Data
	schema := ix.Schema
	chunk := ix.Opts.ChunkSize
	count := data.Count()
	paaBuf := make([]float64, schema.Segments)
	word := make([]uint8, schema.Segments)
	for {
		b := int(chunkCtr.Add(1) - 1)
		lo := b * chunk
		if lo >= count {
			return
		}
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		for j := lo; j < hi; j++ {
			paa.Transform(data.At(j), schema.Segments, paaBuf)
			schema.WordFromPAA(paaBuf, word)
			l := schema.RootIndex(word)
			locks[l].Lock()
			root := ix.Tree.EnsureRoot(l)
			ix.Tree.Insert(root, word, int32(j))
			locks[l].Unlock()
		}
	}
}
