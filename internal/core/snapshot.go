package core

import (
	"fmt"

	"repro/internal/isax"
	"repro/internal/series"
	"repro/internal/tree"
)

// SnapshotState is the persistent state of a built index: everything
// needed to reconstruct it without re-running the construction pipeline.
// The collection and flattened tree share storage with the live index, so
// a SnapshotState is only valid while the index it came from is unchanged
// (an Index is immutable after Build, so in practice: forever).
type SnapshotState struct {
	Data *series.Collection
	Tree *tree.Flat
	Opts Options
}

// Snapshot captures the index's persistent state for serialization.
func (ix *Index) Snapshot() SnapshotState {
	return SnapshotState{Data: ix.Data, Tree: ix.Tree.Flatten(), Opts: ix.Opts}
}

// Restore reconstructs an Index from a snapshot taken by Snapshot (or
// decoded from disk), validating that the tree is structurally sound and
// consistent with the collection. Restoring skips the whole construction
// pipeline: no PAA transforms, no quantization, no splits — the dominant
// costs of Build.
func Restore(st SnapshotState) (*Index, error) {
	if st.Data == nil || st.Data.Count() == 0 {
		return nil, fmt.Errorf("core: cannot restore an index over an empty collection")
	}
	opts := st.Opts.withDefaults()
	schema, err := isax.NewSchema(st.Data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.Unflatten(schema, opts.LeafCapacity, st.Tree)
	if err != nil {
		return nil, err
	}
	count := st.Data.Count()
	if entries := st.Tree.Entries(); entries != count {
		return nil, fmt.Errorf("core: snapshot tree stores %d entries for %d series", entries, count)
	}
	for i := range st.Tree.Nodes {
		for _, pos := range st.Tree.Nodes[i].Positions {
			if pos < 0 || int(pos) >= count {
				return nil, fmt.Errorf("core: snapshot leaf position %d out of range [0,%d)", pos, count)
			}
		}
	}
	ix := &Index{Data: st.Data, Schema: schema, Tree: tr, Opts: opts}
	for l := 0; l < schema.RootFanout(); l++ {
		if tr.Root(l) != nil {
			ix.activeRoots = append(ix.activeRoots, int32(l))
		}
	}
	return ix, nil
}
