package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/isax"
	"repro/internal/series"
	"repro/internal/tree"
)

// Paper defaults (§IV-B, "Parameter Tuning Evaluation").
const (
	DefaultSegments      = 16    // w, fixed to 16 as in previous studies
	DefaultCardBits      = 8     // alphabet cardinality 256
	DefaultLeafCapacity  = 2000  // leaf size minimizing query time (Fig 7)
	DefaultChunkSize     = 20000 // 20K series = 20MB chunks (Fig 5)
	DefaultInitBufferCap = 5     // initial iSAX buffer part size (Fig 8)
	DefaultIndexWorkers  = 24    // Nw (Fig 9)
	DefaultSearchWorkers = 48    // Ns (Fig 11)
	DefaultQueueCount    = 24    // Nq (Fig 14)
)

// Options configures index construction and the default query parameters.
// The zero value of any field selects the paper's default.
type Options struct {
	Segments      int // w: PAA segments per iSAX word
	CardBits      int // bits per symbol (cardinality = 1<<CardBits)
	LeafCapacity  int // max series per leaf before splitting
	ChunkSize     int // series per Fetch&Inc work unit in phase 1
	InitBufferCap int // initial per-part iSAX buffer capacity (series)
	IndexWorkers  int // Nw: index construction workers
	SearchWorkers int // Ns: search workers
	QueueCount    int // Nq: priority queues (1 = the paper's MESSI-sq)
}

// withDefaults fills zero fields with the paper's defaults and clamps
// nonsensical values.
func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&o.Segments, DefaultSegments)
	def(&o.CardBits, DefaultCardBits)
	def(&o.LeafCapacity, DefaultLeafCapacity)
	def(&o.ChunkSize, DefaultChunkSize)
	def(&o.InitBufferCap, DefaultInitBufferCap)
	def(&o.IndexWorkers, DefaultIndexWorkers)
	def(&o.SearchWorkers, DefaultSearchWorkers)
	def(&o.QueueCount, DefaultQueueCount)
	return o
}

// FillDefaults returns o with zero fields replaced by the paper's
// defaults — the same normalization Build applies internally, exported
// for layers (like the live index) that need the effective values before
// building.
func FillDefaults(o Options) Options { return o.withDefaults() }

// ErrEmptyIndex is returned when querying an index with no series.
var ErrEmptyIndex = errors.New("core: index contains no series")

// Index is a built MESSI index: the raw data array, the iSAX schema, and
// the index tree. An Index is immutable after Build and safe for
// concurrent queries.
type Index struct {
	Data   *series.Collection
	Schema *isax.Schema
	Tree   *tree.Tree
	Opts   Options

	// activeRoots lists the non-empty root slots. Search workers claim
	// entries of this list via Fetch&Inc instead of sweeping all 2^w
	// slots (Algorithm 6 sweeps the full fanout; restricting the sweep
	// to non-empty subtrees is behaviour-preserving — empty slots are
	// skipped either way — and keeps the Fetch&Inc count proportional
	// to the data).
	activeRoots []int32

	// tables pools per-query distance tables for query paths that carry
	// no QueryState (per-query spawn mode, DTW searches); the engine's
	// pooled states hold their own table. All tables in the pool belong
	// to this index's schema.
	tables sync.Pool
}

// getTable borrows a distance table sized for this index's schema.
func (ix *Index) getTable() *isax.DistTable {
	if t, ok := ix.tables.Get().(*isax.DistTable); ok {
		return t
	}
	return ix.Schema.NewDistTable()
}

// putTable returns a borrowed table to the pool.
func (ix *Index) putTable(t *isax.DistTable) { ix.tables.Put(t) }

// Match is a query result: the position of a series in the collection and
// its SQUARED distance to the query (Euclidean, or constrained DTW for the
// DTW search functions).
type Match struct {
	Position int
	Dist     float64
}

// validateQuery checks a query series against the index shape.
func (ix *Index) validateQuery(query []float32) error {
	if ix.Data.Count() == 0 {
		return ErrEmptyIndex
	}
	if len(query) != ix.Data.Length {
		return fmt.Errorf("%w: query length %d, index series length %d", ErrWrongLength, len(query), ix.Data.Length)
	}
	return nil
}

// ActiveRoots returns the slots of non-empty root subtrees (read-only).
func (ix *Index) ActiveRoots() []int32 { return ix.activeRoots }

// Stats returns tree shape statistics.
func (ix *Index) Stats() tree.Stats { return ix.Tree.Stats() }
