package core

import (
	"errors"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// This file implements the quality-of-service query spectrum: one
// backend-independent Request/Result contract covering exact, approximate,
// ε-bounded, and deadline-bounded answers, and the QoS state threaded
// through every search worker (and, in a sharded fan-out, through every
// sibling shard run) that enforces it.
//
// The spectrum follows the paper's lineage: MESSI's approximate answer is
// the BSF-seeding step of the exact algorithm ("the approximate answer is
// frequently exact on real data"), and ParIS+ trades answer quality for
// latency under load. ε-bounded search generalizes both ends: pruning
// compares lower bounds inflated by (1+ε)² (squared-distance space)
// against the best-so-far, so a search terminates as soon as the priority
// queues' minima prove the BSF is within (1+ε) of optimal. Deadline-
// bounded search checks a clock (and the caller's cancellation signal) at
// leaf-scan granularity and returns the best-so-far flagged inexact.

// Typed sentinel errors for request validation, so API layers can
// errors.Is instead of string-matching.
var (
	// ErrBadK reports a non-positive k in a k-NN request.
	ErrBadK = errors.New("core: k must be positive")
	// ErrBadWindow reports a DTW warping window outside its valid range.
	ErrBadWindow = errors.New("core: DTW window out of range")
	// ErrWrongLength reports a query whose length does not match the
	// indexed series length.
	ErrWrongLength = errors.New("core: query length does not match index series length")
	// ErrBadEpsilon reports a negative or non-finite ε tolerance.
	ErrBadEpsilon = errors.New("core: epsilon must be finite and non-negative")
)

// Mode selects the quality-of-service level of one query.
type Mode int

const (
	// ModeExact runs the search to completion: the answer is provably
	// the nearest neighbor (or exact top-k).
	ModeExact Mode = iota
	// ModeApprox runs only the BSF-seeding step of the exact algorithm
	// (the leaf matching the query's iSAX summary). Much cheaper than
	// exact; its distance is always an upper bound on the exact one.
	ModeApprox
	// ModeEpsilon runs the exact algorithm with pruning bounds inflated
	// by (1+ε)², terminating once the answer is provably within (1+ε)
	// of optimal. ε = 0 is bitwise identical to ModeExact.
	ModeEpsilon
	// ModeDeadline runs the exact algorithm but checks the request
	// deadline (and cancellation) at leaf-scan granularity, returning
	// the best-so-far flagged inexact when time runs out. A zero
	// deadline never expires — equivalent to ModeExact.
	ModeDeadline
)

// String returns the wire name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	case ModeEpsilon:
		return "epsilon"
	case ModeDeadline:
		return "deadline"
	default:
		return "unknown"
	}
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m >= ModeExact && m <= ModeDeadline }

// Request is one backend-independent similarity query: the same contract
// is served by a single tree, a sharded fan-out, the persistent engine,
// and the live index (which fuses a delta scan into it).
type Request struct {
	Query []float32
	// K is the number of neighbors; 0 and 1 both mean 1-NN.
	K int
	// DTW selects constrained Dynamic Time Warping with a Sakoe-Chiba
	// band of Window points; false means Euclidean distance.
	DTW    bool
	Window int
	// Mode is the quality-of-service level; Epsilon and Deadline apply
	// in their respective modes.
	Mode    Mode
	Epsilon float64
	// Deadline is the absolute wall-clock budget of a ModeDeadline
	// request; the zero time means no deadline.
	Deadline time.Time
	// Cancel, when non-nil, aborts the search when closed (a
	// context.Context's Done channel); like a deadline expiry, the
	// best-so-far is returned flagged inexact.
	Cancel <-chan struct{}
	// Counters, when non-nil, accumulates operation counts.
	Counters *stats.Counters
	// Breakdown, when non-nil, accumulates per-phase wall time (Figure
	// 13) across every worker of the query — the per-query trace the
	// serving layer returns inline and logs for slow queries. Adds clock
	// reads to hot paths; leave nil when not tracing.
	Breakdown *stats.Breakdown
}

// Validate checks the mode-specific parameters (query shape is validated
// against the index by the backends).
func (req Request) Validate() error {
	if !req.Mode.Valid() {
		return errors.New("core: unknown search mode")
	}
	if req.K < 0 {
		return ErrBadK
	}
	if req.Mode == ModeEpsilon &&
		(math.IsNaN(req.Epsilon) || math.IsInf(req.Epsilon, 0) || req.Epsilon < 0) {
		return ErrBadEpsilon
	}
	return nil
}

// NewQoS builds the per-query QoS state for the request, or nil when the
// request needs none (an exact run with no deadline and no cancellation —
// the hot paths then skip every QoS check).
func (req Request) NewQoS() *QoS {
	eps := 0.0
	if req.Mode == ModeEpsilon {
		eps = req.Epsilon
	}
	deadline := time.Time{}
	if req.Mode == ModeDeadline {
		deadline = req.Deadline
	}
	if eps == 0 && deadline.IsZero() && req.Cancel == nil {
		return nil
	}
	q := &QoS{
		scale:    (1 + eps) * (1 + eps),
		deadline: deadline,
		cancel:   req.Cancel,
	}
	q.epsPruned.Store(math.Float64bits(math.Inf(1)))
	return q
}

// Result is one backend-independent answer.
type Result struct {
	// Matches holds up to K answers in ascending distance order
	// (squared distances, like Match).
	Matches []Match
	// Exact reports whether the answer is provably exact: the search
	// ran to completion and no candidate was discarded under an
	// inflated ε bound that could have beaten it.
	Exact bool
	// EpsilonBound is the proven relative-error bound on true (non-
	// squared) distances: the answer is within (1+EpsilonBound) of
	// optimal. 0 when Exact; +Inf when nothing was proven (approximate
	// answers, deadline or cancellation truncation).
	EpsilonBound float64
}

// QoS is the quality-of-service state of one query, shared by all its
// workers and, in a sharded fan-out, by every sibling shard run (like the
// shared best-so-far). All methods are safe for concurrent use and
// nil-receiver safe; a nil *QoS means plain exact search.
type QoS struct {
	scale    float64         // (1+ε)² lower-bound inflation; 1 = exact
	deadline time.Time       // zero = none
	cancel   <-chan struct{} // nil = none

	// epsPruned is a monotone min cell (IEEE-754 bits of a non-negative
	// float order like the float) recording the smallest squared lower
	// bound discarded only because of ε-inflation — the witness that
	// bounds how far the answer can be from optimal.
	epsPruned atomic.Uint64
	stopped   atomic.Bool // deadline/cancellation fired
	truncated atomic.Bool // some work was actually skipped after stopping
}

// Scale returns the (1+ε)² pruning inflation (1 for nil or exact).
func (q *QoS) Scale() float64 {
	if q == nil {
		return 1
	}
	return q.scale
}

// ShouldStop reports whether the search should abandon remaining work:
// the deadline passed or the request was cancelled. Workers call it at
// leaf-scan granularity; once it fires it stays latched, so the clock is
// read at most until the first expiry.
func (q *QoS) ShouldStop() bool {
	if q == nil {
		return false
	}
	if q.stopped.Load() {
		return true
	}
	if q.cancel != nil {
		select {
		case <-q.cancel:
			q.stopped.Store(true)
			return true
		default:
		}
	}
	if !q.deadline.IsZero() && time.Now().After(q.deadline) {
		q.stopped.Store(true)
		return true
	}
	return false
}

// MarkTruncated records that remaining work was skipped after a stop —
// the answer can no longer be claimed exact.
func (q *QoS) MarkTruncated() {
	if q != nil {
		q.truncated.Store(true)
	}
}

// PruneEps records the squared lower bound of a candidate (or subtree, or
// queue minimum) discarded only because of ε-inflation: lb*Scale() beat
// the BSF but lb alone did not. The smallest witness bounds the proven
// quality of the final answer.
func (q *QoS) PruneEps(lb float64) {
	if q == nil {
		return
	}
	bits := math.Float64bits(lb)
	for {
		cur := q.epsPruned.Load()
		if bits >= cur || q.epsPruned.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// Finish derives the Result for the completed matches. worstSq is the
// squared distance of the worst reported match (the 1-NN distance, or the
// k-th best), +Inf when no match was found.
func (q *QoS) Finish(matches []Match, mode Mode) Result {
	res := Result{Matches: matches, Exact: true}
	if mode == ModeApprox {
		// Nothing proven: the answer is an upper bound only.
		res.Exact = false
		res.EpsilonBound = math.Inf(1)
		return res
	}
	if q == nil {
		return res
	}
	if q.truncated.Load() {
		res.Exact = false
		res.EpsilonBound = math.Inf(1)
		return res
	}
	worstSq := math.Inf(1)
	if len(matches) > 0 {
		worstSq = matches[len(matches)-1].Dist
	}
	witness := math.Float64frombits(q.epsPruned.Load())
	if worstSq <= witness {
		// Everything ε-pruned was at least as far as the answer: the
		// answer is exact after all (ε-search is frequently exact, the
		// same way the approximate answer is).
		return res
	}
	// Every pruned candidate's squared distance is ≥ witness, so the true
	// optimum is ≥ witness and the proven true-distance ratio is
	// sqrt(worst/witness).
	res.Exact = false
	res.EpsilonBound = math.Sqrt(worstSq/witness) - 1
	return res
}

// assert the min-cell trick's precondition stays visible: squared
// distances are non-negative, so bit-pattern order equals numeric order.
var _ = math.Float64bits
