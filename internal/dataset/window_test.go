package dataset

import (
	"math"
	"testing"

	"repro/internal/series"
)

func TestSlidingWindowsShape(t *testing.T) {
	stream := make([]float32, 100)
	for i := range stream {
		stream[i] = float32(i)
	}
	c, err := SlidingWindows(stream, 10, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at 0,5,...,90 → 19 windows.
	if c.Count() != 19 || c.Length != 10 {
		t.Fatalf("shape %d×%d, want 19×10", c.Count(), c.Length)
	}
	// Window i starts at stream offset i*step.
	for i := 0; i < c.Count(); i++ {
		if c.At(i)[0] != float32(WindowStart(i, 5)) {
			t.Fatalf("window %d starts at %v, want %d", i, c.At(i)[0], WindowStart(i, 5))
		}
	}
}

func TestSlidingWindowsStepOne(t *testing.T) {
	stream := make([]float32, 20)
	c, err := SlidingWindows(stream, 16, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 5 {
		t.Fatalf("count %d, want 5", c.Count())
	}
}

func TestSlidingWindowsExactFit(t *testing.T) {
	stream := make([]float32, 16)
	c, err := SlidingWindows(stream, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("count %d, want 1", c.Count())
	}
}

func TestSlidingWindowsErrors(t *testing.T) {
	stream := make([]float32, 10)
	if _, err := SlidingWindows(stream, 0, 1, false); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := SlidingWindows(stream, 4, 0, false); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := SlidingWindows(stream, 11, 1, false); err == nil {
		t.Error("window longer than stream accepted")
	}
}

func TestSlidingWindowsNormalize(t *testing.T) {
	stream := make([]float32, 64)
	for i := range stream {
		stream[i] = float32(i * i) // strongly trending
	}
	c, err := SlidingWindows(stream, 16, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Count(); i++ {
		if m := series.Mean(c.At(i)); math.Abs(m) > 1e-4 {
			t.Fatalf("window %d mean %v, want ~0", i, m)
		}
		if sd := series.Std(c.At(i)); math.Abs(sd-1) > 1e-3 {
			t.Fatalf("window %d std %v, want ~1", i, sd)
		}
	}
	// Normalization must not modify the source stream.
	if stream[63] != float32(63*63) {
		t.Error("SlidingWindows mutated the input stream")
	}
}
