package dataset

import (
	"fmt"

	"repro/internal/series"
)

// SlidingWindows turns one long stream into the collection of its
// fixed-length subsequences, the preprocessing step the paper prescribes
// for streaming series ("we first create subsequences of length n using a
// sliding window, and then index those", §II-A). Subsequence i starts at
// offset i*step; when normalize is set each subsequence is z-normalized
// independently (the standard similarity-search semantics).
func SlidingWindows(stream []float32, window, step int, normalize bool) (*series.Collection, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dataset: non-positive window %d", window)
	}
	if step <= 0 {
		return nil, fmt.Errorf("dataset: non-positive step %d", step)
	}
	if len(stream) < window {
		return nil, fmt.Errorf("dataset: stream of %d points is shorter than window %d", len(stream), window)
	}
	count := (len(stream)-window)/step + 1
	c, err := series.NewEmptyCollection(count, window)
	if err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		dst := c.At(i)
		copy(dst, stream[i*step:i*step+window])
		if normalize {
			series.ZNormalize(dst)
		}
	}
	return c, nil
}

// WindowStart maps a subsequence position (as returned by index queries
// over a SlidingWindows collection) back to its offset in the original
// stream.
func WindowStart(position, step int) int { return position * step }
