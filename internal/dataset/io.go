package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/series"
)

// File format: a fixed little-endian header followed by raw float32 data.
// This mirrors the flat binary files used by the original iSAX/MESSI code
// releases (plus a small self-describing header so lengths need not be
// passed out of band).
//
//	offset 0  [8]byte  magic "MESSIDS1"
//	offset 8  uint64   series count
//	offset 16 uint64   series length (points)
//	offset 24 ...      count*length float32 values, row-major
var fileMagic = [8]byte{'M', 'E', 'S', 'S', 'I', 'D', 'S', '1'}

// WriteFile saves a collection to path in the binary format above.
func WriteFile(path string, c *series.Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := writeTo(w, c); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return f.Close()
}

func writeTo(w io.Writer, c *series.Collection) error {
	if _, err := w.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(c.Count()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(c.Length))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	buf := make([]byte, 4*4096)
	for off := 0; off < len(c.Data); off += 4096 {
		end := off + 4096
		if end > len(c.Data) {
			end = len(c.Data)
		}
		chunk := c.Data[off:end]
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:len(chunk)*4]); err != nil {
			return fmt.Errorf("dataset: write data: %w", err)
		}
	}
	return nil
}

// ReadFile loads a collection previously written by WriteFile.
func ReadFile(path string) (*series.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return readFrom(bufio.NewReaderSize(f, 1<<20), path)
}

func readFrom(r io.Reader, path string) (*series.Collection, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: read %s header: %w", path, err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("dataset: %s is not a MESSI dataset file (bad magic %q)", path, magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: read %s header: %w", path, err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:8])
	length := binary.LittleEndian.Uint64(hdr[8:16])
	const maxPoints = 1 << 33 // 32 GiB of float32s; refuse absurd headers
	if length == 0 || count == 0 || count*length > maxPoints {
		return nil, fmt.Errorf("dataset: %s header claims %d series × %d points", path, count, length)
	}
	c, err := series.NewEmptyCollection(int(count), int(length))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 4*4096)
	for off := 0; off < len(c.Data); {
		want := len(c.Data) - off
		if want > 4096 {
			want = 4096
		}
		if _, err := io.ReadFull(r, buf[:want*4]); err != nil {
			return nil, fmt.Errorf("dataset: read %s data at series %d: %w", path, off/c.Length, err)
		}
		for i := 0; i < want; i++ {
			c.Data[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += want
	}
	return c, nil
}
