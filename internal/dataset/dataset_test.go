package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/series"
)

func TestGenerateShapes(t *testing.T) {
	for _, kind := range []Kind{RandomWalk, SeismicLike, SALDLike} {
		c, err := Generate(kind, 50, kind.DefaultLength(), 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if c.Count() != 50 || c.Length != kind.DefaultLength() {
			t.Errorf("%s: got %d×%d", kind, c.Count(), c.Length)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestDefaultLengths(t *testing.T) {
	if RandomWalk.DefaultLength() != 256 || SeismicLike.DefaultLength() != 256 {
		t.Error("random/seismic default length should be 256")
	}
	if SALDLike.DefaultLength() != 128 {
		t.Error("SALD default length should be 128")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(RandomWalk, 0, 256, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Generate(RandomWalk, 10, 0, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Generate(Kind("bogus"), 10, 256, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(RandomWalk, 10, 64, 42)
	b, _ := Generate(RandomWalk, 10, 64, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c, _ := Generate(RandomWalk, 10, 64, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratedSeriesAreNormalized(t *testing.T) {
	for _, kind := range []Kind{RandomWalk, SeismicLike, SALDLike} {
		c, err := Generate(kind, 20, kind.DefaultLength(), 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.Count(); i++ {
			s := c.At(i)
			if m := series.Mean(s); math.Abs(m) > 1e-4 {
				t.Errorf("%s series %d mean = %v", kind, i, m)
			}
			if sd := series.Std(s); math.Abs(sd-1) > 1e-3 {
				t.Errorf("%s series %d std = %v", kind, i, sd)
			}
		}
	}
}

// The real-data stand-ins must be harder for an index than random walks
// (the paper's Figures 16-17: real data prunes worse). Two mechanisms:
//   - seismic: low relative contrast — the nearest neighbor is barely
//     closer than the average series, so bounds near the BSF are common;
//   - SALD: heavy near-duplicate cluster mass — a large fraction of the
//     collection sits at roughly the NN distance.
func TestRealLikeDataIsHarderThanRandom(t *testing.T) {
	const n = 150
	measure := func(kind Kind) (avgNN, avgPair float64) {
		c, err := Generate(kind, n, 128, 3)
		if err != nil {
			t.Fatal(err)
		}
		var nnTotal, pairTotal float64
		pairs := 0
		for i := 0; i < n; i++ {
			best := math.Inf(1)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				var d float64
				a, b := c.At(i), c.At(j)
				for k := range a {
					dd := float64(a[k] - b[k])
					d += dd * dd
				}
				d = math.Sqrt(d)
				pairTotal += d
				pairs++
				if d < best {
					best = d
				}
			}
			nnTotal += best
		}
		return nnTotal / n, pairTotal / float64(pairs)
	}
	rwNN, rwPair := measure(RandomWalk)
	seisNN, seisPair := measure(SeismicLike)
	saldNN, _ := measure(SALDLike)
	rwContrast := rwPair / rwNN
	seisContrast := seisPair / seisNN
	if seisContrast >= rwContrast {
		t.Errorf("seismic contrast %.3f should be below random walk %.3f", seisContrast, rwContrast)
	}
	if saldNN >= rwNN/2 {
		t.Errorf("SALD avg NN dist %.3f should be far below random walk %.3f (near-duplicate clusters)", saldNN, rwNN)
	}
}

func TestQueriesSameDistribution(t *testing.T) {
	q, err := Queries(SeismicLike, 10, 256, 99)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count() != 10 || q.Length != 256 {
		t.Errorf("queries shape %d×%d", q.Count(), q.Length)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	c, err := Generate(RandomWalk, 33, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != c.Count() || got.Length != c.Length {
		t.Fatalf("shape mismatch: %d×%d", got.Count(), got.Length)
	}
	for i := range c.Data {
		if got.Data[i] != c.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated data section.
	c, _ := Generate(RandomWalk, 4, 64, 1)
	full := filepath.Join(dir, "full.bin")
	if err := WriteFile(full, c); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(trunc); err == nil {
		t.Error("truncated file accepted")
	}
	// Absurd header.
	huge := make([]byte, 24)
	copy(huge, "MESSIDS1")
	for i := 8; i < 24; i++ {
		huge[i] = 0xFF
	}
	hugePath := filepath.Join(dir, "huge.bin")
	if err := os.WriteFile(hugePath, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(hugePath); err == nil {
		t.Error("absurd header accepted")
	}
}
