// Package dataset provides the workload generators and binary file format
// used by the experiments.
//
// The paper evaluates on (i) synthetic random-walk series — "a random
// number is first drawn from a Gaussian distribution N(0,1), and then at
// each time point a new number is drawn from this distribution and added to
// the value of the last number" — and (ii) two real collections we cannot
// redistribute: Seismic (IRIS waveforms, 100M×256) and SALD (MRI series,
// 200M×128). Per the substitution policy in DESIGN.md we model the real
// datasets with generators that reproduce their relevant property for this
// paper: real data is more self-similar than random walks, so pruning is
// less effective and queries are slower (Figures 14, 16, 17).
//
//   - Seismic-like: superpositions of damped sinusoid bursts over noise,
//     sharing a small dictionary of event shapes across series.
//   - SALD-like: smooth low-frequency Fourier series of length 128 drawn
//     from a small number of latent cluster prototypes.
//
// All generated series are z-normalized, as is standard for similarity
// search (the paper's distance is ED on z-normalized data).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/series"
)

// Kind identifies a generator.
type Kind string

// The three dataset families of the evaluation.
const (
	RandomWalk  Kind = "random"  // the paper's synthetic workload
	SeismicLike Kind = "seismic" // stand-in for the IRIS Seismic collection
	SALDLike    Kind = "sald"    // stand-in for the SALD MRI collection
)

// DefaultLength returns the paper's series length for the dataset family
// (256 points, except SALD which uses 128).
func (k Kind) DefaultLength() int {
	if k == SALDLike {
		return 128
	}
	return 256
}

// Generate produces count z-normalized series of the given length for the
// dataset family, deterministically from seed.
func Generate(kind Kind, count, length int, seed int64) (*series.Collection, error) {
	if count <= 0 {
		return nil, fmt.Errorf("dataset: non-positive count %d", count)
	}
	if length <= 0 {
		return nil, fmt.Errorf("dataset: non-positive length %d", length)
	}
	c, err := series.NewEmptyCollection(count, length)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case RandomWalk:
		for i := 0; i < count; i++ {
			fillRandomWalk(rng, c.At(i))
		}
	case SeismicLike:
		g := newSeismicGen(rng, length)
		for i := 0; i < count; i++ {
			g.fill(rng, c.At(i))
		}
	case SALDLike:
		g := newSALDGen(rng)
		for i := 0; i < count; i++ {
			g.fill(rng, c.At(i))
		}
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", kind)
	}
	c.ZNormalizeAll()
	return c, nil
}

// Queries generates a query workload for a dataset family. Following the
// paper, random-walk queries come from the same generator; for the
// real-data stand-ins queries are fresh draws from the same generator
// ("we used as queries 100 series out of the datasets, chosen using our
// synthetic series generator" — i.e. same distribution, not present in the
// collection).
func Queries(kind Kind, count, length int, seed int64) (*series.Collection, error) {
	return Generate(kind, count, length, seed)
}

func fillRandomWalk(rng *rand.Rand, dst []float32) {
	v := rng.NormFloat64()
	dst[0] = float32(v)
	for i := 1; i < len(dst); i++ {
		v += rng.NormFloat64()
		dst[i] = float32(v)
	}
}

// seismicGen shares a dictionary of full-length event prototypes (damped
// sinusoid bursts at fixed epicentral offsets) across all series; each
// series is a lightly perturbed prototype. Many series are therefore
// near-identical — the self-similarity that makes pruning harder on real
// seismic data (the paper's Figures 16-17).
type seismicGen struct {
	protos [][]float64 // full-length prototype waveforms
}

const seismicPrototypes = 16

func newSeismicGen(rng *rand.Rand, length int) *seismicGen {
	g := &seismicGen{protos: make([][]float64, seismicPrototypes)}
	for p := range g.protos {
		proto := make([]float64, length)
		events := 1 + rng.Intn(3)
		for e := 0; e < events; e++ {
			freq := 0.2 + rng.Float64()*1.2
			decay := 0.04 + rng.Float64()*0.12
			phase := rng.Float64() * 2 * math.Pi
			amp := 0.5 + rng.Float64()*2
			start := rng.Intn(length)
			for i := start; i < length; i++ {
				t := float64(i - start)
				proto[i] += amp * math.Exp(-decay*t) * math.Sin(freq*t+phase)
			}
		}
		g.protos[p] = proto
	}
	return g
}

func (g *seismicGen) fill(rng *rand.Rand, dst []float32) {
	// Independent low-amplitude microseism background (a gentle random
	// walk): this is what lets the index discriminate series from
	// different stations, while the shared prototype bursts below make
	// same-event series cluster tightly. The balance reproduces real
	// seismic behaviour: pruning works, but worse than on random walks.
	v := 0.0
	for i := range dst {
		v += rng.NormFloat64() * 0.16
		dst[i] = float32(v)
	}
	proto := g.protos[rng.Intn(len(g.protos))]
	scale := 0.85 + rng.Float64()*0.3 // station gain variation
	for i := range dst {
		dst[i] += float32(proto[i]*scale + rng.NormFloat64()*0.05)
	}
}

// saldGen produces smooth series as low-frequency Fourier sums around a
// small set of latent prototypes (MRI-style population structure).
type saldGen struct {
	protoAmp   [][]float64 // per-prototype harmonic amplitudes
	protoPhase [][]float64
}

const (
	saldPrototypes = 16
	saldHarmonics  = 6
)

func newSALDGen(rng *rand.Rand) *saldGen {
	g := &saldGen{
		protoAmp:   make([][]float64, saldPrototypes),
		protoPhase: make([][]float64, saldPrototypes),
	}
	for p := 0; p < saldPrototypes; p++ {
		amp := make([]float64, saldHarmonics)
		phase := make([]float64, saldHarmonics)
		for h := range amp {
			amp[h] = rng.NormFloat64() / float64(h+1)
			phase[h] = rng.Float64() * 2 * math.Pi
		}
		g.protoAmp[p] = amp
		g.protoPhase[p] = phase
	}
	return g
}

func (g *saldGen) fill(rng *rand.Rand, dst []float32) {
	p := rng.Intn(saldPrototypes)
	amp, phase := g.protoAmp[p], g.protoPhase[p]
	n := float64(len(dst))
	// Individual variation: jitter amplitudes and phases slightly.
	for i := range dst {
		t := float64(i) / n
		var v float64
		for h := 0; h < saldHarmonics; h++ {
			v += amp[h] * math.Sin(2*math.Pi*float64(h+1)*t+phase[h])
		}
		dst[i] = float32(v)
	}
	for h := 0; h < saldHarmonics; h++ {
		jAmp := rng.NormFloat64() * 0.08 / float64(h+1)
		jPhase := rng.Float64() * 2 * math.Pi
		for i := range dst {
			t := float64(i) / n
			dst[i] += float32(jAmp * math.Sin(2*math.Pi*float64(h+1)*t+jPhase))
		}
	}
	for i := range dst {
		dst[i] += float32(rng.NormFloat64() * 0.02)
	}
}
