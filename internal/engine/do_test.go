package engine

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// fillGate saturates the admission gate directly (same-package access) so
// the overload branches of Do run deterministically instead of depending
// on racing real queries. The returned func releases the held slots.
func fillGate(e *Engine) func() {
	n := cap(e.admit)
	for i := 0; i < n; i++ {
		e.admit <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-e.admit
		}
	}
}

// TestDegradeEpsilonRewritesUnderOverload: with the gate provably full
// and DegradeEpsilon set, an exact request is rewritten to ε-bounded —
// the answers honor the (1+ε) guarantee and the proof machinery reports
// inexactness when inflation pruned a potential winner.
func TestDegradeEpsilonRewritesUnderOverload(t *testing.T) {
	ix, qs := testIndex(t)
	const eps = 4.0
	e := New(ix, Options{PoolWorkers: 4, MaxConcurrent: 1, DegradeEpsilon: eps})
	defer e.Close()

	release := fillGate(e)
	const nq = 8
	results := make([]core.Result, nq)
	errs := make([]error, nq)
	started := make(chan struct{}, nq)
	done := make(chan struct{}, nq)
	for i := 0; i < nq; i++ {
		go func(i int) {
			started <- struct{}{}
			results[i], errs[i] = e.Do(core.Request{Query: qs.At(i)})
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < nq; i++ {
		<-started
	}
	// Every goroutine is past Do's entry; give them time to observe the
	// full gate and block in admitQoS, then let them through one by one.
	time.Sleep(50 * time.Millisecond)
	release()
	for i := 0; i < nq; i++ {
		<-done
	}

	sawDegraded := false
	for i := 0; i < nq; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		exact, err := ix.Search(qs.At(i), core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, want := math.Sqrt(results[i].Matches[0].Dist), math.Sqrt(exact.Dist)
		if got > (1+eps)*want+1e-6 {
			t.Fatalf("query %d: degraded answer %v violates (1+ε)×%v", i, got, want)
		}
		if got < want-1e-9 {
			t.Fatalf("query %d: degraded answer %v better than exact %v", i, got, want)
		}
		if !results[i].Exact {
			sawDegraded = true
			if results[i].EpsilonBound > eps {
				t.Fatalf("query %d: proven bound %v exceeds degradation ε", i, results[i].EpsilonBound)
			}
		}
	}
	if !sawDegraded {
		t.Error("no query reported an inexact degraded answer; rewrite apparently never applied")
	}
}

// TestDegradeEpsilonIdleStaysExact: the rewrite requires a full gate — an
// idle engine with DegradeEpsilon configured still answers exactly.
func TestDegradeEpsilonIdleStaysExact(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 4, MaxConcurrent: 2, DegradeEpsilon: 0.5})
	defer e.Close()
	for i := 0; i < 4; i++ {
		res, err := e.Do(core.Request{Query: qs.At(i)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.Search(qs.At(i), core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Matches[0] != want {
			t.Fatalf("query %d: idle engine degraded: %+v, want exact %+v", i, res, want)
		}
	}
}

// TestDeadlineExpiryDuringAdmission: a deadline request stuck behind a
// full gate past its deadline bypasses the gate with a single bounded
// approximate step and reports the answer as inexact.
func TestDeadlineExpiryDuringAdmission(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 4, MaxConcurrent: 1})
	defer e.Close()

	release := fillGate(e)
	defer release()
	start := time.Now()
	res, err := e.Do(core.Request{
		Query:    qs.At(0),
		Mode:     core.ModeDeadline,
		Deadline: time.Now().Add(30 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("expired admission returned after %v", elapsed)
	}
	if res.Exact || !math.IsInf(res.EpsilonBound, 1) {
		t.Fatalf("deadline-expired admission must report an unproven answer, got %+v", res)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("deadline-expired admission returned %d matches, want the approximate best", len(res.Matches))
	}
	want, err := ix.Search(qs.At(0), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches[0].Dist < want.Dist-1e-9 {
		t.Fatalf("approximate fallback %v better than exact %v", res.Matches[0].Dist, want.Dist)
	}
}

// TestCancelDuringAdmission: cancellation while queued at the gate
// returns context.Canceled without running any search.
func TestCancelDuringAdmission(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 4, MaxConcurrent: 1})
	defer e.Close()

	release := fillGate(e)
	defer release()
	canceled := make(chan struct{})
	close(canceled)
	_, err := e.Do(core.Request{Query: qs.At(0), Cancel: canceled})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled admission returned %v, want context.Canceled", err)
	}
}
