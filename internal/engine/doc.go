// Package engine provides a persistent query engine on top of a built
// MESSI index: a long-lived pool of worker goroutines that answers many
// queries over the index's lifetime, amortizing the goroutine spawns and
// the priority-queue/PAA-buffer allocations that the per-query execution
// mode (core.Index.Search) pays on every call.
//
// The paper (and its VLDBJ journal extension) evaluates one query at a
// time with Ns freshly spawned workers; a serving system instead sees a
// sustained stream of concurrent queries. The engine keeps the paper's
// algorithm intact — each query still runs Algorithm 6's two phases
// against its own bound and queue set — but executes the phases as work
// units dispatched onto the shared pool:
//
//   - admission: at most MaxConcurrent queries execute at once; each
//     dispatches QueryWorkers insert units, waits for all of them (the
//     all-inserted barrier), then dispatches QueryWorkers drain units.
//   - pool goroutines never block on query-level barriers (the caller
//     does), so any mix of in-flight queries is deadlock-free: one query
//     may own every pool worker, or K queries interleave their units.
//   - per-query scratch (PAA buffer, iSAX word buffer, queue set) comes
//     from a sync.Pool of core.QueryState and is returned after each
//     query.
//
// # Contracts
//
// An Engine is safe for unlimited concurrent callers. Queries submitted
// after Close fail fast with ErrClosed; an engine created empty (for a
// live index that has not built its first generation) fails with
// ErrNoIndex until Swap installs one — both sentinels, so servers map
// them to responses without string matching. Under pressure the
// admission gate can degrade instead of queueing unboundedly: with
// Options.DegradeEpsilon set, an exact query arriving while
// MaxConcurrent queries are already executing runs in epsilon mode,
// trading a proven small error for latency.
//
// Results are identical to running the same core search directly: the
// pool changes who executes the phases, never what they compute.
package engine
