package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// TestWorkerPanicFailsOnlyThatQuery is the panic-isolation contract: a
// query that panics on a pool worker fails with ErrQueryPanicked while
// every concurrent query on the same engine completes with the exact
// answer, and the pool keeps serving afterwards. The panic is injected
// through the engine.unit failpoint (one-shot, so exactly one query is
// poisoned regardless of scheduling).
func TestWorkerPanicFailsOnlyThatQuery(t *testing.T) {
	ix, qs := testIndex(t)
	for _, tc := range []struct {
		name string
		mk   func(reg *metrics.Registry) *Engine
	}{
		{"single", func(reg *metrics.Registry) *Engine {
			return New(ix, Options{PoolWorkers: 8, Metrics: reg})
		}},
		{"sharded", func(reg *metrics.Registry) *Engine {
			return NewSharded(shard.Wrap(ix), Options{PoolWorkers: 8, Metrics: reg})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Cleanup(fault.DisarmAll)
			reg := metrics.NewRegistry()
			e := tc.mk(reg)
			defer e.Close()

			want := make([]core.Match, qs.Count())
			for i := range want {
				m, err := ix.Search(qs.At(i), core.SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = m
			}

			if err := fault.Arm("engine.unit", fault.Spec{Action: fault.Panic}); err != nil {
				t.Fatal(err)
			}
			var (
				wg      sync.WaitGroup
				mu      sync.Mutex
				errs    []error
				wrong   int
				correct int
			)
			for i := 0; i < qs.Count(); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got, err := e.Search(qs.At(i))
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						errs = append(errs, err)
						return
					}
					if got != want[i] {
						wrong++
						return
					}
					correct++
				}(i)
			}
			wg.Wait()
			// Exactly one query was poisoned (one-shot failpoint); it must
			// carry the typed sentinel, and nobody else may be disturbed.
			if len(errs) != 1 {
				t.Fatalf("got %d failed queries, want exactly 1 (errs: %v)", len(errs), errs)
			}
			if !errors.Is(errs[0], ErrQueryPanicked) {
				t.Fatalf("poisoned query error = %v, want ErrQueryPanicked", errs[0])
			}
			if wrong != 0 {
				t.Fatalf("%d concurrent queries returned wrong answers", wrong)
			}
			if correct != qs.Count()-1 {
				t.Fatalf("%d concurrent queries completed exactly, want %d", correct, qs.Count()-1)
			}
			if got := reg.Counter("messi_query_panics_total",
				"Query panics recovered on pool workers (each failed only its own query).").Value(); got != 1 {
				t.Fatalf("messi_query_panics_total = %d, want 1", got)
			}

			// The pool survived: the same engine keeps answering exactly.
			for i := 0; i < qs.Count(); i++ {
				got, err := e.Search(qs.At(i))
				if err != nil {
					t.Fatalf("query %d after panic: %v", i, err)
				}
				if got != want[i] {
					t.Fatalf("query %d after panic: got %+v, want %+v", i, got, want[i])
				}
			}
		})
	}
}

// TestScanLeafPanicIsolated injects the panic one layer deeper — inside
// core's leaf scan, the hottest loop of the search — and checks the
// engine still converts it into a per-query error.
func TestScanLeafPanicIsolated(t *testing.T) {
	ix, qs := testIndex(t)
	t.Cleanup(fault.DisarmAll)
	e := New(ix, Options{PoolWorkers: 4})
	defer e.Close()
	if err := fault.Arm("core.scanleaf", fault.Spec{Action: fault.Error}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(qs.At(0)); !errors.Is(err, ErrQueryPanicked) {
		t.Fatalf("err = %v, want ErrQueryPanicked", err)
	} else if !errors.Is(err, fault.ErrInjected) {
		// scanLeaf panics with the injected error value, and panicErr
		// keeps error chains matchable through the sentinel.
		t.Fatalf("err = %v, want wrapped fault.ErrInjected", err)
	}
	// Disarmed (one-shot): the next query on the same pool is exact.
	want, err := ix.Search(qs.At(1), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Search(qs.At(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after recovery: got %+v, want %+v", got, want)
	}
}

// TestKNNWorkerPanic: the k-NN path shares the pool and the isolation.
func TestKNNWorkerPanic(t *testing.T) {
	ix, qs := testIndex(t)
	t.Cleanup(fault.DisarmAll)
	e := New(ix, Options{PoolWorkers: 4})
	defer e.Close()
	if err := fault.Arm("engine.unit", fault.Spec{Action: fault.Panic}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchKNN(qs.At(0), 5); !errors.Is(err, ErrQueryPanicked) {
		t.Fatalf("err = %v, want ErrQueryPanicked", err)
	}
	ms, err := e.SearchKNN(qs.At(0), 5)
	if err != nil {
		t.Fatalf("k-NN after panic: %v", err)
	}
	if len(ms) != 5 {
		t.Fatalf("k-NN after panic returned %d matches, want 5", len(ms))
	}
}
