package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ErrClosed is returned by queries submitted after Close.
var ErrClosed = errors.New("engine: closed")

// ErrQueryPanicked is returned (wrapped) by a query whose execution
// panicked on a pool worker. The panic is confined to that one query:
// the worker recovers, the stack goes to slog and the
// messi_query_panics_total counter, and the pool keeps serving every
// other query.
var ErrQueryPanicked = errors.New("engine: query panicked")

// fpUnit fires inside a dispatched query work unit, where the
// worker-panic tests inject a poisoned task to prove one bad query
// cannot take the pool down.
var fpUnit = fault.Register("engine.unit")

// ErrNoIndex is returned by queries while the engine has no index yet (an
// engine may be started before its first generation is built and receive
// one later via Swap).
var ErrNoIndex = errors.New("engine: no index installed")

// Options configures an Engine. Zero fields inherit from the index
// options (which themselves default to the paper's values).
type Options struct {
	// PoolWorkers is the number of long-lived worker goroutines shared
	// by all queries. Default: the index's SearchWorkers (Ns).
	PoolWorkers int
	// QueryWorkers is the number of work units each query dispatches per
	// phase — the per-query parallelism. Default: PoolWorkers (a lone
	// query owns the whole pool).
	QueryWorkers int
	// Queues is the number of priority queues per query (Nq). Default:
	// the index's QueueCount.
	Queues int
	// MaxConcurrent is the number of queries allowed to execute
	// concurrently; further queries wait for admission. Default:
	// max(1, PoolWorkers/QueryWorkers), the pool's saturation point.
	MaxConcurrent int
	// DegradeEpsilon, when positive, makes the admission gate trade
	// answer quality for latency under overload: an exact Do request
	// arriving while MaxConcurrent queries are already executing is
	// degraded to an ε-bounded one with this ε instead of paying full
	// queueing plus full exact-search latency. Requests that ask for a
	// specific mode (approximate, ε, deadline) are never rewritten, and
	// the result honestly reports Exact=false plus the ε actually
	// proven. Zero (the default) never degrades. Only Do requests are
	// subject to degradation; the deprecated always-exact methods stay
	// exact.
	DegradeEpsilon float64
	// Metrics, when non-nil, receives the engine's production telemetry:
	// admission-gate pressure, per-mode latency histograms, answer
	// exactness outcomes, and cumulative pruning counters. Nil (the
	// default) disables every measurement — the hot path pays a single
	// nil check, preserving benchmark numbers.
	Metrics *metrics.Registry
}

func (o Options) withDefaults(ixOpts core.Options) Options {
	if o.PoolWorkers <= 0 {
		o.PoolWorkers = ixOpts.SearchWorkers
	}
	if o.PoolWorkers <= 0 {
		o.PoolWorkers = core.DefaultSearchWorkers
	}
	if o.QueryWorkers <= 0 || o.QueryWorkers > o.PoolWorkers {
		o.QueryWorkers = o.PoolWorkers
	}
	if o.Queues <= 0 {
		o.Queues = ixOpts.QueueCount
	}
	if o.Queues <= 0 {
		o.Queues = core.DefaultQueueCount
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = o.PoolWorkers / o.QueryWorkers
		if o.MaxConcurrent < 1 {
			o.MaxConcurrent = 1
		}
	}
	return o
}

// task is one unit of query work executed by a pool goroutine; pid is the
// goroutine's index in the pool.
type task func(pid int)

// Engine is a persistent query engine over a swappable index: the current
// index generation — a shard group of one or more core indexes — is held
// behind an atomic pointer, and Swap atomically replaces it (RCU-style —
// queries already executing finish against the generation they loaded at
// admission; new queries see the new one). Sharded generations are
// answered by fanning per-shard work units onto the same pool, threading
// one shared best-so-far through every shard's search. It is safe for
// concurrent use by multiple goroutines. Close it when done to release
// the pool.
type Engine struct {
	sx     atomic.Pointer[shard.Index]
	opts   Options
	met    *engMetrics // nil when Options.Metrics is nil
	tasks  chan task
	admit  chan struct{}
	states sync.Pool
	wg     sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight queries
	closed bool
}

// New starts an engine over the given (unsharded) index. ix may be nil —
// queries fail with ErrNoIndex until a generation is installed via Swap —
// which lets a live index start empty and stream data in.
func New(ix *core.Index, opts Options) *Engine {
	return NewSharded(shard.Wrap(ix), opts)
}

// NewSharded starts an engine over a sharded index group. sx may be nil
// (see New).
func NewSharded(sx *shard.Index, opts Options) *Engine {
	var ixOpts core.Options
	if sx != nil {
		ixOpts = sx.Opts()
	}
	opts = opts.withDefaults(ixOpts)
	e := &Engine{
		opts:  opts,
		met:   newEngMetrics(opts.Metrics, opts),
		tasks: make(chan task, 4*opts.PoolWorkers),
		admit: make(chan struct{}, opts.MaxConcurrent),
	}
	e.sx.Store(sx)
	opts.Metrics.GaugeFunc("messi_engine_shards",
		"Shards in the currently installed index generation.", func() float64 {
			cur := e.sx.Load()
			if cur == nil {
				return 0
			}
			return float64(cur.NumShards())
		})
	e.states.New = func() any { return core.NewQueryState() }
	e.wg.Add(opts.PoolWorkers)
	for pid := 0; pid < opts.PoolWorkers; pid++ {
		go func(pid int) {
			defer e.wg.Done()
			for t := range e.tasks {
				e.runTask(t, pid)
			}
		}(pid)
	}
	return e
}

// runTask executes one task with a backstop recover: every query task
// carries its own per-query recovery, so a panic reaching here means a
// task escaped it — log and count it rather than killing the process
// (a panicking worker goroutine would otherwise strand every query
// whose units it still owed).
func (e *Engine) runTask(t task, pid int) {
	defer func() {
		if r := recover(); r != nil {
			e.panicErr(r)
		}
	}()
	t(pid)
}

// panicErr converts a recovered panic value into an ErrQueryPanicked
// error. The stack is captured to slog and the panic counted in
// messi_query_panics_total; the returned error carries only the panic
// value, so API consumers see a clean sentinel.
func (e *Engine) panicErr(r any) error {
	e.met.recordPanic()
	level := slog.LevelError
	if fault.IsInjectedPanic(r) {
		level = slog.LevelInfo // chaos tests inject these on purpose
	}
	slog.Default().Log(context.Background(), level, "query worker panicked",
		"panic", fmt.Sprint(r),
		"stack", string(debug.Stack()))
	// panic(err) keeps its chain matchable through the sentinel.
	if perr, ok := r.(error); ok {
		return fmt.Errorf("%w: %w", ErrQueryPanicked, perr)
	}
	return fmt.Errorf("%w: %v", ErrQueryPanicked, r)
}

// panicBox collects the first panic of one query's work units.
type panicBox struct {
	mu  sync.Mutex
	err error
}

func (b *panicBox) note(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *panicBox) load() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// Index returns the current generation's single core index — nil when no
// generation is installed or when the generation is sharded (use Shards).
func (e *Engine) Index() *core.Index {
	sx := e.sx.Load()
	if sx == nil {
		return nil
	}
	return sx.Single()
}

// Shards returns the current sharded generation (nil if none installed).
func (e *Engine) Shards() *shard.Index { return e.sx.Load() }

// Swap atomically installs a new (unsharded) index generation, returning
// the previous generation's single index (nil when it was sharded). In-
// flight queries keep running against the generation they loaded; queries
// admitted after Swap see the new one. The old generation may be released
// once its queries drain (Go's GC handles this — callers need no
// quiescence protocol).
func (e *Engine) Swap(ix *core.Index) *core.Index {
	prev := e.sx.Swap(shard.Wrap(ix))
	if prev == nil {
		return nil
	}
	return prev.Single()
}

// SwapSharded is Swap for sharded generations.
func (e *Engine) SwapSharded(sx *shard.Index) *shard.Index {
	return e.sx.Swap(sx)
}

// acquire blocks until an admission slot is free, recording queue depth
// and wait time when metrics are on. Release by receiving from e.admit.
func (e *Engine) acquire() {
	if e.met == nil {
		e.admit <- struct{}{}
		return
	}
	start := e.met.waitStart()
	e.admit <- struct{}{}
	e.met.waitEnd(start)
	e.met.admitted.Inc()
}

// Search answers an exact 1-NN query on the shared pool. It blocks until
// the query is admitted and answered.
func (e *Engine) Search(query []float32) (core.Match, error) {
	return e.SearchSeeded(query, nil)
}

// SearchSeeded is Search with externally known candidate matches applied
// to the pruning bound before the search starts (see
// core.SearchOptions.Seeds). A seed that remains best is returned as-is.
func (e *Engine) SearchSeeded(query []float32, seeds []core.Match) (core.Match, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return core.Match{}, ErrClosed
	}
	e.acquire()
	defer func() { <-e.admit }()

	sx := e.sx.Load()
	if sx == nil {
		return core.Match{}, ErrNoIndex
	}
	return e.run1NN(sx, query, seeds, core.SearchOptions{})
}

// run1NN executes an already-admitted 1-NN query on the pool. base carries
// per-query extras (QoS, Counters); worker shape, seeds, and the sharded
// fan-out plumbing are filled in here — the one shared path under both the
// deprecated entry points and Do.
func (e *Engine) run1NN(sx *shard.Index, query []float32, seeds []core.Match, base core.SearchOptions) (m core.Match, err error) {
	// Inline preparation (below) runs on the caller's goroutine; a
	// panic there must fail this query alone, like one on a pool unit.
	defer func() {
		if r := recover(); r != nil {
			m, err = core.Match{}, e.panicErr(r)
		}
	}()
	base.Workers = e.opts.QueryWorkers
	base.Queues = e.opts.Queues
	if single := sx.Single(); single != nil {
		base.Seeds = seeds
		st := e.states.Get().(*core.QueryState)
		run, err := single.NewSearchRun(query, st, base)
		if err != nil {
			e.states.Put(st)
			return core.Match{}, err
		}
		rec := &panicBox{}
		e.execute(run, rec)
		if perr := rec.load(); perr != nil {
			// The panicking unit may have left st inconsistent; drop
			// it rather than returning it to the pool.
			return core.Match{}, perr
		}
		m := run.Best()
		e.states.Put(st)
		return m, nil
	}

	// Sharded generation: one run per non-empty shard, all threading one
	// shared best-so-far, dispatched as per-shard work units on the pool.
	e.met.recordFanout()
	shared := stats.NewBSF()
	for _, s := range seeds {
		shared.Update(s.Dist, int64(s.Position))
	}
	runs, sts, err := e.shardRuns(sx, func(sh *core.Index, s int, st *core.QueryState) (*core.SearchRun, error) {
		opt := base
		opt.Shared = shared
		opt.GlobalPos = sx.GlobalPosFunc(s)
		return sh.NewSearchRun(query, st, opt)
	})
	if err != nil {
		return core.Match{}, err
	}
	rec := &panicBox{}
	e.executeAll(runs, rec)
	if perr := rec.load(); perr != nil {
		// Any of the fanned-out states may be the poisoned one;
		// discard them all (sync.Pool refills on demand).
		return core.Match{}, perr
	}
	e.putStates(sts)
	d, pos := shared.Best()
	return core.Match{Position: int(pos), Dist: d}, nil
}

// shardRuns prepares one run per non-empty shard, borrowing a QueryState
// for each. Preparation — the query's PAA/table build plus the
// bound-seeding approximate search — is fanned out over the pool too, so
// a query's setup latency does not grow linearly with S; approximate
// answers landing in the shared bound concurrently tighten each other
// exactly as the drain phases do. On any preparation error every
// borrowed state is returned and the first error wins.
func (e *Engine) shardRuns(sx *shard.Index,
	mk func(sh *core.Index, s int, st *core.QueryState) (*core.SearchRun, error)) ([]*core.SearchRun, []*core.QueryState, error) {

	S := sx.NumShards()
	runs := make([]*core.SearchRun, S)
	sts := make([]*core.QueryState, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		sh := sx.Shard(s)
		if sh == nil {
			continue
		}
		st := e.states.Get().(*core.QueryState)
		sts[s] = st
		wg.Add(1)
		e.tasks <- func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					sts[s] = nil // poisoned; never back to the pool
					errs[s] = e.panicErr(r)
				}
			}()
			runs[s], errs[s] = mk(sh, s, st)
		}
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	outRuns := runs[:0]
	outSts := sts[:0]
	for s := 0; s < S; s++ {
		if firstErr != nil {
			if sts[s] != nil {
				e.states.Put(sts[s])
			}
			continue
		}
		if runs[s] != nil {
			outRuns = append(outRuns, runs[s])
			outSts = append(outSts, sts[s])
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return outRuns, outSts, nil
}

func (e *Engine) putStates(sts []*core.QueryState) {
	for _, st := range sts {
		e.states.Put(st)
	}
}

// SearchKNN answers an exact k-NN query on the shared pool, returning up
// to k matches in ascending distance order.
func (e *Engine) SearchKNN(query []float32, k int) ([]core.Match, error) {
	return e.SearchKNNSeeded(query, k, nil)
}

// SearchKNNSeeded is SearchKNN with externally known candidate matches
// participating in the top-k set (see core.SearchOptions.Seeds).
func (e *Engine) SearchKNNSeeded(query []float32, k int, seeds []core.Match) ([]core.Match, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.acquire()
	defer func() { <-e.admit }()

	sx := e.sx.Load()
	if sx == nil {
		return nil, ErrNoIndex
	}
	return e.runKNN(sx, query, k, seeds, core.SearchOptions{})
}

// runKNN executes an already-admitted k-NN query on the pool (see run1NN).
func (e *Engine) runKNN(sx *shard.Index, query []float32, k int, seeds []core.Match, base core.SearchOptions) (ms []core.Match, err error) {
	defer func() {
		if r := recover(); r != nil {
			ms, err = nil, e.panicErr(r)
		}
	}()
	base.Workers = e.opts.QueryWorkers
	base.Queues = e.opts.Queues
	if single := sx.Single(); single != nil {
		base.Seeds = seeds
		st := e.states.Get().(*core.QueryState)
		run, err := single.NewKNNRun(query, k, st, base)
		if err != nil {
			e.states.Put(st)
			return nil, err
		}
		rec := &panicBox{}
		e.execute(run, rec)
		if perr := rec.load(); perr != nil {
			return nil, perr
		}
		ms := run.Matches()
		e.states.Put(st)
		return ms, nil
	}

	// Sharded generation: every shard computes its own top-k (each seeded
	// with the caller's global-position seeds) and the per-shard sets are
	// merged through a priority queue.
	e.met.recordFanout()
	runs, sts, err := e.shardRuns(sx, func(sh *core.Index, s int, st *core.QueryState) (*core.SearchRun, error) {
		opt := base
		opt.Seeds = seeds
		opt.GlobalPos = sx.GlobalPosFunc(s)
		return sh.NewKNNRun(query, k, st, opt)
	})
	if err != nil {
		return nil, err
	}
	rec := &panicBox{}
	e.executeAll(runs, rec)
	if perr := rec.load(); perr != nil {
		return nil, perr
	}
	lists := make([][]core.Match, len(runs))
	for i, run := range runs {
		lists[i] = run.Matches()
	}
	e.putStates(sts)
	return shard.MergeKNN(lists, k), nil
}

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba band of the given radius (points), fanning out across
// shards when the generation is sharded. The DTW search runs the paper's
// per-query spawn mode — its own worker goroutines, not pool units — but
// it still passes through the engine's admission gate, so a burst of DTW
// traffic is capped at MaxConcurrent in-flight queries like every other
// query path instead of spawning unbounded worker fleets.
func (e *Engine) SearchDTW(query []float32, window int, seeds []core.Match) (core.Match, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return core.Match{}, ErrClosed
	}
	e.acquire()
	defer func() { <-e.admit }()

	sx := e.sx.Load()
	if sx == nil {
		return core.Match{}, ErrNoIndex
	}
	return sx.SearchDTW(query, window, core.SearchOptions{
		Workers: e.opts.QueryWorkers,
		Queues:  e.opts.Queues,
		Seeds:   seeds,
	})
}

// SearchBatch answers many independent 1-NN queries, running up to
// MaxConcurrent of them through the pool at once. result[i] answers
// queries[i]. On error it still returns the full slice (failed entries
// are zero) along with the first error encountered.
func (e *Engine) SearchBatch(queries [][]float32) ([]core.Match, error) {
	out := make([]core.Match, len(queries))
	errs := make([]error, len(queries))
	// MaxConcurrent submitter goroutines claiming queries via Fetch&Inc:
	// admission caps useful parallelism there anyway, and a fixed fleet
	// keeps one huge batch from allocating one goroutine per query.
	submitters := e.opts.MaxConcurrent
	if submitters > len(queries) {
		submitters = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i], errs[i] = e.Search(queries[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("engine: batch query %d: %w", i, err)
		}
	}
	return out, nil
}

// execute runs one prepared query through the pool: QueryWorkers insert
// units, the all-inserted barrier (awaited here, never inside a pool
// goroutine), then QueryWorkers drain units. A unit panic is recorded
// in rec and the drain phase skipped — the run's answer is discarded
// anyway, and its partially-filled queues are not worth walking.
func (e *Engine) execute(run *core.SearchRun, rec *panicBox) {
	e.dispatch(run.InsertPhase, rec)
	if rec.load() != nil {
		return
	}
	e.dispatch(run.DrainPhase, rec)
}

// executeAll runs several sibling runs (one per shard) through the pool:
// every run's insert units are dispatched together and awaited before any
// drain unit starts — a single all-inserted barrier across the whole
// fan-out, so a shard finishing its tree pass early keeps its bound
// improvements visible to the shards still traversing.
func (e *Engine) executeAll(runs []*core.SearchRun, rec *panicBox) {
	e.dispatchAll(runs, (*core.SearchRun).InsertPhase, rec)
	if rec.load() != nil {
		return
	}
	e.dispatchAll(runs, (*core.SearchRun).DrainPhase, rec)
}

// dispatchAll enqueues QueryWorkers units of phase for every run and
// waits for all of them.
func (e *Engine) dispatchAll(runs []*core.SearchRun, phase func(*core.SearchRun, int), rec *panicBox) {
	var wg sync.WaitGroup
	wg.Add(len(runs) * e.opts.QueryWorkers)
	for _, run := range runs {
		run := run
		for i := 0; i < e.opts.QueryWorkers; i++ {
			e.tasks <- func(pid int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						rec.note(e.panicErr(r))
					}
				}()
				if err := fpUnit.Hit(); err != nil {
					rec.note(err)
					return
				}
				phase(run, pid)
			}
		}
	}
	wg.Wait()
}

// dispatch enqueues QueryWorkers calls of phase and waits for all of them
// to finish. Panics in a unit are recovered on the pool worker (before
// its wg.Done fires, so the barrier never deadlocks) and recorded.
func (e *Engine) dispatch(phase func(pid int), rec *panicBox) {
	var wg sync.WaitGroup
	wg.Add(e.opts.QueryWorkers)
	for i := 0; i < e.opts.QueryWorkers; i++ {
		e.tasks <- func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rec.note(e.panicErr(r))
				}
			}()
			if err := fpUnit.Hit(); err != nil {
				rec.note(err)
				return
			}
			phase(pid)
		}
	}
	wg.Wait()
}

// Close waits for in-flight queries to finish, stops the pool, and
// releases its goroutines. Queries submitted after Close return
// ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.mu.Unlock()
	e.wg.Wait()
}
