package engine

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Do serves one quality-of-service request through the engine: admission
// gate, pooled execution for Euclidean searches, spawn-mode execution for
// DTW, and the overload-degradation policy (Options.DegradeEpsilon).
func (e *Engine) Do(req core.Request) (core.Result, error) {
	return e.DoSeeded(req, nil)
}

// DoSeeded is Do with externally known candidate matches (global
// positions) applied to the pruning bound — the live index's delta-scan
// results. A seed that remains best is part of the answer.
func (e *Engine) DoSeeded(req core.Request, seeds []core.Match) (core.Result, error) {
	if err := req.Validate(); err != nil {
		return core.Result{}, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return core.Result{}, ErrClosed
	}

	// With metrics on, every query contributes its operation counts to the
	// cumulative pruning-efficiency counters, whether or not the caller
	// asked for a per-query trace.
	var start time.Time
	if e.met != nil {
		start = time.Now()
		if req.Counters == nil {
			req.Counters = &stats.Counters{}
		}
	}

	// Overload degradation: with the admission gate full, an exact request
	// would pay queueing latency on top of exact-search latency. When the
	// engine is configured to degrade, rewrite it to an ε-bounded request
	// instead — it still waits for admission, but runs far cheaper once
	// admitted, and the result honestly reports what was proven. Requests
	// that chose their mode explicitly are never rewritten.
	if req.Mode == core.ModeExact && e.opts.DegradeEpsilon > 0 && len(e.admit) == cap(e.admit) {
		req.Mode = core.ModeEpsilon
		req.Epsilon = e.opts.DegradeEpsilon
		if e.met != nil {
			e.met.degraded.Inc()
		}
	}
	mode := req.Mode

	admitted, err := e.admitQoS(req)
	if err != nil {
		return core.Result{}, err
	}
	if admitted {
		defer func() { <-e.admit }()
	}

	sx := e.sx.Load()
	if sx == nil {
		return core.Result{}, ErrNoIndex
	}

	res, err := e.doAdmitted(sx, req, seeds, admitted)
	if err != nil {
		return core.Result{}, err
	}
	if e.met != nil {
		e.met.recordOutcome(mode, time.Since(start), res.Exact)
		e.met.recordCounters(req.Counters.Snapshot())
	}
	return res, nil
}

// doAdmitted executes the request once the admission decision is made.
func (e *Engine) doAdmitted(sx *shard.Index, req core.Request, seeds []core.Match, admitted bool) (core.Result, error) {
	if !admitted {
		// The deadline expired while waiting for admission. The contract is
		// best-so-far within the budget, so bypass the gate for the cheap
		// approximate step only (one leaf scan — bounded work even under
		// overload) and report it as what it is: an inexact answer.
		req.Mode = core.ModeApprox
		return sx.Do(req, core.SearchOptions{Seeds: seeds})
	}

	if req.Mode == core.ModeApprox || req.DTW {
		// Approximate answers are a single leaf scan; DTW runs the paper's
		// per-query spawn mode. Neither uses the pool — delegate to the
		// shard layer under the admission slot we hold.
		opt := core.SearchOptions{Workers: e.opts.QueryWorkers, Queues: e.opts.Queues, Seeds: seeds}
		return sx.Do(req, opt)
	}

	// Pooled Euclidean path: exact, ε-bounded, and deadline-bounded all run
	// the exact machinery with the QoS state threaded through every unit.
	qos := req.NewQoS()
	base := core.SearchOptions{QoS: qos, Counters: req.Counters, Breakdown: req.Breakdown}
	k := req.K
	if k <= 0 {
		k = 1
	}
	if k == 1 {
		m, err := e.run1NN(sx, req.Query, seeds, base)
		if err != nil {
			return core.Result{}, err
		}
		return qos.Finish([]core.Match{m}, req.Mode), nil
	}
	ms, err := e.runKNN(sx, req.Query, k, seeds, base)
	if err != nil {
		return core.Result{}, err
	}
	return qos.Finish(ms, req.Mode), nil
}

// admitQoS waits for an admission slot, honoring the request's
// cancellation signal and deadline. It reports whether a slot was taken
// (false only when a deadline expired while waiting); cancellation is an
// error, matching context semantics.
func (e *Engine) admitQoS(req core.Request) (bool, error) {
	hasDeadline := req.Mode == core.ModeDeadline && !req.Deadline.IsZero()
	if req.Cancel == nil && !hasDeadline {
		e.acquire()
		return true, nil
	}
	var timerC <-chan time.Time
	if hasDeadline {
		t := time.NewTimer(time.Until(req.Deadline))
		defer t.Stop()
		timerC = t.C
	}
	waitStart := e.met.waitStart()
	// A nil req.Cancel never fires in the select.
	select {
	case e.admit <- struct{}{}:
		if e.met != nil {
			e.met.waitEnd(waitStart)
			e.met.admitted.Inc()
		}
		return true, nil
	case <-req.Cancel:
		if e.met != nil {
			e.met.waitEnd(waitStart)
			e.met.cancelled.Inc()
		}
		return false, context.Canceled
	case <-timerC:
		if e.met != nil {
			e.met.waitEnd(waitStart)
			e.met.expired.Inc()
		}
		return false, nil
	}
}
