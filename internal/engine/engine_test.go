package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/series"
	"repro/internal/shard"
)

const (
	testSeries = 4000
	testLength = 128
)

var (
	testOnce sync.Once
	testIx   *core.Index
	testQs   *series.Collection
)

// testIndex builds one small index (and query set) shared by all tests.
func testIndex(t *testing.T) (*core.Index, *series.Collection) {
	t.Helper()
	testOnce.Do(func() {
		data, err := dataset.Generate(dataset.RandomWalk, testSeries, testLength, 7)
		if err != nil {
			panic(err)
		}
		ix, err := core.Build(data, core.Options{LeafCapacity: 100})
		if err != nil {
			panic(err)
		}
		qs, err := dataset.Queries(dataset.RandomWalk, 16, testLength, 7007)
		if err != nil {
			panic(err)
		}
		testIx, testQs = ix, qs
	})
	return testIx, testQs
}

// TestSearchMatchesCore: the pooled engine must return exactly the answer
// of the per-query-spawn core search on the same inputs.
func TestSearchMatchesCore(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 8})
	defer e.Close()
	for i := 0; i < qs.Count(); i++ {
		q := qs.At(i)
		want, err := ix.Search(q, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: engine %+v, core %+v", i, got, want)
		}
	}
}

// TestSearchKNNMatchesCore: k-NN parity between the engine and core.
func TestSearchKNNMatchesCore(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 8})
	defer e.Close()
	for _, k := range []int{1, 5, 20} {
		for i := 0; i < 4; i++ {
			q := qs.At(i)
			want, err := ix.SearchKNN(q, k, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.SearchKNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: engine returned %d matches, core %d", k, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("k=%d query %d match %d: engine %+v, core %+v", k, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestConcurrentQueriers hammers one engine from many goroutines (run
// under -race in CI) and checks every answer against the single-query
// path.
func TestConcurrentQueriers(t *testing.T) {
	ix, qs := testIndex(t)
	want := make([]core.Match, qs.Count())
	for i := range want {
		m, err := ix.Search(qs.At(i), core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}

	// A deliberately over-subscribed configuration: more concurrent
	// queriers than admission slots, fewer pool workers than queriers.
	e := New(ix, Options{PoolWorkers: 6, QueryWorkers: 3, MaxConcurrent: 4})
	defer e.Close()

	const queriers = 10
	const rounds = 5
	var wg sync.WaitGroup
	errc := make(chan error, queriers)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % qs.Count()
				got, err := e.Search(qs.At(i))
				if err != nil {
					errc <- err
					return
				}
				if got != want[i] {
					t.Errorf("querier %d round %d query %d: got %+v, want %+v", g, r, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSearchBatch: batch answers match element-wise, and a bad query
// surfaces an error without corrupting the others.
func TestSearchBatch(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 8, QueryWorkers: 2})
	defer e.Close()

	queries := make([][]float32, qs.Count())
	for i := range queries {
		queries[i] = qs.At(i)
	}
	got, err := e.SearchBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		want, err := ix.Search(queries[i], core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("batch query %d: got %+v, want %+v", i, got[i], want)
		}
	}

	bad := [][]float32{qs.At(0), make([]float32, testLength/2)}
	if _, err := e.SearchBatch(bad); err == nil {
		t.Fatal("batch with a wrong-length query did not error")
	}
}

// TestClose: queries after Close fail with ErrClosed; Close is idempotent.
func TestClose(t *testing.T) {
	ix, qs := testIndex(t)
	e := New(ix, Options{PoolWorkers: 4})
	if _, err := e.Search(qs.At(0)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.Search(qs.At(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Search after Close: err = %v, want ErrClosed", err)
	}
	if _, err := e.SearchKNN(qs.At(0), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("SearchKNN after Close: err = %v, want ErrClosed", err)
	}
}

// TestOptionDefaults: zero options inherit from the index; QueryWorkers
// is clamped to the pool size.
func TestOptionDefaults(t *testing.T) {
	ix, _ := testIndex(t)
	e := New(ix, Options{})
	defer e.Close()
	o := e.Options()
	if o.PoolWorkers != ix.Opts.SearchWorkers {
		t.Errorf("PoolWorkers = %d, want index default %d", o.PoolWorkers, ix.Opts.SearchWorkers)
	}
	if o.QueryWorkers != o.PoolWorkers {
		t.Errorf("QueryWorkers = %d, want PoolWorkers %d", o.QueryWorkers, o.PoolWorkers)
	}
	if o.Queues != ix.Opts.QueueCount {
		t.Errorf("Queues = %d, want index default %d", o.Queues, ix.Opts.QueueCount)
	}
	if o.MaxConcurrent != 1 {
		t.Errorf("MaxConcurrent = %d, want 1", o.MaxConcurrent)
	}

	e2 := New(ix, Options{PoolWorkers: 12, QueryWorkers: 99, Queues: 3})
	defer e2.Close()
	o2 := e2.Options()
	if o2.QueryWorkers != 12 {
		t.Errorf("QueryWorkers = %d, want clamp to PoolWorkers 12", o2.QueryWorkers)
	}
	if o2.Queues != 3 {
		t.Errorf("Queues = %d, want 3", o2.Queues)
	}
}

// TestShardedEngineMatchesSingle: a sharded generation answered through
// the pool must return exactly the single-index answers — the fan-out
// (shared BSF, per-shard work units, pqueue k-NN merge) is invisible in
// the results.
func TestShardedEngineMatchesSingle(t *testing.T) {
	ix, qs := testIndex(t)
	sx, err := shard.Build(testData(t), 4, core.Options{LeafCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	e := NewSharded(sx, Options{PoolWorkers: 8, QueryWorkers: 2})
	defer e.Close()
	if e.Index() != nil {
		t.Fatal("Index() non-nil for a sharded generation")
	}
	if e.Shards() != sx {
		t.Fatal("Shards() does not return the installed generation")
	}
	for i := 0; i < qs.Count(); i++ {
		q := qs.At(i)
		want, err := ix.Search(q, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: sharded engine %+v, core %+v", i, got, want)
		}
		wantK, err := ix.SearchKNN(q, 5, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotK, err := e.SearchKNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotK) != len(wantK) {
			t.Fatalf("query %d: sharded k-NN returned %d, want %d", i, len(gotK), len(wantK))
		}
		for j := range gotK {
			if gotK[j] != wantK[j] {
				t.Fatalf("query %d match %d: sharded %+v, core %+v", i, j, gotK[j], wantK[j])
			}
		}
	}
}

// TestSwapShardedGenerations: an engine can move between unsharded and
// sharded generations; in both directions queries see the new one.
func TestSwapShardedGenerations(t *testing.T) {
	ix, qs := testIndex(t)
	sx, err := shard.Build(testData(t), 2, core.Options{LeafCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, Options{PoolWorkers: 4})
	defer e.Close()
	if e.Index() != ix {
		t.Fatal("initial single generation not visible")
	}
	if prev := e.SwapSharded(sx); prev == nil || prev.Single() != ix {
		t.Fatalf("SwapSharded returned %v, want the wrapped single index", prev)
	}
	q := qs.At(0)
	want, err := ix.Search(q, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-swap query answered %+v, want %+v", got, want)
	}
	if prev := e.Swap(ix); prev != nil {
		t.Fatalf("Swap from a sharded generation returned single index %v, want nil", prev)
	}
	if e.Index() != ix {
		t.Fatal("swap back to the single generation not visible")
	}
}

// testData exposes the shared test collection for sharded builds.
func testData(t *testing.T) *series.Collection {
	t.Helper()
	data, err := dataset.Generate(dataset.RandomWalk, testSeries, testLength, 7)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
