package engine

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// engMetrics holds the engine's registered instruments. A nil *engMetrics
// (metrics disabled) makes every record method a no-op, mirroring the
// nil-safety of stats.Counters — the query hot path pays one nil check.
type engMetrics struct {
	queueDepth *metrics.Gauge     // queries waiting for admission right now
	admitWait  *metrics.Histogram // time spent waiting for an admission slot
	admitted   *metrics.Counter   // queries granted an admission slot
	degraded   *metrics.Counter   // exact queries rewritten to ε-bounded under overload
	expired    *metrics.Counter   // deadline queries that expired while queued
	cancelled  *metrics.Counter   // queries cancelled while queued

	queryDur [4]*metrics.Histogram // end-to-end latency by mode (index = core.Mode)
	exact    *metrics.Counter      // answers proven exact
	inexact  *metrics.Counter      // answers returned without an exactness proof
	fanout   *metrics.Counter      // queries fanned out across a sharded generation
	panics   *metrics.Counter      // query panics recovered on pool workers

	// Cumulative rollups of the per-query stats.Counters — the fleet view
	// of Figure 17's pruning-efficiency measurements.
	lowerBounds *metrics.Counter
	realDists   *metrics.Counter
	nodes       *metrics.Counter
	leavesIns   *metrics.Counter
	leavesPrune *metrics.Counter
	bsfUpdates  *metrics.Counter
}

// newEngMetrics registers the engine's instruments on r (nil r → nil, all
// recording disabled). Registration is idempotent, so several engines in
// one process (a live index swapping generations, say) share one set.
func newEngMetrics(r *metrics.Registry, opts Options) *engMetrics {
	if r == nil {
		return nil
	}
	m := &engMetrics{
		queueDepth: r.Gauge("messi_admission_queue_depth",
			"Queries currently waiting for an admission slot."),
		admitWait: r.Histogram("messi_admission_wait_seconds",
			"Time queries spend waiting for an admission slot."),
		admitted: r.Counter("messi_queries_admitted_total",
			"Queries granted an admission slot."),
		degraded: r.Counter("messi_queries_degraded_total",
			"Exact queries rewritten to epsilon-bounded under overload (DegradeEpsilon)."),
		expired: r.Counter("messi_queries_deadline_expired_total",
			"Deadline queries whose budget expired while waiting for admission."),
		cancelled: r.Counter("messi_queries_cancelled_total",
			"Queries cancelled while waiting for admission."),
		exact: r.Counter("messi_query_results_total",
			"Answers served, by exactness of the proof.", metrics.L("exact", "true")),
		inexact: r.Counter("messi_query_results_total",
			"Answers served, by exactness of the proof.", metrics.L("exact", "false")),
		fanout: r.Counter("messi_shard_fanout_queries_total",
			"Queries fanned out across a sharded generation with a shared best-so-far."),
		panics: r.Counter("messi_query_panics_total",
			"Query panics recovered on pool workers (each failed only its own query)."),
		lowerBounds: r.Counter("messi_lower_bound_calcs_total",
			"Cumulative summary lower-bound computations across all queries."),
		realDists: r.Counter("messi_real_dist_calcs_total",
			"Cumulative raw-series distance computations across all queries."),
		nodes: r.Counter("messi_nodes_visited_total",
			"Cumulative index tree nodes visited across all queries."),
		leavesIns: r.Counter("messi_leaves_inserted_total",
			"Cumulative leaves pushed into priority queues across all queries."),
		leavesPrune: r.Counter("messi_leaves_pruned_total",
			"Cumulative leaves discarded on pop with a stale bound across all queries."),
		bsfUpdates: r.Counter("messi_bsf_updates_total",
			"Cumulative successful best-so-far improvements across all queries."),
	}
	for mode := core.ModeExact; mode <= core.ModeDeadline; mode++ {
		m.queryDur[mode] = r.Histogram("messi_query_duration_seconds",
			"End-to-end query latency through the engine, by quality mode.",
			metrics.L("mode", mode.String()))
	}
	r.Gauge("messi_engine_pool_workers",
		"Long-lived worker goroutines shared by all queries.").Set(float64(opts.PoolWorkers))
	r.Gauge("messi_engine_max_concurrent",
		"Admission gate capacity: queries allowed to execute concurrently.").Set(float64(opts.MaxConcurrent))
	r.Gauge("messi_engine_degrade_epsilon",
		"Overload policy epsilon (0 = never degrade).").Set(opts.DegradeEpsilon)
	return m
}

// waitStart marks a query entering the admission queue and returns the
// wait-measurement start time (zero when metrics are off).
func (m *engMetrics) waitStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.queueDepth.Inc()
	return time.Now()
}

// waitEnd marks a query leaving the admission queue, whatever the outcome.
func (m *engMetrics) waitEnd(start time.Time) {
	if m == nil {
		return
	}
	m.queueDepth.Dec()
	m.admitWait.Observe(time.Since(start))
}

// recordOutcome rolls one answered query into the cumulative view.
func (m *engMetrics) recordOutcome(mode core.Mode, dur time.Duration, exact bool) {
	if m == nil {
		return
	}
	if mode >= 0 && int(mode) < len(m.queryDur) {
		m.queryDur[mode].Observe(dur)
	}
	if exact {
		m.exact.Inc()
	} else {
		m.inexact.Inc()
	}
}

// recordCounters rolls one query's operation counts into the cumulative
// pruning counters.
func (m *engMetrics) recordCounters(s stats.Snapshot) {
	if m == nil {
		return
	}
	m.lowerBounds.Add(s.LowerBoundCalcs)
	m.realDists.Add(s.RealDistCalcs)
	m.nodes.Add(s.NodesVisited)
	m.leavesIns.Add(s.LeavesInserted)
	m.leavesPrune.Add(s.LeavesPruned)
	m.bsfUpdates.Add(s.BSFUpdates)
}

// recordPanic counts one recovered query panic.
func (m *engMetrics) recordPanic() {
	if m == nil {
		return
	}
	m.panics.Inc()
}

// recordFanout counts one sharded fan-out query.
func (m *engMetrics) recordFanout() {
	if m == nil {
		return
	}
	m.fanout.Inc()
}
