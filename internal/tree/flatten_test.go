package tree

import (
	"math/rand"
	"testing"
)

// buildRandomTree inserts n realistic words into a fresh tree.
func buildRandomTree(t *testing.T, n, leafCap int) *Tree {
	t.Helper()
	s := newSchema(t)
	tr, err := New(s, leafCap)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		word := wordFromRandomSeries(rng, s)
		tr.Insert(tr.EnsureRoot(s.RootIndex(word)), word, int32(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFlattenRoundTrip(t *testing.T) {
	tr := buildRandomTree(t, 3000, 16)
	f := tr.Flatten()
	if got := f.Entries(); got != 3000 {
		t.Fatalf("Flatten entries = %d, want 3000", got)
	}

	back, err := Unflatten(tr.Schema, tr.LeafCapacity, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatalf("unflattened tree violates invariants: %v", err)
	}
	if got, want := back.Stats(), tr.Stats(); got != want {
		t.Fatalf("unflattened stats %+v, want %+v", got, want)
	}

	// Same leaves reachable by descent: every original entry's word must
	// land in a leaf containing its position.
	w := tr.Schema.Segments
	tr.ForEachLeaf(func(n *Node) {
		for i := 0; i < n.LeafLen(); i++ {
			word := n.Word(i, w, nil)
			slot := tr.Schema.RootIndex(word)
			leaf := back.DescendToLeaf(back.Root(slot), word)
			found := false
			for _, p := range leaf.Positions {
				if p == n.Positions[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("position %d not found under its word after round trip", n.Positions[i])
			}
		}
	})
}

func TestFlattenEmptyTree(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 16)
	f := tr.Flatten()
	if len(f.Nodes) != 0 || len(f.RootSlots) != 0 {
		t.Fatalf("empty tree flattened to %d nodes, %d roots", len(f.Nodes), len(f.RootSlots))
	}
	back, err := Unflatten(s, 16, f)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Stats(); got.Leaves != 0 || got.Series != 0 {
		t.Fatalf("unflattened empty tree has stats %+v", got)
	}
}

// TestUnflattenRejectsCorruption: each structurally invalid mutation of a
// valid Flat must be rejected, never panic or build a broken tree.
func TestUnflattenRejectsCorruption(t *testing.T) {
	tr := buildRandomTree(t, 1200, 8)
	s := tr.Schema

	// Find an internal node to corrupt child links on.
	internal := -1
	fresh := func() *Flat { return tr.Flatten() }
	for i, n := range fresh().Nodes {
		if !n.IsLeaf() {
			internal = i
			break
		}
	}
	if internal < 0 {
		t.Fatal("test tree has no internal node; lower the leaf capacity")
	}

	cases := []struct {
		name   string
		mutate func(f *Flat)
	}{
		{"root slot out of range", func(f *Flat) { f.RootSlots[0] = int32(s.RootFanout()) }},
		{"negative root slot", func(f *Flat) { f.RootSlots[0] = -1 }},
		{"duplicate root slot", func(f *Flat) {
			if len(f.RootSlots) < 2 {
				t.Skip("needs two roots")
			}
			f.RootSlots[1] = f.RootSlots[0]
		}},
		{"root node index out of range", func(f *Flat) { f.RootNodes[0] = int32(len(f.Nodes)) }},
		{"child before parent", func(f *Flat) { f.Nodes[internal].Left = int32(internal) }},
		{"child out of range", func(f *Flat) { f.Nodes[internal].Right = int32(len(f.Nodes)) }},
		{"split segment out of range", func(f *Flat) { f.Nodes[internal].SplitSegment = uint8(s.Segments) }},
		{"wrong symbol width", func(f *Flat) { f.Nodes[0].Symbols = f.Nodes[0].Symbols[:4] }},
		{"leaf words/positions mismatch", func(f *Flat) {
			for i := range f.Nodes {
				if f.Nodes[i].IsLeaf() && len(f.Nodes[i].Positions) > 0 {
					f.Nodes[i].Words = f.Nodes[i].Words[:len(f.Nodes[i].Words)-1]
					return
				}
			}
		}},
		{"internal node with entries", func(f *Flat) {
			f.Nodes[internal].Positions = []int32{1}
			f.Nodes[internal].Words = make([]uint8, s.Segments)
		}},
		{"roots/nodes length mismatch", func(f *Flat) { f.RootNodes = f.RootNodes[:len(f.RootNodes)-1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := fresh()
			tc.mutate(f)
			if _, err := Unflatten(s, tr.LeafCapacity, f); err == nil {
				t.Fatal("corrupt flat tree accepted")
			}
		})
	}

	if _, err := Unflatten(s, tr.LeafCapacity, nil); err == nil {
		t.Fatal("nil flat tree accepted")
	}
}

// TestUnflattenOverfullLeaf: a leaf over capacity is only legal when
// marked unsplittable.
func TestUnflattenOverfullLeaf(t *testing.T) {
	s := newSchema(t)
	w := s.Segments
	entries := 5
	node := FlatNode{
		Symbols:   make([]uint8, w),
		Bits:      make([]uint8, w),
		Left:      -1,
		Right:     -1,
		Words:     make([]uint8, entries*w),
		Positions: []int32{0, 1, 2, 3, 4},
	}
	for i := 0; i < w; i++ {
		node.Bits[i] = 1
	}
	f := &Flat{RootSlots: []int32{0}, RootNodes: []int32{0}, Nodes: []FlatNode{node}}
	if _, err := Unflatten(s, entries-1, f); err == nil {
		t.Fatal("overfull splittable leaf accepted")
	}
	f.Nodes[0].Unsplittable = true
	if _, err := Unflatten(s, entries-1, f); err != nil {
		t.Fatalf("overfull unsplittable leaf rejected: %v", err)
	}
}
