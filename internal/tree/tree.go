// Package tree implements the iSAX index tree shared by MESSI and the
// ParIS baselines (Figure 1(d) of the paper): a root with up to 2^w
// children (one per combination of the segments' top bits), binary internal
// nodes, and leaves holding <iSAX word, series position> pairs.
//
// A leaf that exceeds its capacity splits: one segment's cardinality is
// promoted by one bit — the segment chosen is the one producing the most
// balanced redistribution (the iSAX2.0 policy cited by the paper) — and the
// entries are redistributed to the two refined children.
//
// The tree itself is not internally synchronized. MESSI's construction
// guarantees each root subtree is owned by exactly one worker at a time, so
// no locks are needed; the query phase only reads. Callers that need
// different sharing (none in this repository) must synchronize externally.
package tree

import (
	"fmt"

	"repro/internal/isax"
)

// Node is a tree node. Exactly one of the following holds:
//   - leaf: Left == Right == nil; Words/Positions hold the entries;
//   - internal: Left and Right are non-nil and the entry storage is empty.
//
// Leaf words are stored segment-major (structure-of-arrays): Words holds
// one column per segment, each Stride bytes long, so column seg occupies
// Words[seg*Stride : seg*Stride+LeafLen()]. Query-time leaf scans stream
// whole columns against per-query distance-table rows in tight,
// compiler-vectorizable loops instead of gathering one w-byte word per
// entry — the cache-conscious summary layout of the paper's SIMD kernels
// (and of the journal version's in-memory follow-up).
type Node struct {
	Symbols []uint8 // per-segment symbol at this node's cardinality
	Bits    []uint8 // per-segment cardinality bits (0 < bits <= CardBits)

	SplitSegment int // segment refined to create the children (internal only)
	Left, Right  *Node

	Words     []uint8 // leaf entries: segment-major columns, see type comment
	Stride    int     // allocated column length (≥ LeafLen; 0 for empty leaves)
	Positions []int32 // leaf entries: series positions
	Size      int     // series under this node (leaf: len(Positions))

	unsplittable bool // every segment already at max cardinality
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// LeafLen reports the number of entries stored in a leaf.
func (n *Node) LeafLen() int { return len(n.Positions) }

// Col returns segment seg's symbol column (one byte per leaf entry, a
// view). The hot-path operand of segment-major leaf scans.
func (n *Node) Col(seg int) []uint8 {
	return n.Words[seg*n.Stride : seg*n.Stride+len(n.Positions)]
}

// Word gathers leaf entry i's full-precision word into dst (allocated
// when too small) and returns it. Words live segment-major, so this is a
// strided gather — fine for spot lookups and invariant checks; hot loops
// stream columns via Col instead.
func (n *Node) Word(i, w int, dst []uint8) []uint8 {
	if cap(dst) < w {
		dst = make([]uint8, w)
	}
	dst = dst[:w]
	for s := 0; s < w; s++ {
		dst[s] = n.Words[s*n.Stride+i]
	}
	return dst
}

// PackedWords returns the leaf's words as w contiguous columns of exactly
// LeafLen bytes each (stride == entry count) — the serialization form.
// It shares storage when the node is already packed, copying otherwise.
func (n *Node) PackedWords(w int) []uint8 {
	count := len(n.Positions)
	if n.Stride == count {
		return n.Words[:w*count]
	}
	out := make([]uint8, w*count)
	for s := 0; s < w; s++ {
		copy(out[s*count:], n.Words[s*n.Stride:s*n.Stride+count])
	}
	return out
}

// appendEntry adds one <word, position> pair to a leaf's columns,
// growing the column stride when full.
func (n *Node) appendEntry(word []uint8, pos int32, w int) {
	count := len(n.Positions)
	if count == n.Stride {
		n.grow(w)
	}
	for s := 0; s < w; s++ {
		n.Words[s*n.Stride+count] = word[s]
	}
	n.Positions = append(n.Positions, pos)
}

// grow reallocates the leaf's columns at double the stride (min 16) and
// recopies the occupied prefixes.
func (n *Node) grow(w int) {
	stride := n.Stride * 2
	if stride < 16 {
		stride = 16
	}
	words := make([]uint8, w*stride)
	count := len(n.Positions)
	for s := 0; s < w; s++ {
		copy(words[s*stride:], n.Words[s*n.Stride:s*n.Stride+count])
	}
	n.Words, n.Stride = words, stride
}

// Tree is an iSAX index tree over a fixed schema.
type Tree struct {
	Schema       *isax.Schema
	LeafCapacity int
	roots        []*Node // one slot per root subtree; nil when empty
}

// New creates an empty tree. leafCapacity must be positive.
func New(schema *isax.Schema, leafCapacity int) (*Tree, error) {
	if schema == nil {
		return nil, fmt.Errorf("tree: nil schema")
	}
	if leafCapacity <= 0 {
		return nil, fmt.Errorf("tree: non-positive leaf capacity %d", leafCapacity)
	}
	return &Tree{
		Schema:       schema,
		LeafCapacity: leafCapacity,
		roots:        make([]*Node, schema.RootFanout()),
	}, nil
}

// Root returns the root child at slot l (nil when empty).
func (t *Tree) Root(l int) *Node { return t.roots[l] }

// RootCount returns the number of root slots (the fanout).
func (t *Tree) RootCount() int { return len(t.roots) }

// EnsureRoot returns the root child for slot l, creating it (as an empty
// leaf whose per-segment summaries are the top bit of each symbol) on first
// use. Callers must guarantee exclusive access to slot l while building.
func (t *Tree) EnsureRoot(l int) *Node {
	if n := t.roots[l]; n != nil {
		return n
	}
	w := t.Schema.Segments
	n := &Node{
		Symbols: make([]uint8, w),
		Bits:    make([]uint8, w),
	}
	for i := 0; i < w; i++ {
		n.Bits[i] = 1
		n.Symbols[i] = uint8(l>>(w-1-i)) & 1
	}
	t.roots[l] = n
	return n
}

// Insert adds a <word, position> entry under the given root child,
// splitting full leaves on the way (Algorithm 4, lines 7-11). The word
// must belong to that root subtree (callers route via Schema.RootIndex).
func (t *Tree) Insert(root *Node, word []uint8, pos int32) {
	w := t.Schema.Segments
	n := root
	for {
		n.Size++
		if !n.IsLeaf() {
			n = t.childFor(n, word)
			continue
		}
		if len(n.Positions) < t.LeafCapacity || n.unsplittable {
			n.appendEntry(word, pos, w)
			return
		}
		// Full leaf: split it, then continue the descent into the
		// appropriate new child ("while targetLeaf is full").
		n.Size-- // split bookkeeping recounts the node itself
		t.split(n)
		if n.unsplittable {
			// Split was impossible; store here after all.
			n.Size++
			n.appendEntry(word, pos, w)
			return
		}
		n.Size++
		n = t.childFor(n, word)
	}
}

// childFor routes a word below an internal node: the next bit of the split
// segment's symbol selects the left (0) or right (1) child.
func (t *Tree) childFor(n *Node, word []uint8) *Node {
	seg := n.SplitSegment
	childBits := n.Bits[seg] + 1
	bit := (word[seg] >> (uint8(t.Schema.CardBits) - childBits)) & 1
	if bit == 0 {
		return n.Left
	}
	return n.Right
}

// split promotes one segment of a full leaf by one bit, chooses the most
// balanced segment, creates the two refined children and redistributes the
// entries. If every segment is already at full cardinality the node is
// marked unsplittable and remains a leaf.
func (t *Tree) split(n *Node) {
	w := t.Schema.Segments
	cardBits := uint8(t.Schema.CardBits)
	count := len(n.Positions)

	bestSeg := -1
	bestImbalance := count + 1
	for seg := 0; seg < w; seg++ {
		if n.Bits[seg] >= cardBits {
			continue
		}
		shift := cardBits - (n.Bits[seg] + 1)
		ones := 0
		for _, sym := range n.Col(seg) {
			ones += int((sym >> shift) & 1)
		}
		imbalance := count - 2*ones
		if imbalance < 0 {
			imbalance = -imbalance
		}
		if imbalance < bestImbalance {
			bestImbalance = imbalance
			bestSeg = seg
		}
	}
	if bestSeg < 0 {
		n.unsplittable = true
		return
	}

	seg := bestSeg
	childBits := n.Bits[seg] + 1
	shift := cardBits - childBits
	splitCol := n.Col(seg)
	ones := 0
	for _, sym := range splitCol {
		ones += int((sym >> shift) & 1)
	}
	makeChild := func(bit uint8, size int) *Node {
		c := &Node{
			Symbols:   make([]uint8, w),
			Bits:      make([]uint8, w),
			Positions: make([]int32, 0, size),
			Size:      size,
		}
		copy(c.Symbols, n.Symbols)
		copy(c.Bits, n.Bits)
		c.Bits[seg] = childBits
		c.Symbols[seg] = n.Symbols[seg]<<1 | bit
		if size > 0 {
			c.Words = make([]uint8, w*size)
			c.Stride = size
		}
		return c
	}
	left, right := makeChild(0, count-ones), makeChild(1, ones)
	// Redistribute column by column: the split column routes each entry,
	// so every destination column is filled with one sequential pass over
	// the matching source column.
	for s := 0; s < w; s++ {
		src := n.Col(s)
		li, ri := 0, 0
		for i, sym := range src {
			if (splitCol[i]>>shift)&1 == 1 {
				right.Words[s*right.Stride+ri] = sym
				ri++
			} else {
				left.Words[s*left.Stride+li] = sym
				li++
			}
		}
	}
	for i, pos := range n.Positions {
		if (splitCol[i]>>shift)&1 == 1 {
			right.Positions = append(right.Positions, pos)
		} else {
			left.Positions = append(left.Positions, pos)
		}
	}
	n.SplitSegment = seg
	n.Left, n.Right = left, right
	n.Words, n.Positions, n.Stride = nil, nil, 0
}

// DescendToLeaf follows a word's bits from a root child down to the leaf
// that would store it — the approximate-search descent (Figure 4(a)).
func (t *Tree) DescendToLeaf(root *Node, word []uint8) *Node {
	n := root
	for !n.IsLeaf() {
		n = t.childFor(n, word)
	}
	return n
}

// ForEachLeaf visits every leaf under every root child.
func (t *Tree) ForEachLeaf(fn func(n *Node)) {
	for _, r := range t.roots {
		if r != nil {
			forEachLeaf(r, fn)
		}
	}
}

func forEachLeaf(n *Node, fn func(*Node)) {
	if n.IsLeaf() {
		fn(n)
		return
	}
	forEachLeaf(n.Left, fn)
	forEachLeaf(n.Right, fn)
}

// Stats summarizes tree shape for diagnostics and experiments.
type Stats struct {
	Series        int // total entries stored
	RootChildren  int // non-empty root slots
	InternalNodes int
	Leaves        int
	MaxDepth      int // root child = depth 1
	MaxLeafFill   int // largest leaf entry count
}

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() Stats {
	var s Stats
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if n.IsLeaf() {
			s.Leaves++
			s.Series += n.LeafLen()
			if n.LeafLen() > s.MaxLeafFill {
				s.MaxLeafFill = n.LeafLen()
			}
			return
		}
		s.InternalNodes++
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	for _, r := range t.roots {
		if r != nil {
			s.RootChildren++
			walk(r, 1)
		}
	}
	return s
}

// CheckInvariants validates the structural invariants of the tree:
// prefix consistency of every leaf entry, child summary derivation,
// size bookkeeping, and leaf capacity (unless unsplittable). It is meant
// for tests and costs a full walk.
func (t *Tree) CheckInvariants() error {
	w := t.Schema.Segments
	var check func(n *Node, rootSlot int) (int, error)
	check = func(n *Node, rootSlot int) (int, error) {
		for seg := 0; seg < w; seg++ {
			if n.Bits[seg] == 0 || int(n.Bits[seg]) > t.Schema.CardBits {
				return 0, fmt.Errorf("tree: node under root %d has bad bits[%d]=%d", rootSlot, seg, n.Bits[seg])
			}
			if int(n.Symbols[seg]) >= 1<<n.Bits[seg] {
				return 0, fmt.Errorf("tree: node under root %d has symbol[%d]=%d out of range for %d bits",
					rootSlot, seg, n.Symbols[seg], n.Bits[seg])
			}
		}
		if n.IsLeaf() {
			if n.Right != nil {
				return 0, fmt.Errorf("tree: half-internal node under root %d", rootSlot)
			}
			if len(n.Words) != w*n.Stride || len(n.Positions) > n.Stride {
				return 0, fmt.Errorf("tree: leaf storage mismatch under root %d", rootSlot)
			}
			if len(n.Positions) > t.LeafCapacity && !n.unsplittable {
				return 0, fmt.Errorf("tree: splittable leaf holds %d > capacity %d", len(n.Positions), t.LeafCapacity)
			}
			wordBuf := make([]uint8, w)
			for i := 0; i < n.LeafLen(); i++ {
				if !t.Schema.MatchesPrefix(n.Word(i, w, wordBuf), n.Symbols, n.Bits) {
					return 0, fmt.Errorf("tree: leaf entry %d (pos %d) does not match node prefix under root %d",
						i, n.Positions[i], rootSlot)
				}
			}
			if n.Size != n.LeafLen() {
				return 0, fmt.Errorf("tree: leaf size %d != entries %d under root %d", n.Size, n.LeafLen(), rootSlot)
			}
			return n.LeafLen(), nil
		}
		if n.Left == nil || n.Right == nil {
			return 0, fmt.Errorf("tree: internal node missing a child under root %d", rootSlot)
		}
		seg := n.SplitSegment
		for _, c := range []*Node{n.Left, n.Right} {
			if c.Bits[seg] != n.Bits[seg]+1 {
				return 0, fmt.Errorf("tree: child bits not parent+1 at segment %d under root %d", seg, rootSlot)
			}
			if c.Symbols[seg]>>1 != n.Symbols[seg] {
				return 0, fmt.Errorf("tree: child symbol prefix mismatch at segment %d under root %d", seg, rootSlot)
			}
		}
		if n.Left.Symbols[seg]&1 != 0 || n.Right.Symbols[seg]&1 != 1 {
			return 0, fmt.Errorf("tree: children not 0/1 ordered at segment %d under root %d", seg, rootSlot)
		}
		ln, err := check(n.Left, rootSlot)
		if err != nil {
			return 0, err
		}
		rn, err := check(n.Right, rootSlot)
		if err != nil {
			return 0, err
		}
		if n.Size != ln+rn {
			return 0, fmt.Errorf("tree: internal size %d != children sum %d under root %d", n.Size, ln+rn, rootSlot)
		}
		return ln + rn, nil
	}
	for l, r := range t.roots {
		if r == nil {
			continue
		}
		for seg := 0; seg < w; seg++ {
			if r.Bits[seg] != 1 {
				return fmt.Errorf("tree: root child %d has bits[%d]=%d, want 1", l, seg, r.Bits[seg])
			}
			if r.Symbols[seg] != uint8(l>>(w-1-seg))&1 {
				return fmt.Errorf("tree: root child %d symbol mismatch at segment %d", l, seg)
			}
		}
		if _, err := check(r, l); err != nil {
			return err
		}
	}
	return nil
}
