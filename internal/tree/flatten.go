package tree

import (
	"fmt"

	"repro/internal/isax"
)

// Flat is a pointer-free representation of a Tree suitable for
// serialization: every node of every non-empty root subtree appears in
// Nodes, children strictly after their parent (preorder), with subtree
// roots listed in RootSlots/RootNodes. Leaf payloads reference the
// original node storage (no copies), so a Flat must not outlive
// modifications to the tree it came from.
type Flat struct {
	RootSlots []int32 // slot number of each non-empty root subtree, ascending
	RootNodes []int32 // index into Nodes of each root subtree's top node
	Nodes     []FlatNode
}

// FlatNode is one node of a flattened tree. Left/Right are indices into
// Flat.Nodes for internal nodes and -1 for leaves.
type FlatNode struct {
	Symbols      []uint8 // per-segment symbol (len = segments)
	Bits         []uint8 // per-segment cardinality bits (len = segments)
	SplitSegment uint8   // internal nodes only
	Left, Right  int32   // -1 for leaves
	Unsplittable bool
	// Words holds leaf entries segment-major and packed: segments
	// contiguous columns of exactly len(Positions) bytes each — the same
	// layout Node uses at query time (with stride == entry count), so
	// loading a snapshot aliases leaf payloads without conversion.
	Words     []uint8
	Positions []int32 // leaf entries: series positions
}

// IsLeaf reports whether the flat node is a leaf.
func (n *FlatNode) IsLeaf() bool { return n.Left < 0 }

// Flatten converts the tree into its Flat form. The result shares leaf
// entry storage with the tree where possible (positions always; words
// whenever a leaf's columns are already packed, i.e. stride == count).
func (t *Tree) Flatten() *Flat {
	w := t.Schema.Segments
	f := &Flat{}
	var walk func(n *Node) int32
	walk = func(n *Node) int32 {
		idx := int32(len(f.Nodes))
		var words []uint8
		if n.IsLeaf() {
			words = n.PackedWords(w)
		}
		f.Nodes = append(f.Nodes, FlatNode{
			Symbols:      n.Symbols,
			Bits:         n.Bits,
			Left:         -1,
			Right:        -1,
			Unsplittable: n.unsplittable,
			Words:        words,
			Positions:    n.Positions,
		})
		if !n.IsLeaf() {
			f.Nodes[idx].SplitSegment = uint8(n.SplitSegment)
			// The children are appended after this call returns, so their
			// indices are only known then; patch the parent afterwards.
			left := walk(n.Left)
			right := walk(n.Right)
			f.Nodes[idx].Left = left
			f.Nodes[idx].Right = right
		}
		return idx
	}
	for slot, r := range t.roots {
		if r == nil {
			continue
		}
		f.RootSlots = append(f.RootSlots, int32(slot))
		f.RootNodes = append(f.RootNodes, walk(r))
	}
	return f
}

// Entries reports the total number of leaf entries stored in the flat
// tree (the number of indexed series).
func (f *Flat) Entries() int {
	total := 0
	for i := range f.Nodes {
		total += len(f.Nodes[i].Positions)
	}
	return total
}

// Unflatten reconstructs a Tree from its Flat form, validating the
// structural invariants that serialization could have violated: index
// bounds, preorder child ordering, single-use of every node, per-node
// slice shapes, and leaf capacity (unless unsplittable). Node sizes are
// recomputed. Leaf payloads are shared with f, not copied.
func Unflatten(schema *isax.Schema, leafCapacity int, f *Flat) (*Tree, error) {
	t, err := New(schema, leafCapacity)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("tree: nil flat tree")
	}
	if len(f.RootSlots) != len(f.RootNodes) {
		return nil, fmt.Errorf("tree: flat root slots/nodes length mismatch (%d vs %d)", len(f.RootSlots), len(f.RootNodes))
	}
	w := schema.Segments
	n := int32(len(f.Nodes))
	refs := make([]uint8, n) // times each node is referenced as root or child

	var build func(idx int32) (*Node, int, error)
	build = func(idx int32) (*Node, int, error) {
		fn := &f.Nodes[idx]
		if len(fn.Symbols) != w || len(fn.Bits) != w {
			return nil, 0, fmt.Errorf("tree: flat node %d has %d/%d summary segments, want %d", idx, len(fn.Symbols), len(fn.Bits), w)
		}
		node := &Node{
			Symbols:      fn.Symbols,
			Bits:         fn.Bits,
			unsplittable: fn.Unsplittable,
		}
		if fn.IsLeaf() {
			if fn.Right >= 0 {
				return nil, 0, fmt.Errorf("tree: flat node %d is half-internal", idx)
			}
			if len(fn.Words) != len(fn.Positions)*w {
				return nil, 0, fmt.Errorf("tree: flat leaf %d has %d word bytes for %d entries", idx, len(fn.Words), len(fn.Positions))
			}
			if len(fn.Positions) > leafCapacity && !fn.Unsplittable {
				return nil, 0, fmt.Errorf("tree: flat leaf %d holds %d entries over capacity %d without being unsplittable", idx, len(fn.Positions), leafCapacity)
			}
			node.Words = fn.Words
			node.Stride = len(fn.Positions) // packed columns, see FlatNode.Words
			node.Positions = fn.Positions
			node.Size = len(fn.Positions)
			return node, node.Size, nil
		}
		if len(fn.Words) != 0 || len(fn.Positions) != 0 {
			return nil, 0, fmt.Errorf("tree: flat internal node %d carries leaf entries", idx)
		}
		if int(fn.SplitSegment) >= w {
			return nil, 0, fmt.Errorf("tree: flat node %d split segment %d out of range", idx, fn.SplitSegment)
		}
		node.SplitSegment = int(fn.SplitSegment)
		size := 0
		for _, child := range [2]int32{fn.Left, fn.Right} {
			if child <= idx || child >= n {
				return nil, 0, fmt.Errorf("tree: flat node %d child %d out of preorder range (%d,%d)", idx, child, idx, n)
			}
			if refs[child]++; refs[child] > 1 {
				return nil, 0, fmt.Errorf("tree: flat node %d referenced more than once", child)
			}
			c, cs, err := build(child)
			if err != nil {
				return nil, 0, err
			}
			if node.Left == nil {
				node.Left = c
			} else {
				node.Right = c
			}
			size += cs
		}
		node.Size = size
		return node, size, nil
	}

	for i, slot := range f.RootSlots {
		if slot < 0 || int(slot) >= t.RootCount() {
			return nil, fmt.Errorf("tree: flat root slot %d out of range [0,%d)", slot, t.RootCount())
		}
		if t.roots[slot] != nil {
			return nil, fmt.Errorf("tree: flat root slot %d appears twice", slot)
		}
		idx := f.RootNodes[i]
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("tree: flat root node %d out of range [0,%d)", idx, n)
		}
		if refs[idx]++; refs[idx] > 1 {
			return nil, fmt.Errorf("tree: flat node %d referenced more than once", idx)
		}
		root, _, err := build(idx)
		if err != nil {
			return nil, err
		}
		t.roots[slot] = root
	}
	for i := int32(0); i < n; i++ {
		if refs[i] == 0 {
			return nil, fmt.Errorf("tree: flat node %d unreachable", i)
		}
	}
	return t, nil
}
