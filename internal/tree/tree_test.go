package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isax"
	"repro/internal/paa"
)

func newSchema(t testing.TB) *isax.Schema {
	t.Helper()
	s, err := isax.NewSchema(64, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomWord(rng *rand.Rand, w int) []uint8 {
	word := make([]uint8, w)
	for i := range word {
		word[i] = uint8(rng.Intn(256))
	}
	return word
}

// wordFromRandomSeries produces realistic (normal-ish) words so that root
// slots cluster the way real data does.
func wordFromRandomSeries(rng *rand.Rand, s *isax.Schema) []uint8 {
	raw := make([]float32, s.SeriesLen)
	v := 0.0
	for i := range raw {
		v += rng.NormFloat64()
		raw[i] = float32(v)
	}
	p := paa.Transform(raw, s.Segments, nil)
	return s.WordFromPAA(p, nil)
}

func TestNewValidation(t *testing.T) {
	s := newSchema(t)
	if _, err := New(nil, 10); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New(s, 0); err == nil {
		t.Error("zero leaf capacity accepted")
	}
	tr, err := New(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RootCount() != 1<<16 {
		t.Errorf("RootCount = %d, want %d", tr.RootCount(), 1<<16)
	}
}

func TestEnsureRootSummaries(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 10)
	l := 0b1010110010101100
	n := tr.EnsureRoot(l)
	if tr.Root(l) != n {
		t.Error("EnsureRoot did not store the node")
	}
	if again := tr.EnsureRoot(l); again != n {
		t.Error("EnsureRoot created a duplicate")
	}
	for seg := 0; seg < 16; seg++ {
		wantBit := uint8(l>>(15-seg)) & 1
		if n.Symbols[seg] != wantBit || n.Bits[seg] != 1 {
			t.Errorf("segment %d: symbol=%d bits=%d, want symbol=%d bits=1",
				seg, n.Symbols[seg], n.Bits[seg], wantBit)
		}
	}
}

func TestInsertSingle(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 10)
	rng := rand.New(rand.NewSource(1))
	word := wordFromRandomSeries(rng, s)
	l := s.RootIndex(word)
	root := tr.EnsureRoot(l)
	tr.Insert(root, word, 42)
	if root.LeafLen() != 1 || root.Positions[0] != 42 {
		t.Fatalf("leaf contents wrong: %v", root.Positions)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertManyAndInvariants(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 8)
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	for i := 0; i < n; i++ {
		word := wordFromRandomSeries(rng, s)
		root := tr.EnsureRoot(s.RootIndex(word))
		tr.Insert(root, word, int32(i))
	}
	st := tr.Stats()
	if st.Series != n {
		t.Fatalf("Series = %d, want %d (entry conservation)", st.Series, n)
	}
	if st.Leaves == 0 || st.RootChildren == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitHappens(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 4)
	rng := rand.New(rand.NewSource(3))
	// Force everything into the same root slot by fixing top bits.
	var words [][]uint8
	for len(words) < 40 {
		w := randomWord(rng, 16)
		for i := range w {
			w[i] |= 0x80 // top bit 1 everywhere → same root slot
		}
		words = append(words, w)
	}
	l := s.RootIndex(words[0])
	root := tr.EnsureRoot(l)
	for i, w := range words {
		tr.Insert(root, w, int32(i))
	}
	if root.IsLeaf() {
		t.Fatal("root child should have split")
	}
	st := tr.Stats()
	if st.Series != len(words) {
		t.Fatalf("Series = %d, want %d", st.Series, len(words))
	}
	if st.MaxLeafFill > 4 {
		t.Fatalf("a leaf exceeds capacity: %d", st.MaxLeafFill)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsplittableLeafGrows(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 2)
	// Identical words can never be separated: the leaf must grow beyond
	// capacity instead of splitting forever.
	word := make([]uint8, 16)
	for i := range word {
		word[i] = 0xAB
	}
	root := tr.EnsureRoot(s.RootIndex(word))
	for i := 0; i < 20; i++ {
		tr.Insert(root, word, int32(i))
	}
	st := tr.Stats()
	if st.Series != 20 {
		t.Fatalf("Series = %d, want 20", st.Series)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All entries end up in one deep leaf of size 20.
	if st.MaxLeafFill != 20 {
		t.Fatalf("MaxLeafFill = %d, want 20", st.MaxLeafFill)
	}
}

func TestNearIdenticalWordsSplitToBottom(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 2)
	// Two word values differing only in the last bit of segment 7:
	// the split chain must refine segment 7 all the way down.
	a := make([]uint8, 16)
	b := make([]uint8, 16)
	for i := range a {
		a[i], b[i] = 0x55, 0x55
	}
	b[7] = 0x54
	root := tr.EnsureRoot(s.RootIndex(a))
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			tr.Insert(root, a, int32(i))
		} else {
			tr.Insert(root, b, int32(i))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Series != 6 {
		t.Fatalf("Series = %d", st.Series)
	}
	if st.MaxLeafFill != 3 {
		t.Fatalf("MaxLeafFill = %d, want 3 (a/b separated)", st.MaxLeafFill)
	}
}

func TestBalancedSplitPolicy(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 4)
	// Words whose segment 0 next-bit is perfectly balanced (2×0, 2×1) and
	// whose other segments are constant: the split must choose segment 0.
	words := [][]uint8{
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		{0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		{0xC0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		{0xC1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
		{0xC2, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	}
	root := tr.EnsureRoot(s.RootIndex(words[0]))
	for i, w := range words {
		tr.Insert(root, w, int32(i))
	}
	if root.IsLeaf() {
		t.Fatal("expected a split")
	}
	if root.SplitSegment != 0 {
		t.Fatalf("SplitSegment = %d, want 0 (the only informative segment)", root.SplitSegment)
	}
	// 0x80,0x81 (second bit 0) left; 0xC0,0xC1,0xC2 (second bit 1) right.
	if root.Left.Size != 2 || root.Right.Size != 3 {
		t.Fatalf("split sizes = %d/%d, want 2/3", root.Left.Size, root.Right.Size)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLeafCoversEverything(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 16)
	rng := rand.New(rand.NewSource(4))
	const n = 2000
	for i := 0; i < n; i++ {
		word := wordFromRandomSeries(rng, s)
		tr.Insert(tr.EnsureRoot(s.RootIndex(word)), word, int32(i))
	}
	seen := make([]bool, n)
	tr.ForEachLeaf(func(node *Node) {
		if !node.IsLeaf() {
			t.Error("ForEachLeaf visited an internal node")
		}
		for _, pos := range node.Positions {
			if seen[pos] {
				t.Errorf("position %d in two leaves", pos)
			}
			seen[pos] = true
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("position %d missing from leaves", i)
		}
	}
}

func TestStatsEmptyTree(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 16)
	st := tr.Stats()
	if st != (Stats{}) {
		t.Errorf("empty tree stats = %+v", st)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree should satisfy invariants: %v", err)
	}
}

func TestInvariantCatchesCorruption(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		word := wordFromRandomSeries(rng, s)
		tr.Insert(tr.EnsureRoot(s.RootIndex(word)), word, int32(i))
	}
	// Corrupt one leaf entry's word so it no longer matches its prefix.
	var leaf *Node
	tr.ForEachLeaf(func(n *Node) {
		if leaf == nil && n.LeafLen() > 0 {
			leaf = n
		}
	})
	if leaf == nil {
		t.Fatal("no leaf found")
	}
	leaf.Words[0] ^= 0x80 // flip the top bit → different root subtree
	if err := tr.CheckInvariants(); err == nil {
		t.Error("corrupted word not detected")
	}
	leaf.Words[0] ^= 0x80
	leaf.Size++
	if err := tr.CheckInvariants(); err == nil {
		t.Error("size corruption not detected")
	}
}

func BenchmarkInsert(b *testing.B) {
	s, err := isax.NewSchema(64, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	words := make([][]uint8, 4096)
	for i := range words {
		words[i] = wordFromRandomSeries(rng, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr, _ := New(s, 100)
	for i := 0; i < b.N; i++ {
		word := words[i%len(words)]
		tr.Insert(tr.EnsureRoot(s.RootIndex(word)), word, int32(i))
	}
}

// Property: any random insert sequence preserves all tree invariants and
// conserves every inserted entry in the leaf whose prefix it matches.
func TestRandomInsertSequencesProperty(t *testing.T) {
	s := newSchema(t)
	rng := rand.New(rand.NewSource(100))
	f := func(seed int64, leafCapRaw uint8, nRaw uint16) bool {
		leafCap := int(leafCapRaw)%64 + 1
		n := int(nRaw)%800 + 1
		r := rand.New(rand.NewSource(seed))
		tr, err := New(s, leafCap)
		if err != nil {
			return false
		}
		words := make([][]uint8, n)
		for i := range words {
			if i > 0 && r.Intn(4) == 0 {
				// Frequent duplicates stress the split path.
				words[i] = words[r.Intn(i)]
			} else {
				words[i] = wordFromRandomSeries(r, s)
			}
			root := tr.EnsureRoot(s.RootIndex(words[i]))
			tr.Insert(root, words[i], int32(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariant violation: %v", err)
			return false
		}
		if tr.Stats().Series != n {
			return false
		}
		// Every entry must be reachable by descending its own word.
		for i, w := range words {
			root := tr.Root(s.RootIndex(w))
			if root == nil {
				return false
			}
			leaf := tr.DescendToLeaf(root, w)
			found := false
			for j := 0; j < leaf.LeafLen(); j++ {
				if leaf.Positions[j] == int32(i) {
					found = true
					break
				}
			}
			if !found {
				t.Logf("entry %d not in its own leaf", i)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the node prefix bound never exceeds the word bound of any
// entry stored beneath it (what makes subtree pruning safe).
func TestNodeBoundNeverExceedsEntryBound(t *testing.T) {
	s := newSchema(t)
	tr, _ := New(s, 8)
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 3000; i++ {
		w := wordFromRandomSeries(rng, s)
		tr.Insert(tr.EnsureRoot(s.RootIndex(w)), w, int32(i))
	}
	qpaa := make([]float64, s.Segments)
	for trial := 0; trial < 50; trial++ {
		for i := range qpaa {
			qpaa[i] = rng.NormFloat64()
		}
		var walk func(n *Node) bool
		walk = func(n *Node) bool {
			nodeBound := s.MinDistPAAPrefix(qpaa, n.Symbols, n.Bits)
			if n.IsLeaf() {
				for i := 0; i < n.LeafLen(); i++ {
					if s.MinDistPAAWord(qpaa, n.Word(i, s.Segments, nil)) < nodeBound-1e-9 {
						return false
					}
				}
				return true
			}
			return walk(n.Left) && walk(n.Right)
		}
		for l := 0; l < tr.RootCount(); l++ {
			if r := tr.Root(l); r != nil && !walk(r) {
				t.Fatal("node bound exceeded an entry bound (pruning unsound)")
			}
		}
	}
}

// TestSegmentMajorLeafLayout pins the SoA leaf storage: after random
// inserts (exercising appends, grows, and splits), every leaf's columns,
// gathered words, and packed form agree with one another, and inserted
// entries are recoverable from the columns.
func TestSegmentMajorLeafLayout(t *testing.T) {
	s := newSchema(t)
	tr, err := New(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := s.Segments
	rng := rand.New(rand.NewSource(99))
	inserted := make(map[int32][]uint8)
	for i := 0; i < 3000; i++ {
		word := wordFromRandomSeries(rng, s)
		tr.Insert(tr.EnsureRoot(s.RootIndex(word)), word, int32(i))
		inserted[int32(i)] = word
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	tr.ForEachLeaf(func(n *Node) {
		count := n.LeafLen()
		if count > n.Stride {
			t.Fatalf("leaf count %d exceeds stride %d", count, n.Stride)
		}
		packed := n.PackedWords(w)
		if len(packed) != w*count {
			t.Fatalf("PackedWords length %d, want %d", len(packed), w*count)
		}
		wordBuf := make([]uint8, w)
		for i := 0; i < count; i++ {
			word := n.Word(i, w, wordBuf)
			want := inserted[n.Positions[i]]
			for seg := 0; seg < w; seg++ {
				if col := n.Col(seg); col[i] != word[seg] {
					t.Fatalf("Col(%d)[%d] = %d, Word gather = %d", seg, i, col[i], word[seg])
				}
				if packed[seg*count+i] != word[seg] {
					t.Fatalf("packed[%d,%d] = %d, Word gather = %d", seg, i, packed[seg*count+i], word[seg])
				}
				if word[seg] != want[seg] {
					t.Fatalf("position %d segment %d stored %d, inserted %d", n.Positions[i], seg, word[seg], want[seg])
				}
			}
			seen++
		}
	})
	if seen != len(inserted) {
		t.Fatalf("leaves hold %d entries, inserted %d", seen, len(inserted))
	}
}
