// Package pqueue provides the lock-protected, dynamically-sized binary
// min-heaps that MESSI's search workers use to process index leaves in
// order of increasing lower-bound distance (§III-B of the paper).
//
// The paper's final design uses Nq > 1 shared queues: a single queue costs
// too much synchronization at 48 threads, per-thread queues imbalance the
// load, so workers insert round-robin across Nq queues and claim queues to
// drain, abandoning a queue (marking it finished) as soon as its minimum
// exceeds the best-so-far. Set implements that protocol.
package pqueue

import (
	"sync"
	"sync/atomic"
)

// Item is a prioritized value.
type Item[T any] struct {
	Priority float64
	Value    T
}

// Queue is a concurrent binary min-heap ordered by Item.Priority. The
// backing array grows by doubling, matching the paper's "array whose size
// changes dynamically based on how many elements must be stored in it".
// The zero value is ready to use.
type Queue[T any] struct {
	mu       sync.Mutex
	items    []Item[T]
	finished atomic.Bool
}

// New returns an empty queue with the given initial capacity.
func New[T any](capacity int) *Queue[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Queue[T]{items: make([]Item[T], 0, capacity)}
}

// Push inserts a value with the given priority.
func (q *Queue[T]) Push(priority float64, value T) {
	q.mu.Lock()
	q.items = append(q.items, Item[T]{Priority: priority, Value: value})
	q.siftUp(len(q.items) - 1)
	q.mu.Unlock()
}

// PopMin removes and returns the minimum-priority item. ok is false when
// the queue is empty.
func (q *Queue[T]) PopMin() (item Item[T], ok bool) {
	q.mu.Lock()
	n := len(q.items)
	if n == 0 {
		q.mu.Unlock()
		return item, false
	}
	item = q.items[0]
	q.items[0] = q.items[n-1]
	var zero Item[T]
	q.items[n-1] = zero // release references held by the backing array
	q.items = q.items[:n-1]
	if n > 1 {
		q.siftDown(0)
	}
	q.mu.Unlock()
	return item, true
}

// PeekMin returns the minimum priority without removing it; ok is false
// when the queue is empty.
func (q *Queue[T]) PeekMin() (priority float64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Priority, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// MarkFinished records that this queue needs no further processing (its
// minimum exceeded the best-so-far, so everything behind it does too).
func (q *Queue[T]) MarkFinished() { q.finished.Store(true) }

// Finished reports whether the queue has been marked finished.
func (q *Queue[T]) Finished() bool { return q.finished.Load() }

// Reset empties the queue and clears the finished flag.
func (q *Queue[T]) Reset() {
	q.mu.Lock()
	q.items = q.items[:0]
	q.mu.Unlock()
	q.finished.Store(false)
}

func (q *Queue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Priority <= q.items[i].Priority {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *Queue[T]) siftDown(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.items[right].Priority < q.items[left].Priority {
			smallest = right
		}
		if q.items[i].Priority <= q.items[smallest].Priority {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// Set is a group of Nq shared queues implementing the paper's insertion
// and claiming protocol. A Set is resettable and resizable so a long-lived
// engine can reuse one set (and its queues' backing arrays) across
// queries; the zero value is an empty set ready for Resize.
type Set[T any] struct {
	queues []*Queue[T] // the active queues: all[:nq]
	all    []*Queue[T] // every queue ever allocated, retained across shrinks
}

// NewSet creates nq empty queues (nq >= 1 is enforced by clamping).
func NewSet[T any](nq, capacity int) *Set[T] {
	s := &Set[T]{}
	s.Resize(nq, capacity)
	return s
}

// Resize reconfigures the set to exactly nq active queues (clamped to
// >= 1) and resets every queue. Queues allocated by earlier, larger sizes
// are retained and reused on regrowth; newly allocated queues start with
// the given capacity.
func (s *Set[T]) Resize(nq, capacity int) {
	if nq < 1 {
		nq = 1
	}
	for len(s.all) < nq {
		s.all = append(s.all, New[T](capacity))
	}
	s.queues = s.all[:nq]
	for _, q := range s.all {
		q.Reset()
	}
}

// Size returns the number of queues in the set.
func (s *Set[T]) Size() int { return len(s.queues) }

// Queue returns queue i.
func (s *Set[T]) Queue(i int) *Queue[T] { return s.queues[i] }

// PushRoundRobin inserts into queue *cursor and advances the cursor
// (mod Nq). Each worker owns its own cursor (Algorithm 7, line 9), which
// keeps queue sizes balanced without extra synchronization.
func (s *Set[T]) PushRoundRobin(cursor *int, priority float64, value T) {
	i := *cursor % len(s.queues)
	s.queues[i].Push(priority, value)
	*cursor = (i + 1) % len(s.queues)
}

// NextUnfinished scans for a queue that is not yet finished, starting at
// the given position (wrapping). It returns the index, or -1 when every
// queue is finished — the worker's termination condition (Algorithm 6,
// lines 11-13).
func (s *Set[T]) NextUnfinished(start int) int {
	n := len(s.queues)
	if start < 0 {
		start = -start
	}
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if !s.queues[i].Finished() {
			return i
		}
	}
	return -1
}

// TotalLen reports the total number of queued items across the set.
func (s *Set[T]) TotalLen() int {
	total := 0
	for _, q := range s.queues {
		total += q.Len()
	}
	return total
}

// Reset resets every queue in the set.
func (s *Set[T]) Reset() {
	for _, q := range s.queues {
		q.Reset()
	}
}
