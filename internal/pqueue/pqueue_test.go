package pqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	q := New[string](4)
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		item, ok := q.PopMin()
		if !ok || item.Value != w {
			t.Fatalf("PopMin = (%v,%v), want %q", item, ok, w)
		}
	}
	if _, ok := q.PopMin(); ok {
		t.Error("PopMin on empty queue should report !ok")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var q Queue[int]
	q.Push(1, 42)
	item, ok := q.PopMin()
	if !ok || item.Value != 42 {
		t.Fatalf("zero-value queue broken: %v %v", item, ok)
	}
}

func TestPeekMin(t *testing.T) {
	q := New[int](0)
	if _, ok := q.PeekMin(); ok {
		t.Error("PeekMin on empty should report !ok")
	}
	q.Push(5, 1)
	q.Push(2, 2)
	if p, ok := q.PeekMin(); !ok || p != 2 {
		t.Errorf("PeekMin = (%v,%v), want (2,true)", p, ok)
	}
	if q.Len() != 2 {
		t.Errorf("PeekMin must not remove; Len = %d", q.Len())
	}
}

// Popping everything yields a non-decreasing priority sequence (heap
// property), for any insertion order.
func TestHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(priorities []float64) bool {
		q := New[int](0)
		for i, p := range priorities {
			q.Push(p, i)
		}
		prev := -1.0
		first := true
		for {
			item, ok := q.PopMin()
			if !ok {
				break
			}
			if !first && item.Priority < prev {
				return false
			}
			prev = item.Priority
			first = false
		}
		return q.Len() == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Pop order matches a sort of the inserted priorities.
func TestPopMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	q := New[int](8)
	priorities := make([]float64, n)
	for i := range priorities {
		priorities[i] = rng.Float64() * 100
		q.Push(priorities[i], i)
	}
	sort.Float64s(priorities)
	for i := 0; i < n; i++ {
		item, ok := q.PopMin()
		if !ok {
			t.Fatalf("queue exhausted at %d", i)
		}
		if item.Priority != priorities[i] {
			t.Fatalf("pop %d: priority %v, want %v", i, item.Priority, priorities[i])
		}
	}
}

func TestFinishedFlag(t *testing.T) {
	q := New[int](0)
	if q.Finished() {
		t.Error("new queue should not be finished")
	}
	q.MarkFinished()
	if !q.Finished() {
		t.Error("MarkFinished did not stick")
	}
	q.Reset()
	if q.Finished() {
		t.Error("Reset should clear finished")
	}
}

func TestReset(t *testing.T) {
	q := New[int](0)
	q.Push(1, 1)
	q.Push(2, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Errorf("Len after Reset = %d", q.Len())
	}
	if _, ok := q.PopMin(); ok {
		t.Error("PopMin after Reset should be empty")
	}
}

// Concurrent pushes followed by concurrent pops conserve items and respect
// per-pop ordering under the lock.
func TestConcurrentPushPop(t *testing.T) {
	q := New[int](0)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				q.Push(rng.Float64(), w*perWorker+i)
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", q.Len(), workers*perWorker)
	}
	seen := make([]bool, workers*perWorker)
	var mu sync.Mutex
	var popped int
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				item, ok := q.PopMin()
				if !ok {
					return
				}
				mu.Lock()
				if seen[item.Value] {
					t.Errorf("value %d popped twice", item.Value)
				}
				seen[item.Value] = true
				popped++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if popped != workers*perWorker {
		t.Fatalf("popped %d, want %d", popped, workers*perWorker)
	}
}

// Mixed concurrent push/pop must never lose or duplicate items.
func TestConcurrentMixed(t *testing.T) {
	q := New[int](0)
	const n = 2000
	var wg sync.WaitGroup
	results := make(chan int, n)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(float64(i%97), i)
		}
	}()
	go func() {
		defer wg.Done()
		got := 0
		for got < n {
			if item, ok := q.PopMin(); ok {
				results <- item.Value
				got++
			}
		}
	}()
	wg.Wait()
	close(results)
	seen := make(map[int]bool, n)
	for v := range results {
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct values, want %d", len(seen), n)
	}
}

func TestSetRoundRobin(t *testing.T) {
	s := NewSet[int](3, 0)
	cursor := 0
	for i := 0; i < 9; i++ {
		s.PushRoundRobin(&cursor, float64(i), i)
	}
	for i := 0; i < s.Size(); i++ {
		if got := s.Queue(i).Len(); got != 3 {
			t.Errorf("queue %d has %d items, want 3 (round-robin balance)", i, got)
		}
	}
	if s.TotalLen() != 9 {
		t.Errorf("TotalLen = %d, want 9", s.TotalLen())
	}
}

func TestSetNextUnfinished(t *testing.T) {
	s := NewSet[int](4, 0)
	if got := s.NextUnfinished(2); got != 2 {
		t.Errorf("NextUnfinished(2) = %d, want 2", got)
	}
	s.Queue(2).MarkFinished()
	if got := s.NextUnfinished(2); got != 3 {
		t.Errorf("NextUnfinished(2) after finish = %d, want 3", got)
	}
	for i := 0; i < 4; i++ {
		s.Queue(i).MarkFinished()
	}
	if got := s.NextUnfinished(0); got != -1 {
		t.Errorf("NextUnfinished all-finished = %d, want -1", got)
	}
	// Negative start positions are tolerated.
	s.Reset()
	if got := s.NextUnfinished(-5); got < 0 || got >= 4 {
		t.Errorf("NextUnfinished(-5) = %d out of range", got)
	}
}

func TestSetClampsSize(t *testing.T) {
	s := NewSet[int](0, 0)
	if s.Size() != 1 {
		t.Errorf("Size = %d, want clamped 1", s.Size())
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet[int](2, 0)
	cursor := 0
	s.PushRoundRobin(&cursor, 1, 1)
	s.Queue(1).MarkFinished()
	s.Reset()
	if s.TotalLen() != 0 {
		t.Error("Reset did not empty queues")
	}
	if s.Queue(1).Finished() {
		t.Error("Reset did not clear finished flags")
	}
}

func TestSetResize(t *testing.T) {
	var s Set[int] // zero value: empty set ready for Resize
	s.Resize(4, 8)
	if s.Size() != 4 {
		t.Fatalf("Size = %d, want 4", s.Size())
	}
	cursor := 0
	for i := 0; i < 8; i++ {
		s.PushRoundRobin(&cursor, float64(i), i)
	}
	s.Queue(3).MarkFinished()
	grown := s.Queue(3)

	// Shrinking resets content and finished flags; the active prefix is
	// exactly nq queues.
	s.Resize(2, 8)
	if s.Size() != 2 {
		t.Fatalf("after shrink Size = %d, want 2", s.Size())
	}
	if s.TotalLen() != 0 {
		t.Errorf("Resize did not empty queues: %d items", s.TotalLen())
	}

	// Regrowing reuses the queues allocated by the earlier, larger size.
	s.Resize(4, 8)
	if s.Size() != 4 {
		t.Fatalf("after regrow Size = %d, want 4", s.Size())
	}
	if s.Queue(3) != grown {
		t.Error("regrow did not reuse the previously allocated queue")
	}
	if s.Queue(3).Finished() {
		t.Error("regrow did not clear the finished flag")
	}
	if s.Resize(0, 8); s.Size() != 1 {
		t.Errorf("Resize(0) Size = %d, want clamp to 1", s.Size())
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](1024)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(rng.Float64(), i)
		if i%2 == 1 {
			q.PopMin()
			q.PopMin()
		}
	}
}
