// Package dtw implements constrained Dynamic Time Warping with a
// Sakoe-Chiba band, early abandoning, and the LB_Keogh lower-bounding
// machinery (envelope construction and envelope distances) that MESSI uses
// to answer DTW similarity queries without changing the index structure
// (Figure 19 of the paper: "we just have to build the envelope of the
// LB_Keogh method around the query series, and then search the index using
// this envelope").
//
// As everywhere in this repository, distances are SQUARED: Distance returns
// the sum of squared point costs along the optimal warping path, which for
// a zero-width band degenerates to the squared Euclidean distance.
package dtw

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/vector"
)

// dpScratch holds the two DP rows Distance needs. Rows are pooled: query
// answering calls Distance tens of thousands of times per query, and
// per-call allocation would dominate the run with GC work.
type dpScratch struct {
	prev, cur []float64
}

var scratchPool = sync.Pool{New: func() any { return &dpScratch{} }}

func getScratch(n int) *dpScratch {
	s := scratchPool.Get().(*dpScratch)
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
		s.cur = make([]float64, n)
	}
	s.prev = s.prev[:n]
	s.cur = s.cur[:n]
	return s
}

// WindowSize converts a fractional warping window (e.g. 0.1 for the paper's
// 10%) into an absolute band radius for series of the given length. The
// result is clamped to [0, n-1].
func WindowSize(n int, fraction float64) int {
	if fraction < 0 {
		return 0
	}
	r := int(math.Floor(fraction*float64(n) + 0.5))
	if r > n-1 {
		r = n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// CheckWindow validates an absolute band radius for series length n.
func CheckWindow(n, r int) error {
	if r < 0 || r >= n {
		return fmt.Errorf("dtw: band radius %d out of range [0,%d] for series length %d", r, n-1, n)
	}
	return nil
}

// Envelope computes the LB_Keogh envelope of q under a Sakoe-Chiba band of
// radius r: upper[i] = max(q[i-r..i+r]), lower[i] = min(q[i-r..i+r]),
// clamped at the series boundaries. It runs in O(n) using monotonic deques.
func Envelope(q []float32, r int) (upper, lower []float32) {
	n := len(q)
	upper = make([]float32, n)
	lower = make([]float32, n)
	if n == 0 {
		return upper, lower
	}
	// Monotonic deques of indices: maxDeque values decreasing, minDeque
	// values increasing. Window for position i is [i-r, i+r].
	maxDeque := make([]int, 0, 2*r+1)
	minDeque := make([]int, 0, 2*r+1)
	push := func(j int) {
		for len(maxDeque) > 0 && q[maxDeque[len(maxDeque)-1]] <= q[j] {
			maxDeque = maxDeque[:len(maxDeque)-1]
		}
		maxDeque = append(maxDeque, j)
		for len(minDeque) > 0 && q[minDeque[len(minDeque)-1]] >= q[j] {
			minDeque = minDeque[:len(minDeque)-1]
		}
		minDeque = append(minDeque, j)
	}
	// Pre-fill the first window [0, r].
	for j := 0; j <= r && j < n; j++ {
		push(j)
	}
	for i := 0; i < n; i++ {
		if i+r < n && i > 0 {
			push(i + r)
		}
		// Evict indices that fell out of [i-r, i+r].
		for maxDeque[0] < i-r {
			maxDeque = maxDeque[1:]
		}
		for minDeque[0] < i-r {
			minDeque = minDeque[1:]
		}
		upper[i] = q[maxDeque[0]]
		lower[i] = q[minDeque[0]]
	}
	return upper, lower
}

// LBKeogh returns the squared LB_Keogh lower bound of cDTW(q, x) given q's
// envelope, abandoning once the running sum reaches limit. Pass
// math.Inf(1) as limit for the exact value.
func LBKeogh(x, lower, upper []float32, limit float64) float64 {
	return vector.SquaredEnvelopeDistanceEarlyAbandon(x, lower, upper, limit)
}

// Distance computes the squared constrained DTW distance between a and b
// under a Sakoe-Chiba band of radius r, abandoning (returning a value >=
// limit) as soon as every cell of a DP row reaches limit. The slices must
// have equal length; r must satisfy 0 <= r < len(a).
func Distance(a, b []float32, r int, limit float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	if n == 1 {
		d := float64(a[0]) - float64(b[0])
		return d * d
	}
	inf := math.Inf(1)
	scratch := getScratch(n)
	defer scratchPool.Put(scratch)
	prev, cur := scratch.prev, scratch.cur
	// Row 0: only cells j in [0, r]; dp[0][j] = dp[0][j-1] + cost(0, j).
	for j := range prev {
		prev[j] = inf
	}
	{
		acc := 0.0
		hi := r
		if hi > n-1 {
			hi = n - 1
		}
		for j := 0; j <= hi; j++ {
			d := float64(a[0]) - float64(b[j])
			acc += d * d
			prev[j] = acc
		}
	}
	for i := 1; i < n; i++ {
		lo := i - r
		if lo < 0 {
			lo = 0
		}
		hi := i + r
		if hi > n-1 {
			hi = n - 1
		}
		for j := range cur {
			cur[j] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			best := prev[j] // vertical move (i-1, j)
			if j > 0 {
				if v := prev[j-1]; v < best { // diagonal (i-1, j-1)
					best = v
				}
				if v := cur[j-1]; v < best { // horizontal (i, j-1)
					best = v
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			d := float64(a[i]) - float64(b[j])
			c := best + d*d
			cur[j] = c
			if c < rowMin {
				rowMin = c
			}
		}
		if rowMin >= limit {
			return rowMin
		}
		prev, cur = cur, prev
	}
	return prev[n-1]
}

// DistanceExact is Distance with no early abandoning.
func DistanceExact(a, b []float32, r int) float64 {
	return Distance(a, b, r, math.Inf(1))
}
