package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func randWalk(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = float32(v)
	}
	return s
}

func TestWindowSize(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{256, 0.1, 26},
		{256, 0, 0},
		{256, -1, 0},
		{10, 0.05, 1},
		{10, 5, 9},
		{1, 0.5, 0},
	}
	for i, c := range cases {
		if got := WindowSize(c.n, c.frac); got != c.want {
			t.Errorf("case %d: WindowSize(%d,%v) = %d, want %d", i, c.n, c.frac, got, c.want)
		}
	}
}

func TestCheckWindow(t *testing.T) {
	if err := CheckWindow(256, 25); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
	if err := CheckWindow(256, -1); err == nil {
		t.Error("negative window accepted")
	}
	if err := CheckWindow(256, 256); err == nil {
		t.Error("window >= n accepted")
	}
}

func TestEnvelopeKnown(t *testing.T) {
	q := []float32{0, 1, 2, 1, 0}
	u, l := Envelope(q, 1)
	wantU := []float32{1, 2, 2, 2, 1}
	wantL := []float32{0, 0, 1, 0, 0}
	for i := range q {
		if u[i] != wantU[i] || l[i] != wantL[i] {
			t.Errorf("i=%d: envelope (%v,%v), want (%v,%v)", i, l[i], u[i], wantL[i], wantU[i])
		}
	}
}

func TestEnvelopeZeroRadius(t *testing.T) {
	q := []float32{3, -1, 4}
	u, l := Envelope(q, 0)
	for i := range q {
		if u[i] != q[i] || l[i] != q[i] {
			t.Errorf("r=0 envelope must equal the series at %d", i)
		}
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	u, l := Envelope(nil, 3)
	if len(u) != 0 || len(l) != 0 {
		t.Error("empty series should give empty envelope")
	}
}

// Envelope must match a brute-force sliding min/max.
func TestEnvelopeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw)%100 + 1
		r := int(rRaw) % n
		rg := rand.New(rand.NewSource(seed))
		q := randWalk(rg, n)
		u, l := Envelope(q, r)
		for i := 0; i < n; i++ {
			lo, hi := i-r, i+r
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			mx, mn := q[lo], q[lo]
			for j := lo + 1; j <= hi; j++ {
				if q[j] > mx {
					mx = q[j]
				}
				if q[j] < mn {
					mn = q[j]
				}
			}
			if u[i] != mx || l[i] != mn {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistanceZeroBandIsED(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		a := randWalk(rng, n)
		b := randWalk(rng, n)
		dtw := DistanceExact(a, b, 0)
		ed := vector.SquaredEuclidean(a, b)
		if math.Abs(dtw-ed) > 1e-6*(1+ed) {
			t.Fatalf("trial %d: DTW r=0 %v != ED %v", trial, dtw, ed)
		}
	}
}

func TestDistanceIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randWalk(rng, 64)
	if d := DistanceExact(a, a, 5); d != 0 {
		t.Errorf("DTW(a,a) = %v, want 0", d)
	}
}

func TestDistanceKnownWarp(t *testing.T) {
	// b is a shifted by one step; with r >= 1 DTW should align nearly all
	// points and be much smaller than ED.
	a := []float32{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	b := []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 8}
	dtw := DistanceExact(a, b, 2)
	ed := vector.SquaredEuclidean(a, b)
	if dtw >= ed {
		t.Errorf("DTW %v should beat ED %v on a shifted ramp", dtw, ed)
	}
	if dtw != 0 {
		t.Errorf("DTW = %v; shifted ramp with duplicated endpoints warps to 0", dtw)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw)%60 + 1
		r := int(rRaw) % n
		rg := rand.New(rand.NewSource(seed))
		a := randWalk(rg, n)
		b := randWalk(rg, n)
		d1 := DistanceExact(a, b, r)
		d2 := DistanceExact(b, a, r)
		return math.Abs(d1-d2) <= 1e-6*(1+d1)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Widening the band can only shrink the DTW distance; ED is the r=0 cap.
func TestDistanceMonotoneInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 2
		rg := rand.New(rand.NewSource(seed))
		a := randWalk(rg, n)
		b := randWalk(rg, n)
		prev := math.Inf(1)
		for r := 0; r < n; r += 1 + n/8 {
			d := DistanceExact(a, b, r)
			if d > prev+1e-6 {
				return false
			}
			prev = d
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// LB_Keogh lower-bounds cDTW (the classic exact-indexing result).
func TestLBKeoghLowerBoundsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw)%80 + 1
		r := int(rRaw) % n
		rg := rand.New(rand.NewSource(seed))
		q := randWalk(rg, n)
		c := randWalk(rg, n)
		u, l := Envelope(q, r)
		lb := LBKeogh(c, l, u, math.Inf(1))
		d := DistanceExact(q, c, r)
		return lb <= d+1e-6*(1+d)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEarlyAbandonConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rng.Intn(100)
		r := rng.Intn(n)
		a := randWalk(rng, n)
		b := randWalk(rng, n)
		exact := DistanceExact(a, b, r)
		// Generous limit: must return the exact value.
		if got := Distance(a, b, r, exact+1); math.Abs(got-exact) > 1e-9 {
			t.Fatalf("trial %d: limit above exact changed result: %v vs %v", trial, got, exact)
		}
		// Tight limit: must return >= limit.
		if exact > 0 {
			if got := Distance(a, b, r, exact/2); got < exact/2 {
				t.Fatalf("trial %d: abandoned result %v < limit %v", trial, got, exact/2)
			}
		}
	}
}

func TestDistanceTinyInputs(t *testing.T) {
	if d := Distance(nil, nil, 0, math.Inf(1)); d != 0 {
		t.Errorf("empty DTW = %v, want 0", d)
	}
	if d := Distance([]float32{2}, []float32{5}, 0, math.Inf(1)); d != 9 {
		t.Errorf("singleton DTW = %v, want 9", d)
	}
}

func BenchmarkDTW256Band26(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randWalk(rng, 256)
	y := randWalk(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceExact(x, y, 26)
	}
}

func BenchmarkEnvelope256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randWalk(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Envelope(x, 26)
	}
}
