package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if got := h.Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	var r *Registry
	r.Counter("x", "help").Inc()
	r.Gauge("y", "help").Set(1)
	r.Histogram("z", "help").Observe(time.Second)
	r.GaugeFunc("w", "help", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
}

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("messi_test_total", "a counter")
	c.Add(3)
	c.Add(-7) // ignored: counters are monotone
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("messi_test_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("messi_test_gauge", "a gauge")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestLabelsDistinguishInstruments(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("messi_q_total", "h", L("mode", "exact"))
	b := r.Counter("messi_q_total", "h", L("mode", "approx"))
	if a == b {
		t.Fatal("different label values returned the same counter")
	}
	a.Add(2)
	b.Add(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`messi_q_total{mode="exact"} 2`,
		`messi_q_total{mode="approx"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One header pair per family, not per label set.
	if n := strings.Count(out, "# TYPE messi_q_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("messi_conflict", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("messi_conflict", "h")
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}

	r := NewRegistry()
	h := r.Histogram("messi_lat_seconds", "latency")
	h.Observe(1 * time.Microsecond) // 1000 ns ≤ 1024 = 2^10
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Second) // overflows the largest bound
	h.Observe(-time.Second)      // clamped to 0

	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `messi_lat_seconds_bucket{le="+Inf"} 4`) {
		t.Errorf("+Inf bucket should count every observation:\n%s", out)
	}
	if !strings.Contains(out, "messi_lat_seconds_count 4") {
		t.Errorf("missing _count:\n%s", out)
	}
	// Cumulative buckets are monotone non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "messi_lat_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}

	// 100 observations of exactly 1ms: every quantile lands inside the
	// bucket containing 1ms, whose bounds are (2^19, 2^20] ns.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < time.Duration(1<<19) || got > time.Duration(1<<20) {
			t.Errorf("Quantile(%v) = %v outside the 1ms bucket", q, got)
		}
	}

	// A bimodal population separates: p50 stays near the low mode, p99
	// reaches the high mode.
	h2 := &Histogram{}
	for i := 0; i < 90; i++ {
		h2.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(time.Second)
	}
	if p50 := h2.Quantile(0.5); p50 > 10*time.Microsecond {
		t.Errorf("p50 = %v, want near 1µs", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Errorf("p99 = %v, want near 1s", p99)
	}
	if h2.Quantile(0.99) < h2.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}

	// Out-of-range q clamps instead of misbehaving.
	if h2.Quantile(-1) > h2.Quantile(0) || h2.Quantile(2) < h2.Quantile(1) {
		t.Error("q outside [0,1] not clamped")
	}

	// Overflow-only observations report the largest tracked bound.
	h3 := &Histogram{}
	h3.Observe(200 * time.Second)
	if got := h3.Quantile(0.5); got != time.Duration(int64(1)<<(numHistBuckets-1)) {
		t.Errorf("overflow quantile = %v, want max bound", got)
	}
}

func TestWriteTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("messi_esc_total", "help with \\ and\nnewline", L("path", `a"b\c`)).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP messi_esc_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `messi_esc_total{path="a\"b\\c"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 41.0
	r.GaugeFunc("messi_live_delta", "delta occupancy", func() float64 { return v })
	v = 42
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "messi_live_delta 42") {
		t.Errorf("gauge func not evaluated at exposition:\n%s", sb.String())
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(0.5); got != "0.5" {
		t.Errorf("formatValue(0.5) = %q", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines with
// concurrent expositions — run under -race in CI, this is the lock-free
// claim's proof. The total count must equal the number of observations.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("messi_hammer_seconds", "hammered", L("mode", "exact"))
	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	// Concurrent scrapes while observers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// Buckets plus overflow account for every observation.
	var sum uint64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	sum += h.overflow.Load()
	if sum != goroutines*perG {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*perG)
	}
}

func TestWriteRuntime(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntime(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines ", "go_memstats_alloc_bytes ", "# TYPE go_goroutines gauge"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
}
