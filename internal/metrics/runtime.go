package metrics

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntime writes a small set of Go runtime metrics in the Prometheus
// text exposition format, using the conventional go_* names so standard
// dashboards work unchanged. It reads runtime.MemStats, which briefly
// stops the world — fine at scrape cadence, not per request.
func WriteRuntime(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	_, err := fmt.Fprintf(w,
		"# HELP go_goroutines Number of goroutines that currently exist.\n"+
			"# TYPE go_goroutines gauge\n"+
			"go_goroutines %d\n"+
			"# HELP go_memstats_alloc_bytes Number of bytes allocated in heap and currently in use.\n"+
			"# TYPE go_memstats_alloc_bytes gauge\n"+
			"go_memstats_alloc_bytes %d\n"+
			"# HELP go_memstats_sys_bytes Number of bytes obtained from system.\n"+
			"# TYPE go_memstats_sys_bytes gauge\n"+
			"go_memstats_sys_bytes %d\n"+
			"# HELP go_memstats_heap_objects Number of currently allocated objects.\n"+
			"# TYPE go_memstats_heap_objects gauge\n"+
			"go_memstats_heap_objects %d\n"+
			"# HELP go_gc_cycles_total Number of completed GC cycles.\n"+
			"# TYPE go_gc_cycles_total counter\n"+
			"go_gc_cycles_total %d\n"+
			"# HELP go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n"+
			"# TYPE go_gc_pause_seconds_total counter\n"+
			"go_gc_pause_seconds_total %g\n"+
			"# HELP go_threads Number of OS threads created.\n"+
			"# TYPE go_threads gauge\n"+
			"go_threads %d\n",
		runtime.NumGoroutine(),
		ms.HeapAlloc,
		ms.Sys,
		ms.HeapObjects,
		ms.NumGC,
		float64(ms.PauseTotalNs)/1e9,
		threadCount(),
	)
	return err
}

// threadCount reports the process's OS thread count.
func threadCount() int {
	n, _ := runtime.ThreadCreateProfile(nil)
	return n
}
