package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair (exposed as name{key="value"}).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. All methods are atomic and
// nil-receiver safe.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored — counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are atomic and
// nil-receiver safe.
type Gauge struct {
	bits atomic.Uint64 // IEEE-754 bits of the value
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative d subtracts) with a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// numHistBuckets spans 1 ns to 2^36 ns (~69 s) in powers of two; longer
// observations land in the implicit +Inf bucket.
const numHistBuckets = 37

// Histogram is a lock-free latency histogram with log2 buckets: bucket i
// counts observations ≤ 2^i nanoseconds, exposed in seconds in the
// Prometheus exposition (cumulative le buckets, _sum, _count). Observe is
// a single atomic add on the owning bucket — safe for any number of
// concurrent observers — and nil-receiver safe.
type Histogram struct {
	buckets  [numHistBuckets]atomic.Uint64 // non-cumulative; exposition accumulates
	overflow atomic.Uint64                 // observations above the largest bound
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// bucketIndex returns the log2 bucket for a non-negative duration in
// nanoseconds: the smallest i with ns ≤ 2^i.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	return bits.Len64(uint64(ns - 1))
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if i := bucketIndex(ns); i < numHistBuckets {
		h.buckets[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(ns)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Quantile estimates the q-th latency quantile (q in [0,1]) from the log2
// buckets: the bucket holding the q·count-th observation is located and
// the position inside it interpolated linearly between the bucket's
// bounds, so the estimate is within one power-of-two bucket of the true
// value. Observations that landed in the overflow bucket report the
// largest tracked bound. Returns 0 on a nil or empty histogram and clamps
// q outside [0,1]. Safe to call concurrently with Observe, though a
// concurrent reading is not a consistent snapshot (like WriteText).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < numHistBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			hi := int64(1) << i
			frac := (target - cum) / n
			if frac < 0 {
				frac = 0
			}
			return time.Duration(lo + int64(frac*float64(hi-lo)))
		}
		cum += n
	}
	return time.Duration(int64(1) << (numHistBuckets - 1))
}

// kind is the exposition type of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// instrument is one registered time series within a family.
type instrument struct {
	labels []Label
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every instrument sharing one metric name (one # HELP /
// # TYPE header, many label sets).
type family struct {
	name string
	help string
	kind kind
	byID map[string]*instrument
	ord  []*instrument
}

// Registry is a named set of metrics. The zero value is not usable — call
// NewRegistry — but a nil *Registry is: every constructor returns a nil
// instrument whose methods are no-ops, so instrumented code needs no
// branches for the metrics-off case.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelID is the canonical identity of a label set within a family.
func labelID(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return sb.String()
}

// lookup finds or creates the instrument for (name, labels), enforcing
// one kind per family. It panics on a kind conflict — mixing types under
// one name is a programming error no caller can handle.
func (r *Registry) lookup(name, help string, k kind, labels []Label) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byID: make(map[string]*instrument)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	id := labelID(labels)
	ins := f.byID[id]
	if ins == nil {
		ins = &instrument{labels: append([]Label(nil), labels...)}
		f.byID[id] = ins
		f.ord = append(f.ord, ins)
	}
	return ins
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use. Registration is idempotent: the same
// (name, labels) always returns the same counter. Nil-registry safe.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, help, kindCounter, labels)
	if ins.c == nil {
		ins.c = &Counter{}
	}
	return ins.c
}

// Gauge returns the gauge registered under name with the given labels
// (see Counter).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, help, kindGauge, labels)
	if ins.g == nil {
		ins.g = &Gauge{}
	}
	return ins.g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — occupancy-style metrics read straight from the live structure
// instead of being maintained on every mutation. The first registration
// for a (name, labels) pair wins. Nil-registry safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	ins := r.lookup(name, help, kindGauge, labels)
	if ins.g == nil && ins.gf == nil {
		ins.gf = fn
	}
}

// Histogram returns the histogram registered under name with the given
// labels (see Counter).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ins := r.lookup(name, help, kindHistogram, labels)
	if ins.h == nil {
		ins.h = &Histogram{}
	}
	return ins.h
}

// escapeHelp escapes a # HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus parsers expect.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...} (empty string for no labels). extra is
// appended after the instrument's own labels (the histogram le label).
func writeLabels(sb *strings.Builder, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteText writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one # HELP
// and # TYPE header each, histograms as cumulative le buckets plus _sum
// and _count. Safe to call concurrently with updates — values are read
// atomically, though one exposition is not a consistent cross-metric
// snapshot (Prometheus scrapes never are).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		sb.Reset()
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, ins := range f.ord {
			switch f.kind {
			case kindCounter:
				sb.WriteString(f.name)
				writeLabels(&sb, ins.labels)
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatInt(ins.c.Value(), 10))
				sb.WriteByte('\n')
			case kindGauge:
				v := ins.g.Value()
				if ins.gf != nil {
					v = ins.gf()
				}
				sb.WriteString(f.name)
				writeLabels(&sb, ins.labels)
				sb.WriteByte(' ')
				sb.WriteString(formatValue(v))
				sb.WriteByte('\n')
			case kindHistogram:
				writeHistogram(&sb, f.name, ins)
			}
		}
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram instrument: cumulative le buckets
// in seconds, the +Inf bucket, _sum (seconds) and _count.
func writeHistogram(sb *strings.Builder, name string, ins *instrument) {
	h := ins.h
	var cum uint64
	for i := 0; i < numHistBuckets; i++ {
		cum += h.buckets[i].Load()
		le := formatValue(float64(int64(1)<<i) / 1e9)
		sb.WriteString(name)
		sb.WriteString("_bucket")
		writeLabels(sb, ins.labels, Label{Key: "le", Value: le})
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(cum, 10))
		sb.WriteByte('\n')
	}
	cum += h.overflow.Load()
	sb.WriteString(name)
	sb.WriteString("_bucket")
	writeLabels(sb, ins.labels, Label{Key: "le", Value: "+Inf"})
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(cum, 10))
	sb.WriteByte('\n')

	sb.WriteString(name)
	sb.WriteString("_sum")
	writeLabels(sb, ins.labels)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(float64(h.sumNanos.Load()) / 1e9))
	sb.WriteByte('\n')

	sb.WriteString(name)
	sb.WriteString("_count")
	writeLabels(sb, ins.labels)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(h.count.Load(), 10))
	sb.WriteByte('\n')
}
