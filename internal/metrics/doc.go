// Package metrics is a dependency-free production metrics layer: atomic
// counters, gauges, and lock-free log2-bucketed latency histograms behind
// a named registry with Prometheus text-format exposition.
//
// The registry is the serving-side complement of the paper-reproduction
// collectors in internal/stats: stats measures one query (Figure 13's
// phase breakdown, Figure 17's operation counts), metrics accumulates the
// fleet view across every query a process answers — admission pressure,
// per-mode latency distributions, cumulative pruning work, rebuild and
// snapshot activity.
//
// # Nil-Registry behavior
//
// Like internal/stats, every hot-path method is nil-receiver safe: a nil
// *Registry hands out nil instruments, and Add/Set/Observe on a nil
// instrument is a no-op — library users and benchmarks that never enable
// metrics pay nothing beyond a nil check. Code instrumented against this
// package therefore never guards a metrics call; it just calls.
//
// # Concurrency invariants
//
//   - Counters are monotone (negative Add is ignored) and atomic;
//     gauges are atomic float64 bit-casts; both are safe from any number
//     of goroutines.
//   - Histograms are lock-free: Observe is one atomic add into a log2
//     bucket (plus count/sum), so concurrent observers never contend on
//     a mutex. Exposition reads buckets without stopping writers; a
//     scrape is a consistent-enough snapshot (counts may trail sums by
//     in-flight observations) and never blocks the hot path.
//   - Instrument registration is idempotent: re-registering the same
//     (name, labels) returns the existing instrument, and registering
//     the same name under a different kind panics at startup rather
//     than corrupting the exposition.
//   - Quantile estimates interpolate inside the matching log2 bucket, so
//     they carry bucket-resolution error (at most 2× at the bucket
//     boundary) — good enough for p50/p99 dashboards, not for SLO math.
package metrics
