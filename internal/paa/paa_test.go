package paa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformKnown(t *testing.T) {
	s := []float32{1, 3, 2, 4, 10, 20, 0, 0}
	got := Transform(s, 4, nil)
	want := []float64{2, 3, 15, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("segment %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransformSingleSegment(t *testing.T) {
	s := []float32{1, 2, 3, 4}
	got := Transform(s, 1, nil)
	if len(got) != 1 || math.Abs(got[0]-2.5) > 1e-9 {
		t.Errorf("got %v, want [2.5]", got)
	}
}

func TestTransformIdentityWhenSegmentIsPoint(t *testing.T) {
	s := []float32{5, -1, 2}
	got := Transform(s, 3, nil)
	for i := range s {
		if math.Abs(got[i]-float64(s[i])) > 1e-9 {
			t.Errorf("w==n should be the identity; got %v", got)
		}
	}
}

func TestTransformReusesDst(t *testing.T) {
	s := []float32{1, 2, 3, 4}
	dst := make([]float64, 2)
	got := Transform(s, 2, dst)
	if &got[0] != &dst[0] {
		t.Error("Transform should reuse a sufficiently large dst")
	}
}

// Mean preservation: the average of the PAA equals the average of the
// series (each segment is an average of equal-size groups).
func TestMeanPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(16)
		seg := 1 + r.Intn(16)
		n := w * seg
		s := make([]float32, n)
		var total float64
		for i := range s {
			s[i] = float32(r.NormFloat64())
			total += float64(s[i])
		}
		p := Transform(s, w, nil)
		var paaTotal float64
		for _, v := range p {
			paaTotal += v
		}
		return math.Abs(paaTotal*float64(seg)-total) < 1e-4
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSegmentMinMax(t *testing.T) {
	s := []float32{1, 5, -3, 2, 7, 7, 0, -9}
	mx := SegmentMax(s, 4, nil)
	mn := SegmentMin(s, 4, nil)
	wantMax := []float64{5, 2, 7, 0}
	wantMin := []float64{1, -3, 7, -9}
	for i := 0; i < 4; i++ {
		if mx[i] != wantMax[i] {
			t.Errorf("max[%d] = %v, want %v", i, mx[i], wantMax[i])
		}
		if mn[i] != wantMin[i] {
			t.Errorf("min[%d] = %v, want %v", i, mn[i], wantMin[i])
		}
	}
}

// The PAA mean of a segment always lies between the segment min and max.
func TestPAABetweenMinAndMax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 1 + r.Intn(16)
		seg := 1 + r.Intn(16)
		s := make([]float32, w*seg)
		for i := range s {
			s[i] = float32(r.NormFloat64())
		}
		p := Transform(s, w, nil)
		mx := SegmentMax(s, w, nil)
		mn := SegmentMin(s, w, nil)
		for i := 0; i < w; i++ {
			if p[i] < mn[i]-1e-6 || p[i] > mx[i]+1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCheckDivisible(t *testing.T) {
	if err := CheckDivisible(256, 16); err != nil {
		t.Errorf("256/16 should be fine: %v", err)
	}
	if err := CheckDivisible(255, 16); err == nil {
		t.Error("255/16 should fail")
	}
	if err := CheckDivisible(0, 16); err == nil {
		t.Error("zero length should fail")
	}
	if err := CheckDivisible(256, 0); err == nil {
		t.Error("zero segments should fail")
	}
	if err := CheckDivisible(256, -4); err == nil {
		t.Error("negative segments should fail")
	}
}
