// Package paa implements the Piecewise Aggregate Approximation (PAA)
// representation (Keogh et al., KAIS 2001): a series of length n is divided
// into w equal-length segments, and each segment is summarized by the mean
// of its points. PAA is the intermediate representation between raw series
// and their iSAX summaries (Figure 1 of the paper).
//
// The package also computes per-segment minima/maxima, which the DTW lower
// bound needs to summarize the LB_Keogh envelope conservatively (the iSAX
// regions bound a segment's *mean*, so the envelope must be reduced with
// max/min rather than mean to remain a lower bound).
package paa

import "fmt"

// Transform writes the w-segment PAA of s into dst and returns dst.
// If dst is nil or too short a new slice is allocated. len(s) must be a
// positive multiple of w; Split handles the general case at API boundaries.
func Transform(s []float32, w int, dst []float64) []float64 {
	if cap(dst) < w {
		dst = make([]float64, w)
	}
	dst = dst[:w]
	seg := len(s) / w
	inv := 1.0 / float64(seg)
	for i := 0; i < w; i++ {
		var sum float64
		part := s[i*seg : (i+1)*seg]
		for _, v := range part {
			sum += float64(v)
		}
		dst[i] = sum * inv
	}
	return dst
}

// SegmentMax writes the per-segment maximum of s into dst and returns dst.
func SegmentMax(s []float32, w int, dst []float64) []float64 {
	if cap(dst) < w {
		dst = make([]float64, w)
	}
	dst = dst[:w]
	seg := len(s) / w
	for i := 0; i < w; i++ {
		part := s[i*seg : (i+1)*seg]
		m := part[0]
		for _, v := range part[1:] {
			if v > m {
				m = v
			}
		}
		dst[i] = float64(m)
	}
	return dst
}

// SegmentMin writes the per-segment minimum of s into dst and returns dst.
func SegmentMin(s []float32, w int, dst []float64) []float64 {
	if cap(dst) < w {
		dst = make([]float64, w)
	}
	dst = dst[:w]
	seg := len(s) / w
	for i := 0; i < w; i++ {
		part := s[i*seg : (i+1)*seg]
		m := part[0]
		for _, v := range part[1:] {
			if v < m {
				m = v
			}
		}
		dst[i] = float64(m)
	}
	return dst
}

// CheckDivisible validates that a series length is usable with w segments.
// The paper pads series when necessary; we surface an error instead and let
// callers choose lengths (all built-in generators use multiples of w).
func CheckDivisible(length, w int) error {
	if w <= 0 {
		return fmt.Errorf("paa: non-positive segment count %d", w)
	}
	if length <= 0 {
		return fmt.Errorf("paa: non-positive series length %d", length)
	}
	if length%w != 0 {
		return fmt.Errorf("paa: series length %d is not a multiple of segment count %d", length, w)
	}
	return nil
}
