// Package series defines the in-memory representation of a data series
// collection and basic per-series operations (z-normalization, moments).
//
// A data series is an ordered sequence of float32 points (the paper fixes
// the length to 256 for most experiments, 128 for the SALD dataset). A
// Collection stores all series contiguously in one flat slice — the
// "RawData array" of the paper — which gives the cache behaviour the
// in-memory algorithms rely on and lets workers address chunks by offset.
package series

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmptyCollection is returned when an operation needs at least one series.
var ErrEmptyCollection = errors.New("series: empty collection")

// Collection is a fixed-length set of equal-length data series stored in a
// single contiguous buffer (row-major: series i occupies
// Data[i*Length : (i+1)*Length]).
type Collection struct {
	Data   []float32 // flat storage, len == Count*Length
	Length int       // points per series
	count  int
}

// NewCollection wraps flat storage as a collection. It returns an error if
// the buffer length is not a multiple of the series length.
func NewCollection(data []float32, length int) (*Collection, error) {
	if length <= 0 {
		return nil, fmt.Errorf("series: non-positive series length %d", length)
	}
	if len(data)%length != 0 {
		return nil, fmt.Errorf("series: buffer length %d is not a multiple of series length %d", len(data), length)
	}
	return &Collection{Data: data, Length: length, count: len(data) / length}, nil
}

// NewEmptyCollection allocates storage for count series of the given length.
func NewEmptyCollection(count, length int) (*Collection, error) {
	if count < 0 {
		return nil, fmt.Errorf("series: negative count %d", count)
	}
	if length <= 0 {
		return nil, fmt.Errorf("series: non-positive series length %d", length)
	}
	return &Collection{Data: make([]float32, count*length), Length: length, count: count}, nil
}

// FromSlices copies a slice-of-slices into contiguous storage. All series
// must share the same length.
func FromSlices(rows [][]float32) (*Collection, error) {
	if len(rows) == 0 {
		return nil, ErrEmptyCollection
	}
	length := len(rows[0])
	if length == 0 {
		return nil, errors.New("series: zero-length series")
	}
	c, err := NewEmptyCollection(len(rows), length)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != length {
			return nil, fmt.Errorf("series: series %d has length %d, want %d", i, len(r), length)
		}
		copy(c.At(i), r)
	}
	return c, nil
}

// Count reports the number of series in the collection.
func (c *Collection) Count() int { return c.count }

// At returns series i as a view into the flat buffer (no copy).
func (c *Collection) At(i int) []float32 {
	return c.Data[i*c.Length : (i+1)*c.Length : (i+1)*c.Length]
}

// Bytes reports the size of the raw data in bytes (4 bytes per point),
// matching how the paper states dataset sizes (e.g. "100GB").
func (c *Collection) Bytes() int64 {
	return int64(len(c.Data)) * 4
}

// Validate checks structural consistency and that no value is NaN or Inf.
// It is used by tests and by the file loader; hot paths never call it.
func (c *Collection) Validate() error {
	if c.Length <= 0 {
		return fmt.Errorf("series: non-positive series length %d", c.Length)
	}
	if len(c.Data) != c.count*c.Length {
		return fmt.Errorf("series: storage length %d != count %d * length %d", len(c.Data), c.count, c.Length)
	}
	for i, v := range c.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("series: non-finite value at flat offset %d (series %d)", i, i/c.Length)
		}
	}
	return nil
}

// Mean returns the arithmetic mean of s.
func Mean(s []float32) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of s.
func Std(s []float32) float64 {
	if len(s) == 0 {
		return 0
	}
	mean := Mean(s)
	var sum float64
	for _, v := range s {
		d := float64(v) - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s)))
}

// ZNormalize rewrites s in place to have mean 0 and standard deviation 1.
// A constant series (std == 0, to within epsilon) becomes all zeros, the
// standard convention in similarity search (a constant series carries no
// shape information). Returns s for chaining.
func ZNormalize(s []float32) []float32 {
	if len(s) == 0 {
		return s
	}
	mean := Mean(s)
	std := Std(s)
	if std < 1e-12 {
		for i := range s {
			s[i] = 0
		}
		return s
	}
	inv := 1.0 / std
	for i := range s {
		s[i] = float32((float64(s[i]) - mean) * inv)
	}
	return s
}

// ZNormalized returns a z-normalized copy of s, leaving s untouched.
func ZNormalized(s []float32) []float32 {
	out := make([]float32, len(s))
	copy(out, s)
	return ZNormalize(out)
}

// ZNormalizeAll z-normalizes every series of the collection in place.
func (c *Collection) ZNormalizeAll() {
	for i := 0; i < c.count; i++ {
		ZNormalize(c.At(i))
	}
}
