package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCollection(t *testing.T) {
	c, err := NewCollection(make([]float32, 12), 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d, want 3", c.Count())
	}
	if c.Bytes() != 48 {
		t.Errorf("Bytes = %d, want 48", c.Bytes())
	}
}

func TestNewCollectionErrors(t *testing.T) {
	if _, err := NewCollection(make([]float32, 10), 3); err == nil {
		t.Error("expected error for non-multiple buffer")
	}
	if _, err := NewCollection(nil, 0); err == nil {
		t.Error("expected error for zero length")
	}
	if _, err := NewCollection(nil, -1); err == nil {
		t.Error("expected error for negative length")
	}
	if _, err := NewEmptyCollection(-1, 4); err == nil {
		t.Error("expected error for negative count")
	}
	if _, err := NewEmptyCollection(4, 0); err == nil {
		t.Error("expected error for zero length")
	}
}

func TestAtIsView(t *testing.T) {
	c, err := NewEmptyCollection(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.At(1)[2] = 7
	if c.Data[1*4+2] != 7 {
		t.Error("At must return a view into the flat buffer")
	}
	// The view must be capacity-limited so appends cannot clobber the
	// next series.
	v := c.At(0)
	v = append(v, 99)
	if c.Data[4] == 99 {
		t.Error("append to a series view overwrote the next series")
	}
	_ = v
}

func TestFromSlices(t *testing.T) {
	c, err := FromSlices([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 || c.Length != 2 {
		t.Fatalf("got count=%d length=%d", c.Count(), c.Length)
	}
	if c.At(2)[1] != 6 {
		t.Errorf("At(2)[1] = %v, want 6", c.At(2)[1])
	}
}

func TestFromSlicesErrors(t *testing.T) {
	if _, err := FromSlices(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FromSlices([][]float32{{}}); err == nil {
		t.Error("expected error for zero-length series")
	}
	if _, err := FromSlices([][]float32{{1, 2}, {3}}); err == nil {
		t.Error("expected error for ragged input")
	}
}

func TestValidate(t *testing.T) {
	c, _ := FromSlices([][]float32{{1, 2}, {3, 4}})
	if err := c.Validate(); err != nil {
		t.Errorf("valid collection rejected: %v", err)
	}
	c.Data[1] = float32(math.NaN())
	if err := c.Validate(); err == nil {
		t.Error("NaN not detected")
	}
	c.Data[1] = float32(math.Inf(1))
	if err := c.Validate(); err == nil {
		t.Error("Inf not detected")
	}
	c.Data[1] = 0
	c.Length = 3
	if err := c.Validate(); err == nil {
		t.Error("inconsistent length not detected")
	}
}

func TestMeanStd(t *testing.T) {
	s := []float32{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); math.Abs(m-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := Std(s); math.Abs(sd-2) > 1e-9 {
		t.Errorf("Std = %v, want 2", sd)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty-slice moments should be 0")
	}
}

func TestZNormalizeMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%250 + 2
		r := rand.New(rand.NewSource(seed))
		s := make([]float32, n)
		for i := range s {
			s[i] = float32(r.NormFloat64()*5 + 3)
		}
		ZNormalize(s)
		return math.Abs(Mean(s)) < 1e-4 && math.Abs(Std(s)-1) < 1e-4
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestZNormalizeConstantSeries(t *testing.T) {
	s := []float32{5, 5, 5, 5}
	ZNormalize(s)
	for i, v := range s {
		if v != 0 {
			t.Errorf("constant series not zeroed at %d: %v", i, v)
		}
	}
	// Empty input must not panic.
	ZNormalize(nil)
}

func TestZNormalizedCopies(t *testing.T) {
	s := []float32{1, 2, 3}
	out := ZNormalized(s)
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Error("ZNormalized mutated its input")
	}
	if math.Abs(Mean(out)) > 1e-6 {
		t.Error("output not normalized")
	}
}

func TestZNormalizeAll(t *testing.T) {
	c, _ := FromSlices([][]float32{{1, 2, 3, 4}, {10, 20, 30, 40}})
	c.ZNormalizeAll()
	for i := 0; i < c.Count(); i++ {
		if math.Abs(Mean(c.At(i))) > 1e-5 || math.Abs(Std(c.At(i))-1) > 1e-5 {
			t.Errorf("series %d not normalized", i)
		}
	}
}
