package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/isax"
	"repro/internal/series"
	"repro/internal/tree"
)

// Failpoints in the snapshot write path, armed only by crash tests.
// They fire at the instants where a real disk failure (ENOSPC, a dying
// device) or a kill would interrupt a save: mid-write, at fsync, and
// at the final rename.
var (
	fpWrite  = fault.Register("persist.writefile.write")
	fpSync   = fault.Register("persist.writefile.sync")
	fpRename = fault.Register("persist.writefile.rename")
)

// Magic identifies a MESSI index snapshot file (distinct from the
// dataset file magic "MESSIDS1").
const Magic = "MESSIIX1"

// Version is the current snapshot format version (what Write produces).
const Version = 2

// versionV1 is the legacy format with entry-major leaf words; still
// accepted by readers, transposed to the segment-major layout on load.
const versionV1 = 1

// HeaderSize is the fixed header length; the series block starts here.
const HeaderSize = 64

// flagNormalize records that the indexed data was z-normalized at build
// time (so queries must be z-normalized too).
const flagNormalize = 1 << 0

// maxPoints bounds count*length claimed by a header (32 GiB of float32s),
// mirroring the dataset reader's guard against absurd allocations.
const maxPoints = 1 << 33

// maxTreeBytes bounds the tree section a header may claim.
const maxTreeBytes = 1 << 31

// maxSeriesLen bounds the points per series a header may claim (16M
// points per series is far beyond anything the index is used with, and
// keeps count*length arithmetic comfortably inside uint64).
const maxSeriesLen = 1 << 24

// Typed failure modes of snapshot loading. Every decode error wraps one
// of these (test with errors.Is).
var (
	ErrBadMagic       = errors.New("persist: not a MESSI index snapshot (bad magic)")
	ErrVersion        = errors.New("persist: unsupported snapshot version")
	ErrTruncated      = errors.New("persist: truncated snapshot")
	ErrChecksum       = errors.New("persist: snapshot checksum mismatch")
	ErrSchemaMismatch = errors.New("persist: snapshot series length/segments mismatch")
	ErrCorrupt        = errors.New("persist: corrupt snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian gates the bulk fast path: on little-endian hosts the
// on-disk series block and the in-memory []float32 are byte-identical,
// so the block can be read into (or written from) the float storage
// directly — the no-per-series-work load the format is laid out for. The
// portable conversion path keeps big-endian hosts correct.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// float32Bytes views a float32 slice as its raw bytes (little-endian
// hosts only; callers gate on hostLittleEndian).
func float32Bytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}

// Header is the decoded fixed-size snapshot header.
type Header struct {
	Version      uint32
	Normalize    bool
	Segments     int
	CardBits     int
	LeafCapacity int
	SeriesLen    int
	SeriesCount  int
	TreeBytes    int64
	DataOffset   int64
}

// encode renders the header into its fixed 64-byte form, including the
// trailing CRC.
func (h *Header) encode() [HeaderSize]byte {
	var b [HeaderSize]byte
	copy(b[0:8], Magic)
	binary.LittleEndian.PutUint32(b[8:12], h.Version)
	var flags uint32
	if h.Normalize {
		flags |= flagNormalize
	}
	binary.LittleEndian.PutUint32(b[12:16], flags)
	binary.LittleEndian.PutUint32(b[16:20], uint32(h.Segments))
	binary.LittleEndian.PutUint32(b[20:24], uint32(h.CardBits))
	binary.LittleEndian.PutUint32(b[24:28], uint32(h.LeafCapacity))
	binary.LittleEndian.PutUint32(b[28:32], uint32(h.SeriesLen))
	binary.LittleEndian.PutUint64(b[32:40], uint64(h.SeriesCount))
	binary.LittleEndian.PutUint64(b[40:48], uint64(h.TreeBytes))
	binary.LittleEndian.PutUint64(b[48:56], uint64(h.DataOffset))
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], castagnoli))
	return b
}

// ParseHeader decodes and validates a snapshot header. It returns a
// typed error (ErrTruncated, ErrBadMagic, ErrVersion, ErrChecksum,
// ErrSchemaMismatch, ErrCorrupt) describing the first problem found, and
// never panics on arbitrary input.
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, len(b), HeaderSize)
	}
	b = b[:HeaderSize]
	if string(b[0:8]) != Magic {
		return h, fmt.Errorf("%w: %q", ErrBadMagic, b[0:8])
	}
	h.Version = binary.LittleEndian.Uint32(b[8:12])
	if h.Version != Version && h.Version != versionV1 {
		return h, fmt.Errorf("%w: file version %d, this reader understands %d and %d", ErrVersion, h.Version, versionV1, Version)
	}
	if got, want := crc32.Checksum(b[0:60], castagnoli), binary.LittleEndian.Uint32(b[60:64]); got != want {
		return h, fmt.Errorf("%w: header CRC %08x, stored %08x", ErrChecksum, got, want)
	}
	flags := binary.LittleEndian.Uint32(b[12:16])
	if flags&^uint32(flagNormalize) != 0 {
		return h, fmt.Errorf("%w: unknown flags %#x", ErrVersion, flags)
	}
	h.Normalize = flags&flagNormalize != 0
	h.Segments = int(binary.LittleEndian.Uint32(b[16:20]))
	h.CardBits = int(binary.LittleEndian.Uint32(b[20:24]))
	h.LeafCapacity = int(binary.LittleEndian.Uint32(b[24:28]))
	h.SeriesLen = int(binary.LittleEndian.Uint32(b[28:32]))
	h.SeriesCount = int(binary.LittleEndian.Uint64(b[32:40]))
	h.TreeBytes = int64(binary.LittleEndian.Uint64(b[40:48]))
	h.DataOffset = int64(binary.LittleEndian.Uint64(b[48:56]))

	if h.Segments < 1 || h.Segments > isax.MaxSegments || h.CardBits < 1 || h.CardBits > isax.MaxCardBits {
		return h, fmt.Errorf("%w: %d segments × %d cardinality bits", ErrSchemaMismatch, h.Segments, h.CardBits)
	}
	if h.SeriesLen <= 0 || h.SeriesLen%h.Segments != 0 {
		return h, fmt.Errorf("%w: series length %d is not a positive multiple of %d segments", ErrSchemaMismatch, h.SeriesLen, h.Segments)
	}
	if h.LeafCapacity < 1 {
		return h, fmt.Errorf("%w: leaf capacity %d", ErrCorrupt, h.LeafCapacity)
	}
	// Bound the factors individually before the product: SeriesCount is
	// decoded from a uint64 and SeriesLen from a uint32, so an unchecked
	// product could wrap past maxPoints and admit absurd headers (the
	// decoder would then panic instead of returning a typed error).
	if h.SeriesLen > maxSeriesLen {
		return h, fmt.Errorf("%w: header claims %d points per series", ErrCorrupt, h.SeriesLen)
	}
	if h.SeriesCount < 1 || h.SeriesCount > maxPoints ||
		uint64(h.SeriesCount)*uint64(h.SeriesLen) > maxPoints {
		return h, fmt.Errorf("%w: header claims %d series × %d points", ErrCorrupt, h.SeriesCount, h.SeriesLen)
	}
	if h.TreeBytes < 8 || h.TreeBytes > maxTreeBytes {
		return h, fmt.Errorf("%w: tree section of %d bytes", ErrCorrupt, h.TreeBytes)
	}
	if h.DataOffset != HeaderSize {
		return h, fmt.Errorf("%w: series block offset %d, want %d", ErrCorrupt, h.DataOffset, HeaderSize)
	}
	return h, nil
}

// Write serializes the index (and its normalize flag) to w in the
// snapshot format. w need not be buffered for correctness, but wrapping a
// raw file in a bufio.Writer (as WriteFile does) avoids small writes.
func Write(w io.Writer, ix *core.Index, normalize bool) error {
	st := ix.Snapshot()
	treePayload, err := encodeTree(st.Tree, st.Opts.Segments)
	if err != nil {
		return err
	}
	h := Header{
		Version:      Version,
		Normalize:    normalize,
		Segments:     st.Opts.Segments,
		CardBits:     st.Opts.CardBits,
		LeafCapacity: st.Opts.LeafCapacity,
		SeriesLen:    st.Data.Length,
		SeriesCount:  st.Data.Count(),
		TreeBytes:    int64(len(treePayload)),
		DataOffset:   HeaderSize,
	}
	hdr := h.encode()
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}

	// Series block: raw little-endian float32s, then their CRC.
	data := st.Data.Data
	var sum uint32
	if hostLittleEndian {
		raw := float32Bytes(data)
		sum = crc32.Checksum(raw, castagnoli)
		if _, err := w.Write(raw); err != nil {
			return fmt.Errorf("persist: write series block: %w", err)
		}
	} else {
		crc := crc32.New(castagnoli)
		buf := make([]byte, 4*4096)
		for off := 0; off < len(data); off += 4096 {
			end := off + 4096
			if end > len(data) {
				end = len(data)
			}
			chunk := data[off:end]
			for i, v := range chunk {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
			}
			part := buf[:len(chunk)*4]
			crc.Write(part)
			if _, err := w.Write(part); err != nil {
				return fmt.Errorf("persist: write series block: %w", err)
			}
		}
		sum = crc.Sum32()
	}
	if err := writeUint32(w, sum); err != nil {
		return err
	}

	// Tree section: flattened tree payload, then its CRC.
	if _, err := w.Write(treePayload); err != nil {
		return fmt.Errorf("persist: write tree section: %w", err)
	}
	return writeUint32(w, crc32.Checksum(treePayload, castagnoli))
}

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("persist: write checksum: %w", err)
	}
	return nil
}

// Read decodes a snapshot from r and restores the index. The returned
// bool is the snapshot's normalize flag. All corruption paths return
// errors wrapping the typed sentinels of this package.
func Read(r io.Reader) (*core.Index, bool, error) {
	var hdr [HeaderSize]byte
	if err := readFull(r, hdr[:], "header"); err != nil {
		return nil, false, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return nil, false, err
	}

	// Series block: one flat allocation for the whole collection,
	// filled with bulk reads — no per-series work. On little-endian
	// hosts the bytes are read straight into the float storage.
	col, err := series.NewEmptyCollection(h.SeriesCount, h.SeriesLen)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	var sum uint32
	if hostLittleEndian {
		raw := float32Bytes(col.Data)
		if err := readFull(r, raw, "series block"); err != nil {
			return nil, false, err
		}
		sum = crc32.Checksum(raw, castagnoli)
	} else {
		crc := crc32.New(castagnoli)
		buf := make([]byte, 4*4096)
		for off := 0; off < len(col.Data); {
			want := len(col.Data) - off
			if want > 4096 {
				want = 4096
			}
			if err := readFull(r, buf[:want*4], "series block"); err != nil {
				return nil, false, err
			}
			crc.Write(buf[:want*4])
			for i := 0; i < want; i++ {
				col.Data[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			off += want
		}
		sum = crc.Sum32()
	}
	stored, err := readUint32(r, "series block checksum")
	if err != nil {
		return nil, false, err
	}
	if sum != stored {
		return nil, false, fmt.Errorf("%w: series block CRC %08x, stored %08x", ErrChecksum, sum, stored)
	}

	treePayload := make([]byte, h.TreeBytes)
	if err := readFull(r, treePayload, "tree section"); err != nil {
		return nil, false, err
	}
	stored, err = readUint32(r, "tree section checksum")
	if err != nil {
		return nil, false, err
	}
	if got := crc32.Checksum(treePayload, castagnoli); got != stored {
		return nil, false, fmt.Errorf("%w: tree section CRC %08x, stored %08x", ErrChecksum, got, stored)
	}
	flat, err := decodeTree(treePayload, h)
	if err != nil {
		return nil, false, err
	}

	ix, err := core.Restore(core.SnapshotState{
		Data: col,
		Tree: flat,
		Opts: core.Options{
			Segments:     h.Segments,
			CardBits:     h.CardBits,
			LeafCapacity: h.LeafCapacity,
		},
	})
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return ix, h.Normalize, nil
}

// readFull wraps io.ReadFull, mapping short reads to ErrTruncated.
func readFull(r io.Reader, b []byte, section string) error {
	if _, err := io.ReadFull(r, b); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: unexpected end of file in %s", ErrTruncated, section)
		}
		return fmt.Errorf("persist: read %s: %w", section, err)
	}
	return nil
}

func readUint32(r io.Reader, section string) (uint32, error) {
	var b [4]byte
	if err := readFull(r, b[:], section); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Tree section payload layout (after the fixed header; little-endian):
//
//	uint32 root count, uint32 node count
//	per root:  uint32 slot, uint32 node index
//	per node (preorder, children strictly after parents):
//	  uint8 flags (bit 0: leaf, bit 1: unsplittable)
//	  w×uint8 symbols, w×uint8 bits
//	  internal: uint8 split segment, uint32 left, uint32 right
//	  leaf:     uint32 entry count, count×w word bytes, count×uint32 positions
//
// The count×w leaf word bytes are segment-major in version 2 (w columns
// of count symbols each, the in-memory scan layout) and entry-major in
// version 1 (count words of w symbols each, transposed on load).
const (
	treeFlagLeaf         = 1 << 0
	treeFlagUnsplittable = 1 << 1
)

func encodeTree(f *tree.Flat, segments int) ([]byte, error) {
	var b bytes.Buffer
	putU32 := func(v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		b.Write(tmp[:])
	}
	putU32(uint32(len(f.RootSlots)))
	putU32(uint32(len(f.Nodes)))
	for i := range f.RootSlots {
		putU32(uint32(f.RootSlots[i]))
		putU32(uint32(f.RootNodes[i]))
	}
	for i := range f.Nodes {
		n := &f.Nodes[i]
		if len(n.Symbols) != segments || len(n.Bits) != segments {
			return nil, fmt.Errorf("persist: node %d has %d/%d summary segments, want %d", i, len(n.Symbols), len(n.Bits), segments)
		}
		var flags uint8
		if n.IsLeaf() {
			flags |= treeFlagLeaf
		}
		if n.Unsplittable {
			flags |= treeFlagUnsplittable
		}
		b.WriteByte(flags)
		b.Write(n.Symbols)
		b.Write(n.Bits)
		if n.IsLeaf() {
			putU32(uint32(len(n.Positions)))
			b.Write(n.Words)
			for _, p := range n.Positions {
				putU32(uint32(p))
			}
		} else {
			b.WriteByte(n.SplitSegment)
			putU32(uint32(n.Left))
			putU32(uint32(n.Right))
		}
	}
	return b.Bytes(), nil
}

// decodeTree decodes the tree section into a tree.Flat, with structural
// bounds checks sized against the header (a corrupt payload cannot force
// allocations beyond what the header already admitted).
func decodeTree(payload []byte, h Header) (*tree.Flat, error) {
	w := h.Segments
	cur := payload
	take := func(n int, what string) ([]byte, error) {
		if len(cur) < n {
			return nil, fmt.Errorf("%w: tree section ends inside %s", ErrCorrupt, what)
		}
		b := cur[:n]
		cur = cur[n:]
		return b, nil
	}
	u32 := func(what string) (uint32, error) {
		b, err := take(4, what)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}

	rootCount, err := u32("root count")
	if err != nil {
		return nil, err
	}
	nodeCount, err := u32("node count")
	if err != nil {
		return nil, err
	}
	if rootCount == 0 || rootCount > uint32(1)<<h.Segments || rootCount > nodeCount {
		return nil, fmt.Errorf("%w: %d root subtrees for fanout %d (%d nodes)", ErrCorrupt, rootCount, 1<<h.Segments, nodeCount)
	}
	// Every node occupies at least 1+2w+4 bytes, so a sane node count is
	// bounded by the payload the header declared.
	if minBytes := uint64(nodeCount) * uint64(2*w+5); nodeCount == 0 || minBytes > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: %d nodes cannot fit in a %d-byte tree section", ErrCorrupt, nodeCount, len(payload))
	}

	f := &tree.Flat{
		RootSlots: make([]int32, rootCount),
		RootNodes: make([]int32, rootCount),
		Nodes:     make([]tree.FlatNode, nodeCount),
	}
	for i := range f.RootSlots {
		slot, err := u32("root slot")
		if err != nil {
			return nil, err
		}
		idx, err := u32("root node index")
		if err != nil {
			return nil, err
		}
		f.RootSlots[i] = int32(slot)
		f.RootNodes[i] = int32(idx)
	}

	remaining := h.SeriesCount // leaf entries still unaccounted for
	for i := range f.Nodes {
		flagsB, err := take(1, "node flags")
		if err != nil {
			return nil, err
		}
		flags := flagsB[0]
		symbols, err := take(w, "node symbols")
		if err != nil {
			return nil, err
		}
		bits, err := take(w, "node bits")
		if err != nil {
			return nil, err
		}
		n := &f.Nodes[i]
		n.Symbols, n.Bits = symbols, bits
		n.Unsplittable = flags&treeFlagUnsplittable != 0
		if flags&treeFlagLeaf != 0 {
			n.Left, n.Right = -1, -1
			count, err := u32("leaf entry count")
			if err != nil {
				return nil, err
			}
			if int64(count) > int64(remaining) {
				return nil, fmt.Errorf("%w: leaf claims %d entries with only %d series unaccounted for", ErrCorrupt, count, remaining)
			}
			remaining -= int(count)
			words, err := take(int(count)*w, "leaf words")
			if err != nil {
				return nil, err
			}
			if h.Version == versionV1 && count > 0 {
				// Legacy entry-major words: transpose to the
				// segment-major scan layout (the one copy a v1 load pays).
				conv := make([]uint8, len(words))
				for e := 0; e < int(count); e++ {
					for s := 0; s < w; s++ {
						conv[s*int(count)+e] = words[e*w+s]
					}
				}
				words = conv
			}
			n.Words = words
			posBytes, err := take(int(count)*4, "leaf positions")
			if err != nil {
				return nil, err
			}
			n.Positions = make([]int32, count)
			for j := range n.Positions {
				n.Positions[j] = int32(binary.LittleEndian.Uint32(posBytes[j*4:]))
			}
		} else {
			segB, err := take(1, "split segment")
			if err != nil {
				return nil, err
			}
			n.SplitSegment = segB[0]
			left, err := u32("left child")
			if err != nil {
				return nil, err
			}
			right, err := u32("right child")
			if err != nil {
				return nil, err
			}
			n.Left, n.Right = int32(left), int32(right)
			if n.Left < 0 || n.Right < 0 { // > math.MaxInt32 wrapped negative
				return nil, fmt.Errorf("%w: node %d child index overflow", ErrCorrupt, i)
			}
		}
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after tree nodes", ErrCorrupt, len(cur))
	}
	return f, nil
}

// WriteFile atomically writes the index snapshot to path: the bytes land
// in a temporary file in the same directory, which is fsynced and renamed
// over path, so a crash mid-write can never leave a half-written snapshot
// under the target name.
func writeFile(path string, ix *core.Index, normalize bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := Write(bw, ix, normalize); err != nil {
		return err
	}
	if err := fpWrite.Hit(); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("persist: flush %s: %w", path, err)
	}
	if err := fpSync.Hit(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", path, err)
	}
	// CreateTemp's 0600 would make snapshots owner-only; match the usual
	// create permissions (before umask) instead.
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("persist: chmod %s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("persist: close %s: %w", path, err)
	}
	tmp = nil
	if err := fpRename.Hit(); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: rename %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		// The rename failing (read-only target, ENOSPC on some
		// filesystems) must not leave the temp file behind, and the
		// caller must see the underlying cause.
		os.Remove(name)
		return fmt.Errorf("persist: rename %s: %w", path, err)
	}
	return nil
}

// ReadFile loads an index snapshot from path. On unix little-endian
// hosts the file is memory-mapped and decoded in place — the series
// block (and the leaf words) alias the mapping, so loading costs one
// checksum pass instead of a copy, and the mapping stays alive as long
// as the process does. Elsewhere (or if mapping fails) it falls back to
// streaming reads; the file format is identical either way.
func readFile(path string) (*core.Index, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	var (
		ix        *core.Index
		normalize bool
	)
	if b, ok := mmapFile(f); ok && hostLittleEndian && alignedFloat32(b) {
		ix, normalize, err = decodeMapped(b)
	} else {
		ix, normalize, err = Read(f)
	}
	if err != nil {
		return nil, false, fmt.Errorf("%w (file %s)", err, path)
	}
	return ix, normalize, nil
}

// alignedFloat32 reports whether the mapping base is 4-byte aligned —
// always true for a page-aligned mmap (and HeaderSize is a multiple of
// 4, so the series block stays aligned), but the unsafe cast below must
// never be reachable otherwise.
func alignedFloat32(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

// decodeMapped decodes a complete in-memory snapshot image, aliasing the
// series block and leaf words instead of copying them. Callers guarantee
// a little-endian host and 4-byte alignment of b[HeaderSize:].
func decodeMapped(b []byte) (*core.Index, bool, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return nil, false, err
	}
	blockBytes64 := int64(h.SeriesCount) * int64(h.SeriesLen) * 4
	total := int64(HeaderSize) + blockBytes64 + 4 + h.TreeBytes + 4
	if int64(len(b)) < total {
		return nil, false, fmt.Errorf("%w: file is %d bytes, header describes %d", ErrTruncated, len(b), total)
	}
	if int64(len(b)) > total {
		return nil, false, fmt.Errorf("%w: %d trailing bytes after the tree section", ErrCorrupt, int64(len(b))-total)
	}
	blockBytes := int(blockBytes64)
	raw := b[HeaderSize : HeaderSize+blockBytes]
	if got, stored := crc32.Checksum(raw, castagnoli), binary.LittleEndian.Uint32(b[HeaderSize+blockBytes:]); got != stored {
		return nil, false, fmt.Errorf("%w: series block CRC %08x, stored %08x", ErrChecksum, got, stored)
	}
	data := unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), h.SeriesCount*h.SeriesLen)
	col, err := series.NewCollection(data, h.SeriesLen)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	treeStart := HeaderSize + blockBytes + 4
	payload := b[treeStart : treeStart+int(h.TreeBytes)]
	if got, stored := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[treeStart+int(h.TreeBytes):]); got != stored {
		return nil, false, fmt.Errorf("%w: tree section CRC %08x, stored %08x", ErrChecksum, got, stored)
	}
	flat, err := decodeTree(payload, h)
	if err != nil {
		return nil, false, err
	}
	ix, err := core.Restore(core.SnapshotState{
		Data: col,
		Tree: flat,
		Opts: core.Options{Segments: h.Segments, CardBits: h.CardBits, LeafCapacity: h.LeafCapacity},
	})
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return ix, h.Normalize, nil
}
