package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/shard"
)

func buildSharded(t *testing.T, n, shards int) *shard.Index {
	t.Helper()
	col, err := dataset.Generate(dataset.RandomWalk, n, 32, 21)
	if err != nil {
		t.Fatal(err)
	}
	x, err := shard.Build(col, shards, core.Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestShardedRoundTrip: snapshot → manifest → load reproduces the sharded
// index bitwise — every query answers identically.
func TestShardedRoundTrip(t *testing.T) {
	x := buildSharded(t, 500, 4)
	dir := filepath.Join(t.TempDir(), "sharded.snapdir")
	if err := WriteShardedDir(dir, x, true); err != nil {
		t.Fatal(err)
	}
	if !IsShardedDir(dir) {
		t.Fatal("written directory not recognized as a sharded snapshot")
	}
	loaded, normalize, err := ReadShardedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !normalize {
		t.Fatal("normalize flag lost in round trip")
	}
	if loaded.NumShards() != 4 || loaded.Len() != x.Len() || loaded.SeriesLen() != x.SeriesLen() {
		t.Fatalf("loaded shape %d shards %d×%d, want 4 shards %d×%d",
			loaded.NumShards(), loaded.Len(), loaded.SeriesLen(), x.Len(), x.SeriesLen())
	}
	for qi := 0; qi < 20; qi++ {
		q := x.At(qi * 17)
		want, err := x.Search(q, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: loaded answered %+v, original %+v", qi, got, want)
		}
	}
}

// TestShardedDirWithEmptyShards: count < shards leaves empty file entries
// that round-trip cleanly.
func TestShardedDirWithEmptyShards(t *testing.T) {
	x := buildSharded(t, 3, 8)
	dir := filepath.Join(t.TempDir(), "tiny.snapdir")
	if err := WriteShardedDir(dir, x, false); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := ReadShardedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 3 || loaded.NumShards() != 8 {
		t.Fatalf("loaded %d series across %d shards", loaded.Len(), loaded.NumShards())
	}
}

// TestManifestCorruption: every corruption is caught with a typed error.
func TestManifestCorruption(t *testing.T) {
	x := buildSharded(t, 200, 2)
	dir := filepath.Join(t.TempDir(), "corrupt.snapdir")
	if err := WriteShardedDir(dir, x, false); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, ManifestName)
	good, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, mutate func([]byte) []byte, want error) {
		t.Helper()
		if err := os.WriteFile(mpath, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(mpath, good, 0o644)
		_, _, err := ReadShardedDir(dir)
		if !errors.Is(err, want) {
			t.Fatalf("corrupted manifest: got %v, want %v", err, want)
		}
	}

	corrupt(t, func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic)
	corrupt(t, func(b []byte) []byte { return b[:10] }, ErrTruncated)
	corrupt(t, func(b []byte) []byte { b[20] ^= 0xff; return b }, ErrChecksum)
	corrupt(t, func(b []byte) []byte { return append(b, 0) }, ErrCorrupt)

	// A shard file mutilated underneath an intact manifest.
	m, err := ParseManifest(good)
	if err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, m.Files[1])
	sgood, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), sgood...)
	bad[HeaderSize+8] ^= 0xff
	if err := os.WriteFile(spath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShardedDir(dir); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted shard file: got %v, want %v", err, ErrChecksum)
	}
}

// TestManifestEscapingNames: a manifest naming files outside its own
// directory — or aliasing one file into two shards, or the reserved
// manifest name — is rejected before any file is opened.
func TestManifestEscapingNames(t *testing.T) {
	for _, name := range []string{"../evil.snap", "/etc/passwd", "a/b.snap", "..", ManifestName} {
		m := Manifest{Version: ManifestVersion, Shards: 1, SeriesLen: 32, SeriesCount: 10, Files: []string{name}}
		if _, err := EncodeManifest(m); err == nil {
			t.Errorf("manifest with file name %q encoded without error", name)
		}
	}
	dup := Manifest{Version: ManifestVersion, Shards: 2, SeriesLen: 32, SeriesCount: 2,
		Files: []string{"a.snap", "a.snap"}}
	if _, err := EncodeManifest(dup); err == nil {
		t.Error("manifest aliasing one file into two shards encoded without error")
	}
}

// TestShardedResave: saving again over an existing snapshot directory
// never touches the files the current manifest names (per-save tokens),
// stays loadable, and sweeps the superseded files afterwards.
func TestShardedResave(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "resave.snapdir")
	first := buildSharded(t, 100, 2)
	if err := WriteShardedDir(dir, first, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := ParseManifest(raw)
	if err != nil {
		t.Fatal(err)
	}

	second := buildSharded(t, 300, 2)
	if err := WriteShardedDir(dir, second, false); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := ReadShardedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 300 {
		t.Fatalf("re-saved directory loads %d series, want 300", loaded.Len())
	}
	// New file names differ from the old ones, and the old ones are gone.
	raw, err = os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	for s := range m1.Files {
		if m1.Files[s] == m2.Files[s] {
			t.Fatalf("re-save reused shard file name %q", m1.Files[s])
		}
		if _, err := os.Stat(filepath.Join(dir, m1.Files[s])); !os.IsNotExist(err) {
			t.Errorf("superseded shard file %q not swept (err %v)", m1.Files[s], err)
		}
	}
}

// TestParseManifestRejects covers decoder validation beyond the checksum.
func TestParseManifestRejects(t *testing.T) {
	encode := func(payload []byte) []byte {
		out := append([]byte(ManifestMagic), 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(out[8:12], uint32(len(payload)))
		out = append(out, payload...)
		return binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	}
	cases := []struct {
		name    string
		payload string
		want    error
	}{
		{"not JSON", `{nope`, ErrCorrupt},
		{"wrong version", `{"version":9,"shards":1,"series_len":32,"series_count":1,"files":[""]}`, ErrVersion},
		{"zero shards", `{"version":1,"shards":0,"series_len":32,"series_count":1,"files":[]}`, ErrCorrupt},
		{"file count mismatch", `{"version":1,"shards":2,"series_len":32,"series_count":1,"files":["a"]}`, ErrCorrupt},
		{"absurd count", `{"version":1,"shards":1,"series_len":32,"series_count":99999999999,"files":["a"]}`, ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := ParseManifest(encode([]byte(tc.payload))); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestConcurrentShardedSaves: racing saves into one directory are
// serialized — the directory always ends up loadable, with the manifest
// naming files that exist.
func TestConcurrentShardedSaves(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "race.snapdir")
	a := buildSharded(t, 100, 2)
	b := buildSharded(t, 300, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		x := a
		if i%2 == 1 {
			x = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := WriteShardedDir(dir, x, false); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	loaded, _, err := ReadShardedDir(dir)
	if err != nil {
		t.Fatalf("directory unloadable after racing saves: %v", err)
	}
	if n := loaded.Len(); n != 100 && n != 300 {
		t.Fatalf("loaded %d series, want one save's 100 or 300", n)
	}
}
