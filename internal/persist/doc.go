// Package persist defines the MESSI index snapshot: a versioned,
// checksummed binary format holding everything needed to serve queries
// without re-running the O(n) construction pipeline — the index options
// and iSAX schema parameters, the raw series block, and the index tree
// flattened with its leaf payloads. Loading a snapshot skips PAA
// transforms, quantization and splits entirely, so a server restarts in
// the time it takes to read the file.
//
// # Layout (version 1, all integers little-endian)
//
//	[0,8)    magic "MESSIIX1"
//	[8,12)   format version (uint32)
//	[12,16)  flags (uint32; bit 0: data and queries are z-normalized)
//	[16,20)  segments (uint32)
//	[20,24)  cardinality bits (uint32)
//	[24,28)  leaf capacity (uint32)
//	[28,32)  series length in points (uint32)
//	[32,40)  series count (uint64)
//	[40,48)  tree section payload length in bytes (uint64)
//	[48,56)  series block offset from file start (uint64; 64 in v1)
//	[56,60)  reserved (zero)
//	[60,64)  CRC-32C of bytes [0,60)
//
// The series block starts at the 64-byte-aligned offset recorded in the
// header: count*length raw little-endian float32 values, row-major,
// followed by their CRC-32C (uint32). Because the block is contiguous,
// aligned, and exactly the in-memory representation of
// series.Collection.Data, a loader can bring it in with one bulk read
// into a single flat allocation — no per-series allocation — and an
// mmap-based loader on a little-endian host could use the region in
// place.
//
// The tree section follows: the flattened iSAX tree (preorder nodes with
// leaf payloads) and its CRC-32C (uint32).
//
// # Versioning policy
//
// The version field is bumped on any incompatible layout change; readers
// reject versions they do not know (ErrVersion) rather than guessing.
// Unknown flag bits are rejected the same way, so a file written by a
// newer minor revision with extra semantics cannot be silently
// misinterpreted.
//
// Version 2 changed the leaf word layout inside the tree section from
// entry-major (one w-byte word per entry) to segment-major (w contiguous
// symbol columns per leaf) — the layout the query kernels scan, so a
// mapped load aliases leaf payloads with no conversion. Version 1 files
// remain readable: the decoder transposes their leaf words on load.
//
// # Contracts
//
// Write is atomic at the file level: writers should emit to a temp file
// and rename (cmd/messi-serve's snapshot endpoint does), so a crashed
// writer never leaves a half-written snapshot under the published name.
// Every section is independently checksummed; Load verifies header,
// series block, and tree section CRCs before returning an index, and a
// corrupt file fails with a sentinel error naming the damaged section
// rather than producing a silently wrong index. Sharded indexes snapshot
// as one file per shard plus a manifest binding the shard files to their
// routing (round-robin, shard count) so a load cannot mix files from
// different snapshots.
package persist
