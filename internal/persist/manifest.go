package persist

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/shard"
)

// fpManifest fires where a crash or disk failure would interrupt a
// sharded save after its shard files are written but before the
// manifest lands — the instant that must leave the previous snapshot
// intact.
var fpManifest = fault.Register("persist.manifest.write")

// This file defines the multi-shard snapshot layout: a DIRECTORY (not a
// new snapshot format version) holding one ordinary single-index snapshot
// file per shard plus a checksummed manifest naming them:
//
//	<dir>/MANIFEST                   magic + length-prefixed JSON + CRC-32C
//	<dir>/shard-0000-<token>.snap    ordinary snapshot (format v2) of shard 0
//	<dir>/shard-0001-<token>.snap    ...
//
// The token is fresh per save, so re-saving over an existing snapshot
// directory never overwrites the files the current manifest names: a
// crash mid-save leaves the old manifest pointing at intact old files
// (strays from the aborted save are swept by the next successful one).
// Only after the new manifest is atomically renamed into place do the
// previous save's shard files become garbage and get removed.
//
// Each shard file is self-describing and individually checksummed, so the
// manifest only records the partition: the shard count, the collection
// shape, and the per-shard file names (empty for shards whose round-robin
// slice is empty). Shards are written and loaded in parallel; cross-shard
// consistency (round-robin counts, matching schema and normalize flags) is
// validated on load.

// ManifestMagic identifies a shard-manifest file (distinct from both the
// snapshot magic "MESSIIX1" and the dataset magic "MESSIDS1").
const ManifestMagic = "MESSIMF1"

// ManifestName is the manifest's file name inside a sharded snapshot
// directory.
const ManifestName = "MANIFEST"

// ManifestVersion is the current manifest payload version.
const ManifestVersion = 1

// manifestHeaderSize is the fixed prefix: 8 magic bytes plus the uint32
// payload length.
const manifestHeaderSize = 12

// maxManifestPayload bounds the JSON payload a manifest header may claim.
const maxManifestPayload = 1 << 20

// Manifest describes a sharded snapshot directory.
type Manifest struct {
	Version     int      `json:"version"`
	Shards      int      `json:"shards"`
	SeriesLen   int      `json:"series_len"`
	SeriesCount int      `json:"series_count"`
	Files       []string `json:"files"`
}

// EncodeManifest renders the manifest into its on-disk form: magic,
// little-endian payload length, JSON payload, CRC-32C of the payload.
func EncodeManifest(m Manifest) ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("persist: encode manifest: %w", err)
	}
	out := make([]byte, 0, manifestHeaderSize+len(payload)+4)
	out = append(out, ManifestMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out, nil
}

// ParseManifest decodes and validates a manifest file image. Like
// ParseHeader it returns a typed error (ErrTruncated, ErrBadMagic,
// ErrVersion, ErrChecksum, ErrCorrupt) for the first problem found and
// never panics on arbitrary input.
func ParseManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < manifestHeaderSize {
		return m, fmt.Errorf("%w: manifest is %d bytes, want at least %d", ErrTruncated, len(b), manifestHeaderSize)
	}
	if string(b[:8]) != ManifestMagic {
		return m, fmt.Errorf("%w: %q", ErrBadMagic, b[:8])
	}
	n := binary.LittleEndian.Uint32(b[8:12])
	if n > maxManifestPayload {
		return m, fmt.Errorf("%w: manifest claims a %d-byte payload", ErrCorrupt, n)
	}
	if len(b) < manifestHeaderSize+int(n)+4 {
		return m, fmt.Errorf("%w: manifest ends inside its payload", ErrTruncated)
	}
	payload := b[manifestHeaderSize : manifestHeaderSize+int(n)]
	stored := binary.LittleEndian.Uint32(b[manifestHeaderSize+int(n):])
	if got := crc32.Checksum(payload, castagnoli); got != stored {
		return m, fmt.Errorf("%w: manifest CRC %08x, stored %08x", ErrChecksum, got, stored)
	}
	if rest := len(b) - (manifestHeaderSize + int(n) + 4); rest != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes after the manifest checksum", ErrCorrupt, rest)
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("%w: manifest payload: %w", ErrCorrupt, err)
	}
	if m.Version != ManifestVersion {
		return m, fmt.Errorf("%w: manifest version %d, this reader understands %d", ErrVersion, m.Version, ManifestVersion)
	}
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

// validate checks the manifest's internal consistency and that every file
// name is a plain name inside the snapshot directory (a manifest must not
// be able to point the loader at arbitrary paths).
func (m Manifest) validate() error {
	if m.Shards < 1 || m.Shards > shard.MaxShards {
		return fmt.Errorf("%w: manifest declares %d shards", ErrCorrupt, m.Shards)
	}
	if len(m.Files) != m.Shards {
		return fmt.Errorf("%w: manifest lists %d files for %d shards", ErrCorrupt, len(m.Files), m.Shards)
	}
	if m.SeriesLen < 1 || m.SeriesLen > maxSeriesLen {
		return fmt.Errorf("%w: manifest declares series length %d", ErrCorrupt, m.SeriesLen)
	}
	if m.SeriesCount < 1 || uint64(m.SeriesCount)*uint64(m.SeriesLen) > maxPoints {
		return fmt.Errorf("%w: manifest declares %d series × %d points", ErrCorrupt, m.SeriesCount, m.SeriesLen)
	}
	seen := make(map[string]struct{}, len(m.Files))
	for s, name := range m.Files {
		if name == "" {
			continue // empty round-robin slice
		}
		if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
			return fmt.Errorf("%w: manifest shard %d file name %q escapes the snapshot directory", ErrCorrupt, s, name)
		}
		if name == ManifestName {
			return fmt.Errorf("%w: manifest shard %d uses the reserved file name %q", ErrCorrupt, s, name)
		}
		if _, dup := seen[name]; dup {
			return fmt.Errorf("%w: manifest names %q for two shards", ErrCorrupt, name)
		}
		seen[name] = struct{}{}
	}
	return nil
}

// shardFileName is the per-shard snapshot file name: the shard number
// plus a per-save token (see the package comment on crash safety).
func shardFileName(s int, token string) string {
	return fmt.Sprintf("shard-%04d-%s.snap", s, token)
}

// saveToken returns a fresh random token distinguishing one save's shard
// files from every earlier save into the same directory.
func saveToken() (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("persist: save token: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// dirSaves serializes WriteShardedDir calls per target directory (keyed
// by cleaned path): without it, two in-process saves — a Flush
// auto-snapshot racing a POST /v1/snapshot — could sweep each other's
// in-flight shard files and leave a manifest naming deleted files.
// Concurrent saves into one directory from SEPARATE processes remain the
// caller's responsibility, as with any shared file target.
var dirSaves sync.Map // map[string]*sync.Mutex

// WriteShardedDir persists a sharded index as a snapshot directory: one
// snapshot file per non-empty shard (written concurrently, each atomically
// via WriteFile, under fresh per-save names) plus the checksummed
// manifest, written last. Because shard files are never overwritten in
// place, re-saving over an existing snapshot directory is crash-safe: a
// crash before the manifest rename leaves the previous manifest naming
// its intact files; the moment the rename lands, the new snapshot is
// complete and the superseded shard files are swept (best-effort).
// In-process saves to the same directory are serialized.
func writeShardedDir(dir string, x *shard.Index, normalize bool) error {
	if x == nil || x.Len() == 0 {
		return fmt.Errorf("persist: cannot snapshot an empty sharded index")
	}
	muAny, _ := dirSaves.LoadOrStore(filepath.Clean(dir), &sync.Mutex{})
	mu := muAny.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	token, err := saveToken()
	if err != nil {
		return err
	}
	S := x.NumShards()
	m := Manifest{
		Version:     ManifestVersion,
		Shards:      S,
		SeriesLen:   x.SeriesLen(),
		SeriesCount: x.Len(),
		Files:       make([]string, S),
	}
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		sh := x.Shard(s)
		if sh == nil {
			continue
		}
		m.Files[s] = shardFileName(s, token)
		wg.Add(1)
		go func(s int, sh *core.Index) {
			defer wg.Done()
			errs[s] = WriteFile(filepath.Join(dir, shardFileName(s, token)), sh, normalize)
		}(s, sh)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			// Abort: remove this save's already-written shard files so
			// a failed save never leaves strays for the next sweep.
			removeSaveFiles(dir, m.Files)
			return fmt.Errorf("persist: shard %d: %w", s, err)
		}
	}
	if err := fpManifest.Hit(); err != nil {
		removeSaveFiles(dir, m.Files)
		return fmt.Errorf("persist: write manifest: %w", err)
	}

	enc, err := EncodeManifest(m)
	if err != nil {
		removeSaveFiles(dir, m.Files)
		return err
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(enc); err == nil {
		err = tmp.Sync()
	}
	if err == nil {
		err = tmp.Chmod(0o644)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, filepath.Join(dir, ManifestName))
	}
	if err != nil {
		os.Remove(name)
		removeSaveFiles(dir, m.Files)
		return fmt.Errorf("persist: write manifest: %w", err)
	}
	sweepStaleShards(dir, m.Files)
	return nil
}

// removeSaveFiles deletes the shard files of an aborted save
// (best-effort): the save failed, so nothing references them, and
// leaving them would accumulate one dataset copy per failed save.
func removeSaveFiles(dir string, files []string) {
	for _, name := range files {
		if name != "" {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// sweepStaleShards removes shard snapshot files not named by the
// just-written manifest — earlier saves' files and strays from aborted
// saves — plus manifest temp files a crash may have orphaned.
// Best-effort: a leftover file costs disk space, never correctness, so
// errors are ignored.
func sweepStaleShards(dir string, live []string) {
	keep := make(map[string]struct{}, len(live))
	for _, name := range live {
		if name != "" {
			keep[name] = struct{}{}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		stale := strings.HasPrefix(name, ManifestName+".tmp") // orphaned temp manifest
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".snap") {
			_, ok := keep[name]
			stale = !ok
		}
		// WriteFile temp files (shard-....snap.tmp*) orphaned by a
		// crash mid-save are strays too.
		if strings.HasPrefix(name, "shard-") && strings.Contains(name, ".snap.tmp") {
			stale = true
		}
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// ReadShardedDir loads a snapshot directory written by WriteShardedDir:
// the manifest is parsed and validated, the shard files are loaded in
// parallel (each through the ordinary snapshot reader, mmap fast path
// included), and the shards are reassembled with full cross-shard
// validation. The returned bool is the shards' common normalize flag.
//
// A writer in ANOTHER process may replace the snapshot between our
// manifest read and the shard-file opens (its post-save sweep unlinks the
// superseded files — unlike a single-file snapshot, where the rename
// leaves the old inode openable). A vanished shard file therefore means
// "the manifest we read was superseded": re-read the manifest and retry
// rather than failing a snapshot that was valid when observed.
func readShardedDir(dir string) (*shard.Index, bool, error) {
	const retries = 3
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		var x *shard.Index
		var normalize bool
		x, normalize, err = readShardedDirOnce(dir)
		if err == nil || !errors.Is(err, fs.ErrNotExist) || attempt == retries {
			return x, normalize, err
		}
	}
	return nil, false, err
}

func readShardedDirOnce(dir string) (*shard.Index, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, false, fmt.Errorf("persist: %w", err)
	}
	m, err := ParseManifest(raw)
	if err != nil {
		return nil, false, fmt.Errorf("%w (manifest in %s)", err, dir)
	}

	cores := make([]*core.Index, m.Shards)
	norms := make([]bool, m.Shards)
	errs := make([]error, m.Shards)
	var wg sync.WaitGroup
	for s, name := range m.Files {
		if name == "" {
			continue
		}
		wg.Add(1)
		go func(s int, name string) {
			defer wg.Done()
			cores[s], norms[s], errs[s] = ReadFile(filepath.Join(dir, name))
		}(s, name)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, false, fmt.Errorf("persist: shard %d: %w", s, err)
		}
	}

	x, err := shard.FromCores(cores)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if x.Len() != m.SeriesCount || x.SeriesLen() != m.SeriesLen {
		return nil, false, fmt.Errorf("%w: manifest declares %d series × %d points, shards hold %d × %d",
			ErrCorrupt, m.SeriesCount, m.SeriesLen, x.Len(), x.SeriesLen())
	}
	normalize := false
	for s, c := range cores {
		if c == nil {
			continue
		}
		normalize = norms[s]
		break
	}
	for s, c := range cores {
		if c != nil && norms[s] != normalize {
			return nil, false, fmt.Errorf("%w: shard %d normalize flag differs from its siblings", ErrCorrupt, s)
		}
	}
	return x, normalize, nil
}

// IsShardedDir reports whether path looks like a sharded snapshot
// directory (a directory containing a manifest file).
func IsShardedDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}
