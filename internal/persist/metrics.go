package persist

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// Snapshot I/O telemetry. The persist API is package-level functions, so
// the hook is a package-level registry installed once at process startup
// (SetMetrics); the instrumented exported entry points here wrap the
// unexported implementations. A nil (never-installed) hook costs one
// atomic pointer load per snapshot operation — nothing on query paths.

// persistInstruments is the registered instrument set.
type persistInstruments struct {
	saveSeconds  *metrics.Histogram
	loadSeconds  *metrics.Histogram
	saveBytes    *metrics.Counter
	loadBytes    *metrics.Counter
	saveFailures *metrics.Counter
	loadFailures *metrics.Counter
}

var instruments atomic.Pointer[persistInstruments]

// SetMetrics installs the snapshot I/O telemetry on r: save/load wall
// time histograms, cumulative bytes written/read, and failure counters.
// Passing nil uninstalls. Safe for concurrent use with snapshot I/O.
func SetMetrics(r *metrics.Registry) {
	if r == nil {
		instruments.Store(nil)
		return
	}
	instruments.Store(&persistInstruments{
		saveSeconds: r.Histogram("messi_snapshot_save_seconds",
			"Wall time of snapshot writes (single files and sharded directories)."),
		loadSeconds: r.Histogram("messi_snapshot_load_seconds",
			"Wall time of snapshot loads (single files and sharded directories)."),
		saveBytes: r.Counter("messi_snapshot_save_bytes_total",
			"Cumulative bytes written by successful snapshot saves."),
		loadBytes: r.Counter("messi_snapshot_load_bytes_total",
			"Cumulative bytes read by successful snapshot loads."),
		saveFailures: r.Counter("messi_snapshot_save_failures_total",
			"Snapshot saves that returned an error."),
		loadFailures: r.Counter("messi_snapshot_load_failures_total",
			"Snapshot loads that returned an error."),
	})
}

// observe records one snapshot operation against the installed hook.
func observe(dur *metrics.Histogram, bytes, failures *metrics.Counter, path string, elapsed time.Duration, err error) {
	if err != nil {
		failures.Inc()
		return
	}
	dur.Observe(elapsed)
	bytes.Add(pathSize(path))
}

// pathSize reports the on-disk size of a snapshot: the file's size, or
// for a sharded directory the sum of the files inside it.
func pathSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	if !fi.IsDir() {
		return fi.Size()
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			total += info.Size()
		}
	}
	return total
}

// WriteFile atomically writes the index snapshot to path (see writeFile
// for the temp-file + rename contract), recording save telemetry when a
// metrics registry is installed via SetMetrics.
func WriteFile(path string, ix *core.Index, normalize bool) error {
	start := time.Now()
	err := writeFile(path, ix, normalize)
	if m := instruments.Load(); m != nil {
		observe(m.saveSeconds, m.saveBytes, m.saveFailures, path, time.Since(start), err)
	}
	return err
}

// ReadFile loads an index snapshot from path (see readFile for the mmap
// fast path), recording load telemetry when a metrics registry is
// installed via SetMetrics.
func ReadFile(path string) (*core.Index, bool, error) {
	start := time.Now()
	ix, normalize, err := readFile(path)
	if m := instruments.Load(); m != nil {
		observe(m.loadSeconds, m.loadBytes, m.loadFailures, path, time.Since(start), err)
	}
	return ix, normalize, err
}

// WriteShardedDir writes a sharded snapshot directory (see
// writeShardedDir for the manifest contract), recording save telemetry
// when a metrics registry is installed via SetMetrics.
func WriteShardedDir(dir string, x *shard.Index, normalize bool) error {
	start := time.Now()
	err := writeShardedDir(dir, x, normalize)
	if m := instruments.Load(); m != nil {
		observe(m.saveSeconds, m.saveBytes, m.saveFailures, filepath.Clean(dir), time.Since(start), err)
	}
	return err
}

// ReadShardedDir loads a sharded snapshot directory (see readShardedDir
// for the retry contract), recording load telemetry when a metrics
// registry is installed via SetMetrics.
func ReadShardedDir(dir string) (*shard.Index, bool, error) {
	start := time.Now()
	x, normalize, err := readShardedDir(dir)
	if m := instruments.Load(); m != nil {
		observe(m.loadSeconds, m.loadBytes, m.loadFailures, filepath.Clean(dir), time.Since(start), err)
	}
	return x, normalize, err
}
