//go:build !unix

package persist

import "os"

// mmapFile reports that memory-mapped loading is unavailable on this
// platform; ReadFile falls back to streaming reads.
func mmapFile(f *os.File) ([]byte, bool) { return nil, false }
