package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hash/crc32"

	"repro/internal/core"
	"repro/internal/dataset"
)

// buildIndex constructs a small index over deterministic data.
func buildIndex(t testing.TB, count, length, leafCap int) *core.Index {
	t.Helper()
	col, err := dataset.Generate(dataset.RandomWalk, count, length, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(col, core.Options{LeafCapacity: leafCap})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// snapshotBytes serializes ix in memory.
func snapshotBytes(t testing.TB, ix *core.Index, normalize bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, ix, normalize); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	ix := buildIndex(t, 2000, 64, 32)
	raw := snapshotBytes(t, ix, true)

	got, normalize, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !normalize {
		t.Error("normalize flag lost")
	}
	if got.Data.Count() != ix.Data.Count() || got.Data.Length != ix.Data.Length {
		t.Fatalf("restored %d×%d, want %d×%d", got.Data.Count(), got.Data.Length, ix.Data.Count(), ix.Data.Length)
	}
	for i, v := range ix.Data.Data {
		if got.Data.Data[i] != v {
			t.Fatalf("series data differs at flat offset %d: %v vs %v", i, got.Data.Data[i], v)
		}
	}
	if gs, ws := got.Stats(), ix.Stats(); gs != ws {
		t.Fatalf("restored tree stats %+v, want %+v", gs, ws)
	}
	if err := got.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if gotOpts, wantOpts := got.Opts, ix.Opts; gotOpts.Segments != wantOpts.Segments ||
		gotOpts.CardBits != wantOpts.CardBits || gotOpts.LeafCapacity != wantOpts.LeafCapacity {
		t.Fatalf("restored opts %+v, want %+v", gotOpts, wantOpts)
	}

	// Restored index answers identically (exhaustive over a few queries).
	for qi := 0; qi < 5; qi++ {
		q := ix.Data.At(qi * 101)
		want, err := ix.Search(q, core.SearchOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Search(q, core.SearchOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if have != want {
			t.Fatalf("query %d: restored answered %+v, built answered %+v", qi, have, want)
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	ix := buildIndex(t, 500, 32, 16)
	path := filepath.Join(t.TempDir(), "ix.snap")
	if err := WriteFile(path, ix, false); err != nil {
		t.Fatal(err)
	}
	got, normalize, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if normalize {
		t.Error("normalize flag set out of nowhere")
	}
	if gs, ws := got.Stats(), ix.Stats(); gs != ws {
		t.Fatalf("restored tree stats %+v, want %+v", gs, ws)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot directory holds %d entries, want just the snapshot", len(entries))
	}
}

// TestReadFileCorruption exercises the corruption paths through ReadFile
// (the memory-mapped loader on unix), not just the streaming Read.
func TestReadFileCorruption(t *testing.T) {
	ix := buildIndex(t, 400, 32, 16)
	dir := t.TempDir()
	write := func(t *testing.T, mutate func(b []byte) []byte) string {
		t.Helper()
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".snap")
		raw := snapshotBytes(t, ix, false)
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		want   error
	}{
		{"flipped data byte", func(b []byte) []byte { b[HeaderSize+9] ^= 0x40; return b }, ErrChecksum},
		{"flipped tree byte", func(b []byte) []byte { b[len(b)-5] ^= 0x40; return b }, ErrChecksum},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, ErrCorrupt},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := write(t, tc.mutate)
			if _, _, err := ReadFile(path); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCorruptionTyped: every corruption mode returns its typed sentinel.
func TestCorruptionTyped(t *testing.T) {
	ix := buildIndex(t, 800, 64, 32)
	raw := snapshotBytes(t, ix, false)

	reread := func(b []byte) error {
		_, _, err := Read(bytes.NewReader(b))
		return err
	}

	t.Run("truncated header", func(t *testing.T) {
		if err := reread(raw[:HeaderSize-10]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated series block", func(t *testing.T) {
		if err := reread(raw[:HeaderSize+100]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated tree section", func(t *testing.T) {
		if err := reread(raw[:len(raw)-6]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := bytes.Clone(raw)
		copy(b, "MESSIDS1") // a dataset file is not a snapshot
		if err := reread(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		b := bytes.Clone(raw)
		binary.LittleEndian.PutUint32(b[8:12], Version+1)
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		if err := reread(b); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		b := bytes.Clone(raw)
		binary.LittleEndian.PutUint32(b[12:16], 0x80)
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		if err := reread(b); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("header checksum mismatch", func(t *testing.T) {
		b := bytes.Clone(raw)
		b[33] ^= 0xff // series count tampered, CRC not recomputed
		if err := reread(b); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("series block checksum mismatch", func(t *testing.T) {
		b := bytes.Clone(raw)
		b[HeaderSize+17] ^= 0x01
		if err := reread(b); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("tree section checksum mismatch", func(t *testing.T) {
		b := bytes.Clone(raw)
		b[len(b)-5] ^= 0x01 // inside the tree payload, before its CRC
		if err := reread(b); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("series length/segments mismatch", func(t *testing.T) {
		b := bytes.Clone(raw)
		binary.LittleEndian.PutUint32(b[28:32], 63) // not a multiple of 16 segments
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		if err := reread(b); !errors.Is(err, ErrSchemaMismatch) {
			t.Fatalf("err = %v, want ErrSchemaMismatch", err)
		}
	})
	t.Run("segments out of range", func(t *testing.T) {
		b := bytes.Clone(raw)
		binary.LittleEndian.PutUint32(b[16:20], 99)
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		if err := reread(b); !errors.Is(err, ErrSchemaMismatch) {
			t.Fatalf("err = %v, want ErrSchemaMismatch", err)
		}
	})
	t.Run("overflowing count*length product", func(t *testing.T) {
		// Regression: SeriesCount=1<<61 × SeriesLen=8 wraps uint64 to 0,
		// which once slipped past the maxPoints guard and panicked in the
		// mapped decoder. Must be a typed error through both loaders.
		b := bytes.Clone(raw[:HeaderSize])
		binary.LittleEndian.PutUint64(b[32:40], 1<<61)
		binary.LittleEndian.PutUint32(b[28:32], 8)
		binary.LittleEndian.PutUint32(b[16:20], 8) // segments dividing 8
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		b = append(b, make([]byte, 16)...) // a few bytes past the header
		if err := reread(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("streaming err = %v, want ErrCorrupt", err)
		}
		path := filepath.Join(t.TempDir(), "overflow.snap")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mapped err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd series count", func(t *testing.T) {
		b := bytes.Clone(raw)
		binary.LittleEndian.PutUint64(b[32:40], 1<<40)
		binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
		if err := reread(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("tree/series count mismatch", func(t *testing.T) {
		// Claim one fewer series: checksums recomputed so decode reaches
		// the tree/data consistency check, which must reject the mismatch
		// (the tree stores 800 positions for a 799-series collection).
		b := buildDoctoredCountSnapshot(t, raw, 799)
		err := reread(b)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

// buildDoctoredCountSnapshot rewrites raw to claim newCount series,
// shortening the series block accordingly and fixing every checksum, so
// only the semantic tree/data mismatch remains.
func buildDoctoredCountSnapshot(t *testing.T, raw []byte, newCount int) []byte {
	t.Helper()
	h, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	oldBlock := h.SeriesCount * h.SeriesLen * 4
	newBlock := newCount * h.SeriesLen * 4
	var b bytes.Buffer
	hdr := bytes.Clone(raw[:HeaderSize])
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(newCount))
	binary.LittleEndian.PutUint32(hdr[60:64], crc32Of(hdr[:60]))
	b.Write(hdr)
	block := raw[HeaderSize : HeaderSize+newBlock]
	b.Write(block)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32Of(block))
	b.Write(crcb[:])
	b.Write(raw[HeaderSize+oldBlock+4:]) // tree section + its CRC, unchanged
	return b.Bytes()
}

func crc32Of(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

func TestParseHeaderRoundTrip(t *testing.T) {
	h := Header{
		Version:      Version,
		Normalize:    true,
		Segments:     16,
		CardBits:     8,
		LeafCapacity: 2000,
		SeriesLen:    256,
		SeriesCount:  123456,
		TreeBytes:    9876,
		DataOffset:   HeaderSize,
	}
	enc := h.encode()
	got, err := ParseHeader(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("ParseHeader(encode(h)) = %+v, want %+v", got, h)
	}
}

// TestSnapshotSharesNoState: mutating the restored index's data must not
// affect a second restore from the same bytes (decode owns its memory).
func TestSnapshotSharesNoState(t *testing.T) {
	ix := buildIndex(t, 300, 32, 16)
	raw := snapshotBytes(t, ix, false)
	a, _, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data.Data {
		a.Data.Data[i] = float32(math.Inf(1))
	}
	b, _, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Data.Validate(); err != nil {
		t.Fatalf("second restore sees first restore's mutations: %v", err)
	}
}

// TestEmptyCollectionRejected: Write only accepts built (non-empty)
// indexes; a header claiming zero series is corrupt.
func TestZeroSeriesHeaderRejected(t *testing.T) {
	ix := buildIndex(t, 100, 32, 16)
	raw := snapshotBytes(t, ix, false)
	b := bytes.Clone(raw)
	binary.LittleEndian.PutUint64(b[32:40], 0)
	binary.LittleEndian.PutUint32(b[60:64], crc32Of(b[:60]))
	if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// encodeV1Snapshot serializes ix in the legacy version-1 layout —
// entry-major leaf words — to exercise the reader's compatibility
// transpose. It mirrors Write otherwise (little-endian hosts only, which
// is all CI runs on).
func encodeV1Snapshot(t testing.TB, ix *core.Index, normalize bool) []byte {
	t.Helper()
	if !hostLittleEndian {
		t.Skip("v1 fixture writer assumes a little-endian host")
	}
	st := ix.Snapshot()
	w := st.Opts.Segments

	var tb bytes.Buffer
	putU32 := func(v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		tb.Write(tmp[:])
	}
	putU32(uint32(len(st.Tree.RootSlots)))
	putU32(uint32(len(st.Tree.Nodes)))
	for i := range st.Tree.RootSlots {
		putU32(uint32(st.Tree.RootSlots[i]))
		putU32(uint32(st.Tree.RootNodes[i]))
	}
	for i := range st.Tree.Nodes {
		n := &st.Tree.Nodes[i]
		var flags uint8
		if n.IsLeaf() {
			flags |= treeFlagLeaf
		}
		if n.Unsplittable {
			flags |= treeFlagUnsplittable
		}
		tb.WriteByte(flags)
		tb.Write(n.Symbols)
		tb.Write(n.Bits)
		if n.IsLeaf() {
			count := len(n.Positions)
			putU32(uint32(count))
			// n.Words is segment-major packed; v1 stores entry-major.
			for e := 0; e < count; e++ {
				for s := 0; s < w; s++ {
					tb.WriteByte(n.Words[s*count+e])
				}
			}
			for _, p := range n.Positions {
				putU32(uint32(p))
			}
		} else {
			tb.WriteByte(n.SplitSegment)
			putU32(uint32(n.Left))
			putU32(uint32(n.Right))
		}
	}
	treePayload := tb.Bytes()

	h := Header{
		Version:      versionV1,
		Normalize:    normalize,
		Segments:     st.Opts.Segments,
		CardBits:     st.Opts.CardBits,
		LeafCapacity: st.Opts.LeafCapacity,
		SeriesLen:    st.Data.Length,
		SeriesCount:  st.Data.Count(),
		TreeBytes:    int64(len(treePayload)),
		DataOffset:   HeaderSize,
	}
	var out bytes.Buffer
	hdr := h.encode()
	out.Write(hdr[:])
	raw := float32Bytes(st.Data.Data)
	out.Write(raw)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.Checksum(raw, castagnoli))
	out.Write(tmp[:])
	out.Write(treePayload)
	binary.LittleEndian.PutUint32(tmp[:], crc32.Checksum(treePayload, castagnoli))
	out.Write(tmp[:])
	return out.Bytes()
}

// searchAnswers collects 1-NN, k-NN and DTW answers for a deterministic
// query workload so two indexes can be compared for exact equality.
func searchAnswers(t testing.TB, ix *core.Index) []core.Match {
	t.Helper()
	queries, err := dataset.Generate(dataset.RandomWalk, 10, ix.Data.Length, 77)
	if err != nil {
		t.Fatal(err)
	}
	var out []core.Match
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		m, err := ix.Search(q, core.SearchOptions{Workers: 4, Queues: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
		ms, err := ix.SearchKNN(q, 3, core.SearchOptions{Workers: 4, Queues: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
		d, err := ix.SearchDTW(q, 2, core.SearchOptions{Workers: 4, Queues: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestReadV1Snapshot checks that legacy entry-major snapshots load and
// answer queries identically to the index they captured — through both
// the streaming reader and the mapped-file path.
func TestReadV1Snapshot(t *testing.T) {
	ix := buildIndex(t, 1500, 64, 32)
	raw := encodeV1Snapshot(t, ix, false)

	got, normalize, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if normalize {
		t.Error("normalize flag invented")
	}
	want := searchAnswers(t, ix)
	have := searchAnswers(t, got)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("answer %d differs after v1 load: %+v vs %+v", i, have[i], want[i])
		}
	}

	path := filepath.Join(t.TempDir(), "v1.snap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	have = searchAnswers(t, mapped)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("answer %d differs after mapped v1 load: %+v vs %+v", i, have[i], want[i])
		}
	}
}

// TestRoundTripIdenticalAnswers pins the acceptance criterion that a
// snapshot round trip through the current format yields an index whose
// 1-NN, k-NN and DTW answers are exactly those of the original.
func TestRoundTripIdenticalAnswers(t *testing.T) {
	ix := buildIndex(t, 1500, 64, 32)
	got, _, err := Read(bytes.NewReader(snapshotBytes(t, ix, false)))
	if err != nil {
		t.Fatal(err)
	}
	want := searchAnswers(t, ix)
	have := searchAnswers(t, got)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("answer %d differs after round trip: %+v vs %+v", i, have[i], want[i])
		}
	}
}
