package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// listStrays returns every temp/shard stray in dir that a failed save
// must not leave behind.
func listStrays(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var strays []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			strays = append(strays, e.Name())
		}
	}
	return strays
}

// A failed snapshot write — at any of the write, sync, or rename
// instants — must surface the underlying error and leave no temp file.
func TestWriteFileFailureLeavesNoTemp(t *testing.T) {
	ix := buildIndex(t, 200, 32, 16)
	for _, point := range []string{
		"persist.writefile.write",
		"persist.writefile.sync",
		"persist.writefile.rename",
	} {
		t.Run(point, func(t *testing.T) {
			t.Cleanup(fault.DisarmAll)
			dir := t.TempDir()
			path := filepath.Join(dir, "ix.snap")
			if err := fault.Arm(point, fault.Spec{Action: fault.Error}); err != nil {
				t.Fatal(err)
			}
			err := WriteFile(path, ix, false)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("WriteFile = %v, want the injected error surfaced", err)
			}
			if strays := listStrays(t, dir); len(strays) != 0 {
				t.Fatalf("failed save left temp strays: %v", strays)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("failed save left a target file: %v", err)
			}
			// A retry with the fault gone succeeds into the same path.
			if err := WriteFile(path, ix, false); err != nil {
				t.Fatalf("retry: %v", err)
			}
		})
	}
}

// A sharded save that dies before the manifest lands must clean up its
// own shard files and leave a previous snapshot fully loadable.
func TestShardedSaveAbortCleansUp(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	x := buildSharded(t, 300, 3)
	dir := t.TempDir()
	if err := WriteShardedDir(dir, x, false); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{"persist.writefile.write", "persist.manifest.write"} {
		if err := fault.Arm(point, fault.Spec{Action: fault.Error}); err != nil {
			t.Fatal(err)
		}
		if err := WriteShardedDir(dir, x, false); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: WriteShardedDir = %v, want injected error", point, err)
		}
		after, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != len(before) {
			t.Fatalf("%s: aborted save changed directory contents: %d files, want %d", point, len(after), len(before))
		}
		loaded, _, err := ReadShardedDir(dir)
		if err != nil {
			t.Fatalf("%s: previous snapshot unreadable after aborted save: %v", point, err)
		}
		if loaded.Len() != x.Len() {
			t.Fatalf("%s: previous snapshot lost series: %d, want %d", point, loaded.Len(), x.Len())
		}
	}
}

// Strays from a crashed save (shard temp files that never reached
// rename) are removed by the next successful save's sweep.
func TestSweepRemovesCrashedTempStrays(t *testing.T) {
	x := buildSharded(t, 300, 2)
	dir := t.TempDir()
	if err := WriteShardedDir(dir, x, false); err != nil {
		t.Fatal(err)
	}
	// Plant what a kill mid-WriteFile leaves behind: a half-written
	// shard temp and an orphaned old shard file.
	stray1 := filepath.Join(dir, "shard-0001-deadbeef.snap.tmp123")
	stray2 := filepath.Join(dir, "shard-0001-deadbeef.snap")
	for _, s := range []string{stray1, stray2} {
		if err := os.WriteFile(s, []byte("half"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteShardedDir(dir, x, false); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{stray1, stray2} {
		if _, err := os.Stat(s); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("sweep left stray %s", filepath.Base(s))
		}
	}
	if _, _, err := ReadShardedDir(dir); err != nil {
		t.Fatal(err)
	}
}
