package persist

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// FuzzParseHeader drives arbitrary bytes through the snapshot header
// decoder: it must never panic, must reject anything whose checksum does
// not validate, and on acceptance must be canonical (re-encoding the
// parsed header reproduces the input bytes exactly).
func FuzzParseHeader(f *testing.F) {
	valid := Header{
		Version:      Version,
		Normalize:    true,
		Segments:     16,
		CardBits:     8,
		LeafCapacity: 2000,
		SeriesLen:    256,
		SeriesCount:  1000,
		TreeBytes:    4096,
		DataOffset:   HeaderSize,
	}.encodeSeed()
	f.Add(valid)
	f.Add([]byte(Magic))
	f.Add(bytes.Repeat([]byte{0}, HeaderSize))
	corrupted := bytes.Clone(valid)
	corrupted[20] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := ParseHeader(b)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrSchemaMismatch) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped header error: %v", err)
			}
			return
		}
		enc := h.encode()
		if !bytes.Equal(enc[:], b[:HeaderSize]) {
			t.Fatalf("accepted header is not canonical:\n got %x\nfrom %x", enc, b[:HeaderSize])
		}
	})
}

// encodeSeed is a test-only convenience producing the header bytes as a
// plain slice for fuzz seeding.
func (h Header) encodeSeed() []byte {
	b := h.encode()
	return b[:]
}

// FuzzRead feeds mutated snapshot files through the full decoder: every
// outcome must be either a typed error or a structurally valid index.
func FuzzRead(f *testing.F) {
	col, err := dataset.Generate(dataset.RandomWalk, 64, 32, 5)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := core.Build(col, core.Options{LeafCapacity: 8})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ix, false); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:HeaderSize])

	f.Fuzz(func(t *testing.T, b []byte) {
		got, _, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		if verr := got.Tree.CheckInvariants(); verr != nil {
			t.Fatalf("accepted snapshot decodes to an invalid tree: %v", verr)
		}
	})
}

// FuzzParseManifest drives arbitrary bytes through the shard-manifest
// decoder: it must never panic, and every rejection must carry one of the
// package's typed sentinel errors.
func FuzzParseManifest(f *testing.F) {
	valid, err := EncodeManifest(Manifest{
		Version:     ManifestVersion,
		Shards:      4,
		SeriesLen:   32,
		SeriesCount: 100,
		Files:       []string{"shard-0000.snap", "shard-0001.snap", "shard-0002.snap", "shard-0003.snap"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(ManifestMagic))
	f.Add(bytes.Repeat([]byte{0}, 16))
	corrupted := bytes.Clone(valid)
	corrupted[len(corrupted)/2] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := ParseManifest(b)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped manifest error: %v", err)
			}
			return
		}
		// An accepted manifest must re-validate and re-encode cleanly.
		if _, err := EncodeManifest(m); err != nil {
			t.Fatalf("accepted manifest fails to re-encode: %v", err)
		}
	})
}
