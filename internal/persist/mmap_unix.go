//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file copy-on-write. The mapping is
// intentionally never unmapped: the restored index aliases it for its
// whole lifetime (a process typically loads one snapshot at boot).
// MAP_PRIVATE means neither later in-place writes through the index (there
// are none today) nor the mapping itself can modify the file, and
// WriteFile replaces snapshots by rename (fresh inode), so an existing
// mapping never observes a rewrite.
func mmapFile(f *os.File) ([]byte, bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || fi.Size() != int64(int(fi.Size())) {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false
	}
	return b, true
}
