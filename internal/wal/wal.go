// Package wal implements the append-only write-ahead log that makes
// LiveIndex ingestion crash-safe.
//
// Every acked Append/AppendBatch on the live index is journaled here
// before it touches the in-memory delta buffer. On boot the log is
// replayed on top of the newest snapshot, so recovery is
// snapshot + WAL replay; once a snapshot covering a prefix of the log
// lands on disk, Truncate drops the fully-covered segments.
//
// # On-disk layout
//
// The log is a directory of segment files named wal-<firstPos>.seg,
// where firstPos is the global series position of the segment's first
// record (zero-padded hex, so lexicographic order is position order).
// Each segment starts with a fixed header:
//
//	magic "MESSIWL1" | version u32 | seriesLen u32 | firstPos u64 | crc u32
//
// followed by records, one per acked Append/AppendBatch:
//
//	crc u32 | bodyLen u32 | body
//	body = type u8 | firstPos u64 | count u32 | count*seriesLen float32 LE
//
// The crc is CRC-32C (Castagnoli) over the body, the same polynomial
// the snapshot format uses. A batch is one record, so replay restores
// batch atomicity: either every row of a batch is recovered or none.
//
// # Failure semantics
//
// Append acks only bytes that are durable under the configured sync
// policy. If a write or sync fails mid-record the log rolls the
// segment back to the last record boundary, so an error return means
// the record is NOT on disk — acked ⟺ recoverable. A real crash
// (kill, power loss) can still tear the final record mid-write; Open
// tolerates exactly that by truncating a corrupt tail in the LAST
// segment, while corruption anywhere else is reported as ErrCorrupt.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// Failpoints exercised by the crash-recovery matrix. They are no-op
// nil checks unless a test arms them.
var (
	fpAppend = fault.Register("wal.append.write")
	fpRotate = fault.Register("wal.rotate")
	fpSync   = fault.Register("wal.sync")
)

const (
	segMagic   = "MESSIWL1"
	segVersion = 1
	headerSize = 8 + 4 + 4 + 8 + 4 // magic, version, seriesLen, firstPos, crc

	recType      = 1
	recHdrSize   = 4 + 4     // crc, bodyLen
	recFixedBody = 1 + 8 + 4 // type, firstPos, count
	maxBody      = 1 << 30   // sanity cap when decoding corrupt data
	segPrefix    = "wal-"
	segSuffix    = ".seg"
)

// Typed errors. ErrCorrupt means corruption that torn-tail tolerance
// cannot explain (a bad record before the end of the log); recovery
// must not silently skip it.
var (
	ErrClosed   = errors.New("wal: log closed")
	ErrCorrupt  = errors.New("wal: corrupt segment")
	ErrMismatch = errors.New("wal: series length mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when Append makes records durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: an acked append survives
	// an immediate power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery):
	// an acked append survives a process kill, and up to one interval
	// of acks may be lost on power failure.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes when it pleases. Acked
	// appends survive a process kill but not necessarily power loss.
	SyncNone
)

// ParseSyncPolicy maps the flag spellings ("always", "interval",
// "none") to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

// Options tune a Log. The zero value is production-safe: fsync on
// every append, 64 MiB segments.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one
	// reaches this size. Default 64 MiB.
	SegmentBytes int64
	// Sync is the durability policy for Append.
	Sync SyncPolicy
	// SyncEvery is the flush cadence under SyncInterval. Default
	// 100ms.
	SyncEvery time.Duration
}

func (o *Options) withDefaults() Options {
	v := Options{}
	if o != nil {
		v = *o
	}
	if v.SegmentBytes <= 0 {
		v.SegmentBytes = 64 << 20
	}
	if v.SyncEvery <= 0 {
		v.SyncEvery = 100 * time.Millisecond
	}
	return v
}

type segMeta struct {
	firstPos int64
	path     string
}

// Log is an open write-ahead log. Methods are safe for concurrent use,
// though the live index naturally serializes appends under its own
// mutex.
type Log struct {
	dir       string
	seriesLen int
	opts      Options

	mu       sync.Mutex
	segs     []segMeta // all segments, position order; last is active when f != nil
	f        *os.File  // active segment, nil until first append after Open/Truncate-all
	size     int64     // bytes written to the active segment
	next     int64     // next expected global position; -1 = adopt first append's
	start    int64     // first position still held by the log; -1 when empty
	closed   bool
	fail     error         // injected crash left torn bytes; appends refuse until reopen
	stopSync chan struct{} // interval-sync goroutine, nil unless SyncInterval
	syncWG   sync.WaitGroup
	syncErr  error // first background sync failure, surfaced on Close

	buf []byte // record encode scratch, reused across appends
}

// Open opens (creating if needed) the log in dir for series of
// seriesLen float32 points. It validates every segment, truncates a
// torn tail in the last segment, and positions the writer after the
// last intact record. Corruption before the tail returns ErrCorrupt.
func Open(dir string, seriesLen int, opts *Options) (*Log, error) {
	if seriesLen <= 0 {
		return nil, fmt.Errorf("wal: series length %d out of range", seriesLen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:       dir,
		seriesLen: seriesLen,
		opts:      opts.withDefaults(),
		next:      -1,
		start:     -1,
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if l.opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// scan discovers existing segments, validates the chain, repairs the
// tail, and opens the last segment for appending.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segMeta
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		pos, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			return fmt.Errorf("%w: unparseable segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segMeta{firstPos: pos, path: filepath.Join(l.dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstPos < segs[j].firstPos })

	// A crash during rotation can leave a trailing segment whose
	// header never made it to disk; drop it like a torn record.
	if n := len(segs); n > 0 {
		if fi, err := os.Stat(segs[n-1].path); err == nil && fi.Size() < headerSize {
			if err := os.Remove(segs[n-1].path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			segs = segs[:n-1]
		}
	}

	next := int64(-1)
	for i, s := range segs {
		last := i == len(segs)-1
		end, tailOff, err := l.validateSegment(s, next, last)
		if err != nil {
			return err
		}
		if last && tailOff >= 0 {
			// Torn tail: cut the last segment back to the last
			// intact record boundary.
			if err := os.Truncate(s.path, tailOff); err != nil {
				return fmt.Errorf("wal: repairing torn tail: %w", err)
			}
		}
		next = end
	}
	l.segs = segs
	l.next = next
	if len(segs) > 0 {
		l.start = segs[0].firstPos
		// Reopen the active segment for appending.
		f, err := os.OpenFile(segs[len(segs)-1].path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, size
	}
	return nil
}

// validateSegment checks one segment's header and records. wantPos is
// the position the segment must start at (-1 for the first segment).
// It returns the position after the segment's last intact record and,
// when the segment ends in a torn record that tail-tolerance may
// repair, the byte offset to truncate at (-1 when the segment is
// clean). Torn tails are only legal in the last segment.
func (l *Log) validateSegment(s segMeta, wantPos int64, last bool) (end, tailOff int64, err error) {
	f, err := os.Open(s.path)
	if err != nil {
		return 0, -1, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	firstPos, err := readHeader(f, l.seriesLen)
	if err != nil {
		return 0, -1, fmt.Errorf("%w (%s)", err, filepath.Base(s.path))
	}
	if firstPos != s.firstPos {
		return 0, -1, fmt.Errorf("%w: %s header position %d does not match its name", ErrCorrupt, filepath.Base(s.path), firstPos)
	}
	if wantPos >= 0 && firstPos != wantPos {
		return 0, -1, fmt.Errorf("%w: gap before %s: want position %d, segment starts at %d", ErrCorrupt, filepath.Base(s.path), wantPos, firstPos)
	}
	end, goodOff, scanErr := forEachRecord(f, l.seriesLen, firstPos, nil)
	if scanErr != nil {
		if !last {
			return 0, -1, fmt.Errorf("%w: %s: %w", ErrCorrupt, filepath.Base(s.path), scanErr)
		}
		return end, goodOff, nil
	}
	return end, -1, nil
}

// readHeader reads and validates a segment header, returning the
// segment's first position.
func readHeader(f *os.File, seriesLen int) (int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.Checksum(hdr[:headerSize-4], castagnoli) != binary.LittleEndian.Uint32(hdr[headerSize-4:]) {
		return 0, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != segVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	if sl := int(binary.LittleEndian.Uint32(hdr[12:])); sl != seriesLen {
		return 0, fmt.Errorf("%w: log has series length %d, index wants %d", ErrMismatch, sl, seriesLen)
	}
	return int64(binary.LittleEndian.Uint64(hdr[16:])), nil
}

// forEachRecord scans records sequentially from f (positioned after
// the header). fn, when non-nil, receives each intact record's first
// position and rows. It returns the position after the last intact
// record, the byte offset just past it, and a non-nil error if the
// scan stopped before clean EOF (a torn or corrupt record).
func forEachRecord(f *os.File, seriesLen int, firstPos int64, fn func(pos int64, rows [][]float32) error) (end, goodOff int64, err error) {
	pos := firstPos
	off := int64(headerSize)
	var hdr [recHdrSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return pos, off, nil // clean end
			}
			return pos, off, fmt.Errorf("torn record header at offset %d", off)
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		bodyLen := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen < recFixedBody || bodyLen > maxBody {
			return pos, off, fmt.Errorf("implausible record length %d at offset %d", bodyLen, off)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(f, body); err != nil {
			return pos, off, fmt.Errorf("torn record body at offset %d", off)
		}
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return pos, off, fmt.Errorf("record checksum mismatch at offset %d", off)
		}
		if body[0] != recType {
			return pos, off, fmt.Errorf("unknown record type %d at offset %d", body[0], off)
		}
		recPos := int64(binary.LittleEndian.Uint64(body[1:]))
		count := int(binary.LittleEndian.Uint32(body[9:]))
		if recPos != pos {
			return pos, off, fmt.Errorf("record position %d at offset %d, want %d", recPos, off, pos)
		}
		if count <= 0 || int(bodyLen) != recFixedBody+count*seriesLen*4 {
			return pos, off, fmt.Errorf("record length %d inconsistent with count %d at offset %d", bodyLen, count, off)
		}
		if fn != nil {
			rows := make([][]float32, count)
			payload := body[recFixedBody:]
			for r := 0; r < count; r++ {
				row := make([]float32, seriesLen)
				for j := range row {
					row[j] = math.Float32frombits(binary.LittleEndian.Uint32(payload[(r*seriesLen+j)*4:]))
				}
				rows[r] = row
			}
			if err := fn(recPos, rows); err != nil {
				return pos, off, err
			}
		}
		pos += int64(count)
		off += recHdrSize + int64(bodyLen)
	}
}

// Start returns the first global position the log still holds, or -1
// when the log is empty. Boot-time wiring uses it to detect a gap
// between the loaded snapshot and the log.
func (l *Log) Start() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next < 0 {
		return -1
	}
	return l.start
}

// End returns the position after the last logged record, or -1 when
// the log has never seen a record.
func (l *Log) End() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Replay streams every intact logged record with position >= from, in
// position order, into fn. Rows before from inside a partially-covered
// batch are skipped row-by-row so batch records straddling a snapshot
// boundary replay correctly. Replay holds the log's mutex: call it
// before serving appends.
func (l *Log) Replay(from int64, fn func(pos int64, series []float32) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, s := range l.segs {
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if _, err := readHeader(f, l.seriesLen); err != nil {
			f.Close()
			return err
		}
		_, _, err = forEachRecord(f, l.seriesLen, s.firstPos, func(pos int64, rows [][]float32) error {
			for i, row := range rows {
				if p := pos + int64(i); p >= from {
					if err := fn(p, row); err != nil {
						return err
					}
				}
			}
			return nil
		})
		f.Close()
		if err != nil {
			// scan() already repaired torn tails, so any scan error
			// during replay is real corruption (or fn's own error).
			return err
		}
	}
	return nil
}

// Append journals rows starting at global position firstPos and, under
// SyncAlways, makes them durable before returning. A nil return means
// the record is recoverable; any error means the log rolled the
// segment back and the record is not on disk.
func (l *Log) Append(firstPos int64, rows [][]float32) error {
	if len(rows) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fail != nil {
		return fmt.Errorf("wal: log failed, reopen to recover: %w", l.fail)
	}
	if l.next >= 0 && firstPos != l.next {
		return fmt.Errorf("wal: append at position %d, log ends at %d", firstPos, l.next)
	}
	for _, r := range rows {
		if len(r) != l.seriesLen {
			return fmt.Errorf("%w: appending length %d, log has %d", ErrMismatch, len(r), l.seriesLen)
		}
	}
	if l.f == nil {
		if err := l.openSegment(firstPos); err != nil {
			return err
		}
	} else if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(firstPos); err != nil {
			return err
		}
	}

	rec := l.encode(firstPos, rows)
	recStart := l.size
	allow, ferr := fpAppend.BeforeWrite(len(rec))
	if ferr != nil {
		// Injected partial write: leave the torn bytes behind exactly
		// as a crash mid-write would, and poison the log — the only
		// way back is reopening the directory, whose torn-tail repair
		// cuts the record. This keeps the in-process Log from ever
		// appending after torn bytes.
		if allow > 0 {
			_, _ = l.f.Write(rec[:allow])
		}
		l.fail = ferr
		return ferr
	}
	if _, err := l.f.Write(rec); err != nil {
		l.rollback(recStart)
		return fmt.Errorf("wal: %w", err)
	}
	l.size = recStart + int64(len(rec))
	if l.opts.Sync == SyncAlways {
		if err := l.syncActive(); err != nil {
			l.rollback(recStart)
			return err
		}
	}
	if l.next < 0 {
		l.start = firstPos
	}
	l.next = firstPos + int64(len(rows))
	return nil
}

// rollback restores the active segment to a record boundary after a
// failed write or sync, preserving acked ⟺ on-disk. If the rollback
// itself fails the segment keeps torn bytes, which Open's torn-tail
// repair will cut on the next boot.
func (l *Log) rollback(off int64) {
	if l.f == nil {
		return
	}
	if err := l.f.Truncate(off); err != nil {
		return
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return
	}
	l.size = off
}

func (l *Log) encode(firstPos int64, rows [][]float32) []byte {
	bodyLen := recFixedBody + len(rows)*l.seriesLen*4
	need := recHdrSize + bodyLen
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	rec := l.buf[:need]
	body := rec[recHdrSize:]
	body[0] = recType
	binary.LittleEndian.PutUint64(body[1:], uint64(firstPos))
	binary.LittleEndian.PutUint32(body[9:], uint32(len(rows)))
	payload := body[recFixedBody:]
	for r, row := range rows {
		for j, v := range row {
			binary.LittleEndian.PutUint32(payload[(r*l.seriesLen+j)*4:], math.Float32bits(v))
		}
	}
	binary.LittleEndian.PutUint32(rec[0:], crc32.Checksum(body, castagnoli))
	binary.LittleEndian.PutUint32(rec[4:], uint32(bodyLen))
	return rec
}

// openSegment creates a fresh segment starting at firstPos and makes
// its directory entry durable.
func (l *Log) openSegment(firstPos int64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstPos, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(l.seriesLen))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(firstPos))
	binary.LittleEndian.PutUint32(hdr[headerSize-4:], crc32.Checksum(hdr[:headerSize-4], castagnoli))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Sync != SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: %w", err)
		}
		syncDir(l.dir)
	}
	l.f, l.size = f, headerSize
	l.segs = append(l.segs, segMeta{firstPos: firstPos, path: path})
	return nil
}

// rotate seals the active segment and starts a new one at nextPos.
func (l *Log) rotate(nextPos int64) error {
	if err := fpRotate.Hit(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.f = nil
	return l.openSegment(nextPos)
}

// Truncate drops every segment fully covered by a snapshot of the
// first `covered` global series. The active segment is dropped too
// when even its last record is covered; appends then continue into a
// fresh segment.
func (l *Log) Truncate(covered int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	removed := false
	for len(l.segs) > 0 {
		end := l.next
		if len(l.segs) > 1 {
			end = l.segs[1].firstPos
		}
		if end > covered {
			break
		}
		if len(l.segs) == 1 && l.f != nil {
			if err := l.f.Close(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.f, l.size = nil, 0
		}
		if err := os.Remove(l.segs[0].path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
		l.segs = l.segs[1:]
	}
	if removed {
		syncDir(l.dir)
	}
	if len(l.segs) > 0 {
		l.start = l.segs[0].firstPos
	} else if l.next >= 0 {
		// Emptied: appends resume at the covered boundary. covered may
		// exceed the last logged position when the caller's snapshot
		// is newer than the log (it holds appends from a previous log
		// lifetime); realign so the next append is accepted.
		if covered > l.next {
			l.next = covered
		}
		l.start = l.next
	}
	return nil
}

// Sync flushes the active segment to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncActive()
}

func (l *Log) syncActive() error {
	if l.f == nil {
		return nil
	}
	if err := fpSync.Hit(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncActive(); err != nil && l.syncErr == nil {
					l.syncErr = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs and closes the active segment. The first background
// sync failure (SyncInterval), if any, is surfaced here.
func (l *Log) Close() error {
	if l.stopSync != nil {
		l.mu.Lock()
		stopped := l.closed
		l.mu.Unlock()
		if !stopped {
			close(l.stopSync)
			l.syncWG.Wait()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	err := l.syncErr
	if l.f != nil {
		if l.opts.Sync != SyncNone {
			if serr := l.f.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("wal: %w", serr)
			}
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
		l.f = nil
	}
	return err
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
