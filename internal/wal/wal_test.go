package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

func mkRows(rng *rand.Rand, n, length int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		row := make([]float32, length)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		rows[i] = row
	}
	return rows
}

func collect(t *testing.T, l *Log, from int64) map[int64][]float32 {
	t.Helper()
	got := map[int64][]float32{}
	if err := l.Replay(from, func(pos int64, s []float32) error {
		cp := make([]float32, len(s))
		copy(cp, s)
		got[pos] = cp
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func assertRows(t *testing.T, got map[int64][]float32, want [][]float32, base int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d series, want %d", len(got), len(want))
	}
	for i, w := range want {
		g, ok := got[base+int64(i)]
		if !ok {
			t.Fatalf("position %d missing after replay", base+int64(i))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("position %d differs at point %d: %v != %v", base+int64(i), j, g[j], w[j])
			}
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 8, &Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := mkRows(rng, 10, 8)
	// Mix single appends and batches.
	if err := l.Append(0, rows[:1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, rows[1:5]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, rows[5:]); err != nil {
		t.Fatal(err)
	}
	if end := l.End(); end != 10 {
		t.Fatalf("End = %d, want 10", end)
	}
	assertRows(t, collect(t, l, 0), rows, 0)
	// Replay from an offset skips covered rows, even mid-batch.
	part := collect(t, l, 3)
	assertRows(t, part, rows[3:], 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify the log survives a clean restart.
	l2, err := Open(dir, 8, &Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if end := l2.End(); end != 10 {
		t.Fatalf("End after reopen = %d, want 10", end)
	}
	assertRows(t, collect(t, l2, 0), rows, 0)
	// And appends continue at the right position.
	if err := l2.Append(9, rows[:1]); err == nil {
		t.Fatal("append at stale position must fail")
	}
	if err := l2.Append(10, rows[:1]); err != nil {
		t.Fatal(err)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l, err := Open(dir, 4, &Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rows := mkRows(rng, 40, 4)
	for i, r := range rows {
		if err := l.Append(int64(i), [][]float32{r}); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	assertRows(t, collect(t, l, 0), rows, 0)

	// A snapshot covering the first 20 series drops fully-covered
	// segments but keeps everything at or past position 20.
	if err := l.Truncate(20); err != nil {
		t.Fatal(err)
	}
	if s := l.Start(); s > 20 {
		t.Fatalf("Start after partial truncate = %d, must be <= 20", s)
	}
	assertRows(t, collect(t, l, 20), rows[20:], 20)

	// Covering everything empties the log; appends then resume.
	if err := l.Truncate(40); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("log should be empty after full truncate, replayed %d", len(got))
	}
	if err := l.Append(40, rows[:1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(41, rows[1:2]); err != nil {
		t.Fatal(err)
	}
	assertRows(t, collect(t, l, 40), rows[:2], 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, 4, &Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertRows(t, collect(t, l2, 0), rows[:2], 40)
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rows := mkRows(rng, 5, 6)
	for i, r := range rows {
		if err := l.Append(int64(i), [][]float32{r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-payload, as a crash mid-write would.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, 6, nil)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if end := l2.End(); end != 4 {
		t.Fatalf("End after torn tail = %d, want 4", end)
	}
	assertRows(t, collect(t, l2, 0), rows[:4], 0)
	// The torn position is writable again.
	if err := l2.Append(4, rows[4:]); err != nil {
		t.Fatal(err)
	}
	assertRows(t, collect(t, l2, 0), rows, 0)
}

func TestCorruptionBeforeTailRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 4, &Options{Sync: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rows := mkRows(rng, 30, 4)
	for i, r := range rows {
		if err := l.Append(int64(i), [][]float32{r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: not a torn tail, so
	// recovery must refuse rather than silently drop acked data.
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 4, &Options{Sync: SyncNone, SegmentBytes: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, [][]float32{make([]float32, 5)}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("append wrong length = %v, want ErrMismatch", err)
	}
	if err := l.Append(0, mkRows(rand.New(rand.NewSource(5)), 1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 16, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("open with different length = %v, want ErrMismatch", err)
	}
}

func TestInjectedPartialWriteIsUnackedAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.DisarmAll)
	rng := rand.New(rand.NewSource(6))
	rows := mkRows(rng, 3, 4)
	if err := l.Append(0, rows[:2]); err != nil {
		t.Fatal(err)
	}
	// Tear the next record after 10 bytes, like a crash mid-write.
	if err := fault.Arm("wal.append.write", fault.Spec{Action: fault.PartialWrite, Keep: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, rows[2:]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted append = %v, want ErrInjected", err)
	}
	// The log is poisoned until reopened, like a dead process.
	if err := l.Append(2, rows[2:]); err == nil {
		t.Fatal("append after injected crash must fail")
	}
	// "Reboot": reopen the directory. Torn-tail repair must cut the
	// unacked record and keep every acked one.
	l2, err := Open(dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertRows(t, collect(t, l2, 0), rows[:2], 0)
	if end := l2.End(); end != 2 {
		t.Fatalf("End = %d, want 2 (unacked record must not be recovered)", end)
	}
}

func TestInjectedRotateFailureLeavesLogUsable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 4, &Options{Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	t.Cleanup(fault.DisarmAll)
	rng := rand.New(rand.NewSource(7))
	rows := mkRows(rng, 6, 4)
	if err := l.Append(0, rows[:2]); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("wal.rotate", fault.Spec{Action: fault.Error}); err != nil {
		t.Fatal(err)
	}
	// Segment is over 64 bytes, so this append wants a rotation; the
	// injected failure must surface and ack nothing.
	if err := l.Append(2, rows[2:4]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted rotate append = %v, want ErrInjected", err)
	}
	// One-shot fault has auto-disarmed: the retry succeeds.
	if err := l.Append(2, rows[2:4]); err != nil {
		t.Fatalf("retry after rotate fault: %v", err)
	}
	if err := l.Append(4, rows[4:]); err != nil {
		t.Fatal(err)
	}
	assertRows(t, collect(t, l, 0), rows, 0)
}

func TestCrashDuringRotationDropsHeaderlessSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 4, &Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	rows := mkRows(rand.New(rand.NewSource(8)), 2, 4)
	if err := l.Append(0, rows); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between creating the next segment file and
	// writing its header.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000002.seg"), []byte("MESSIWL1"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, 4, &Options{Sync: SyncNone})
	if err != nil {
		t.Fatalf("open over headerless trailing segment: %v", err)
	}
	defer l2.Close()
	if end := l2.End(); end != 2 {
		t.Fatalf("End = %d, want 2", end)
	}
	assertRows(t, collect(t, l2, 0), rows, 0)
}

func TestSyncPolicies(t *testing.T) {
	for _, name := range []string{"always", "interval", "none"} {
		t.Run(name, func(t *testing.T) {
			pol, err := ParseSyncPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			l, err := Open(dir, 4, &Options{Sync: pol, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			rows := mkRows(rand.New(rand.NewSource(9)), 4, 4)
			for i, r := range rows {
				if err := l.Append(int64(i), [][]float32{r}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			assertRows(t, collect(t, l2, 0), rows, 0)
		})
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy must be rejected")
	}
}

// BenchmarkWALAppend pins the per-append journaling cost (encode +
// write, no fsync) so the bench-compare gate catches regressions in
// the hot ingestion path.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, 128, &Options{Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	row := [][]float32{make([]float32, 128)}
	for i := range row[0] {
		row[0][i] = float32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(int64(i), row); err != nil {
			b.Fatal(err)
		}
	}
}
