// Package buffer implements the two receive-buffer designs compared in the
// paper's index-construction study:
//
//   - Buffers: MESSI's design. One buffer per root subtree, each split
//     into one part per index worker. A worker only ever appends to its own
//     parts, so no synchronization is needed at all. Parts are allocated
//     lazily on first append with a small initial capacity (5 series in the
//     paper, Figure 8) and grow by doubling.
//   - LockedBuffers: the ParIS design. One shared buffer per root subtree
//     protected by a mutex; every append from every worker takes the lock.
//     This is the synchronization cost MESSI eliminates (§I, §III-A).
//
// Entries are stored structure-of-arrays (flat symbol bytes + positions) so
// buffers stay allocation-dense and tree construction streams through them.
package buffer

import "sync"

// Part is the private segment of one (subtree, worker) pair. Words are
// stored flat with a stride of w bytes.
type Part struct {
	words     []uint8
	positions []int32
	w         int
}

// Len reports the number of entries in the part.
func (p *Part) Len() int { return len(p.positions) }

// Word returns the i-th full-precision word (a view, not a copy).
func (p *Part) Word(i int) []uint8 { return p.words[i*p.w : (i+1)*p.w] }

// Pos returns the i-th series position.
func (p *Part) Pos(i int) int32 { return p.positions[i] }

// append adds an entry, growing by doubling from the initial capacity.
func (p *Part) append(word []uint8, pos int32, initialCap int) {
	if p.positions == nil {
		if initialCap < 1 {
			initialCap = 1
		}
		p.words = make([]uint8, 0, initialCap*p.w)
		p.positions = make([]int32, 0, initialCap)
	}
	p.words = append(p.words, word...)
	p.positions = append(p.positions, pos)
}

// Buffers is MESSI's synchronization-free receive-buffer array: fanout
// buffers × workers parts, stored as one flat slot array (slot = buffer ×
// workers + worker). Slot pointers are written only by their owning worker
// during the summarization phase and read only after the phase barrier, so
// no atomics are needed.
type Buffers struct {
	slots      []*Part
	fanout     int
	workers    int
	w          int
	initialCap int
}

// NewBuffers allocates the slot array for the given root fanout, worker
// count, word length w, and initial per-part capacity (in entries). This
// eager slot allocation is the initialization cost Figure 8 measures.
func NewBuffers(fanout, workers, w, initialCap int) *Buffers {
	return &Buffers{
		slots:      make([]*Part, fanout*workers),
		fanout:     fanout,
		workers:    workers,
		w:          w,
		initialCap: initialCap,
	}
}

// Append adds an entry to worker pid's part of buffer l. Only worker pid
// may call this for a given pid (the MESSI invariant that removes all
// locking).
func (b *Buffers) Append(l, pid int, word []uint8, pos int32) {
	slot := l*b.workers + pid
	p := b.slots[slot]
	if p == nil {
		p = &Part{w: b.w}
		b.slots[slot] = p
	}
	p.append(word, pos, b.initialCap)
}

// Part returns the (possibly nil) part of buffer l owned by worker pid.
func (b *Buffers) Part(l, pid int) *Part { return b.slots[l*b.workers+pid] }

// Fanout returns the number of buffers (root subtrees).
func (b *Buffers) Fanout() int { return b.fanout }

// Workers returns the number of parts per buffer.
func (b *Buffers) Workers() int { return b.workers }

// BufferLen reports the total number of entries across all parts of
// buffer l.
func (b *Buffers) BufferLen(l int) int {
	total := 0
	for pid := 0; pid < b.workers; pid++ {
		if p := b.Part(l, pid); p != nil {
			total += p.Len()
		}
	}
	return total
}

// TotalLen reports the total number of entries across all buffers.
func (b *Buffers) TotalLen() int {
	total := 0
	for l := 0; l < b.fanout; l++ {
		total += b.BufferLen(l)
	}
	return total
}

// ForEach invokes fn for every entry of buffer l, across all parts.
func (b *Buffers) ForEach(l int, fn func(word []uint8, pos int32)) {
	for pid := 0; pid < b.workers; pid++ {
		p := b.Part(l, pid)
		if p == nil {
			continue
		}
		for i := 0; i < p.Len(); i++ {
			fn(p.Word(i), p.Pos(i))
		}
	}
}

// LockedBuffers is the ParIS receive-buffer design: one shared buffer per
// root subtree, each append taking that buffer's lock. Entries reference
// positions in a global SAX array rather than carrying their words (ParIS
// stores <iSAX summary, position> pairs in one global array and pointers in
// the receive buffers).
type LockedBuffers struct {
	bufs []lockedBuf
}

type lockedBuf struct {
	mu        sync.Mutex
	positions []int32
}

// NewLockedBuffers allocates fanout empty shared buffers.
func NewLockedBuffers(fanout int) *LockedBuffers {
	return &LockedBuffers{bufs: make([]lockedBuf, fanout)}
}

// Append adds a position to buffer l under its lock.
func (b *LockedBuffers) Append(l int, pos int32) {
	lb := &b.bufs[l]
	lb.mu.Lock()
	lb.positions = append(lb.positions, pos)
	lb.mu.Unlock()
}

// Positions returns buffer l's entries. Callers must only read it after
// all appends have completed (post-barrier), matching ParIS's two phases.
func (b *LockedBuffers) Positions(l int) []int32 { return b.bufs[l].positions }

// Fanout returns the number of buffers.
func (b *LockedBuffers) Fanout() int { return len(b.bufs) }

// TotalLen reports the total number of entries across all buffers.
func (b *LockedBuffers) TotalLen() int {
	total := 0
	for i := range b.bufs {
		total += len(b.bufs[i].positions)
	}
	return total
}
