package buffer

import (
	"sync"
	"testing"
)

func TestBuffersAppendAndRead(t *testing.T) {
	b := NewBuffers(4, 2, 3, 5)
	b.Append(1, 0, []uint8{1, 2, 3}, 10)
	b.Append(1, 0, []uint8{4, 5, 6}, 11)
	b.Append(1, 1, []uint8{7, 8, 9}, 12)
	b.Append(2, 1, []uint8{9, 9, 9}, 13)

	if got := b.BufferLen(1); got != 3 {
		t.Errorf("BufferLen(1) = %d, want 3", got)
	}
	if got := b.BufferLen(0); got != 0 {
		t.Errorf("BufferLen(0) = %d, want 0", got)
	}
	if got := b.TotalLen(); got != 4 {
		t.Errorf("TotalLen = %d, want 4", got)
	}

	p := b.Part(1, 0)
	if p.Len() != 2 {
		t.Fatalf("part len = %d, want 2", p.Len())
	}
	if w := p.Word(1); w[0] != 4 || w[1] != 5 || w[2] != 6 {
		t.Errorf("Word(1) = %v", w)
	}
	if p.Pos(0) != 10 || p.Pos(1) != 11 {
		t.Errorf("positions = %d,%d", p.Pos(0), p.Pos(1))
	}
	if b.Part(0, 0) != nil {
		t.Error("untouched part should be nil (lazy allocation)")
	}
	if b.Fanout() != 4 || b.Workers() != 2 {
		t.Errorf("shape = (%d,%d)", b.Fanout(), b.Workers())
	}
}

func TestBuffersForEachOrder(t *testing.T) {
	b := NewBuffers(2, 3, 1, 2)
	b.Append(0, 2, []uint8{30}, 30)
	b.Append(0, 0, []uint8{10}, 10)
	b.Append(0, 0, []uint8{11}, 11)
	b.Append(0, 1, []uint8{20}, 20)
	var got []int32
	b.ForEach(0, func(word []uint8, pos int32) {
		if int32(word[0]) != pos {
			t.Errorf("word/pos mismatch: %v vs %d", word, pos)
		}
		got = append(got, pos)
	})
	// Parts are visited in worker order, entries in insertion order.
	want := []int32{10, 11, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBuffersGrowthDoubles(t *testing.T) {
	b := NewBuffers(1, 1, 2, 5)
	for i := 0; i < 100; i++ {
		b.Append(0, 0, []uint8{uint8(i), uint8(i + 1)}, int32(i))
	}
	p := b.Part(0, 0)
	if p.Len() != 100 {
		t.Fatalf("len = %d, want 100", p.Len())
	}
	for i := 0; i < 100; i++ {
		if p.Pos(i) != int32(i) || p.Word(i)[0] != uint8(i) {
			t.Fatalf("entry %d corrupted after growth", i)
		}
	}
}

func TestBuffersTinyInitialCap(t *testing.T) {
	b := NewBuffers(1, 1, 1, 0) // clamped to 1
	b.Append(0, 0, []uint8{9}, 1)
	if b.Part(0, 0).Len() != 1 {
		t.Error("append with zero initial capacity failed")
	}
}

// Concurrent appends by distinct workers to the same buffer must not race
// (each worker owns its part). Run with -race to verify.
func TestBuffersConcurrentDistinctWorkers(t *testing.T) {
	const workers = 8
	const per = 1600 // multiple of 16 so every buffer gets per/16 entries
	b := NewBuffers(16, workers, 2, 5)
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			word := []uint8{uint8(pid), 0}
			for i := 0; i < per; i++ {
				b.Append(i%16, pid, word, int32(pid*per+i))
			}
		}(pid)
	}
	wg.Wait()
	if got := b.TotalLen(); got != workers*per {
		t.Errorf("TotalLen = %d, want %d", got, workers*per)
	}
	// Every buffer receives per/16 entries from each worker.
	for l := 0; l < 16; l++ {
		for pid := 0; pid < workers; pid++ {
			p := b.Part(l, pid)
			if p == nil || p.Len() != per/16 {
				t.Errorf("part (%d,%d) has wrong size", l, pid)
			}
		}
	}
}

func TestLockedBuffers(t *testing.T) {
	b := NewLockedBuffers(3)
	if b.Fanout() != 3 {
		t.Errorf("Fanout = %d", b.Fanout())
	}
	b.Append(0, 5)
	b.Append(0, 6)
	b.Append(2, 7)
	if got := b.Positions(0); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("Positions(0) = %v", got)
	}
	if got := b.Positions(1); len(got) != 0 {
		t.Errorf("Positions(1) = %v, want empty", got)
	}
	if b.TotalLen() != 3 {
		t.Errorf("TotalLen = %d, want 3", b.TotalLen())
	}
}

// All workers hammering the same locked buffer must serialize correctly.
func TestLockedBuffersConcurrent(t *testing.T) {
	const workers = 8
	const per = 2000
	b := NewLockedBuffers(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Append(i%4, int32(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if got := b.TotalLen(); got != workers*per {
		t.Fatalf("TotalLen = %d, want %d", got, workers*per)
	}
	seen := make(map[int32]bool, workers*per)
	for l := 0; l < 4; l++ {
		for _, pos := range b.Positions(l) {
			if seen[pos] {
				t.Fatalf("position %d appears twice", pos)
			}
			seen[pos] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("lost entries: %d distinct, want %d", len(seen), workers*per)
	}
}
