package scan

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtw"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

func genData(t testing.TB, count, length int) *series.Collection {
	t.Helper()
	c, err := dataset.Generate(dataset.RandomWalk, count, length, 21)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func brute1NN(data *series.Collection, query []float32) core.Match {
	best := core.Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := vector.SquaredEuclidean(data.At(i), query)
		if d < best.Dist {
			best = core.Match{Position: i, Dist: d}
		}
	}
	return best
}

// bruteKNN is the oracle: all distances, fully sorted.
func bruteKNN(data *series.Collection, query []float32, k int) []core.Match {
	all := make([]core.Match, data.Count())
	for i := 0; i < data.Count(); i++ {
		all[i] = core.Match{Position: i, Dist: vector.SquaredEuclidean(data.At(i), query)}
	}
	for i := 1; i < len(all); i++ { // insertion sort keeps the test dependency-free
		for j := i; j > 0 && (all[j].Dist < all[j-1].Dist ||
			(all[j].Dist == all[j-1].Dist && all[j].Position < all[j-1].Position)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSearchKNNMatchesBruteForce(t *testing.T) {
	data := genData(t, 600, 64)
	queries, _ := dataset.Queries(dataset.RandomWalk, 8, 64, 33)
	for _, workers := range []int{1, 3, 8} {
		for _, k := range []int{1, 5, 700} { // 700 > collection: returns everything
			for qi := 0; qi < queries.Count(); qi++ {
				q := queries.At(qi)
				want := bruteKNN(data, q, k)
				got, err := SearchKNN(data, q, k, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d k=%d query %d: %d matches, want %d", workers, k, qi, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
						t.Fatalf("workers=%d k=%d query %d rank %d: dist %v, want %v",
							workers, k, qi, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
	if _, err := SearchKNN(data, queries.At(0), 0, 1, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSearch1NNMatchesBruteForce(t *testing.T) {
	data := genData(t, 1200, 64)
	queries, _ := dataset.Queries(dataset.RandomWalk, 15, 64, 31)
	for _, workers := range []int{1, 3, 8} {
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)
			want := brute1NN(data, q)
			got, err := Search1NN(data, q, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
				t.Fatalf("workers=%d query %d: %v want %v", workers, qi, got.Dist, want.Dist)
			}
		}
	}
}

func TestSearch1NNCountsEverySeries(t *testing.T) {
	data := genData(t, 500, 64)
	ctrs := &stats.Counters{}
	if _, err := Search1NN(data, data.At(0), 4, ctrs); err != nil {
		t.Fatal(err)
	}
	// UCR Suite-P performs no pruning: one real-distance computation per
	// series (early abandoning shortens them but every series is touched).
	if got := ctrs.Snapshot().RealDistCalcs; got != 500 {
		t.Errorf("real dist calcs = %d, want 500", got)
	}
}

func TestSearch1NNValidation(t *testing.T) {
	data := genData(t, 10, 64)
	if _, err := Search1NN(data, make([]float32, 32), 2, nil); err == nil {
		t.Error("wrong-length query accepted")
	}
	if _, err := Search1NN(nil, make([]float32, 64), 2, nil); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := Search1NN(empty, make([]float32, 64), 2, nil); err == nil {
		t.Error("empty collection accepted")
	}
}

func TestSearch1NNMoreWorkersThanSeries(t *testing.T) {
	data := genData(t, 3, 64)
	got, err := Search1NN(data, data.At(1), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Position != 1 || got.Dist != 0 {
		t.Errorf("got %+v, want self-match", got)
	}
}

func bruteDTW(data *series.Collection, query []float32, window int) core.Match {
	best := core.Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := dtw.Distance(query, data.At(i), window, best.Dist)
		if d < best.Dist {
			best = core.Match{Position: i, Dist: d}
		}
	}
	return best
}

func TestSearchDTWMatchesBruteForce(t *testing.T) {
	data := genData(t, 400, 64)
	queries, _ := dataset.Queries(dataset.RandomWalk, 6, 64, 33)
	window := dtw.WindowSize(64, 0.1)
	for _, workers := range []int{1, 4} {
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)
			want := bruteDTW(data, q, window)
			got, err := SearchDTW(data, q, window, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
				t.Fatalf("workers=%d query %d: %v want %v", workers, qi, got.Dist, want.Dist)
			}
		}
	}
}

func TestSearchDTWLBKeoghPrunes(t *testing.T) {
	data := genData(t, 600, 64)
	ctrs := &stats.Counters{}
	window := dtw.WindowSize(64, 0.1)
	if _, err := SearchDTW(data, data.At(7), window, 1, ctrs); err != nil {
		t.Fatal(err)
	}
	snap := ctrs.Snapshot()
	if snap.LowerBoundCalcs != 600 {
		t.Errorf("LB calcs = %d, want 600 (one LB_Keogh per series)", snap.LowerBoundCalcs)
	}
	if snap.RealDistCalcs >= 600 {
		t.Errorf("full DTW ran on every series (%d); LB_Keogh pruned nothing", snap.RealDistCalcs)
	}
}

func TestSearchDTWValidation(t *testing.T) {
	data := genData(t, 10, 64)
	if _, err := SearchDTW(data, data.At(0), -1, 1, nil); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := SearchDTW(data, data.At(0), 64, 1, nil); err == nil {
		t.Error("window >= length accepted")
	}
	if _, err := SearchDTW(data, make([]float32, 16), 4, 1, nil); err == nil {
		t.Error("wrong-length query accepted")
	}
}
