// Package scan implements the serial-scan competitors of the paper's
// evaluation:
//
//   - UCR Suite-P: "our parallel implementation of the state-of-the-art
//     optimized serial scan technique, UCR Suite. Every thread is assigned
//     a part of the in-memory data series array, and all threads
//     concurrently and independently process their own parts, performing
//     the real distance calculations in SIMD, and only synchronize at the
//     end to produce the final result." No pruning index — every series is
//     compared (with early abandoning against the thread-local best).
//   - UCR Suite DTW (serial) and UCR Suite-P DTW: the same scan under
//     constrained DTW, with the LB_Keogh cascade before each full DTW
//     computation (Figure 19).
package scan

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

// validate checks the query against the collection.
func validate(data *series.Collection, query []float32) error {
	if data == nil || data.Count() == 0 {
		return fmt.Errorf("scan: empty collection")
	}
	if len(query) != data.Length {
		return fmt.Errorf("scan: query length %d, series length %d", len(query), data.Length)
	}
	return nil
}

// Search1NN is UCR Suite-P under squared Euclidean distance: workers scan
// static partitions with thread-local best-so-far values and merge once at
// the end.
func Search1NN(data *series.Collection, query []float32, workers int, ctrs *stats.Counters) (core.Match, error) {
	return Search1NNBounded(data, query, workers, math.Inf(1), ctrs)
}

// Search1NNBounded is Search1NN with an externally known squared-distance
// pruning bound: every worker's early-abandon threshold starts at bound
// instead of +Inf, so a caller scanning several chunks (a live index's
// delta blocks) carries its running best into each scan — the same
// bound-seeding the tree search applies via SearchOptions.Seeds. When no
// candidate beats the bound the result has Position -1 and Dist == bound.
func Search1NNBounded(data *series.Collection, query []float32, workers int, bound float64, ctrs *stats.Counters) (core.Match, error) {
	if err := validate(data, query); err != nil {
		return core.Match{}, err
	}
	if workers < 1 {
		workers = 1
	}
	n := data.Count()
	if workers > n {
		workers = n
	}
	locals := make([]core.Match, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			best := core.Match{Position: -1, Dist: bound}
			var count int64
			for i := lo; i < hi; i++ {
				d := vector.SquaredEuclideanEarlyAbandon(data.At(i), query, best.Dist)
				count++
				if d < best.Dist {
					best = core.Match{Position: i, Dist: d}
				}
			}
			ctrs.AddRealDist(count)
			locals[w] = best
		}(w)
	}
	wg.Wait()
	best := locals[0]
	for _, m := range locals[1:] {
		if m.Dist < best.Dist {
			best = m
		}
	}
	return best, nil
}

// kheap is a bounded max-heap of the k best matches seen by one scan
// worker; the root (worst retained match) is the early-abandon limit once
// the heap is full.
type kheap struct {
	k    int
	heap []core.Match // max-heap on Dist
}

// limit returns the current pruning threshold: the k-th best distance, or
// +Inf until k matches are held.
func (h *kheap) limit() float64 {
	if len(h.heap) < h.k {
		return math.Inf(1)
	}
	return h.heap[0].Dist
}

// offer inserts a candidate if it beats the current k-th best.
func (h *kheap) offer(m core.Match) {
	if len(h.heap) < h.k {
		h.heap = append(h.heap, m)
		i := len(h.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.heap[p].Dist >= h.heap[i].Dist {
				break
			}
			h.heap[p], h.heap[i] = h.heap[i], h.heap[p]
			i = p
		}
		return
	}
	if m.Dist >= h.heap[0].Dist {
		return
	}
	h.heap[0] = m
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			return
		}
		big := l
		if r := l + 1; r < len(h.heap) && h.heap[r].Dist > h.heap[l].Dist {
			big = r
		}
		if h.heap[i].Dist >= h.heap[big].Dist {
			return
		}
		h.heap[i], h.heap[big] = h.heap[big], h.heap[i]
		i = big
	}
}

// SearchKNN is the k-NN generalization of Search1NN: every worker scans
// its partition keeping a thread-local k-best heap (early-abandoning each
// distance against its own k-th best), and the per-worker sets are merged
// once at the end. It returns at most k matches in ascending distance
// order (ties broken by position).
func SearchKNN(data *series.Collection, query []float32, k, workers int, ctrs *stats.Counters) ([]core.Match, error) {
	if err := validate(data, query); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("scan: k must be positive, got %d", k)
	}
	if workers < 1 {
		workers = 1
	}
	n := data.Count()
	if workers > n {
		workers = n
	}
	locals := make([]*kheap, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			h := &kheap{k: k}
			var count int64
			// The k-th-best limit only moves on offer: cache it locally
			// and refresh after insertions instead of recomputing the
			// heap root twice per candidate.
			lim := h.limit()
			for i := lo; i < hi; i++ {
				d := vector.SquaredEuclideanEarlyAbandon(data.At(i), query, lim)
				count++
				if d < lim {
					h.offer(core.Match{Position: i, Dist: d})
					lim = h.limit()
				}
			}
			ctrs.AddRealDist(count)
			locals[w] = h
		}(w)
	}
	wg.Wait()
	var all []core.Match
	for _, h := range locals {
		all = append(all, h.heap...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Position < all[j].Position
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// SearchDTW is the DTW scan. With workers == 1 it is the serial UCR Suite
// DTW; with workers > 1 it is UCR Suite-P DTW. Each worker runs the
// LB_Keogh cascade (envelope lower bound, then full early-abandoning cDTW)
// against its thread-local best.
func SearchDTW(data *series.Collection, query []float32, window, workers int, ctrs *stats.Counters) (core.Match, error) {
	return SearchDTWBounded(data, query, window, workers, math.Inf(1), ctrs)
}

// SearchDTWBounded is SearchDTW with an externally known squared-distance
// pruning bound (see Search1NNBounded): the LB_Keogh cascade and the DTW
// early abandon start from bound instead of +Inf.
func SearchDTWBounded(data *series.Collection, query []float32, window, workers int, bound float64, ctrs *stats.Counters) (core.Match, error) {
	if err := validate(data, query); err != nil {
		return core.Match{}, err
	}
	if err := dtw.CheckWindow(data.Length, window); err != nil {
		return core.Match{}, err
	}
	if workers < 1 {
		workers = 1
	}
	n := data.Count()
	if workers > n {
		workers = n
	}
	upper, lower := dtw.Envelope(query, window)
	locals := make([]core.Match, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			best := core.Match{Position: -1, Dist: bound}
			var lbCount, realCount int64
			for i := lo; i < hi; i++ {
				candidate := data.At(i)
				lbCount++
				if dtw.LBKeogh(candidate, lower, upper, best.Dist) >= best.Dist {
					continue
				}
				realCount++
				d := dtw.Distance(query, candidate, window, best.Dist)
				if d < best.Dist {
					best = core.Match{Position: i, Dist: d}
				}
			}
			ctrs.AddLowerBound(lbCount)
			ctrs.AddRealDist(realCount)
			locals[w] = best
		}(w)
	}
	wg.Wait()
	best := locals[0]
	for _, m := range locals[1:] {
		if m.Dist < best.Dist {
			best = m
		}
	}
	return best, nil
}
