// Package scan implements the serial-scan competitors of the paper's
// evaluation:
//
//   - UCR Suite-P: "our parallel implementation of the state-of-the-art
//     optimized serial scan technique, UCR Suite. Every thread is assigned
//     a part of the in-memory data series array, and all threads
//     concurrently and independently process their own parts, performing
//     the real distance calculations in SIMD, and only synchronize at the
//     end to produce the final result." No pruning index — every series is
//     compared (with early abandoning against the thread-local best).
//   - UCR Suite DTW (serial) and UCR Suite-P DTW: the same scan under
//     constrained DTW, with the LB_Keogh cascade before each full DTW
//     computation (Figure 19).
package scan

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

// validate checks the query against the collection.
func validate(data *series.Collection, query []float32) error {
	if data == nil || data.Count() == 0 {
		return fmt.Errorf("scan: empty collection")
	}
	if len(query) != data.Length {
		return fmt.Errorf("scan: query length %d, series length %d", len(query), data.Length)
	}
	return nil
}

// Search1NN is UCR Suite-P under squared Euclidean distance: workers scan
// static partitions with thread-local best-so-far values and merge once at
// the end.
func Search1NN(data *series.Collection, query []float32, workers int, ctrs *stats.Counters) (core.Match, error) {
	if err := validate(data, query); err != nil {
		return core.Match{}, err
	}
	if workers < 1 {
		workers = 1
	}
	n := data.Count()
	if workers > n {
		workers = n
	}
	locals := make([]core.Match, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			best := core.Match{Position: -1, Dist: math.Inf(1)}
			var count int64
			for i := lo; i < hi; i++ {
				d := vector.SquaredEuclideanEarlyAbandon(data.At(i), query, best.Dist)
				count++
				if d < best.Dist {
					best = core.Match{Position: i, Dist: d}
				}
			}
			ctrs.AddRealDist(count)
			locals[w] = best
		}(w)
	}
	wg.Wait()
	best := locals[0]
	for _, m := range locals[1:] {
		if m.Dist < best.Dist {
			best = m
		}
	}
	return best, nil
}

// SearchDTW is the DTW scan. With workers == 1 it is the serial UCR Suite
// DTW; with workers > 1 it is UCR Suite-P DTW. Each worker runs the
// LB_Keogh cascade (envelope lower bound, then full early-abandoning cDTW)
// against its thread-local best.
func SearchDTW(data *series.Collection, query []float32, window, workers int, ctrs *stats.Counters) (core.Match, error) {
	if err := validate(data, query); err != nil {
		return core.Match{}, err
	}
	if err := dtw.CheckWindow(data.Length, window); err != nil {
		return core.Match{}, err
	}
	if workers < 1 {
		workers = 1
	}
	n := data.Count()
	if workers > n {
		workers = n
	}
	upper, lower := dtw.Envelope(query, window)
	locals := make([]core.Match, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			best := core.Match{Position: -1, Dist: math.Inf(1)}
			var lbCount, realCount int64
			for i := lo; i < hi; i++ {
				candidate := data.At(i)
				lbCount++
				if dtw.LBKeogh(candidate, lower, upper, best.Dist) >= best.Dist {
					continue
				}
				realCount++
				d := dtw.Distance(query, candidate, window, best.Dist)
				if d < best.Dist {
					best = core.Match{Position: i, Dist: d}
				}
			}
			ctrs.AddLowerBound(lbCount)
			ctrs.AddRealDist(realCount)
			locals[w] = best
		}(w)
	}
	wg.Wait()
	best := locals[0]
	for _, m := range locals[1:] {
		if m.Dist < best.Dist {
			best = m
		}
	}
	return best, nil
}
