package scan

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/series"
)

// GroundTruth caches brute-force exact k-NN answers over one collection.
// A workload harness evaluates the same query set under many (tier, mode)
// combinations; the O(n) scan that establishes each query's true nearest
// neighbors is paid once per query and memoized, not once per combination.
//
// Queries are keyed by a caller-chosen index: callers must use a stable
// index per distinct query (the query's position in its query set). The
// cache keeps the largest k computed so far per query and serves smaller
// k values by slicing, recomputing only when a larger k is requested.
// Safe for concurrent use.
type GroundTruth struct {
	data    *series.Collection
	workers int

	mu    sync.Mutex
	cache map[int]gtEntry
}

// gtEntry is one memoized answer: the k it was computed for and the
// matches in ascending distance order (squared distances, like Match).
type gtEntry struct {
	k       int
	matches []core.Match
}

// NewGroundTruth returns an empty cache over data. workers sets the scan
// parallelism of cache misses (values < 1 mean 1).
func NewGroundTruth(data *series.Collection, workers int) *GroundTruth {
	if workers < 1 {
		workers = 1
	}
	return &GroundTruth{data: data, workers: workers, cache: make(map[int]gtEntry)}
}

// KNN returns the exact k nearest neighbors of query under squared
// Euclidean distance, in ascending distance order. qi is the query's
// stable cache key; passing different queries under the same qi returns
// the first query's answer.
func (g *GroundTruth) KNN(qi int, query []float32, k int) ([]core.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("scan: ground-truth k must be positive, got %d", k)
	}
	g.mu.Lock()
	e, ok := g.cache[qi]
	g.mu.Unlock()
	if ok && e.k >= k {
		if len(e.matches) > k {
			return e.matches[:k], nil
		}
		return e.matches, nil
	}
	matches, err := SearchKNN(g.data, query, k, g.workers, nil)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	// A concurrent miss for a larger k may have landed first; keep the
	// larger answer.
	if cur, ok := g.cache[qi]; !ok || cur.k < k {
		g.cache[qi] = gtEntry{k: k, matches: matches}
	}
	g.mu.Unlock()
	return matches, nil
}

// Len reports the number of cached queries.
func (g *GroundTruth) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.cache)
}
