package scan

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

func TestGroundTruthMatchesScan(t *testing.T) {
	col, err := dataset.Generate(dataset.RandomWalk, 300, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := dataset.Queries(dataset.RandomWalk, 4, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	gt := NewGroundTruth(col, 2)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want, err := SearchKNN(col, q, 5, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // second pass must hit the cache
			got, err := gt.KNN(qi, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d pass %d: %d matches, want %d", qi, pass, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("query %d pass %d match %d = %+v, want %+v", qi, pass, i, got[i], want[i])
				}
			}
		}
	}
	if gt.Len() != queries.Count() {
		t.Errorf("cache holds %d queries, want %d", gt.Len(), queries.Count())
	}
}

func TestGroundTruthServesSmallerKFromCache(t *testing.T) {
	col, err := dataset.Generate(dataset.RandomWalk, 100, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := col.At(3)
	gt := NewGroundTruth(col, 1)
	big, err := gt.KNN(0, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	small, err := gt.KNN(0, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 3 {
		t.Fatalf("k=3 returned %d matches", len(small))
	}
	for i := range small {
		if small[i] != big[i] {
			t.Errorf("sliced answer diverges at %d", i)
		}
	}
	if gt.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", gt.Len())
	}
	// A larger k than cached recomputes.
	bigger, err := gt.KNN(0, q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(bigger) != 20 {
		t.Fatalf("k=20 returned %d matches", len(bigger))
	}
}

func TestGroundTruthConcurrent(t *testing.T) {
	col, err := dataset.Generate(dataset.RandomWalk, 200, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	gt := NewGroundTruth(col, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := 0; qi < 10; qi++ {
				if _, err := gt.KNN(qi, col.At(qi), 4); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if gt.Len() != 10 {
		t.Errorf("cache holds %d entries, want 10", gt.Len())
	}
}

func TestGroundTruthBadK(t *testing.T) {
	col, err := dataset.Generate(dataset.RandomWalk, 10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gt := NewGroundTruth(col, 1)
	if _, err := gt.KNN(0, col.At(0), 0); err == nil {
		t.Error("k=0 did not error")
	}
}
