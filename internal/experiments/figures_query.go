package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Fig07 — "Query answering, vs. leaf size": MESSI-sq and MESSI-mq average
// query time across leaf sizes (U-shaped curve; the paper's minimum is at
// 2K-series leaves at 100M-series scale).
func Fig07(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, queries, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 7",
		Title:   "Query answering time vs. leaf size (MESSI-sq, MESSI-mq)",
		Columns: []string{"leaf_size", "MESSI_sq_ms", "MESSI_mq_ms"},
	}
	for _, leaf := range []int{50, 100, 200, 500, 1000, 2000, 5000, 10000} {
		opts := cfg.messiOpts()
		opts.LeafCapacity = leaf
		ix, err := core.Build(data, opts)
		if err != nil {
			return nil, err
		}
		tb := &testbed{data: data, queries: queries, messi: ix}
		sq, err := tb.messiQuerySeconds(0, 1)
		if err != nil {
			return nil, err
		}
		mq, err := tb.messiQuerySeconds(0, 0) // default Nq=24
		if err != nil {
			return nil, err
		}
		cfg.logf("fig7 leaf=%d: sq=%.3fms mq=%.3fms", leaf, sq*1e3, mq*1e3)
		t.AddRow(fmt.Sprintf("%d", leaf), ms(sq), ms(mq))
	}
	t.AddNote("paper: U-shaped with minimum at mid-range leaves (2K at 100M-series scale)")
	return t, nil
}

// Fig11 — "Query answering, vs. number of cores": all five algorithms
// across worker counts.
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, queries, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	tb, err := cfg.newTestbed(data, queries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 11",
		Title:   "Query answering time vs. number of workers (all algorithms)",
		Columns: []string{"workers", "UCR-P_ms", "ParIS_ms", "ParIS-TS_ms", "MESSI-sq_ms", "MESSI-mq_ms"},
	}
	for _, workers := range []int{2, 4, 8, 12, 24, 48} {
		row := []string{fmt.Sprintf("%d", workers)}
		for _, algo := range QueryAlgos {
			avg, err := tb.avgQuerySeconds(algo, workers, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(avg))
		}
		cfg.logf("fig11 workers=%d done", workers)
		t.AddRow(row...)
	}
	t.AddNote("paper: MESSI-mq fastest (55x over UCR-P, 6.35x over ParIS at 48 threads); single-core hosts flatten the scaling")
	return t, nil
}

// Fig12 — "Query answering, vs. data size": all five algorithms across
// dataset sizes.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 12",
		Title:   "Query answering time vs. data size (all algorithms)",
		Columns: []string{"series", "UCR-P_ms", "ParIS_ms", "ParIS-TS_ms", "MESSI-sq_ms", "MESSI-mq_ms"},
	}
	for _, frac := range []float64{0.5, 1.0, 1.5, 2.0} {
		n := int(float64(cfg.Series) * frac)
		data, queries, err := cfg.data(dataset.RandomWalk, n)
		if err != nil {
			return nil, err
		}
		tb, err := cfg.newTestbed(data, queries)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, algo := range QueryAlgos {
			avg, err := tb.avgQuerySeconds(algo, 0, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(avg))
		}
		cfg.logf("fig12 n=%d done", n)
		t.AddRow(row...)
	}
	t.AddNote("paper: MESSI up to 61x over UCR-P, 6.35x over ParIS, 7.4x over ParIS-TS across sizes")
	return t, nil
}

// Fig13 — "Query answering with different queue type": the per-phase time
// breakdown of MESSI-sq vs MESSI-mq.
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, queries, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	ix, err := core.Build(data, cfg.messiOpts())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 13",
		Title:   "Query answering time breakdown (MESSI-sq vs MESSI-mq, per query)",
		Columns: []string{"phase", "MESSI_sq_ms", "MESSI_sq_%", "MESSI_mq_ms", "MESSI_mq_%"},
	}
	measure := func(queues int) (*stats.Breakdown, error) {
		bd := &stats.Breakdown{}
		for qi := 0; qi < queries.Count(); qi++ {
			opt := core.SearchOptions{Queues: queues, Breakdown: bd}
			if _, err := ix.Search(queries.At(qi), opt); err != nil {
				return nil, err
			}
		}
		return bd, nil
	}
	sq, err := measure(1)
	if err != nil {
		return nil, err
	}
	mq, err := measure(0)
	if err != nil {
		return nil, err
	}
	nq := float64(queries.Count())
	sqTotal := sq.Total().Seconds()
	mqTotal := mq.Total().Seconds()
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		sqS := sq.Get(p).Seconds()
		mqS := mq.Get(p).Seconds()
		t.AddRow(p.String(),
			ms(sqS/nq), fmt.Sprintf("%.1f%%", 100*sqS/sqTotal),
			ms(mqS/nq), fmt.Sprintf("%.1f%%", 100*mqS/mqTotal))
	}
	t.AddRow("TOTAL", ms(sqTotal/nq), "100%", ms(mqTotal/nq), "100%")
	t.AddNote("phase times are summed across workers (the paper's stacked bars); paper: mq cuts PQ insert/remove, distance calculation dominates")
	return t, nil
}

// Fig14 — "Query answering, vs. number of queues" on all three datasets.
func Fig14(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 14",
		Title:   "Query answering time vs. number of priority queues",
		Columns: []string{"queues", "SALD_ms", "Random_ms", "Seismic_ms"},
	}
	kinds := []dataset.Kind{dataset.SALDLike, dataset.RandomWalk, dataset.SeismicLike}
	beds := make([]*testbed, len(kinds))
	for i, kind := range kinds {
		data, queries, err := cfg.data(kind, cfg.Series)
		if err != nil {
			return nil, err
		}
		ix, err := core.Build(data, cfg.messiOpts())
		if err != nil {
			return nil, err
		}
		beds[i] = &testbed{data: data, queries: queries, messi: ix}
	}
	for _, queues := range []int{1, 2, 4, 8, 12, 16, 24, 48} {
		row := []string{fmt.Sprintf("%d", queues)}
		for _, tb := range beds {
			avg, err := tb.messiQuerySeconds(0, queues)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(avg))
		}
		cfg.logf("fig14 queues=%d done", queues)
		t.AddRow(row...)
	}
	t.AddNote("paper: time falls with queue count, minimum around 24 queues")
	return t, nil
}

// Fig16 — "Query answering for real datasets": all five algorithms on the
// seismic-like and SALD-like stand-ins.
func Fig16(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 16",
		Title:   "Query answering time on real-data stand-ins (all algorithms)",
		Columns: []string{"dataset", "UCR-P_ms", "ParIS_ms", "ParIS-TS_ms", "MESSI-sq_ms", "MESSI-mq_ms"},
	}
	for _, kind := range []dataset.Kind{dataset.SALDLike, dataset.SeismicLike} {
		data, queries, err := cfg.data(kind, cfg.Series)
		if err != nil {
			return nil, err
		}
		tb, err := cfg.newTestbed(data, queries)
		if err != nil {
			return nil, err
		}
		row := []string{string(kind)}
		for _, algo := range QueryAlgos {
			avg, err := tb.avgQuerySeconds(algo, 0, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(avg))
		}
		cfg.logf("fig16 %s done", kind)
		t.AddRow(row...)
	}
	t.AddNote("paper: MESSI 60x/8.4x (SALD) and 80x/11x (Seismic) over UCR-P/ParIS; real data prunes worse than random")
	return t, nil
}

// Fig17 — "Number of distance calculations": lower-bound (a) and real (b)
// distance computation counts, ParIS vs MESSI, per dataset.
func Fig17(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 17",
		Title:   "Distance calculations per query (ParIS vs MESSI, averages)",
		Columns: []string{"dataset", "ParIS_lb", "MESSI_lb", "lb_ratio", "ParIS_real", "MESSI_real"},
	}
	for _, kind := range []dataset.Kind{dataset.RandomWalk, dataset.SeismicLike, dataset.SALDLike} {
		data, queries, err := cfg.data(kind, cfg.Series)
		if err != nil {
			return nil, err
		}
		tb, err := cfg.newTestbed(data, queries)
		if err != nil {
			return nil, err
		}
		parisCtrs := &stats.Counters{}
		messiCtrs := &stats.Counters{}
		for qi := 0; qi < queries.Count(); qi++ {
			if _, err := tb.runQuery(AlgoParis, queries.At(qi), 0, 0, parisCtrs); err != nil {
				return nil, err
			}
			if _, err := tb.runQuery(AlgoMESSIMQ, queries.At(qi), 0, 0, messiCtrs); err != nil {
				return nil, err
			}
		}
		nq := int64(queries.Count())
		p := parisCtrs.Snapshot()
		m := messiCtrs.Snapshot()
		ratio := float64(m.LowerBoundCalcs) / float64(p.LowerBoundCalcs)
		cfg.logf("fig17 %s: lb %d vs %d (%.1f%%)", kind, p.LowerBoundCalcs/nq, m.LowerBoundCalcs/nq, 100*ratio)
		t.AddRow(string(kind),
			fmt.Sprintf("%d", p.LowerBoundCalcs/nq), fmt.Sprintf("%d", m.LowerBoundCalcs/nq),
			fmt.Sprintf("%.1f%%", 100*ratio),
			fmt.Sprintf("%d", p.RealDistCalcs/nq), fmt.Sprintf("%d", m.RealDistCalcs/nq))
	}
	t.AddNote("paper: MESSI performs no more than 15%% of ParIS's lower-bound calculations and fewer real-distance calculations")
	return t, nil
}

// Fig18 — "Query answering performance benefit breakdown": ParIS-SISD →
// ParIS → ParIS-TS → MESSI-mq.
func Fig18(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, queries, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	tb, err := cfg.newTestbed(data, queries)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 18",
		Title:   "Query answering benefit breakdown (random walk)",
		Columns: []string{"algorithm", "avg_query_ms", "vs_ParIS-SISD"},
	}
	var base float64
	for _, algo := range []Algo{AlgoParisSISD, AlgoParis, AlgoParisTS, AlgoMESSIMQ} {
		avg, err := tb.avgQuerySeconds(algo, 0, 0)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = avg
		}
		cfg.logf("fig18 %s: %.3fms", algo, avg*1e3)
		t.AddRow(string(algo), ms(avg), fmt.Sprintf("%.2fx", base/avg))
	}
	t.AddNote("paper: SIMD makes ParIS 60%% faster than ParIS-SISD; ParIS-TS ~10%% over ParIS; MESSI-mq 83%% over ParIS-TS")
	return t, nil
}

// Fig19 — "MESSI query answering time for DTW distance": serial UCR Suite
// DTW, UCR Suite-P DTW, and MESSI DTW across data sizes (10% warping
// window).
func Fig19(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 19",
		Title:   "DTW query answering time vs. data size (10% warping window)",
		Columns: []string{"series", "UCR_DTW_ms", "UCR-P_DTW_ms", "MESSI_DTW_ms"},
	}
	for _, frac := range []float64{0.5, 1.0, 1.5, 2.0} {
		n := int(float64(cfg.DTWSeries) * frac)
		data, queries, err := cfg.data(dataset.RandomWalk, n)
		if err != nil {
			return nil, err
		}
		ix, err := core.Build(data, cfg.messiOpts())
		if err != nil {
			return nil, err
		}
		tb := &testbed{data: data, queries: queries, messi: ix}
		window := cfg.Length / 10
		serial, err := dtwAvgSeconds(tb, window, 1)
		if err != nil {
			return nil, err
		}
		parallel, err := dtwAvgSeconds(tb, window, core.DefaultSearchWorkers)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for qi := 0; qi < queries.Count(); qi++ {
			if _, err := ix.SearchDTW(queries.At(qi), window, core.SearchOptions{}); err != nil {
				return nil, err
			}
		}
		messiAvg := time.Since(start).Seconds() / float64(queries.Count())
		cfg.logf("fig19 n=%d: serial=%.1fms parallel=%.1fms messi=%.1fms", n, serial*1e3, parallel*1e3, messiAvg*1e3)
		t.AddRow(fmt.Sprintf("%d", n), ms(serial), ms(parallel), ms(messiAvg))
	}
	t.AddNote("paper: MESSI-DTW up to 34x over UCR Suite-P DTW, 3 orders of magnitude over serial UCR Suite DTW")
	return t, nil
}
