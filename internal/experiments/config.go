// Package experiments regenerates every figure of the paper's evaluation
// section (Figures 5-19). Each FigNN function runs the corresponding
// parameter sweep or algorithm comparison and returns a Table whose rows
// match the series the paper plots.
//
// Workloads are size-scaled: the paper uses 100M-series (100 GB) datasets
// on a 24-core/48-thread server, this harness defaults to tens of
// thousands of series so the full suite runs in minutes on one machine.
// Config lets callers scale everything up. Absolute numbers therefore
// differ from the paper; the comparisons that matter (who wins, by what
// factor, where curves bend) are preserved — see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/paris"
	"repro/internal/series"
)

// Config scales the experiment workloads.
type Config struct {
	Series    int       // base collection size (number of series)
	Length    int       // series length for synthetic/seismic figures
	Queries   int       // queries per measurement (paper: 100)
	DTWSeries int       // collection size for the DTW figure (full DTW is costly)
	Seed      int64     // generator seed
	Progress  io.Writer // optional progress log (nil = silent)

	// Spectrum experiment knobs (ignored by the paper figures): Mode
	// restricts the sweep to one quality mode ("" = all four), Epsilon is
	// the relative-error budget of the epsilon row (default 0.05), and
	// Deadline is the latency budget of the deadline row (default 1ms).
	Mode     string
	Epsilon  float64
	Deadline time.Duration
}

// DefaultConfig returns the scaled-down default workload (~100 MB of raw
// series at the base size, the paper's 100 GB sweep divided by 1000).
func DefaultConfig() Config {
	return Config{
		Series:    100000,
		Length:    256,
		Queries:   10,
		DTWSeries: 5000,
		Seed:      1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Series <= 0 {
		c.Series = d.Series
	}
	if c.Length <= 0 {
		c.Length = d.Length
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.DTWSeries <= 0 {
		c.DTWSeries = d.DTWSeries
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// data generates (deterministically) the collection and query workload for
// one dataset family at a given size.
func (c Config) data(kind dataset.Kind, count int) (*series.Collection, *series.Collection, error) {
	length := c.Length
	if kind == dataset.SALDLike {
		length = 128
	}
	col, err := dataset.Generate(kind, count, length, c.Seed)
	if err != nil {
		return nil, nil, err
	}
	queries, err := dataset.Queries(kind, c.Queries, length, c.Seed+1000)
	if err != nil {
		return nil, nil, err
	}
	return col, queries, nil
}

// messiOpts returns MESSI build options at experiment scale. Leaf capacity
// is scaled with the collection so trees keep the paper's proportions
// (paper: 2000-series leaves for 100M series collections would never split
// at our scale).
func (c Config) messiOpts() core.Options {
	return core.Options{
		LeafCapacity: c.leafCapacity(),
	}
}

func (c Config) parisOpts() paris.Options {
	return paris.Options{
		LeafCapacity: c.leafCapacity(),
	}
}

// leafCapacity scales the paper's 2000-series leaves down proportionally
// (clamped to a useful minimum).
func (c Config) leafCapacity() int {
	cap := c.Series / 200 // 100M series / 2000 leaf == 50000:1 ratio is too coarse here; 200:1 keeps trees deep
	if cap < 16 {
		cap = 16
	}
	if cap > 2000 {
		cap = 2000
	}
	return cap
}
