package experiments

import (
	"fmt"

	"repro/internal/dataset"
)

// Fig05 — "Index creation, vs. chunk size": MESSI build time across chunk
// sizes. The paper's curve is flat once chunks exceed ~1K series, with a
// penalty at tiny chunks (Fetch&Inc contention).
func Fig05(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, _, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 5",
		Title:   "Index creation time vs. chunk size (random walk)",
		Columns: []string{"chunk_size", "MESSI_build_s"},
	}
	for _, chunk := range []int{10, 100, 500, 1000, 10000, 20000, 50000, 100000} {
		if chunk > cfg.Series {
			break
		}
		opts := cfg.messiOpts()
		opts.ChunkSize = chunk
		bt, err := minBuildMESSI(data, opts)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig5 chunk=%d: %.3fs", chunk, bt.Total().Seconds())
		t.AddRow(fmt.Sprintf("%d", chunk), secs(bt.Total().Seconds()))
	}
	t.AddNote("paper: flat beyond 1K-series chunks; small chunks pay Fetch&Inc contention (20K chosen)")
	return t, nil
}

// Fig06 — "Index creation, vs. leaf size": larger leaves build faster
// (fewer splits), flattening beyond a few thousand series.
func Fig06(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, _, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 6",
		Title:   "Index creation time vs. leaf size (random walk)",
		Columns: []string{"leaf_size", "MESSI_build_s"},
	}
	for _, leaf := range []int{50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000} {
		opts := cfg.messiOpts()
		opts.LeafCapacity = leaf
		bt, err := minBuildMESSI(data, opts)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6 leaf=%d: %.3fs", leaf, bt.Total().Seconds())
		t.AddRow(fmt.Sprintf("%d", leaf), secs(bt.Total().Seconds()))
	}
	t.AddNote("paper: build time falls with leaf size and flattens past ~5K")
	return t, nil
}

// Fig08 — "Index creation, vs. initial iSAX buffer size": smaller initial
// buffer-part allocations build faster.
func Fig08(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, _, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 8",
		Title:   "Index creation time vs. initial iSAX buffer size (random walk)",
		Columns: []string{"init_buffer", "MESSI_build_s"},
	}
	for _, initCap := range []int{2, 5, 10, 20, 50, 100, 200, 500, 1000} {
		opts := cfg.messiOpts()
		opts.InitBufferCap = initCap
		bt, err := minBuildMESSI(data, opts)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig8 init=%d: %.3fs", initCap, bt.Total().Seconds())
		t.AddRow(fmt.Sprintf("%d", initCap), secs(bt.Total().Seconds()))
	}
	t.AddNote("paper: smaller initial sizes are better (5 chosen); large initial parts waste allocation")
	return t, nil
}

// Fig09 — "Index creation, varying number of cores": ParIS vs MESSI with
// the per-phase split (iSAX summarization vs tree construction).
func Fig09(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, _, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Figure:  "Figure 9",
		Title:   "Index creation time vs. number of workers, phase split (ParIS vs MESSI)",
		Columns: []string{"workers", "ParIS_sum_s", "ParIS_tree_s", "ParIS_total_s", "MESSI_sum_s", "MESSI_tree_s", "MESSI_total_s"},
	}
	for _, workers := range []int{1, 2, 4, 8, 12, 18, 24} {
		pOpts := cfg.parisOpts()
		pOpts.IndexWorkers = workers
		pt, err := minBuildParis(data, pOpts)
		if err != nil {
			return nil, err
		}
		mOpts := cfg.messiOpts()
		mOpts.IndexWorkers = workers
		mt, err := minBuildMESSI(data, mOpts)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig9 workers=%d: paris=%.3fs messi=%.3fs", workers, pt.Total().Seconds(), mt.Total().Seconds())
		t.AddRow(fmt.Sprintf("%d", workers),
			secs(pt.Summarize.Seconds()), secs(pt.TreeBuild.Seconds()), secs(pt.Total().Seconds()),
			secs(mt.Summarize.Seconds()), secs(mt.TreeBuild.Seconds()), secs(mt.Total().Seconds()))
	}
	t.AddNote("paper: MESSI ~3.5x faster at 24 workers; on a single-core host the worker sweep cannot show hardware speedup (see EXPERIMENTS.md)")
	return t, nil
}

// Fig10 — "Index creation, vs. data size": ParIS vs MESSI across dataset
// sizes (the paper's 50-200GB sweep, scaled).
func Fig10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 10",
		Title:   "Index creation time vs. data size (ParIS vs MESSI)",
		Columns: []string{"series", "ParIS_build_s", "MESSI_build_s", "speedup"},
	}
	for _, frac := range []float64{0.5, 1.0, 1.5, 2.0} {
		n := int(float64(cfg.Series) * frac)
		data, _, err := cfg.data(dataset.RandomWalk, n)
		if err != nil {
			return nil, err
		}
		pt, err := minBuildParis(data, cfg.parisOpts())
		if err != nil {
			return nil, err
		}
		mt, err := minBuildMESSI(data, cfg.messiOpts())
		if err != nil {
			return nil, err
		}
		speedup := pt.Total().Seconds() / mt.Total().Seconds()
		cfg.logf("fig10 n=%d: paris=%.3fs messi=%.3fs (%.2fx)", n, pt.Total().Seconds(), mt.Total().Seconds(), speedup)
		t.AddRow(fmt.Sprintf("%d", n), secs(pt.Total().Seconds()), secs(mt.Total().Seconds()),
			fmt.Sprintf("%.2fx", speedup))
	}
	t.AddNote("paper: MESSI up to 4.2x faster, gap growing with size")
	return t, nil
}

// Fig15 — "Index creation for real datasets": ParIS vs MESSI on the
// seismic-like and SALD-like stand-ins.
func Fig15(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Figure:  "Figure 15",
		Title:   "Index creation time on real-data stand-ins (ParIS vs MESSI)",
		Columns: []string{"dataset", "ParIS_build_s", "MESSI_build_s", "speedup"},
	}
	for _, kind := range []dataset.Kind{dataset.SALDLike, dataset.SeismicLike} {
		data, _, err := cfg.data(kind, cfg.Series)
		if err != nil {
			return nil, err
		}
		pt, err := minBuildParis(data, cfg.parisOpts())
		if err != nil {
			return nil, err
		}
		mt, err := minBuildMESSI(data, cfg.messiOpts())
		if err != nil {
			return nil, err
		}
		speedup := pt.Total().Seconds() / mt.Total().Seconds()
		cfg.logf("fig15 %s: paris=%.3fs messi=%.3fs (%.2fx)", kind, pt.Total().Seconds(), mt.Total().Seconds(), speedup)
		t.AddRow(string(kind), secs(pt.Total().Seconds()), secs(mt.Total().Seconds()),
			fmt.Sprintf("%.2fx", speedup))
	}
	t.AddNote("paper: MESSI 3.6x (SALD) and 3.7x (Seismic) faster at 24 workers")
	return t, nil
}
