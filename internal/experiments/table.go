package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one figure's regenerated data: column-oriented rows plus notes
// about scaling. It renders as aligned text.
type Table struct {
	Figure  string   // e.g. "Figure 5"
	Title   string   // the paper's caption
	Columns []string // header
	Rows    [][]string
	Notes   []string // scaling caveats, observed shape summary
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends an explanatory note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Figure, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// ms formats a duration-in-seconds float as milliseconds.
func ms(seconds float64) string { return fmt.Sprintf("%.3f", seconds*1e3) }

// secs formats seconds.
func secs(seconds float64) string { return fmt.Sprintf("%.4f", seconds) }
