package experiments

import (
	"fmt"
	"io"
	"sort"
)

// FigureFunc runs one figure's experiment.
type FigureFunc func(Config) (*Table, error)

// Figures maps figure numbers to their drivers (every figure of §IV).
var Figures = map[int]FigureFunc{
	5:  Fig05,
	6:  Fig06,
	7:  Fig07,
	8:  Fig08,
	9:  Fig09,
	10: Fig10,
	11: Fig11,
	12: Fig12,
	13: Fig13,
	14: Fig14,
	15: Fig15,
	16: Fig16,
	17: Fig17,
	18: Fig18,
	19: Fig19,
}

// FigureNumbers returns the available figure numbers in ascending order.
func FigureNumbers() []int {
	nums := make([]int, 0, len(Figures))
	for n := range Figures {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums
}

// Run executes one figure by number.
func Run(fig int, cfg Config) (*Table, error) {
	fn, ok := Figures[fig]
	if !ok {
		return nil, fmt.Errorf("experiments: no figure %d (have 5-19)", fig)
	}
	return fn(cfg)
}

// RunAll executes every figure in order, writing each table to w as it
// completes. It stops at the first failure.
func RunAll(cfg Config, w io.Writer) error {
	for _, n := range FigureNumbers() {
		table, err := Run(n, cfg)
		if err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
		if _, err := table.WriteTo(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
