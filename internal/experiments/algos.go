package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/paris"
	"repro/internal/scan"
	"repro/internal/series"
	"repro/internal/stats"
)

// buildReps is how many times each build measurement is repeated; the
// fastest run is kept. Index construction allocates tens of megabytes, so
// a single run can be charged an arbitrary slice of GC work left over from
// the previous measurement; min-of-reps with a forced collection between
// runs removes that noise (the paper averages 10 runs on a quiet server).
const buildReps = 3

// minBuildMESSI returns the fastest of buildReps timed MESSI builds.
func minBuildMESSI(data *series.Collection, opts core.Options) (core.BuildTiming, error) {
	var best core.BuildTiming
	for r := 0; r < buildReps; r++ {
		runtime.GC()
		var bt core.BuildTiming
		if _, err := core.BuildTimed(data, opts, &bt); err != nil {
			return best, err
		}
		if r == 0 || bt.Total() < best.Total() {
			best = bt
		}
	}
	return best, nil
}

// minBuildParis returns the fastest of buildReps timed ParIS builds.
func minBuildParis(data *series.Collection, opts paris.Options) (paris.BuildTiming, error) {
	var best paris.BuildTiming
	for r := 0; r < buildReps; r++ {
		runtime.GC()
		var bt paris.BuildTiming
		if _, err := paris.BuildTimed(data, opts, &bt); err != nil {
			return best, err
		}
		if r == 0 || bt.Total() < best.Total() {
			best = bt
		}
	}
	return best, nil
}

// Algo names one of the query-answering algorithms compared in Figures
// 11, 12, 16 and 18.
type Algo string

// The competitors of the evaluation.
const (
	AlgoUCRP      Algo = "UCR Suite-P"
	AlgoParis     Algo = "ParIS"
	AlgoParisSISD Algo = "ParIS-SISD"
	AlgoParisTS   Algo = "ParIS-TS"
	AlgoMESSISQ   Algo = "MESSI-sq"
	AlgoMESSIMQ   Algo = "MESSI-mq"
)

// QueryAlgos is the default comparison set of Figures 11/12/16.
var QueryAlgos = []Algo{AlgoUCRP, AlgoParis, AlgoParisTS, AlgoMESSISQ, AlgoMESSIMQ}

// testbed bundles the per-dataset state shared across figure points: the
// raw data, the query workload, and both indexes.
type testbed struct {
	data    *series.Collection
	queries *series.Collection
	messi   *core.Index
	paris   *paris.Index
}

// newTestbed builds both indexes over a dataset (indexes are built with
// the same leaf capacity so query comparisons are apples-to-apples).
func (c Config) newTestbed(data, queries *series.Collection) (*testbed, error) {
	messiIx, err := core.Build(data, c.messiOpts())
	if err != nil {
		return nil, err
	}
	parisIx, err := paris.Build(data, c.parisOpts())
	if err != nil {
		return nil, err
	}
	return &testbed{data: data, queries: queries, messi: messiIx, paris: parisIx}, nil
}

// runQuery answers one query with the chosen algorithm and worker/queue
// configuration, returning the squared distance (for cross-checks).
func (tb *testbed) runQuery(algo Algo, q []float32, workers, queues int, ctrs *stats.Counters) (float64, error) {
	switch algo {
	case AlgoUCRP:
		m, err := scan.Search1NN(tb.data, q, workers, ctrs)
		return m.Dist, err
	case AlgoParis:
		m, err := tb.paris.Search(q, paris.SearchOptions{Workers: workers, Counters: ctrs})
		return m.Dist, err
	case AlgoParisSISD:
		m, err := tb.paris.Search(q, paris.SearchOptions{Workers: workers, Kernel: paris.KernelSISD, Counters: ctrs})
		return m.Dist, err
	case AlgoParisTS:
		m, err := tb.paris.SearchTS(q, paris.SearchOptions{Workers: workers, Counters: ctrs})
		return m.Dist, err
	case AlgoMESSISQ:
		m, err := tb.messi.Search(q, core.SearchOptions{Workers: workers, Queues: 1, Counters: ctrs})
		return m.Dist, err
	case AlgoMESSIMQ:
		m, err := tb.messi.Search(q, core.SearchOptions{Workers: workers, Counters: ctrs})
		return m.Dist, err
	default:
		return 0, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
}

// avgQuerySeconds runs the whole query workload sequentially (the paper
// runs queries "in a sequential fashion, one after the other, in order to
// simulate an exploratory analysis scenario") and returns the mean
// wall-clock seconds per query.
func (tb *testbed) avgQuerySeconds(algo Algo, workers, queues int) (float64, error) {
	start := time.Now()
	for qi := 0; qi < tb.queries.Count(); qi++ {
		if _, err := tb.runQuery(algo, tb.queries.At(qi), workers, queues, nil); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(tb.queries.Count()), nil
}

// dtwAvgSeconds measures the UCR Suite DTW scan (serial when workers == 1,
// UCR Suite-P DTW otherwise) over the whole query workload.
func dtwAvgSeconds(tb *testbed, window, workers int) (float64, error) {
	start := time.Now()
	for qi := 0; qi < tb.queries.Count(); qi++ {
		if _, err := scan.SearchDTW(tb.data, tb.queries.At(qi), window, workers, nil); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(tb.queries.Count()), nil
}

// messiQuerySeconds measures MESSI with an explicit queue count (for the
// Figure 7/14 sweeps).
func (tb *testbed) messiQuerySeconds(workers, queues int) (float64, error) {
	start := time.Now()
	for qi := 0; qi < tb.queries.Count(); qi++ {
		opt := core.SearchOptions{Workers: workers, Queues: queues}
		if _, err := tb.messi.Search(tb.queries.At(qi), opt); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(tb.queries.Count()), nil
}
