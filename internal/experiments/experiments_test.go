package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps the full figure suite runnable inside the unit tests.
func tinyConfig() Config {
	return Config{Series: 2000, Length: 64, Queries: 2, DTWSeries: 300, Seed: 1}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c != d {
		t.Errorf("withDefaults() = %+v, want %+v", c, d)
	}
	c = Config{Series: 5}.withDefaults()
	if c.Series != 5 || c.Queries != d.Queries {
		t.Errorf("partial defaults wrong: %+v", c)
	}
}

func TestLeafCapacityScaling(t *testing.T) {
	if got := (Config{Series: 1000}).leafCapacity(); got != 16 {
		t.Errorf("small collection leaf capacity = %d, want clamp 16", got)
	}
	if got := (Config{Series: 100000}).leafCapacity(); got != 500 {
		t.Errorf("100K leaf capacity = %d, want 500", got)
	}
	if got := (Config{Series: 10000000}).leafCapacity(); got != 2000 {
		t.Errorf("huge leaf capacity = %d, want clamp 2000", got)
	}
}

func TestFigureNumbersComplete(t *testing.T) {
	nums := FigureNumbers()
	if len(nums) != 15 {
		t.Fatalf("expected 15 figures (5-19), got %d", len(nums))
	}
	for i, n := range nums {
		if n != i+5 {
			t.Fatalf("figure numbers = %v, want 5..19", nums)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run(4, tinyConfig()); err == nil {
		t.Error("figure 4 should not exist")
	}
	if _, err := Run(20, tinyConfig()); err == nil {
		t.Error("figure 20 should not exist")
	}
}

// Every figure must run at tiny scale and produce a well-formed table with
// the declared column count in every row.
func TestAllFiguresProduceTables(t *testing.T) {
	cfg := tinyConfig()
	for _, n := range FigureNumbers() {
		n := n
		t.Run("fig"+strconv.Itoa(n), func(t *testing.T) {
			table, err := Run(n, cfg)
			if err != nil {
				t.Fatalf("figure %d: %v", n, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("figure %d produced no rows", n)
			}
			for ri, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("figure %d row %d has %d cells, want %d",
						n, ri, len(row), len(table.Columns))
				}
			}
			out := table.String()
			if !strings.Contains(out, table.Figure) {
				t.Errorf("rendered table missing figure label")
			}
		})
	}
}

// The pruning-count comparison (Figure 17's headline): MESSI performs
// fewer lower-bound calculations than ParIS (which computes one per
// series) and no more real-distance calculations. The advantage needs
// realistically-proportioned leaves, so this test runs at a larger scale
// than the smoke tests (at very small scales the per-node bounds of a
// many-tiny-leaves tree outnumber ParIS's one-per-series sweep).
func TestFig17ShapeHolds(t *testing.T) {
	cfg := tinyConfig()
	cfg.Series = 20000
	table, err := Fig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		parisLB, _ := strconv.ParseInt(row[1], 10, 64)
		messiLB, _ := strconv.ParseInt(row[2], 10, 64)
		if messiLB >= parisLB {
			t.Errorf("%s: MESSI lower bounds (%d) not below ParIS (%d)", row[0], messiLB, parisLB)
		}
		parisReal, _ := strconv.ParseInt(row[4], 10, 64)
		messiReal, _ := strconv.ParseInt(row[5], 10, 64)
		if messiReal > parisReal {
			t.Errorf("%s: MESSI real calcs (%d) above ParIS (%d)", row[0], messiReal, parisReal)
		}
	}
}

func TestRunAllTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covers every figure; skipped in -short")
	}
	var sb strings.Builder
	cfg := tinyConfig()
	if err := RunAll(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, n := range FigureNumbers() {
		if !strings.Contains(out, "Figure "+strconv.Itoa(n)) {
			t.Errorf("RunAll output missing figure %d", n)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Figure:  "Figure X",
		Title:   "test",
		Columns: []string{"a", "long_column"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333333", "4")
	tb.AddNote("hello %d", 42)
	out := tb.String()
	if !strings.Contains(out, "Figure X — test") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "note: hello 42") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

// TestHardnessTable: the hardness experiment produces one row per
// (tier, mode) cell, exact rows score recall 1.0, and the adversarial
// tier prunes worse than the member tier.
func TestHardnessTable(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 3
	table, err := Hardness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5*4 {
		t.Fatalf("%d rows, want 20 (5 tiers × 4 modes)", len(table.Rows))
	}
	pruning := map[string]string{}
	for _, row := range table.Rows {
		if len(row) != len(table.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(table.Columns))
		}
		tier, mode, recall := row[0], row[1], row[2]
		if mode == "exact" {
			if recall != "1.0000" {
				t.Errorf("tier %s exact recall = %s, want 1.0000", tier, recall)
			}
			pruning[tier] = row[4]
		}
		if row[5] == "-" {
			t.Errorf("tier %s mode %s: missing p99 latency", tier, mode)
		}
	}
	if pruning["adversarial"] >= pruning["member"] {
		t.Errorf("adversarial pruning %s not below member pruning %s",
			pruning["adversarial"], pruning["member"])
	}
}

// TestHardnessModeFilter: -mode restricts the sweep to one row per tier.
func TestHardnessModeFilter(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 2
	cfg.Mode = "approx"
	table, err := Hardness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("%d rows, want 5 (one approx row per tier)", len(table.Rows))
	}
	cfg.Mode = "warp"
	if _, err := Hardness(cfg); err == nil {
		t.Error("unknown mode did not error")
	}
}
