package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	messi "repro"
	"repro/internal/dataset"
)

// Spectrum is not a paper figure: it profiles the quality/latency spectrum
// of the unified Do API over one workload — one row per quality mode, with
// the mean latency, the fraction of answers proven exact, and the mean
// proven relative-error bound. It is the operator-facing companion to the
// admission gate's DegradeEpsilon policy: the epsilon row's latency is
// what a degraded exact query costs.
func Spectrum(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	budget := cfg.Deadline
	if budget <= 0 {
		budget = time.Millisecond
	}
	data, queries, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	ix, err := messi.BuildFlat(data.Data, data.Length, &messi.Options{LeafCapacity: cfg.leafCapacity()})
	if err != nil {
		return nil, err
	}

	rows := []struct {
		label string
		req   messi.SearchRequest
	}{
		{"exact", messi.SearchRequest{Mode: messi.ModeExact}},
		{"approx", messi.SearchRequest{Mode: messi.ModeApprox}},
		{fmt.Sprintf("epsilon(%g)", eps), messi.SearchRequest{Mode: messi.ModeEpsilon, Epsilon: eps}},
		{fmt.Sprintf("deadline(%v)", budget), messi.SearchRequest{Mode: messi.ModeDeadline, Deadline: budget}},
	}
	if cfg.Mode != "" {
		mode, err := messi.ParseMode(cfg.Mode)
		if err != nil {
			return nil, err
		}
		kept := rows[:0]
		for _, r := range rows {
			if r.req.Mode == mode {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	t := &Table{
		Figure:  "Spectrum",
		Title:   "Quality/latency spectrum of the unified search API",
		Columns: []string{"mode", "avg_ms", "exact_frac", "mean_proven_bound"},
	}
	for _, row := range rows {
		var exactN int
		var boundSum float64
		boundN := 0
		start := time.Now()
		for qi := 0; qi < queries.Count(); qi++ {
			req := row.req
			req.Query = queries.At(qi)
			res, err := ix.Do(context.Background(), req)
			if err != nil {
				return nil, fmt.Errorf("%s query %d: %w", row.label, qi, err)
			}
			if res.Exact {
				exactN++
			}
			if !math.IsInf(res.EpsilonBound, 1) {
				boundSum += res.EpsilonBound
				boundN++
			}
		}
		avg := time.Since(start).Seconds() / float64(queries.Count())
		bound := "-"
		if boundN > 0 {
			bound = fmt.Sprintf("%.4f", boundSum/float64(boundN))
		}
		cfg.logf("spectrum %s: avg=%.3fms exact=%d/%d", row.label, avg*1e3, exactN, queries.Count())
		t.AddRow(row.label, ms(avg), fmt.Sprintf("%.2f", float64(exactN)/float64(queries.Count())), bound)
	}
	t.AddNote("exact_frac counts answers proven optimal; mean_proven_bound averages the finite ε bounds actually proven ('-' when none)")
	return t, nil
}
