package experiments

import (
	"fmt"

	messi "repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Hardness is not a paper figure: it runs the hardness-aware workload
// harness (internal/workload) over one collection and tabulates how answer
// quality and pruning degrade as queries move off the indexed data — from
// members through noisy perturbations to out-of-distribution and
// adversarial anti-correlated queries. It is the human-readable companion
// to cmd/messi-workload's JSON report.
func Hardness(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data, _, err := cfg.data(dataset.RandomWalk, cfg.Series)
	if err != nil {
		return nil, err
	}
	ix, err := messi.BuildFlat(data.Data, data.Length, &messi.Options{LeafCapacity: cfg.leafCapacity()})
	if err != nil {
		return nil, err
	}
	sets, err := workload.GenerateAll(data, cfg.Queries, cfg.Seed, nil)
	if err != nil {
		return nil, err
	}
	wcfg := workload.Config{
		Epsilon:        cfg.Epsilon,
		Deadline:       cfg.Deadline,
		MeasureLatency: true,
	}
	if cfg.Mode != "" {
		mode, err := messi.ParseMode(cfg.Mode)
		if err != nil {
			return nil, err
		}
		wcfg.Modes = []messi.Mode{mode}
	}
	rep, err := workload.Run(ix, data, sets, wcfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Figure:  "Hardness",
		Title:   "Answer quality and pruning across query-hardness tiers",
		Columns: []string{"tier", "mode", "recall_at_k", "exact_frac", "pruning_mean", "p99_ms"},
	}
	for _, tr := range rep.Tiers {
		for _, mr := range tr.Modes {
			p99 := "-"
			if mr.Latency != nil {
				p99 = fmt.Sprintf("%.3f", mr.Latency.P99)
			}
			cfg.logf("hardness %s/%s: recall=%.4f pruning=%.4f", tr.Tier, mr.Mode, mr.RecallAtK, mr.PruningRatioMean)
			t.AddRow(tr.Tier, mr.Mode,
				fmt.Sprintf("%.4f", mr.RecallAtK),
				fmt.Sprintf("%.2f", mr.ExactFraction),
				fmt.Sprintf("%.4f", mr.PruningRatioMean),
				p99)
		}
	}
	t.AddNote("tiers ordered easy → hard; pruning_mean = 1 − real-distance computations / N, so lower means the index worked harder (k=%d)", rep.K)
	return t, nil
}
