// Package isax implements the indexable Symbolic Aggregate approXimation
// (iSAX) representation (Shieh & Keogh, KDD 2008) used by MESSI: each PAA
// segment mean is quantized against N(0,1) breakpoints into a small symbol,
// and symbols support variable cardinality — dropping low-order bits of a
// symbol widens its region, which is what lets an iSAX tree refine node
// summaries one bit at a time.
//
// Conventions in this package:
//
//   - A "word" is a full-precision summary: one symbol per segment, each
//     using the maximum number of bits (CardBits, 8 in the paper). Words are
//     stored as flat []uint8 with one byte per segment.
//   - A "prefix" is a variable-cardinality summary: per-segment symbols plus
//     the number of bits each symbol uses. Tree nodes carry prefixes.
//   - All distances returned are SQUARED lower bounds of the true squared
//     Euclidean distance (hot paths never take square roots).
package isax

import (
	"fmt"
	"math"
	"sort"
)

// MaxSegments bounds the number of PAA segments (w). Root subtrees are
// addressed by one bit per segment, so the root fanout is 2^w; 16 matches
// the paper and keeps the fanout addressable by a dense array.
const MaxSegments = 16

// MaxCardBits bounds the per-symbol bit width; 8 bits (alphabet cardinality
// 256) is the maximum used in the iSAX literature and in the paper.
const MaxCardBits = 8

// Schema fixes the iSAX parameters for one index: the series length n, the
// number of segments w, and the per-symbol bit budget. It precomputes the
// N(0,1) breakpoints and per-symbol region bounds at full cardinality.
type Schema struct {
	SeriesLen int // n: points per series
	Segments  int // w: PAA segments per word
	CardBits  int // bits per symbol; cardinality = 1<<CardBits

	ratio       float64   // n/w, the MINDIST scale factor
	breakpoints []float64 // (1<<CardBits)-1 ascending N(0,1) quantiles
	regionLower []float64 // per full-precision symbol: lower region bound
	regionUpper []float64 // per full-precision symbol: upper region bound
}

// SameGeometry reports whether two schemas quantize identically — same
// series length, segments and cardinality, hence identical breakpoint and
// region tables. Shards of one collection hold distinct Schema instances
// with the same geometry; per-query distance tables built against one are
// shaped and valued exactly for the other, so pooled tables may be reused
// across them.
func (s *Schema) SameGeometry(o *Schema) bool {
	return s == o || (o != nil && s.SeriesLen == o.SeriesLen &&
		s.Segments == o.Segments && s.CardBits == o.CardBits)
}

// NewSchema validates the parameters and precomputes the quantization
// tables. SeriesLen must be a positive multiple of Segments.
func NewSchema(seriesLen, segments, cardBits int) (*Schema, error) {
	if segments <= 0 || segments > MaxSegments {
		return nil, fmt.Errorf("isax: segments must be in [1,%d], got %d", MaxSegments, segments)
	}
	if cardBits <= 0 || cardBits > MaxCardBits {
		return nil, fmt.Errorf("isax: cardBits must be in [1,%d], got %d", MaxCardBits, cardBits)
	}
	if seriesLen <= 0 || seriesLen%segments != 0 {
		return nil, fmt.Errorf("isax: series length %d must be a positive multiple of segments %d", seriesLen, segments)
	}
	s := &Schema{
		SeriesLen: seriesLen,
		Segments:  segments,
		CardBits:  cardBits,
		ratio:     float64(seriesLen) / float64(segments),
	}
	card := 1 << cardBits
	s.breakpoints = make([]float64, card-1)
	for i := range s.breakpoints {
		p := float64(i+1) / float64(card)
		s.breakpoints[i] = math.Sqrt2 * math.Erfinv(2*p-1)
	}
	s.regionLower = make([]float64, card)
	s.regionUpper = make([]float64, card)
	for sym := 0; sym < card; sym++ {
		if sym == 0 {
			s.regionLower[sym] = math.Inf(-1)
		} else {
			s.regionLower[sym] = s.breakpoints[sym-1]
		}
		if sym == card-1 {
			s.regionUpper[sym] = math.Inf(1)
		} else {
			s.regionUpper[sym] = s.breakpoints[sym]
		}
	}
	return s, nil
}

// Cardinality returns the full alphabet cardinality (1 << CardBits).
func (s *Schema) Cardinality() int { return 1 << s.CardBits }

// RootFanout returns the number of root subtrees, 2^Segments: the root
// children are addressed by the top bit of each segment's symbol.
func (s *Schema) RootFanout() int { return 1 << s.Segments }

// Breakpoints returns the full-cardinality breakpoint table (read-only).
func (s *Schema) Breakpoints() []float64 { return s.breakpoints }

// Symbol quantizes a single PAA value to a full-precision symbol.
func (s *Schema) Symbol(v float64) uint8 {
	// SearchFloat64s returns the number of breakpoints < v (for values
	// exactly on a breakpoint it returns that breakpoint's index, placing
	// the value in the lower region; either choice yields valid bounds).
	return uint8(sort.SearchFloat64s(s.breakpoints, v))
}

// WordFromPAA quantizes a PAA vector into a full-precision word, writing
// into dst (allocated if too small) and returning it.
func (s *Schema) WordFromPAA(paa []float64, dst []uint8) []uint8 {
	if cap(dst) < s.Segments {
		dst = make([]uint8, s.Segments)
	}
	dst = dst[:s.Segments]
	for i := 0; i < s.Segments; i++ {
		dst[i] = s.Symbol(paa[i])
	}
	return dst
}

// SymbolAtBits reduces a full-precision symbol to b bits (its b-bit prefix).
func (s *Schema) SymbolAtBits(sym uint8, b uint8) uint8 {
	return sym >> (uint8(s.CardBits) - b)
}

// RootIndex maps a full-precision word to its root subtree slot: the top
// bit of each segment's symbol, packed with segment 0 as the high bit.
func (s *Schema) RootIndex(word []uint8) int {
	top := uint(s.CardBits - 1)
	idx := 0
	for i := 0; i < s.Segments; i++ {
		idx = idx<<1 | int(word[i]>>top)
	}
	return idx
}

// Region returns the raw-value interval covered by a symbol expressed with
// b bits: the union of the full-precision regions sharing that b-bit
// prefix. b == 0 yields (-Inf, +Inf).
func (s *Schema) Region(sym uint8, b uint8) (lo, hi float64) {
	if b == 0 {
		return math.Inf(-1), math.Inf(1)
	}
	shift := uint(s.CardBits) - uint(b)
	first := int(sym) << shift
	last := first + (1 << shift) - 1
	return s.regionLower[first], s.regionUpper[last]
}

// MinDistPAAWord returns the squared iSAX lower bound between a query PAA
// vector and a full-precision word: (n/w) * sum of squared per-segment
// excursions of the PAA outside the symbol's region. It never exceeds the
// squared Euclidean distance between the underlying series.
func (s *Schema) MinDistPAAWord(paa []float64, word []uint8) float64 {
	var sum float64
	for i := 0; i < s.Segments; i++ {
		sym := word[i]
		v := paa[i]
		if lo := s.regionLower[sym]; v < lo {
			d := lo - v
			sum += d * d
		} else if hi := s.regionUpper[sym]; v > hi {
			d := v - hi
			sum += d * d
		}
	}
	return sum * s.ratio
}

// MinDistPAAWordNaive computes the same bound as MinDistPAAWord in the
// straightforward one-segment-at-a-time style of pre-vectorization code:
// region bounds are derived per segment via Region (function call + shifts)
// instead of streaming through the precomputed tables. It exists for the
// ParIS-SISD ablation (Figure 18), where the paper compares its SIMD
// lower-bound kernel against the scalar original; the two functions always
// return identical values.
func (s *Schema) MinDistPAAWordNaive(paa []float64, word []uint8) float64 {
	var sum float64
	for i := 0; i < s.Segments; i++ {
		lo, hi := s.Region(word[i], uint8(s.CardBits))
		v := paa[i]
		if v < lo {
			d := lo - v
			sum += d * d
		}
		if v > hi {
			d := v - hi
			sum += d * d
		}
	}
	return sum * s.ratio
}

// MinDistPAAPrefix returns the squared iSAX lower bound between a query PAA
// vector and a variable-cardinality prefix (per-segment symbols + bits).
// Segments with zero bits contribute nothing.
func (s *Schema) MinDistPAAPrefix(paa []float64, symbols, bits []uint8) float64 {
	var sum float64
	cardBits := uint(s.CardBits)
	for i := 0; i < s.Segments; i++ {
		b := uint(bits[i])
		if b == 0 {
			continue
		}
		shift := cardBits - b
		first := int(symbols[i]) << shift
		last := first + (1 << shift) - 1
		v := paa[i]
		if lo := s.regionLower[first]; v < lo {
			d := lo - v
			sum += d * d
		} else if hi := s.regionUpper[last]; v > hi {
			d := v - hi
			sum += d * d
		}
	}
	return sum * s.ratio
}

// MinDistEnvelopeWord returns the squared lower bound between a query's
// LB_Keogh envelope (summarized per segment by the maximum of the upper
// envelope, uMax, and the minimum of the lower envelope, lMin) and a
// full-precision word. Used for DTW query answering: it lower-bounds
// LB_Keogh(query, candidate), which lower-bounds cDTW(query, candidate).
func (s *Schema) MinDistEnvelopeWord(uMax, lMin []float64, word []uint8) float64 {
	var sum float64
	for i := 0; i < s.Segments; i++ {
		sym := word[i]
		if lo := s.regionLower[sym]; uMax[i] < lo {
			d := lo - uMax[i]
			sum += d * d
		} else if hi := s.regionUpper[sym]; lMin[i] > hi {
			d := lMin[i] - hi
			sum += d * d
		}
	}
	return sum * s.ratio
}

// MinDistEnvelopePrefix is MinDistEnvelopeWord for variable-cardinality
// node prefixes.
func (s *Schema) MinDistEnvelopePrefix(uMax, lMin []float64, symbols, bits []uint8) float64 {
	var sum float64
	cardBits := uint(s.CardBits)
	for i := 0; i < s.Segments; i++ {
		b := uint(bits[i])
		if b == 0 {
			continue
		}
		shift := cardBits - b
		first := int(symbols[i]) << shift
		last := first + (1 << shift) - 1
		if lo := s.regionLower[first]; uMax[i] < lo {
			d := lo - uMax[i]
			sum += d * d
		} else if hi := s.regionUpper[last]; lMin[i] > hi {
			d := lMin[i] - hi
			sum += d * d
		}
	}
	return sum * s.ratio
}

// MatchesPrefix reports whether a full-precision word falls under a
// variable-cardinality prefix (i.e. each symbol's b-bit prefix equals the
// prefix symbol). Used by tree invariant checks.
func (s *Schema) MatchesPrefix(word, symbols, bits []uint8) bool {
	for i := 0; i < s.Segments; i++ {
		b := bits[i]
		if b == 0 {
			continue
		}
		if s.SymbolAtBits(word[i], b) != symbols[i] {
			return false
		}
	}
	return true
}

// FormatWord renders a word in the paper's subscripted style, e.g.
// "10(8) 00(8) ..." is abbreviated to decimal symbols: "[134 7 ...]".
// Intended for debugging and error messages only.
func (s *Schema) FormatWord(word []uint8) string {
	return fmt.Sprint(word[:s.Segments])
}
