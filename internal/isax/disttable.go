package isax

// DistTable is a per-query table of per-segment squared MINDIST
// contributions, the vectorization-friendly form of the lower-bound
// kernels: built once per query from the query's PAA vector (or its
// LB_Keogh envelope summary for DTW), it turns every subsequent lower
// bound into w table loads and adds — no breakpoint comparisons, no
// branchy region lookups on the hot path. This is the same
// transformation the paper applies to make its kernels SIMD-friendly
// (§V, Figure 18): the data-dependent branches move out of the
// per-candidate loop and into a once-per-query table build.
//
// The table is hierarchical: level b (1 ≤ b ≤ CardBits) holds one cell
// per segment per b-bit symbol, so variable-cardinality node prefixes are
// a direct lookup too. Level CardBits is computed from the region bounds
// exactly as MinDistPAAWord computes its excursions; each coarser level
// is the pairwise minimum of the level below, which reproduces the
// widened-region excursion exactly: region lower bounds ascend and upper
// bounds descend within a prefix's symbol range, so the widened
// excursion is always attained by the range's first cell (query below
// the region), its last cell (query above), or a zero cell inside it.
// All results are therefore bitwise identical to the scalar kernels
// (MinDistPAAWord, MinDistPAAPrefix and the envelope variants) — the
// property the equivalence fuzz test pins down.
//
// Memory: one flat allocation of w × (2^(CardBits+1) − 2) float64 cells
// (64 KiB at the paper's w=16, CardBits=8), reused across queries via
// Build. A DistTable is owned by one query at a time; concurrent readers
// are safe once built.
type DistTable struct {
	schema *Schema
	cells  []float64
	// levelOff[b] is the offset of level b's block in cells; the block
	// holds Segments × 2^b cells, segment-major (segment s's row starts
	// at levelOff[b] + s<<b).
	levelOff [MaxCardBits + 1]int
}

// NewDistTable allocates an empty distance table for this schema. Call
// BuildPAA or BuildEnvelope before querying it.
func (s *Schema) NewDistTable() *DistTable {
	t := &DistTable{schema: s}
	off := 0
	for b := 1; b <= s.CardBits; b++ {
		t.levelOff[b] = off
		off += s.Segments << b
	}
	t.cells = make([]float64, off)
	return t
}

// Schema returns the schema the table was allocated for. Callers that
// pool tables across queries must rebuild (or reallocate) when the index
// schema changes.
func (t *DistTable) Schema() *Schema { return t.schema }

// Scale returns the MINDIST scale factor n/w that turns a sum of cells
// into the squared lower bound. Kernels that accumulate cells themselves
// (segment-major leaf scans) multiply by it once per candidate.
func (t *DistTable) Scale() float64 { return t.schema.ratio }

// BuildPAA fills the table for a Euclidean query with the given PAA
// vector: cell (seg, sym) is the squared excursion of paa[seg] outside
// symbol sym's region, exactly as MinDistPAAWord computes it.
func (t *DistTable) BuildPAA(paa []float64) { t.build(paa, paa) }

// BuildEnvelope fills the table for a DTW query from its LB_Keogh
// envelope summary (per-segment max of the upper envelope and min of the
// lower), exactly as MinDistEnvelopeWord computes its excursions.
// Callers must pass a real envelope summary (lMin[i] ≤ uMax[i] for all
// i); the hierarchical levels assume the two bounds bracket a common
// value, which every LB_Keogh envelope satisfies.
func (t *DistTable) BuildEnvelope(uMax, lMin []float64) { t.build(uMax, lMin) }

// build fills level CardBits from the full-precision region bounds, then
// derives each coarser level as the pairwise min of the one below. For
// Euclidean queries upper == lower == the PAA vector.
func (t *DistTable) build(upper, lower []float64) {
	s := t.schema
	card := 1 << s.CardBits
	full := t.cells[t.levelOff[s.CardBits]:]
	for seg := 0; seg < s.Segments; seg++ {
		row := full[seg*card : (seg+1)*card]
		u, l := upper[seg], lower[seg]
		for sym := 0; sym < card; sym++ {
			if lo := s.regionLower[sym]; u < lo {
				d := lo - u
				row[sym] = d * d
			} else if hi := s.regionUpper[sym]; l > hi {
				d := l - hi
				row[sym] = d * d
			} else {
				row[sym] = 0
			}
		}
	}
	for b := s.CardBits - 1; b >= 1; b-- {
		coarse := t.cells[t.levelOff[b]:]
		fine := t.cells[t.levelOff[b+1]:]
		n := s.Segments << b
		for i := 0; i < n; i++ {
			a, c := fine[2*i], fine[2*i+1]
			if c < a {
				a = c
			}
			coarse[i] = a
		}
	}
}

// MinDistWord returns the squared lower bound against a full-precision
// word: w loads from the full-cardinality level, summed in segment order
// and scaled — bitwise identical to Schema.MinDistPAAWord (or
// MinDistEnvelopeWord, per how the table was built).
func (t *DistTable) MinDistWord(word []uint8) float64 {
	s := t.schema
	full := t.cells[t.levelOff[s.CardBits]:]
	card := 1 << s.CardBits
	var sum float64
	for i := 0; i < s.Segments; i++ {
		sum += full[i*card+int(word[i])]
	}
	return sum * s.ratio
}

// MinDistPrefix returns the squared lower bound against a
// variable-cardinality prefix (per-segment symbols + bits): one load
// from level bits[i] per segment. Segments with zero bits contribute
// nothing. Bitwise identical to Schema.MinDistPAAPrefix (or
// MinDistEnvelopePrefix).
func (t *DistTable) MinDistPrefix(symbols, bits []uint8) float64 {
	s := t.schema
	var sum float64
	for i := 0; i < s.Segments; i++ {
		b := int(bits[i])
		if b == 0 {
			continue
		}
		sum += t.cells[t.levelOff[b]+(i<<b)+int(symbols[i])]
	}
	return sum * s.ratio
}

// Row returns segment seg's full-cardinality cell row (2^CardBits
// unscaled cells, indexed by symbol) — the inner operand of segment-major
// leaf scans: a whole leaf's lower bounds are w column passes of
// acc[e] += row[col[e]], then one scale by Scale() per entry.
func (t *DistTable) Row(seg int) []float64 {
	s := t.schema
	card := 1 << s.CardBits
	off := t.levelOff[s.CardBits] + seg*card
	return t.cells[off : off+card]
}
