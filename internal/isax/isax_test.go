package isax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paa"
	"repro/internal/series"
	"repro/internal/vector"
)

func mustSchema(t *testing.T, n, w, bits int) *Schema {
	t.Helper()
	s, err := NewSchema(n, w, bits)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct{ n, w, bits int }{
		{256, 0, 8},
		{256, 17, 8},
		{256, 16, 0},
		{256, 16, 9},
		{255, 16, 8},
		{0, 16, 8},
		{-16, 16, 8},
	}
	for i, c := range cases {
		if _, err := NewSchema(c.n, c.w, c.bits); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestBreakpointsAreSortedAndSymmetric(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	bp := s.Breakpoints()
	if len(bp) != 255 {
		t.Fatalf("len(breakpoints) = %d, want 255", len(bp))
	}
	for i := 1; i < len(bp); i++ {
		if bp[i] <= bp[i-1] {
			t.Fatalf("breakpoints not strictly increasing at %d: %v <= %v", i, bp[i], bp[i-1])
		}
	}
	// Median breakpoint of a symmetric distribution is 0.
	if math.Abs(bp[127]) > 1e-12 {
		t.Errorf("middle breakpoint = %v, want 0", bp[127])
	}
	// Symmetry: bp[i] == -bp[len-1-i].
	for i := range bp {
		if math.Abs(bp[i]+bp[len(bp)-1-i]) > 1e-9 {
			t.Errorf("breakpoints not symmetric at %d: %v vs %v", i, bp[i], bp[len(bp)-1-i])
		}
	}
}

func TestBreakpointsLowCardinality(t *testing.T) {
	// Cardinality 4: quartiles of N(0,1) ~ -0.6745, 0, 0.6745.
	s := mustSchema(t, 16, 4, 2)
	bp := s.Breakpoints()
	want := []float64{-0.67448975, 0, 0.67448975}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-6 {
			t.Errorf("bp[%d] = %v, want %v", i, bp[i], want[i])
		}
	}
}

func TestSymbolMonotonic(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	prev := s.Symbol(-10)
	if prev != 0 {
		t.Errorf("Symbol(-10) = %d, want 0", prev)
	}
	for v := -5.0; v <= 5.0; v += 0.01 {
		sym := s.Symbol(v)
		if sym < prev {
			t.Fatalf("Symbol not monotone at %v: %d < %d", v, sym, prev)
		}
		prev = sym
	}
	if s.Symbol(10) != 255 {
		t.Errorf("Symbol(10) = %d, want 255", s.Symbol(10))
	}
}

func TestSymbolRegionsRoundTrip(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		v := rng.NormFloat64() * 2
		sym := s.Symbol(v)
		lo, hi := s.Region(sym, uint8(s.CardBits))
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %v got symbol %d with region [%v,%v]", v, sym, lo, hi)
		}
	}
}

// The prefix property is what makes iSAX indexable: the symbol at b bits is
// the high-b-bit prefix of the symbol at any finer cardinality.
func TestSymbolPrefixProperty(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := r.NormFloat64() * 3
		sym8 := s.Symbol(v)
		for b := 1; b <= 8; b++ {
			coarse, err := NewSchema(256, 16, b)
			if err != nil {
				return false
			}
			if coarse.Symbol(v) != sym8>>(8-b) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRootIndex(t *testing.T) {
	s := mustSchema(t, 64, 4, 8)
	// Top bit of symbol (>=128 → 1).
	word := []uint8{200, 10, 255, 127}
	// bits: 1,0,1,0 → index 0b1010 = 10.
	if got := s.RootIndex(word); got != 10 {
		t.Errorf("RootIndex = %d, want 10", got)
	}
	if s.RootFanout() != 16 {
		t.Errorf("RootFanout = %d, want 16", s.RootFanout())
	}
}

func TestRootIndexRange(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		word := make([]uint8, 16)
		for i := range word {
			word[i] = uint8(rng.Intn(256))
		}
		idx := s.RootIndex(word)
		if idx < 0 || idx >= s.RootFanout() {
			t.Fatalf("RootIndex %d out of range [0,%d)", idx, s.RootFanout())
		}
	}
}

func TestSymbolAtBits(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	if got := s.SymbolAtBits(0b10110011, 3); got != 0b101 {
		t.Errorf("SymbolAtBits = %b, want 101", got)
	}
	if got := s.SymbolAtBits(0xFF, 8); got != 0xFF {
		t.Errorf("SymbolAtBits(.,8) = %d, want 255", got)
	}
}

func TestRegionWidensWithFewerBits(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	sym := uint8(0b10110011)
	prevLo, prevHi := s.Region(sym, 8)
	for b := uint8(7); b >= 1; b-- {
		lo, hi := s.Region(sym>>(8-b), b)
		if lo > prevLo || hi < prevHi {
			t.Fatalf("region at %d bits [%v,%v] does not contain region at %d bits [%v,%v]",
				b, lo, hi, b+1, prevLo, prevHi)
		}
		prevLo, prevHi = lo, hi
	}
	lo, hi := s.Region(0, 0)
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("0-bit region should be unbounded, got [%v,%v]", lo, hi)
	}
}

func randomSeries(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = float32(v)
	}
	series.ZNormalize(s)
	return s
}

// THE fundamental invariant: MinDist(PAA(q), word(c)) <= squared ED(q, c).
func TestMinDistLowerBoundsED(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSeries(r, 64)
		c := randomSeries(r, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		lb := s.MinDistPAAWord(qp, word)
		ed := vector.SquaredEuclidean(q, c)
		return lb <= ed+1e-6
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Prefix mindist (coarser summary) must lower-bound full-precision mindist.
func TestPrefixMinDistLowerBoundsWordMinDist(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSeries(r, 64)
		c := randomSeries(r, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		full := s.MinDistPAAWord(qp, word)
		symbols := make([]uint8, 16)
		bits := make([]uint8, 16)
		for i := range bits {
			b := uint8(r.Intn(9)) // 0..8 bits
			bits[i] = b
			if b > 0 {
				symbols[i] = s.SymbolAtBits(word[i], b)
			}
		}
		prefix := s.MinDistPAAPrefix(qp, symbols, bits)
		return prefix <= full+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// At full bits on every segment, prefix mindist equals word mindist.
func TestPrefixMinDistAtFullBitsEqualsWord(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		q := randomSeries(rng, 64)
		c := randomSeries(rng, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		bits := make([]uint8, 16)
		for i := range bits {
			bits[i] = 8
		}
		full := s.MinDistPAAWord(qp, word)
		prefix := s.MinDistPAAPrefix(qp, word, bits)
		if math.Abs(full-prefix) > 1e-9 {
			t.Fatalf("trial %d: word %v vs prefix %v", trial, full, prefix)
		}
	}
}

// The naive (SISD) and table-driven (SIMD stand-in) lower-bound kernels
// must agree exactly — the Figure 18 ablation varies speed, not results.
func TestMinDistNaiveMatchesFast(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(40))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSeries(r, 64)
		c := randomSeries(r, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		fast := s.MinDistPAAWord(qp, word)
		naive := s.MinDistPAAWordNaive(qp, word)
		return math.Abs(fast-naive) <= 1e-12*(1+fast)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMinDistSelfIsZero(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		q := randomSeries(rng, 64)
		qp := paa.Transform(q, 16, nil)
		word := s.WordFromPAA(qp, nil)
		if lb := s.MinDistPAAWord(qp, word); lb != 0 {
			t.Fatalf("MinDist(series, own word) = %v, want 0", lb)
		}
	}
}

// Envelope mindist with a degenerate envelope (U = L = PAA of q) equals the
// regular PAA mindist.
func TestEnvelopeMinDistDegenerate(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		q := randomSeries(rng, 64)
		c := randomSeries(rng, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		reg := s.MinDistPAAWord(qp, word)
		env := s.MinDistEnvelopeWord(qp, qp, word)
		if math.Abs(reg-env) > 1e-9 {
			t.Fatalf("trial %d: regular %v vs degenerate envelope %v", trial, reg, env)
		}
	}
}

// A wider envelope can only shrink the envelope mindist.
func TestEnvelopeMinDistMonotoneInWidth(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSeries(r, 64)
		c := randomSeries(r, 64)
		qp := paa.Transform(q, 16, nil)
		cp := paa.Transform(c, 16, nil)
		word := s.WordFromPAA(cp, nil)
		narrowU := make([]float64, 16)
		narrowL := make([]float64, 16)
		wideU := make([]float64, 16)
		wideL := make([]float64, 16)
		for i := range qp {
			d := r.Float64()
			narrowU[i], narrowL[i] = qp[i]+d, qp[i]-d
			wideU[i], wideL[i] = qp[i]+2*d, qp[i]-2*d
		}
		narrow := s.MinDistEnvelopeWord(narrowU, narrowL, word)
		wide := s.MinDistEnvelopeWord(wideU, wideL, word)
		if wide > narrow+1e-9 {
			return false
		}
		// Prefix variant obeys the same ordering at random bits.
		bits := make([]uint8, 16)
		symbols := make([]uint8, 16)
		for i := range bits {
			bits[i] = uint8(1 + r.Intn(8))
			symbols[i] = s.SymbolAtBits(word[i], bits[i])
		}
		np := s.MinDistEnvelopePrefix(narrowU, narrowL, symbols, bits)
		wp := s.MinDistEnvelopePrefix(wideU, wideL, symbols, bits)
		return wp <= np+1e-9 && wp <= wide+1e-9 && np <= narrow+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatchesPrefix(t *testing.T) {
	s := mustSchema(t, 256, 16, 8)
	word := make([]uint8, 16)
	for i := range word {
		word[i] = uint8(i * 16)
	}
	symbols := make([]uint8, 16)
	bits := make([]uint8, 16)
	for i := range bits {
		bits[i] = uint8(1 + i%8)
		symbols[i] = s.SymbolAtBits(word[i], bits[i])
	}
	if !s.MatchesPrefix(word, symbols, bits) {
		t.Error("word should match its own prefix")
	}
	symbols[3] ^= 1
	if s.MatchesPrefix(word, symbols, bits) {
		t.Error("corrupted prefix should not match")
	}
	// Zero-bit segments match anything.
	for i := range bits {
		bits[i] = 0
	}
	if !s.MatchesPrefix(word, symbols, bits) {
		t.Error("all-zero-bit prefix must match any word")
	}
}

func TestWordFromPAAReusesDst(t *testing.T) {
	s := mustSchema(t, 64, 16, 8)
	paaVec := make([]float64, 16)
	dst := make([]uint8, 16)
	got := s.WordFromPAA(paaVec, dst)
	if &got[0] != &dst[0] {
		t.Error("WordFromPAA should reuse dst")
	}
}

func TestFormatWord(t *testing.T) {
	s := mustSchema(t, 8, 4, 8)
	if got := s.FormatWord([]uint8{1, 2, 3, 4}); got != "[1 2 3 4]" {
		t.Errorf("FormatWord = %q", got)
	}
}
