package isax

import (
	"math"
	"testing"
)

// FuzzDistTableEquivalence checks that the per-query distance table
// returns exactly the scalar kernels' values — full-precision words
// against MinDistPAAWordNaive (and MinDistPAAWord), and random
// variable-cardinality prefixes against MinDistPAAPrefix — across
// arbitrary PAA vectors, words, cardinalities, and prefix bit budgets.
func FuzzDistTableEquivalence(f *testing.F) {
	f.Add(float64(0), float64(0), uint8(0), uint8(255), uint8(8), uint8(3))
	f.Add(float64(3.7), float64(-2.2), uint8(17), uint8(200), uint8(5), uint8(0))
	f.Add(float64(-0.4), float64(9.9), uint8(128), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, a, b float64, symA, symB, cardBits, prefixBits uint8) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Skip()
		}
		cb := int(cardBits)%MaxCardBits + 1 // [1, MaxCardBits]
		s, err := NewSchema(32, 16, cb)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint8(s.Cardinality() - 1)
		paa := make([]float64, 16)
		word := make([]uint8, 16)
		symbols := make([]uint8, 16)
		bits := make([]uint8, 16)
		for i := range paa {
			if i%2 == 0 {
				paa[i], word[i] = a, symA&mask
			} else {
				paa[i], word[i] = b, symB&mask
			}
			// Derive a prefix bit budget per segment from the fuzzed
			// byte, cycling so different segments get different widths.
			bits[i] = (prefixBits + uint8(i)) % uint8(cb+1)
			if bits[i] > 0 {
				symbols[i] = word[i] >> (uint8(cb) - bits[i])
			}
		}
		tab := s.NewDistTable()
		tab.BuildPAA(paa)
		if got, want := tab.MinDistWord(word), s.MinDistPAAWordNaive(paa, word); got != want {
			t.Fatalf("table %v != naive %v (cardBits %d)", got, want, cb)
		}
		if got, want := tab.MinDistWord(word), s.MinDistPAAWord(paa, word); got != want {
			t.Fatalf("table %v != scalar %v (cardBits %d)", got, want, cb)
		}
		if got, want := tab.MinDistPrefix(symbols, bits), s.MinDistPAAPrefix(paa, symbols, bits); got != want {
			t.Fatalf("prefix table %v != scalar %v (cardBits %d, bits %v)", got, want, cb, bits)
		}
	})
}

// FuzzSymbolRegionConsistency checks that quantization and region bounds
// stay consistent for arbitrary float inputs (including extremes).
func FuzzSymbolRegionConsistency(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-1.5)
	f.Add(1e300)
	f.Add(-1e300)
	f.Add(0.001)
	s, err := NewSchema(64, 16, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip()
		}
		sym := s.Symbol(v)
		lo, hi := s.Region(sym, 8)
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %v assigned symbol %d whose region is [%v,%v]", v, sym, lo, hi)
		}
		// Every coarser prefix region must also contain v.
		for b := uint8(7); b >= 1; b-- {
			plo, phi := s.Region(sym>>(8-b), b)
			if v < plo-1e-12 || v > phi+1e-12 {
				t.Fatalf("value %v escapes %d-bit region [%v,%v]", v, b, plo, phi)
			}
		}
	})
}

// FuzzMinDistNonNegative checks the lower bound is always finite and
// non-negative for arbitrary PAA vectors.
func FuzzMinDistNonNegative(f *testing.F) {
	f.Add(float64(0), float64(0), uint8(0), uint8(255))
	f.Add(float64(3.7), float64(-2.2), uint8(17), uint8(200))
	s, err := NewSchema(32, 16, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b float64, symA, symB uint8) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Skip()
		}
		paa := make([]float64, 16)
		word := make([]uint8, 16)
		for i := range paa {
			if i%2 == 0 {
				paa[i], word[i] = a, symA
			} else {
				paa[i], word[i] = b, symB
			}
		}
		d := s.MinDistPAAWord(paa, word)
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("MinDistPAAWord = %v for paa=(%v,%v) syms=(%d,%d)", d, a, b, symA, symB)
		}
		if naive := s.MinDistPAAWordNaive(paa, word); math.Abs(naive-d) > 1e-9*(1+d) {
			t.Fatalf("kernel disagreement: %v vs %v", d, naive)
		}
	})
}
