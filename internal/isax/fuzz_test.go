package isax

import (
	"math"
	"testing"
)

// FuzzSymbolRegionConsistency checks that quantization and region bounds
// stay consistent for arbitrary float inputs (including extremes).
func FuzzSymbolRegionConsistency(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-1.5)
	f.Add(1e300)
	f.Add(-1e300)
	f.Add(0.001)
	s, err := NewSchema(64, 16, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip()
		}
		sym := s.Symbol(v)
		lo, hi := s.Region(sym, 8)
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %v assigned symbol %d whose region is [%v,%v]", v, sym, lo, hi)
		}
		// Every coarser prefix region must also contain v.
		for b := uint8(7); b >= 1; b-- {
			plo, phi := s.Region(sym>>(8-b), b)
			if v < plo-1e-12 || v > phi+1e-12 {
				t.Fatalf("value %v escapes %d-bit region [%v,%v]", v, b, plo, phi)
			}
		}
	})
}

// FuzzMinDistNonNegative checks the lower bound is always finite and
// non-negative for arbitrary PAA vectors.
func FuzzMinDistNonNegative(f *testing.F) {
	f.Add(float64(0), float64(0), uint8(0), uint8(255))
	f.Add(float64(3.7), float64(-2.2), uint8(17), uint8(200))
	s, err := NewSchema(32, 16, 8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b float64, symA, symB uint8) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Skip()
		}
		paa := make([]float64, 16)
		word := make([]uint8, 16)
		for i := range paa {
			if i%2 == 0 {
				paa[i], word[i] = a, symA
			} else {
				paa[i], word[i] = b, symB
			}
		}
		d := s.MinDistPAAWord(paa, word)
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("MinDistPAAWord = %v for paa=(%v,%v) syms=(%d,%d)", d, a, b, symA, symB)
		}
		if naive := s.MinDistPAAWordNaive(paa, word); math.Abs(naive-d) > 1e-9*(1+d) {
			t.Fatalf("kernel disagreement: %v vs %v", d, naive)
		}
	})
}
