package isax

import (
	"math"
	"math/rand"
	"testing"
)

// randomPrefix derives a random variable-cardinality prefix consistent
// with a full-precision word: per segment, a random bit count in
// [0, CardBits] and the word symbol truncated to it.
func randomPrefix(rng *rand.Rand, s *Schema, word []uint8) (symbols, bits []uint8) {
	symbols = make([]uint8, s.Segments)
	bits = make([]uint8, s.Segments)
	for i := 0; i < s.Segments; i++ {
		b := uint8(rng.Intn(s.CardBits + 1))
		bits[i] = b
		if b > 0 {
			symbols[i] = word[i] >> (uint8(s.CardBits) - b)
		}
	}
	return symbols, bits
}

// TestDistTableMatchesScalarKernels pins the tentpole equivalence: the
// table-based lower bounds are bitwise identical to the scalar kernels
// (full words, variable-cardinality prefixes, and the DTW envelope
// variants) across random schemas and queries.
func TestDistTableMatchesScalarKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct{ n, w, bits int }{
		{64, 16, 8}, {32, 8, 8}, {24, 4, 5}, {16, 2, 3}, {8, 1, 1}, {48, 16, 2},
	} {
		s, err := NewSchema(cfg.n, cfg.w, cfg.bits)
		if err != nil {
			t.Fatal(err)
		}
		tab := s.NewDistTable()
		paa := make([]float64, s.Segments)
		uMax := make([]float64, s.Segments)
		lMin := make([]float64, s.Segments)
		word := make([]uint8, s.Segments)
		for trial := 0; trial < 200; trial++ {
			for i := range paa {
				paa[i] = rng.NormFloat64() * 2
				spread := math.Abs(rng.NormFloat64())
				uMax[i] = paa[i] + spread
				lMin[i] = paa[i] - spread
				word[i] = uint8(rng.Intn(s.Cardinality()))
			}
			symbols, bits := randomPrefix(rng, s, word)

			tab.BuildPAA(paa)
			if got, want := tab.MinDistWord(word), s.MinDistPAAWord(paa, word); got != want {
				t.Fatalf("%+v: MinDistWord = %v, scalar = %v", cfg, got, want)
			}
			if got, want := tab.MinDistWord(word), s.MinDistPAAWordNaive(paa, word); got != want {
				t.Fatalf("%+v: MinDistWord = %v, naive = %v", cfg, got, want)
			}
			if got, want := tab.MinDistPrefix(symbols, bits), s.MinDistPAAPrefix(paa, symbols, bits); got != want {
				t.Fatalf("%+v: MinDistPrefix = %v, scalar = %v (bits %v)", cfg, got, want, bits)
			}
			// Row + Scale reproduce MinDistWord (the segment-major
			// leaf-scan decomposition).
			var sum float64
			for seg := 0; seg < s.Segments; seg++ {
				sum += tab.Row(seg)[word[seg]]
			}
			if got, want := sum*tab.Scale(), tab.MinDistWord(word); got != want {
				t.Fatalf("%+v: Row/Scale sum = %v, MinDistWord = %v", cfg, got, want)
			}

			// The same table rebuilt from an envelope matches the
			// envelope kernels (BuildEnvelope requires lMin <= uMax).
			tab.BuildEnvelope(uMax, lMin)
			if got, want := tab.MinDistWord(word), s.MinDistEnvelopeWord(uMax, lMin, word); got != want {
				t.Fatalf("%+v: envelope MinDistWord = %v, scalar = %v", cfg, got, want)
			}
			if got, want := tab.MinDistPrefix(symbols, bits), s.MinDistEnvelopePrefix(uMax, lMin, symbols, bits); got != want {
				t.Fatalf("%+v: envelope MinDistPrefix = %v, scalar = %v (bits %v)", cfg, got, want, bits)
			}
		}
	}
}

// TestDistTableReuse checks that rebuilding a table for a new query fully
// overwrites the previous query's cells (the engine pools tables across
// queries).
func TestDistTableReuse(t *testing.T) {
	s, err := NewSchema(64, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	tab := s.NewDistTable()
	paaA := make([]float64, s.Segments)
	paaB := make([]float64, s.Segments)
	word := make([]uint8, s.Segments)
	for i := range paaA {
		paaA[i] = rng.NormFloat64() * 3
		paaB[i] = rng.NormFloat64() * 3
		word[i] = uint8(rng.Intn(256))
	}
	tab.BuildPAA(paaA)
	tab.BuildPAA(paaB)
	if got, want := tab.MinDistWord(word), s.MinDistPAAWord(paaB, word); got != want {
		t.Fatalf("rebuilt table returns %v, want %v", got, want)
	}
}

// BenchmarkMinDist compares the per-candidate lower-bound kernels: the
// branchy scalar region math vs. one table lookup per segment. The table
// build cost is amortized over a whole query and excluded here (it is
// measured separately by the build sub-benchmark).
func BenchmarkMinDist(b *testing.B) {
	s, err := NewSchema(256, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	paa := make([]float64, s.Segments)
	for i := range paa {
		paa[i] = rng.NormFloat64()
	}
	const words = 2048
	flat := make([]uint8, words*s.Segments)
	for i := range flat {
		flat[i] = uint8(rng.Intn(256))
	}
	tab := s.NewDistTable()
	tab.BuildPAA(paa)
	var sink float64

	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := flat[(i%words)*s.Segments:]
			sink += s.MinDistPAAWord(paa, w[:s.Segments])
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := flat[(i%words)*s.Segments:]
			sink += tab.MinDistWord(w[:s.Segments])
		}
	})
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab.BuildPAA(paa)
		}
	})
	_ = sink
}
