package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/series"
)

// Tier identifies one query-hardness tier.
type Tier string

// The hardness tiers, from easiest (member) to hardest (adversarial).
const (
	TierMember      Tier = "member"
	TierNearDup     Tier = "near-dup"
	TierNoise       Tier = "noise"
	TierOOD         Tier = "ood"
	TierAdversarial Tier = "adversarial"
)

// Tiers returns every tier in canonical (easy → hard) order.
func Tiers() []Tier {
	return []Tier{TierMember, TierNearDup, TierNoise, TierOOD, TierAdversarial}
}

// tierOrdinal gives each tier a fixed sub-seed offset so a tier's queries
// depend only on (seed, tier), never on which other tiers are generated.
func tierOrdinal(t Tier) (int64, error) {
	for i, tier := range Tiers() {
		if tier == t {
			return int64(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown tier %q", t)
}

// GenOptions tunes the perturbation tiers. The zero value (or nil) selects
// the defaults.
type GenOptions struct {
	// NoiseSNR is the signal-to-noise ratio in dB of TierNoise queries
	// (default 10): Gaussian noise with standard deviation
	// std(member)·10^(-SNR/20) is added to a sampled member.
	NoiseSNR float64
	// NearDupSNR is the SNR in dB of TierNearDup queries (default 40).
	NearDupSNR float64
}

func (o *GenOptions) noiseSNR() float64 {
	if o == nil || o.NoiseSNR == 0 {
		return 10
	}
	return o.NoiseSNR
}

func (o *GenOptions) nearDupSNR() float64 {
	if o == nil || o.NearDupSNR == 0 {
		return 40
	}
	return o.NearDupSNR
}

// QuerySet is one tier's generated queries.
type QuerySet struct {
	Tier    Tier
	Queries *series.Collection
}

// SHA256 returns the hex digest of the query set's raw little-endian
// float32 bytes — the report's proof that two runs generated identical
// queries.
func (qs *QuerySet) SHA256() string {
	h := sha256.New()
	var buf [4]byte
	for _, v := range qs.Queries.Data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Generate produces n queries of the given tier over data,
// deterministically from seed (the same seed produces byte-identical
// queries regardless of which other tiers are generated). All queries are
// z-normalized, matching the generated collections' convention.
func Generate(data *series.Collection, tier Tier, n int, seed int64, opts *GenOptions) (*QuerySet, error) {
	ord, err := tierOrdinal(tier)
	if err != nil {
		return nil, err
	}
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("workload: empty collection")
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive query count %d", n)
	}
	queries, err := series.NewEmptyCollection(n, data.Length)
	if err != nil {
		return nil, err
	}
	// Mix the ordinal into the seed with a large odd stride so adjacent
	// base seeds do not alias adjacent tiers.
	rng := rand.New(rand.NewSource(seed + ord*0x9E3779B9))
	for i := 0; i < n; i++ {
		dst := queries.At(i)
		member := data.At(rng.Intn(data.Count()))
		switch tier {
		case TierMember:
			copy(dst, member)
		case TierNearDup:
			perturb(rng, dst, member, opts.nearDupSNR())
		case TierNoise:
			perturb(rng, dst, member, opts.noiseSNR())
		case TierOOD:
			// White Gaussian noise: z-normalized it has maximal
			// high-frequency content, far off the manifold of smooth
			// random-walk / seismic / MRI-like series.
			for j := range dst {
				dst[j] = float32(rng.NormFloat64())
			}
		case TierAdversarial:
			// Anti-correlated at lag 1: the member with alternating
			// signs. Flipping every other point turns a smooth series
			// into a high-frequency one whose per-segment means — the
			// PAA summary the index prunes with — collapse toward
			// zero, so every node's lower bound looks equally close,
			// the best-so-far stays loose, and pruning collapses.
			// (Plain negation is not adversarial: for symmetric data
			// like random walks, −x is just another member.)
			for j, v := range member {
				if j%2 == 1 {
					v = -v
				}
				dst[j] = v
			}
		}
		series.ZNormalize(dst)
	}
	return &QuerySet{Tier: tier, Queries: queries}, nil
}

// perturb writes member plus Gaussian noise at the given SNR (dB) into
// dst. Noise power is relative to the member's own power, so the knob
// means the same thing for non-normalized collections.
func perturb(rng *rand.Rand, dst, member []float32, snrDB float64) {
	sigma := series.Std(member) * math.Pow(10, -snrDB/20)
	for j, v := range member {
		dst[j] = v + float32(rng.NormFloat64()*sigma)
	}
}

// GenerateAll produces every tier's query set (n queries each) in
// canonical order.
func GenerateAll(data *series.Collection, n int, seed int64, opts *GenOptions) ([]*QuerySet, error) {
	sets := make([]*QuerySet, 0, len(Tiers()))
	for _, tier := range Tiers() {
		qs, err := Generate(data, tier, n, seed, opts)
		if err != nil {
			return nil, err
		}
		sets = append(sets, qs)
	}
	return sets, nil
}
