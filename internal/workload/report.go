package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Schema identifies the report format; cmd/benchdiff rejects reports whose
// schema it does not understand instead of mis-parsing them.
const Schema = "messi-workload/v1"

// Report is the JSON document the harness emits: per-tier, per-mode answer
// quality and pruning behavior, plus everything needed to reproduce the
// run (seed, shape, knobs) and to verify two runs used identical queries
// (per-tier SHA-256 of the generated query bytes).
type Report struct {
	Schema  string  `json:"schema"`
	Seed    int64   `json:"seed"`
	Series  int     `json:"series"`
	Length  int     `json:"length"`
	K       int     `json:"k"`
	Shards  int     `json:"shards"`
	Epsilon float64 `json:"epsilon"`
	// DeadlineMS is the deadline-mode latency budget in milliseconds.
	DeadlineMS float64      `json:"deadline_ms"`
	Tiers      []TierReport `json:"tiers"`
}

// TierReport is one hardness tier's results across the quality modes.
type TierReport struct {
	Tier    string `json:"tier"`
	Queries int    `json:"queries"`
	// QueriesSHA256 digests the tier's generated query bytes: equal
	// digests prove two runs measured identical workloads.
	QueriesSHA256 string       `json:"queries_sha256"`
	Modes         []ModeReport `json:"modes"`
}

// ModeReport is one (tier, mode) cell of the harness matrix.
type ModeReport struct {
	Mode string `json:"mode"`
	// RecallAtK is the mean fraction of each query's true k nearest
	// neighbors present in the returned answer (distance-tolerant, so
	// exact search scores 1.0 even under floating-point ties).
	RecallAtK float64 `json:"recall_at_k"`
	// ExactFraction is the fraction of answers the search proved exact.
	ExactFraction float64 `json:"exact_fraction"`
	// MeanEpsilonBound averages the finite proven relative-error bounds
	// (-1 when no answer proved a finite bound).
	MeanEpsilonBound float64 `json:"mean_epsilon_bound"`
	// PruningRatioMean is the mean over queries of 1 − RealDistances/N:
	// the fraction of the collection never fully compared. Easy tiers
	// approach 1; adversarial tiers fall toward 0.
	PruningRatioMean float64 `json:"pruning_ratio_mean"`
	// PruningRatioCurve is the per-query pruning ratio sorted ascending —
	// an empirical CDF of pruning behavior across the tier.
	PruningRatioCurve []float64 `json:"pruning_ratio_curve"`
	// Latency summarizes per-query wall time; present only when the run
	// measured latency (Config.MeasureLatency), since timings make the
	// report run-dependent.
	Latency *LatencySummary `json:"latency_ms,omitempty"`
}

// LatencySummary holds latency percentiles in milliseconds, estimated
// from an internal/metrics log2-bucket histogram.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

// WriteJSON writes the report as indented JSON with a trailing newline.
// Output is byte-stable for identical report values.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadReport parses and validates a report.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("workload: bad report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("workload: unsupported report schema %q (want %q)", rep.Schema, Schema)
	}
	return &rep, nil
}

// round6 rounds to 6 decimals: enough resolution for recall and pruning
// ratios, small enough to keep report diffs readable.
func round6(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1e6) / 1e6
}
