// Package workload is the hardness-aware benchmarking harness: it
// generates query sets in controlled hardness tiers over a series
// collection, runs each tier through the unified quality-spectrum Do API,
// scores the answers against the brute-force ground truth of
// internal/scan, and emits a JSON report of per-tier recall@k, latency
// percentiles, and pruning-ratio curves.
//
// # Why hardness tiers
//
// The paper's evaluation (and its journal extension, "Fast Data Series
// Indexing for In-Memory Data") shows that MESSI's latency is driven by
// how well the iSAX lower bounds prune — and pruning is a property of the
// query, not just the collection. A query close to an indexed series
// produces a tight best-so-far immediately and prunes almost everything;
// a query far from every series leaves the bound loose and degenerates
// toward a full scan. Averaging ns/op over uniform random queries hides
// this spectrum entirely. The tiers make it explicit:
//
//   - TierMember: queries are indexed series — the easiest case; the BSF
//     reaches 0 after one leaf and pruning is near total.
//   - TierNearDup: members perturbed at very high SNR (near-duplicates) —
//     the realistic "find this known pattern again" workload.
//   - TierNoise: members perturbed at a controlled, lower SNR — quality
//     degrades smoothly as the query drifts off-manifold.
//   - TierOOD: out-of-distribution white-Gaussian series — no indexed
//     series is close, so the BSF stays loose.
//   - TierAdversarial: anti-correlated queries (negated members) — far
//     from every series in a self-similar collection by construction; the
//     worst pruning the collection can exhibit.
//
// # Determinism
//
// Generation is pure: the same (collection, tier, count, seed) produces
// byte-identical query sets, and each tier derives its own sub-seed so
// tiers are independent of generation order. The runner's quality metrics
// (recall, pruning counters) are deterministic when the index is built
// and queried single-worker (see cmd/messi-workload's defaults); latency
// measurement is inherently run-dependent and is therefore opt-in
// (Config.MeasureLatency), keeping the default report byte-stable for
// CI comparison across commits.
//
// The runner imports the public repro package (like internal/experiments)
// so tiers exercise exactly the API users call.
package workload
