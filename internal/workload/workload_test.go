package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	messi "repro"
	"repro/internal/dataset"
	"repro/internal/series"
)

// testCollection builds a small deterministic random-walk collection.
func testCollection(t *testing.T, n, length int) *series.Collection {
	t.Helper()
	col, err := dataset.Generate(dataset.RandomWalk, n, length, 7)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// deterministicIndex builds ix single-worker so query counters (and
// therefore pruning ratios) are reproducible run to run.
func deterministicIndex(t *testing.T, col *series.Collection) *messi.Index {
	t.Helper()
	ix, err := messi.BuildFlat(col.Data, col.Length, &messi.Options{
		LeafCapacity:  64,
		IndexWorkers:  1,
		SearchWorkers: 1,
		QueueCount:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestGeneratorDeterminism(t *testing.T) {
	col := testCollection(t, 500, 64)
	for _, tier := range Tiers() {
		a, err := Generate(col, tier, 10, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(col, tier, 10, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.SHA256() != b.SHA256() {
			t.Errorf("tier %s: same seed produced different query bytes", tier)
		}
		c, err := Generate(col, tier, 10, 43, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.SHA256() == c.SHA256() {
			t.Errorf("tier %s: different seeds produced identical query bytes", tier)
		}
	}
}

func TestGeneratorTiersIndependentOfOrder(t *testing.T) {
	col := testCollection(t, 200, 64)
	all, err := GenerateAll(col, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Generating one tier alone must produce the same queries as
	// generating it as part of the full sweep.
	solo, err := Generate(col, TierOOD, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range all {
		if set.Tier == TierOOD && set.SHA256() != solo.SHA256() {
			t.Error("TierOOD queries depend on generation order")
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	col := testCollection(t, 10, 32)
	if _, err := Generate(col, Tier("nope"), 3, 1, nil); err == nil {
		t.Error("unknown tier did not error")
	}
	if _, err := Generate(col, TierMember, 0, 1, nil); err == nil {
		t.Error("zero queries did not error")
	}
	if _, err := Generate(nil, TierMember, 3, 1, nil); err == nil {
		t.Error("nil collection did not error")
	}
}

func TestMemberQueriesAreMembers(t *testing.T) {
	col := testCollection(t, 100, 32)
	qs, err := Generate(col, TierMember, 20, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < qs.Queries.Count(); qi++ {
		q := qs.Queries.At(qi)
		found := false
		for i := 0; i < col.Count() && !found; i++ {
			s := col.At(i)
			same := true
			for j := range q {
				// Generated collections are already z-normalized, so the
				// member copy re-normalizes to (almost) itself.
				if d := float64(q[j] - s[j]); d > 1e-5 || d < -1e-5 {
					same = false
					break
				}
			}
			found = same
		}
		if !found {
			t.Fatalf("member query %d matches no collection series", qi)
		}
	}
}

// TestRun pins the ISSUE's acceptance contracts on one deterministic run:
// exact-mode recall@k is 1.0 on every tier, the adversarial tier prunes
// strictly worse than the member tier, and the whole report is
// reproducible (same seed → byte-identical JSON).
func TestRun(t *testing.T) {
	col := testCollection(t, 2000, 64)
	ix := deterministicIndex(t, col)
	runOnce := func() *Report {
		sets, err := GenerateAll(col, 6, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(ix, col, sets, Config{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := runOnce()

	if len(rep.Tiers) != len(Tiers()) {
		t.Fatalf("report has %d tiers, want %d", len(rep.Tiers), len(Tiers()))
	}
	perTier := map[string]map[string]ModeReport{}
	for _, tr := range rep.Tiers {
		if len(tr.Modes) != 4 {
			t.Fatalf("tier %s has %d modes, want 4", tr.Tier, len(tr.Modes))
		}
		perTier[tr.Tier] = map[string]ModeReport{}
		for _, mr := range tr.Modes {
			perTier[tr.Tier][mr.Mode] = mr
		}
	}

	// Exact mode: recall@k = 1.0 and proven exact on every tier.
	for tier, modes := range perTier {
		ex := modes["exact"]
		if ex.RecallAtK != 1.0 {
			t.Errorf("tier %s exact recall@%d = %v, want 1.0", tier, rep.K, ex.RecallAtK)
		}
		if ex.ExactFraction != 1.0 {
			t.Errorf("tier %s exact fraction = %v, want 1.0", tier, ex.ExactFraction)
		}
		if mr := modes["epsilon"]; mr.RecallAtK == 0 {
			t.Errorf("tier %s epsilon recall is 0 — the mode did not run", tier)
		}
	}

	// Tier separation: adversarial queries must prune strictly worse
	// than member queries under exact search.
	member := perTier[string(TierMember)]["exact"].PruningRatioMean
	adversarial := perTier[string(TierAdversarial)]["exact"].PruningRatioMean
	if !(adversarial < member) {
		t.Errorf("adversarial pruning %v not strictly below member pruning %v", adversarial, member)
	}

	// Curves are sorted per-query ratios, one per query.
	for _, tr := range rep.Tiers {
		for _, mr := range tr.Modes {
			if len(mr.PruningRatioCurve) != tr.Queries {
				t.Errorf("tier %s mode %s curve has %d points, want %d",
					tr.Tier, mr.Mode, len(mr.PruningRatioCurve), tr.Queries)
			}
			for i := 1; i < len(mr.PruningRatioCurve); i++ {
				if mr.PruningRatioCurve[i] < mr.PruningRatioCurve[i-1] {
					t.Errorf("tier %s mode %s curve not sorted", tr.Tier, mr.Mode)
					break
				}
			}
			if mr.Latency != nil {
				t.Errorf("tier %s mode %s has latency without MeasureLatency", tr.Tier, mr.Mode)
			}
		}
	}

	// Determinism: a second full run serializes byte-identically.
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := runOnce().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two runs with the same seed produced different reports")
	}
}

func TestRunMeasuresLatencyWhenAsked(t *testing.T) {
	col := testCollection(t, 300, 32)
	ix := deterministicIndex(t, col)
	sets, err := GenerateAll(col, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ix, col, sets, Config{K: 3, MeasureLatency: true, Modes: []messi.Mode{messi.ModeExact}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tiers {
		for _, mr := range tr.Modes {
			if mr.Latency == nil {
				t.Fatalf("tier %s: no latency summary", tr.Tier)
			}
			if mr.Latency.P99 < mr.Latency.P50 {
				t.Errorf("tier %s: p99 %v below p50 %v", tr.Tier, mr.Latency.P99, mr.Latency.P50)
			}
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Schema: Schema, Seed: 9, Series: 10, Length: 8, K: 3, Shards: 1,
		Epsilon: 0.05, DeadlineMS: 1000,
		Tiers: []TierReport{{
			Tier: "member", Queries: 2, QueriesSHA256: "ab",
			Modes: []ModeReport{{
				Mode: "exact", RecallAtK: 1, ExactFraction: 1,
				MeanEpsilonBound: -1, PruningRatioMean: 0.9,
				PruningRatioCurve: []float64{0.8, 1},
			}},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Errorf("round trip mismatch:\n%s\n%s", a, b)
	}

	bad := bytes.NewBufferString(`{"schema":"other/v9"}`)
	if _, err := ReadReport(bad); err == nil {
		t.Error("wrong schema did not error")
	}
}
