package workload

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	messi "repro"
	"repro/internal/metrics"
	"repro/internal/scan"
	"repro/internal/series"
)

// Config tunes one harness run.
type Config struct {
	// K is the neighbors per query scored by recall@k (default 10,
	// clamped to the collection size).
	K int
	// Epsilon is the relative-error budget of the epsilon-mode row
	// (default 0.05).
	Epsilon float64
	// Deadline is the per-query budget of the deadline-mode row (default
	// 1s — generous, so the row degenerates to exact on small workloads
	// instead of injecting wall-clock nondeterminism).
	Deadline time.Duration
	// Workers is the brute-force ground-truth scan parallelism (default
	// 1; the scan result is identical at any value).
	Workers int
	// Modes restricts the run to a subset of quality modes (default all
	// four, in exact/approx/epsilon/deadline order).
	Modes []messi.Mode
	// MeasureLatency adds latency percentiles to the report. Timings are
	// run-dependent, so reports are only byte-comparable across runs when
	// this is off.
	MeasureLatency bool
}

func (c Config) withDefaults(collectionSize int) Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.K > collectionSize {
		c.K = collectionSize
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.Deadline <= 0 {
		c.Deadline = time.Second
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if len(c.Modes) == 0 {
		c.Modes = []messi.Mode{messi.ModeExact, messi.ModeApprox, messi.ModeEpsilon, messi.ModeDeadline}
	}
	return c
}

// Run executes every query set against ix across the configured quality
// modes, scoring recall against the brute-force ground truth over data
// (the collection ix was built from) and deriving pruning ratios from the
// per-query operation counters. The returned report carries one ModeReport
// per (tier, mode) cell.
func Run(ix *messi.Index, data *series.Collection, sets []*QuerySet, cfg Config) (*Report, error) {
	if ix == nil || data == nil {
		return nil, fmt.Errorf("workload: nil index or collection")
	}
	cfg = cfg.withDefaults(data.Count())
	gt := scan.NewGroundTruth(data, cfg.Workers)
	rep := &Report{
		Schema:     Schema,
		Series:     ix.Len(),
		Length:     ix.SeriesLen(),
		K:          cfg.K,
		Shards:     ix.Shards(),
		Epsilon:    cfg.Epsilon,
		DeadlineMS: float64(cfg.Deadline) / float64(time.Millisecond),
	}
	for _, set := range sets {
		tr := TierReport{
			Tier:          string(set.Tier),
			Queries:       set.Queries.Count(),
			QueriesSHA256: set.SHA256(),
		}
		// Ground truth is cached per query across modes but not across
		// tiers: each tier gets its own cache keyspace.
		tierGT := func(qi int, q []float32) ([]float64, error) {
			truth, err := gt.KNN(tierKey(set.Tier, qi), q, cfg.K)
			if err != nil {
				return nil, err
			}
			dists := make([]float64, len(truth))
			for i, m := range truth {
				dists[i] = m.Dist
			}
			return dists, nil
		}
		for _, mode := range cfg.Modes {
			mr, err := runCell(ix, set, mode, cfg, tierGT)
			if err != nil {
				return nil, fmt.Errorf("tier %s mode %s: %w", set.Tier, mode, err)
			}
			tr.Modes = append(tr.Modes, mr)
		}
		rep.Tiers = append(rep.Tiers, tr)
	}
	return rep, nil
}

// tierKey maps (tier, query index) onto the shared ground-truth cache's
// flat keyspace.
func tierKey(tier Tier, qi int) int {
	for i, t := range Tiers() {
		if t == tier {
			return i*1_000_000 + qi
		}
	}
	return -1_000_000 - qi
}

// runCell measures one (tier, mode) cell.
func runCell(ix *messi.Index, set *QuerySet, mode messi.Mode, cfg Config,
	groundTruth func(int, []float32) ([]float64, error)) (ModeReport, error) {

	n := set.Queries.Count()
	collectionN := ix.Len()
	var recallSum, pruneSum, boundSum float64
	exactN, boundN := 0, 0
	curve := make([]float64, 0, n)
	hist := &metrics.Histogram{}
	for qi := 0; qi < n; qi++ {
		q := set.Queries.At(qi)
		req := messi.SearchRequest{Query: q, K: cfg.K, Mode: mode, Counters: true}
		switch mode {
		case messi.ModeEpsilon:
			req.Epsilon = cfg.Epsilon
		case messi.ModeDeadline:
			req.Deadline = cfg.Deadline
		}
		start := time.Now()
		res, err := ix.Do(context.Background(), req)
		hist.Observe(time.Since(start))
		if err != nil {
			return ModeReport{}, fmt.Errorf("query %d: %w", qi, err)
		}
		truth, err := groundTruth(qi, q)
		if err != nil {
			return ModeReport{}, fmt.Errorf("query %d ground truth: %w", qi, err)
		}
		recallSum += recallAtK(res.Matches, truth)
		pr := pruningRatio(res.Counters, collectionN)
		pruneSum += pr
		curve = append(curve, round6(pr))
		if res.Exact {
			exactN++
		}
		if !math.IsInf(res.EpsilonBound, 1) {
			boundSum += res.EpsilonBound
			boundN++
		}
	}
	sort.Float64s(curve)
	mr := ModeReport{
		Mode:              mode.String(),
		RecallAtK:         round6(recallSum / float64(n)),
		ExactFraction:     round6(float64(exactN) / float64(n)),
		MeanEpsilonBound:  -1,
		PruningRatioMean:  round6(pruneSum / float64(n)),
		PruningRatioCurve: curve,
	}
	if boundN > 0 {
		mr.MeanEpsilonBound = round6(boundSum / float64(boundN))
	}
	if cfg.MeasureLatency {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		mean := time.Duration(0)
		if c := hist.Count(); c > 0 {
			mean = hist.Sum() / time.Duration(c)
		}
		mr.Latency = &LatencySummary{
			P50:  ms(hist.Quantile(0.50)),
			P90:  ms(hist.Quantile(0.90)),
			P99:  ms(hist.Quantile(0.99)),
			Mean: ms(mean),
		}
	}
	return mr, nil
}

// recallAtK scores returned matches (true, non-squared distances) against
// the true k-NN squared distances. A match counts when its distance does
// not exceed the k-th true distance, with a relative tolerance so exact
// answers score 1.0 even when floating-point ties reorder equal-distance
// candidates.
func recallAtK(matches []messi.Match, truthSq []float64) float64 {
	if len(truthSq) == 0 {
		return 0
	}
	kth := truthSq[len(truthSq)-1]
	limit := kth*(1+1e-9) + 1e-12
	hits := 0
	for _, m := range matches {
		if m.Distance*m.Distance <= limit {
			hits++
		}
	}
	if hits > len(truthSq) {
		hits = len(truthSq)
	}
	return float64(hits) / float64(len(truthSq))
}

// pruningRatio derives the fraction of the collection a query never fully
// compared: 1 − RealDistances/N, clamped to [0,1] (a k-NN drain can
// re-examine candidates, so the raw count may exceed N on hard queries).
func pruningRatio(ctrs *messi.QueryCounters, collectionN int) float64 {
	if ctrs == nil || collectionN <= 0 {
		return 0
	}
	r := 1 - float64(ctrs.RealDistances)/float64(collectionN)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}
