package analyze_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analyze"
	"repro/internal/analyze/analyzetest"
)

func td(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestAtomicPair(t *testing.T) {
	analyzetest.Run(t, analyze.AtomicPair,
		analyzetest.Pkg{Dir: td("atomicpair", "flagged"), Path: "example.com/atomicpair"},
	)
}

func TestAtomicPairStatsExempt(t *testing.T) {
	// The same hand-rolled cell inside the owning package is legal: the
	// testdata package is loaded under the internal/stats import path
	// and must produce no diagnostics.
	analyzetest.Run(t, analyze.AtomicPair,
		analyzetest.Pkg{Dir: td("atomicpair", "stats"), Path: "repro/internal/stats"},
	)
}

func TestRCUPublish(t *testing.T) {
	analyzetest.Run(t, analyze.RCUPublish,
		analyzetest.Pkg{Dir: td("rcupublish", "flagged"), Path: "example.com/rcupublish"},
	)
}

func TestErrWrap(t *testing.T) {
	analyzetest.Run(t, analyze.ErrWrap,
		analyzetest.Pkg{Dir: td("errwrap", "flagged"), Path: "example.com/errwrap"},
	)
}

func TestFaultSite(t *testing.T) {
	analyzetest.Run(t, analyze.FaultSite,
		analyzetest.Pkg{Dir: td("faultsite", "single"), Path: "example.com/faultsite/single"},
	)
}

func TestFaultSiteCoverage(t *testing.T) {
	// matrix declares an import edge to covered but not to orphan: the
	// orphan's failpoint can never be armed by the crash matrix.
	analyzetest.Run(t, analyze.FaultSite,
		analyzetest.Pkg{Dir: td("faultsite", "matrix"), Path: "example.com/faultsite/matrix",
			Imports: []string{"repro/internal/fault", "example.com/faultsite/covered"}},
		analyzetest.Pkg{Dir: td("faultsite", "covered"), Path: "example.com/faultsite/covered",
			Imports: []string{"repro/internal/fault"}},
		analyzetest.Pkg{Dir: td("faultsite", "orphan"), Path: "example.com/faultsite/orphan",
			Imports: []string{"repro/internal/fault"}},
	)
}

func TestMetricName(t *testing.T) {
	analyzetest.Run(t, analyze.MetricName,
		analyzetest.Pkg{Dir: td("metricname", "flagged"), Path: "example.com/metricname"},
	)
}

func TestMetricNameKindConflict(t *testing.T) {
	analyzetest.Run(t, analyze.MetricName,
		analyzetest.Pkg{Dir: td("metricname", "kinda"), Path: "example.com/metricname/kinda"},
		analyzetest.Pkg{Dir: td("metricname", "kindb"), Path: "example.com/metricname/kindb"},
	)
}
