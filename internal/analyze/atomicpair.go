package analyze

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// statsPath is the one package allowed to build an atomic float cell by
// hand: it owns the BSF and publishes the (dist, pos) pair through a
// single pointer CAS.
const statsPath = "repro/internal/stats"

// AtomicPair enforces the best-so-far publication invariant (PR 5's
// hand-found race, now machine-checked): a (dist, pos) answer must be
// published as ONE atomic unit — internal/stats owns the packed cell —
// and nothing else may spread it across two atomic words, where a racing
// improvement can pair one update's distance with another's position.
//
// A lone atomic float cell is fine: a monotone pruning threshold
// (core's top-k), a metrics gauge, an ε-witness all publish a single
// independent value. The bug shape is a float-bits atomic PLUS a second
// atomic word published from the same function as if they were
// consistent.
//
// Rules (everywhere but internal/stats):
//
//  1. A function that stores/swaps/CAS-es math.Float*bits into one
//     atomic word and also stores to a DIFFERENT atomic word is
//     publishing a split pair.
//  2. A function that decodes math.Float*frombits from one atomic load
//     and performs another atomic integer load from a different word is
//     reading a split pair.
//  3. (everywhere) stats.BSF.Load must not be called twice in one
//     expression: the two loads can observe different thresholds inside
//     a single pruning decision (PR 4 fixed exactly this in the leaf
//     scans). Load once into a local instead.
var AtomicPair = &Analyzer{
	Name: "atomicpair",
	Doc:  "flags split publication of a (dist,pos)-style pair across two atomic words outside internal/stats, and double BSF.Load in one expression",
	Run:  runAtomicPair,
}

// atomicValueArg returns the index of the value operand being published
// by an atomic store-like call, or -1 if the call is not one.
func atomicValueArg(fn *types.Func) int {
	if fn == nil {
		return -1
	}
	// Package-level sync/atomic functions: Store*(addr, val),
	// Swap*(addr, new), CompareAndSwap*(addr, old, new).
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "StoreUint32", "StoreUint64", "StoreInt32", "StoreInt64", "StoreUintptr":
			return 1
		case "SwapUint32", "SwapUint64", "SwapInt32", "SwapInt64", "SwapUintptr":
			return 1
		case "CompareAndSwapUint32", "CompareAndSwapUint64", "CompareAndSwapInt32", "CompareAndSwapInt64", "CompareAndSwapUintptr":
			return 2
		}
		return -1
	}
	// Methods on the atomic integer cells: Store(val), Swap(new),
	// CompareAndSwap(old, new).
	for _, tn := range []string{"Uint32", "Uint64", "Int32", "Int64", "Uintptr"} {
		if isMethodOf(fn, "sync/atomic", tn, "Store") || isMethodOf(fn, "sync/atomic", tn, "Swap") {
			return 0
		}
		if isMethodOf(fn, "sync/atomic", tn, "CompareAndSwap") {
			return 1
		}
	}
	return -1
}

// isAtomicLoad reports whether the call loads from an atomic cell.
func isAtomicLoad(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Load" && fn.Name() != "LoadUint32" && fn.Name() != "LoadUint64" &&
		fn.Name() != "LoadInt32" && fn.Name() != "LoadInt64" && fn.Name() != "LoadUintptr" {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil {
		return true
	}
	for _, tn := range []string{"Uint32", "Uint64", "Int32", "Int64", "Uintptr"} {
		if isMethodOf(fn, "sync/atomic", tn, "Load") {
			return true
		}
	}
	return false
}

func isFloatBits(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, "math", "Float64bits") || isPkgFunc(fn, "math", "Float32bits")
}

func isFloatFromBits(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, "math", "Float64frombits") || isPkgFunc(fn, "math", "Float32frombits")
}

func runAtomicPair(pass *Pass) (any, error) {
	exempt := basePath(pass.Path) == statsPath
	info := pass.TypesInfo

	// Pre-pass: idents assigned from math.Float*bits (bit patterns
	// awaiting publication) and from atomic loads (remembering which
	// word the value came from, so the read-side rule can tell two
	// loads of the same cell from a split pair).
	floatTaint := map[types.Object]bool{}
	loadTaint := map[types.Object]string{}

	// atomicTarget names the word an atomic call operates on: the
	// receiver of a cell method, or the address argument of the
	// package-level functions.
	atomicTarget := func(call *ast.CallExpr, fn *types.Func) string {
		if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return exprString(pass.Fset, sel.X)
			}
		}
		if len(call.Args) > 0 {
			return exprString(pass.Fset, call.Args[0])
		}
		return ""
	}

	Preorder(pass.Files, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isFloatBits(info, call) {
				floatTaint[obj] = true
			} else if fn := calleeFunc(info, call); isAtomicLoad(fn) {
				loadTaint[obj] = atomicTarget(call, fn)
			}
		}
	})

	derivesFloatBits := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isFloatBits(info, x) {
					found = true
				}
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil && floatTaint[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// loadTargetOf resolves which atomic word a frombits argument was
	// loaded from, directly or through a local.
	loadTargetOf := func(e ast.Expr) (string, bool) {
		target, found := "", false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, x); isAtomicLoad(fn) {
					target, found = atomicTarget(x, fn), true
				}
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					if t, ok := loadTaint[obj]; ok {
						target, found = t, true
					}
				}
			}
			return !found
		})
		return target, found
	}

	if !exempt {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				type site struct {
					target    string
					floatBits bool
					pos       token.Pos
				}
				var stores, decodes []site
				loadTargets := map[string]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(info, call)
					if i := atomicValueArg(fn); i >= 0 && i < len(call.Args) {
						stores = append(stores, site{atomicTarget(call, fn), derivesFloatBits(call.Args[i]), call.Pos()})
						return true
					}
					if isAtomicLoad(fn) {
						loadTargets[atomicTarget(call, fn)] = true
						return true
					}
					if isFloatFromBits(info, call) && len(call.Args) == 1 {
						if t, ok := loadTargetOf(call.Args[0]); ok {
							decodes = append(decodes, site{target: t, pos: call.Pos()})
						}
					}
					return true
				})
				storeTargets := map[string]bool{}
				for _, s := range stores {
					storeTargets[s.target] = true
				}
				for _, s := range stores {
					if s.floatBits && len(storeTargets) > 1 {
						pass.Reportf(s.pos, "atomic publication of float bits alongside a second atomic word: a racing update can pair one answer's dist with another's pos; publish one packed cell (see stats.BSF)")
					}
				}
				for _, d := range decodes {
					for t := range loadTargets {
						if t != d.target {
							pass.Reportf(d.pos, "decoding float bits from an atomic load alongside a second atomic load: the two words can come from different updates; read one packed cell (see stats.BSF)")
							break
						}
					}
				}
			}
		}
	}

	// Rule 3: two BSF.Load calls inside one decision expression.
	checkExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		byRecv := map[string][]token.Pos{}
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isMethodOf(calleeFunc(info, call), statsPath, "BSF", "Load") {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					key := exprString(pass.Fset, sel.X)
					byRecv[key] = append(byRecv[key], call.Pos())
				}
			}
			return true
		})
		for _, positions := range byRecv {
			if len(positions) > 1 {
				pass.Reportf(positions[1], "BSF.Load called %d times in one expression: the loads can observe different thresholds; load once into a local", len(positions))
			}
		}
	}
	Preorder(pass.Files, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.IfStmt:
			checkExpr(s.Cond)
		case *ast.ForStmt:
			checkExpr(s.Cond)
		case *ast.SwitchStmt:
			checkExpr(s.Tag)
		case *ast.ExprStmt:
			checkExpr(s.X)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				checkExpr(r)
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				checkExpr(r)
			}
		}
	})
	return nil, nil
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
