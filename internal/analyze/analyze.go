// Package analyze is messi-vet's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a package loader built on
// `go list` and the standard library's source importer.
//
// The repository's correctness rests on invariants the compiler cannot
// see — the best-so-far (dist, pos) pair must be published atomically
// together, RCU generations are immutable after the atomic.Pointer swap,
// acked appends hit the WAL before the delta buffer. The analyzers in
// this package (see Analyzers) machine-check the rules that CAN be
// checked syntactically/typewise, so a reviewer never has to.
//
// The API mirrors go/analysis deliberately: if the x/tools module ever
// becomes available to this build, each Analyzer ports mechanically.
// Two extensions exist because this driver is whole-program rather than
// unit-at-a-time:
//
//   - Analyzer.Finish runs once after every package's Run completed and
//     sees all per-package results, enabling cross-package rules (is a
//     failpoint's package linked into the crash matrix? is a metric name
//     always registered with one kind?). Finish does not run under
//     `go vet -vettool` unit mode, where packages are checked in
//     isolation; cmd/messi-vet's standalone mode covers it.
//
//   - Diagnostics can be suppressed with a `//messi-vet:ignore <name>
//     <reason>` comment on the flagged line or the line directly above
//     it. The reason is mandatory by convention (reviewed, not parsed).
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore comments.
	// Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph description shown by `messi-vet -list`.
	Doc string

	// Run applies the analyzer to one package and returns an optional
	// per-package result for Finish to aggregate.
	Run func(*Pass) (any, error)

	// Finish, if non-nil, runs once after all packages were analyzed.
	// It receives the suite of per-package results and reports
	// whole-program diagnostics (cross-package rules).
	Finish func(*Suite)
}

// A Pass provides one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package's import path as reported by go list. Test
	// variants (in-package _test.go files compiled in, or external
	// _test packages) keep the base path so path-keyed exemptions
	// apply to them too.
	Path string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Suite is handed to Analyzer.Finish: every per-package result plus
// the module-local import graph.
type Suite struct {
	Fset *token.FileSet

	// Results holds one entry per analyzed package, in load order.
	Results []PassResult

	// Graph maps a package path to the paths it imports (module-local
	// and standard library alike; test-only imports included when the
	// loader ran with Tests). Test variants are merged into their base
	// path's edge list.
	Graph map[string][]string

	report func(Diagnostic)
}

// Reportf records a whole-program diagnostic at pos.
func (s *Suite) Reportf(pos token.Pos, format string, args ...any) {
	s.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PassResult pairs a package path with what the analyzer's Run returned
// for it.
type PassResult struct {
	Path   string
	Result any
}

// Reaches reports whether to is reachable from from over the import
// graph (reflexively: a package reaches itself).
func (s *Suite) Reaches(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range s.Graph[p] {
			if dep == to {
				return true
			}
			if !seen[dep] {
				seen[dep] = true
				stack = append(stack, dep)
			}
		}
	}
	return false
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run applies every analyzer to every package, runs Finish hooks, drops
// suppressed diagnostics, and returns the rest sorted by position. The
// error aggregates analyzer-run failures (not diagnostics).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var firstErr error
	graph := map[string][]string{}
	for _, pkg := range pkgs {
		graph[pkg.Path] = mergeUnique(graph[pkg.Path], pkg.Imports)
	}
	for _, a := range analyzers {
		suite := &Suite{Fset: fset, Graph: graph}
		suite.report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				report:    suite.report,
			}
			res, err := a.Run(pass)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			suite.Results = append(suite.Results, PassResult{Path: pkg.Path, Result: res})
		}
		if a.Finish != nil {
			a.Finish(suite)
		}
	}
	diags = filterIgnored(fset, pkgs, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, firstErr
}

func mergeUnique(dst, src []string) []string {
	seen := map[string]bool{}
	for _, s := range dst {
		seen[s] = true
	}
	for _, s := range src {
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	return dst
}

// Analyzers returns the full messi-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicPair,
		RCUPublish,
		ErrWrap,
		FaultSite,
		MetricName,
	}
}
