package analyze

import (
	"go/token"
	"strings"
)

// ignorePrefix starts a suppression comment:
//
//	//messi-vet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is for reviewers; the driver only parses the analyzer list.
const ignorePrefix = "messi-vet:ignore"

// ignoreIndex maps filename -> line -> analyzer names suppressed there.
type ignoreIndex map[string]map[int][]string

func buildIgnoreIndex(fset *token.FileSet, pkgs []*Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) == 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						idx[pos.Filename] = lines
					}
					names := strings.Split(fields[0], ",")
					lines[pos.Line] = append(lines[pos.Line], names...)
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	if !d.Pos.IsValid() {
		return false
	}
	pos := fset.Position(d.Pos)
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

func filterIgnored(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	idx := buildIgnoreIndex(fset, pkgs)
	if len(idx) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
