package analyze

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// metricsPath is the metrics registry package. It is exempt from the
// prefix rule: its exposition code writes the runtime's go_* families.
const metricsPath = "repro/internal/metrics"

// MetricName enforces the exposition conventions README documents and
// dashboards depend on: every metric this module registers is
// messi_*-prefixed snake_case, counters end in _total, histograms carry
// their unit (_seconds or _bytes), and a name means the same kind
// everywhere — the registry panics on a kind conflict at runtime, but
// only if the two registrations share a process and a Registry.
//
// Rules:
//
//  1. Names passed to Registry.Counter/Gauge/GaugeFunc/Histogram must
//     be compile-time constants: dynamic names defeat grepping, the
//     docs table, and cardinality review.
//  2. Names match ^messi_[a-z0-9]+(_[a-z0-9]+)*$.
//  3. Counters end in _total; histograms end in _seconds or _bytes;
//     gauges must NOT end in _total (that suffix promises a counter).
//  4. (whole-program) The same name is never registered as two
//     different kinds across the codebase.
var MetricName = &Analyzer{
	Name:   "metricname",
	Doc:    "checks metric registration: constant messi_* snake_case names, kind-appropriate unit suffixes, and one kind per name across the codebase",
	Run:    runMetricName,
	Finish: finishMetricName,
}

var metricNameRE = regexp.MustCompile(`^messi_[a-z0-9]+(_[a-z0-9]+)*$`)

// metricUse records one registration site.
type metricUse struct {
	kind string
	pos  token.Pos
}

// metricNameFacts is the per-package result aggregated by Finish.
type metricNameFacts struct {
	uses map[string][]metricUse // name -> registration sites
}

func runMetricName(pass *Pass) (any, error) {
	info := pass.TypesInfo
	facts := &metricNameFacts{uses: map[string][]metricUse{}}
	exempt := basePath(pass.Path) == metricsPath

	Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		fn := calleeFunc(info, call)
		var kind string
		switch {
		case isMethodOf(fn, metricsPath, "Registry", "Counter"):
			kind = "counter"
		case isMethodOf(fn, metricsPath, "Registry", "Gauge"),
			isMethodOf(fn, metricsPath, "Registry", "GaugeFunc"):
			kind = "gauge"
		case isMethodOf(fn, metricsPath, "Registry", "Histogram"):
			kind = "histogram"
		default:
			return
		}
		if exempt {
			return
		}
		name, constant := constString(info, call.Args[0])
		if !constant {
			pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant so the exposition surface stays auditable")
			return
		}
		if !metricNameRE.MatchString(name) {
			pass.Reportf(call.Args[0].Pos(), "metric name %q does not match %s", name, metricNameRE)
			return
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				pass.Reportf(call.Args[0].Pos(), "histogram %q must carry its unit: end in _seconds or _bytes", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				pass.Reportf(call.Args[0].Pos(), "gauge %q must not end in _total: that suffix promises a monotone counter", name)
			}
		}
		facts.uses[name] = append(facts.uses[name], metricUse{kind: kind, pos: call.Args[0].Pos()})
	})
	return facts, nil
}

func finishMetricName(s *Suite) {
	type namedUse struct {
		name string
		metricUse
	}
	var all []namedUse
	for _, r := range s.Results {
		facts, ok := r.Result.(*metricNameFacts)
		if !ok {
			continue
		}
		for name, uses := range facts.uses {
			for _, u := range uses {
				all = append(all, namedUse{name: name, metricUse: u})
			}
		}
	}
	// Position order makes the earliest registration the canonical kind,
	// independent of map iteration order.
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	firstKind := map[string]metricUse{}
	for _, u := range all {
		if prev, ok := firstKind[u.name]; !ok {
			firstKind[u.name] = u.metricUse
		} else if prev.kind != u.kind {
			s.Reportf(u.pos, "metric %q registered as %s here but as %s at %s: one name, one kind — the registry panics if these ever share a process", u.name, u.kind, prev.kind, s.Fset.Position(prev.pos))
		}
	}
}
