package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis. Test variants produce an extra Package with the same Path.
type Package struct {
	Path    string // import path (test variants keep the base path)
	Name    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the directory to resolve patterns from (the module root
	// for ./... sweeps). Empty means the current directory.
	Dir string
	// Tests additionally loads each package's test variant (in-package
	// _test.go files compiled together with the package) and external
	// _test packages. The fault-coverage rule needs them: Arm calls
	// live in tests.
	Tests bool
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// Load resolves patterns with `go list`, parses every matched package
// and type-checks it against dependencies resolved from source. It
// returns the packages in list order (test variants directly after
// their base package).
//
// Dependency type-checking uses the standard library's source importer,
// which shells out to the go command for module-aware path resolution;
// Load therefore must run with the process inside the module (any
// subdirectory works).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, *token.FileSet, error) {
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	// Dependencies are type-checked from source. NewImporter disables
	// cgo, selecting the pure-Go variants of std packages like net and
	// keeping the load hermetic; the repository itself has no cgo.
	imp := NewImporter(fset)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Name == "" {
			continue
		}
		files := lp.GoFiles
		imports := lp.Imports
		if cfg.Tests && len(lp.TestGoFiles) > 0 {
			files = append(append([]string{}, files...), lp.TestGoFiles...)
			imports = mergeUnique(append([]string{}, imports...), lp.TestImports)
		}
		pkg, err := checkFiles(fset, imp, lp.Dir, lp.ImportPath, lp.Name, files, imports)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
		if cfg.Tests && len(lp.XTestGoFiles) > 0 {
			xt, err := checkFiles(fset, imp, lp.Dir, lp.ImportPath, lp.Name+"_test", lp.XTestGoFiles, lp.XTestImports)
			if err != nil {
				return nil, nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, fset, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func checkFiles(fset *token.FileSet, imp types.Importer, dir, path, name string, fileNames, imports []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		Name:    name,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: imports,
	}, nil
}

// NewImporter returns the shared dependency importer Load uses: the
// standard library's source importer with cgo disabled. One importer
// should be reused across packages so its type-check cache is shared.
// The process must be inside the module for module-local import paths
// to resolve.
func NewImporter(fset *token.FileSet) types.Importer {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	build.Default = ctxt
	return importer.ForCompiler(fset, "source", nil)
}

// LoadDir parses and type-checks a single directory of Go files as a
// package with the given import path, bypassing go list. analyzetest
// uses it to load testdata packages (which go tooling ignores), with
// the import path chosen by the test — path-keyed exemptions like the
// internal/stats carve-out can be exercised by picking that path. The
// imports slice only feeds the suite's import graph; it is not used
// for resolution.
func LoadDir(fset *token.FileSet, imp types.Importer, dir, path string, imports []string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return checkFiles(fset, imp, dir, path, "", names, imports)
}

// NewTypesInfo allocates the types.Info maps the analyzers rely on.
// cmd/messi-vet's unit-checker mode shares it so both loading paths
// feed passes identically.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
