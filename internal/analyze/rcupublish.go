package analyze

import (
	"go/ast"
	"go/types"
)

// RCUPublish enforces the read-copy-update discipline used by the
// engine's shard pointer, the live index's view pointer and the serving
// backend: a value obtained from an atomic.Pointer (or atomic.Value)
// Load is a published generation and is immutable — readers hold it
// without locks. Mutating it races every concurrent query. The correct
// pattern is copy-on-write: build a fresh value, then Store/Swap/CAS it
// in.
//
// The analyzer taints the result of every `.Load()` on a sync/atomic
// Pointer or Value, propagates the taint through aliasing assignments
// that preserve sharing (pointer, slice, map and channel typed
// expressions), and flags any assignment or ++/-- whose destination is
// reached through a tainted value. Writes to atomic fields *inside* a
// published value go through method calls (Add, Store), not
// assignments, so intentionally-shared counters do not trip the rule.
var RCUPublish = &Analyzer{
	Name: "rcupublish",
	Doc:  "flags writes through values obtained from an atomic.Pointer/atomic.Value Load: published RCU generations are immutable after the swap",
	Run:  runRCUPublish,
}

// isRCULoad reports whether the call is atomic.Pointer[T].Load or
// atomic.Value.Load.
func isRCULoad(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return isMethodOf(fn, "sync/atomic", "Pointer", "Load") ||
		isMethodOf(fn, "sync/atomic", "Value", "Load")
}

// sharesStorage reports whether an assignment of a value of type t to a
// new variable keeps referring to the same underlying storage.
func sharesStorage(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func runRCUPublish(pass *Pass) (any, error) {
	info := pass.TypesInfo

	// tainted holds objects (variables) known to alias a Load result.
	// A single forward pass in source order is enough for the
	// straight-line `v := p.Load(); ...; v.f = x` shape this guards
	// against; back-edges would only cause misses, not false positives.
	tainted := map[types.Object]bool{}

	// aliased reports whether e's VALUE aliases a loaded generation —
	// value-copy semantics: selecting or indexing out a plain struct
	// value breaks the alias, while pointers, slices, maps, channels
	// and interfaces keep referring to the published storage.
	var aliased func(e ast.Expr) bool
	aliased = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isRCULoad(info, x)
		case *ast.Ident:
			obj := info.Uses[x]
			return obj != nil && tainted[obj]
		case *ast.TypeAssertExpr:
			return aliased(x.X)
		case *ast.SelectorExpr, *ast.IndexExpr:
			if tv, ok := info.Types[e]; ok && !sharesStorage(tv.Type) {
				return false
			}
			switch y := x.(type) {
			case *ast.SelectorExpr:
				return aliased(y.X)
			case *ast.IndexExpr:
				return aliased(y.X)
			}
		case *ast.StarExpr:
			// *v in an RHS context is a value copy.
			return false
		}
		return false
	}

	// containerAliases reports whether the storage LOCATION denoted by
	// e lies inside a published generation — reference semantics: a
	// field of a published struct is published whatever its type.
	var containerAliases func(e ast.Expr) bool
	containerAliases = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isRCULoad(info, x)
		case *ast.Ident:
			obj := info.Uses[x]
			return obj != nil && tainted[obj]
		case *ast.TypeAssertExpr:
			return containerAliases(x.X)
		case *ast.SelectorExpr:
			return containerAliases(x.X)
		case *ast.IndexExpr:
			// An element of x.X lives in published storage if the
			// slice/map VALUE x.X aliases it (a local array copy does
			// not), or if x.X is itself a location inside one (an
			// array field of a published struct).
			return aliased(x.X) || containerAliases(x.X)
		case *ast.StarExpr:
			return aliased(x.X)
		}
		return false
	}

	// writeThroughTaint reports whether an assignment destination
	// mutates published storage. Rebinding a variable itself is fine.
	writeThroughTaint := func(dst ast.Expr) bool {
		switch x := ast.Unparen(dst).(type) {
		case *ast.SelectorExpr:
			return containerAliases(x.X)
		case *ast.IndexExpr:
			return aliased(x.X) || containerAliases(x.X)
		case *ast.StarExpr:
			return aliased(x.X)
		}
		return false
	}

	report := func(pos ast.Node) {
		pass.Reportf(pos.Pos(), "write through a value obtained from an atomic Load: published RCU generations are immutable; build a new value and Store it")
	}

	Preorder(pass.Files, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if writeThroughTaint(lhs) {
					report(lhs)
				}
			}
			// Propagate (and clear) taint for v := p.Load() / v = alias
			// AFTER checking the write: in `v.f = x` the LHS refers to
			// the pre-assignment binding.
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if aliased(rhs) {
						tainted[obj] = true
					} else {
						// Rebinding to a fresh value clears the taint
						// (forward flow; loops may under-approximate).
						delete(tainted, obj)
					}
				}
			}
		case *ast.IncDecStmt:
			if writeThroughTaint(s.X) {
				report(s.X)
			}
		}
	})
	return nil, nil
}
