package analyze

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Preorder calls f for every node in every file, in source order.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// calleeFunc resolves the *types.Func a call invokes (package function
// or method), or nil for calls through function values, built-ins and
// type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn(...).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the named package-level function of
// the given import path.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil &&
		fn.Pkg().Path() == pkgPath && fn.Type().(*types.Signature).Recv() == nil
}

// isMethodOf reports whether fn is the named method on the named type
// of the given import path (generic origin: atomic.Pointer[T] methods
// match typeName "Pointer"). Pointer receivers match too.
func isMethodOf(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeIs(recv.Type(), pkgPath, typeName)
}

// namedTypeIs reports whether t (possibly behind pointers and generic
// instantiation) is the named type pkgPath.typeName.
func namedTypeIs(t types.Type, pkgPath, typeName string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// constString returns the compile-time string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (and is not the
// untyped nil).
func isErrorType(t types.Type) bool {
	if t == nil || t == types.Typ[types.Invalid] {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}

// rootIdent returns the identifier at the base of a selector / index /
// dereference chain: rootIdent(a.b[i].c) == a. Calls and other
// non-addressable roots return nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// basePath strips a synthetic test-variant suffix from a package path,
// so exemptions keyed on "repro/internal/stats" also cover its external
// test package.
func basePath(path string) string {
	return strings.TrimSuffix(path, "_test")
}
