// Package analyzetest runs a messi-vet analyzer over testdata packages
// and checks its diagnostics against expectations written in the
// sources, mirroring x/tools' analysistest:
//
//	bad() // want `regexp matching the diagnostic`
//
// A want comment holds one or more backquoted or double-quoted regular
// expressions; each must match a distinct diagnostic reported on that
// comment's line, and every diagnostic must be claimed by a want.
// Multi-package suites exercise Finish rules: each Pkg declares its
// import-graph edges explicitly (testdata packages cannot actually
// import each other), which is exactly what reachability rules consume.
package analyzetest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyze"
)

// Pkg describes one testdata package of a test run.
type Pkg struct {
	// Dir holds the package's Go files.
	Dir string
	// Path is the import path the package pretends to have. Analyzer
	// exemptions key on it (e.g. "repro/internal/stats").
	Path string
	// Imports declares the package's edges in the suite import graph,
	// for Finish rules that walk reachability.
	Imports []string
}

// Run loads every package, applies the analyzer (including its Finish
// hook and ignore-comment filtering) and diffs diagnostics against the
// want comments in all loaded files.
func Run(t *testing.T, a *analyze.Analyzer, pkgs ...Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	imp := analyze.NewImporter(fset)
	var loaded []*analyze.Package
	for _, p := range pkgs {
		lp, err := analyze.LoadDir(fset, imp, p.Dir, p.Path, p.Imports)
		if err != nil {
			t.Fatalf("loading %s: %v", p.Dir, err)
		}
		loaded = append(loaded, lp)
	}
	diags, err := analyze.Run(fset, loaded, []*analyze.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, loaded)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !claimWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.claimed {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

func claimWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.claimed && w.re.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}

// wantRE extracts the expectation strings of a want comment: backquoted
// or double-quoted segments after the marker.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analyze.Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
						pattern := q
						if q[0] == '"' {
							var err error
							pattern, err = strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s: bad want string %s: %v", key, q, err)
							}
						} else {
							pattern = strings.Trim(q, "`")
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}
