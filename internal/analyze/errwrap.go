package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-chain discipline the durability stack
// depends on: callers match failures with errors.Is(err, persist.
// ErrCorrupt), errors.Is(err, fault.ErrInjected) and friends, which
// only works if every layer wraps with %w and nobody compares sentinels
// with ==.
//
// Rules:
//
//  1. fmt.Errorf must format error values with %w, not %v/%s: a non-%w
//     verb stringifies the cause and silently breaks every errors.Is /
//     errors.As above it.
//  2. Sentinel errors (package-level `var Err...` of error type) must
//     be matched with errors.Is, never == or != (or switch cases): a
//     sentinel that arrives wrapped compares unequal and the guard
//     silently stops firing.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "flags fmt.Errorf calls that format an error without %w and ==/!= comparisons against Err* sentinels (use errors.Is)",
	Run:  runErrWrap,
}

// formatVerb is one conversion in a format string, mapped to the
// argument it consumes.
type formatVerb struct {
	verb rune
	arg  int // index into the variadic args, -1 if out of range/unknown
}

// parseFormatVerbs maps each conversion verb in format to the argument
// index it consumes, following fmt's rules for '*' width/precision and
// explicit [n] argument indexes. The bool result is false if the format
// uses constructs the scanner does not model (it then abstains rather
// than guess).
func parseFormatVerbs(format string) ([]formatVerb, bool) {
	var verbs []formatVerb
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// Width.
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
		}
		// Explicit argument index: %[n]v.
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				return nil, false
			}
			n := 0
			for _, c := range format[i+1 : i+j] {
				if c < '0' || c > '9' {
					return nil, false
				}
				n = n*10 + int(c-'0')
			}
			if n == 0 {
				return nil, false
			}
			arg = n - 1
			i += j + 1
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, formatVerb{verb: rune(format[i]), arg: arg})
		arg++
		i++
	}
	return verbs, true
}

// isErrSentinel reports whether e refers to a package-level variable of
// error type whose name starts with "Err" — the repository's sentinel
// convention (persist.ErrCorrupt, fault.ErrInjected, core.ErrBadK...).
func isErrSentinel(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

func runErrWrap(pass *Pass) (any, error) {
	info := pass.TypesInfo

	checkErrorf := func(call *ast.CallExpr) {
		if !isPkgFunc(calleeFunc(info, call), "fmt", "Errorf") || len(call.Args) < 2 {
			return
		}
		format, ok := constString(info, call.Args[0])
		if !ok {
			return
		}
		if call.Ellipsis.IsValid() {
			return // fmt.Errorf(format, args...) — args unknowable here
		}
		verbs, ok := parseFormatVerbs(format)
		if !ok {
			return
		}
		for _, v := range verbs {
			argIdx := v.arg + 1 // args[0] is the format string
			if argIdx < 1 || argIdx >= len(call.Args) {
				continue
			}
			tv, ok := info.Types[call.Args[argIdx]]
			if !ok || !isErrorType(tv.Type) {
				continue
			}
			if v.verb != 'w' {
				pass.Reportf(call.Args[argIdx].Pos(), "fmt.Errorf formats an error with %%%c: use %%w so the cause stays matchable with errors.Is", v.verb)
			}
		}
	}

	checkCompare := func(x, y ast.Expr, pos token.Pos, op string) {
		name, ok := isErrSentinel(info, x)
		if !ok {
			return
		}
		tv, ok := info.Types[y]
		if !ok || !isErrorType(tv.Type) {
			return
		}
		pass.Reportf(pos, "%s compared with %s: a wrapped %s never compares equal; use errors.Is", name, op, name)
	}

	Preorder(pass.Files, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.CallExpr:
			checkErrorf(s)
		case *ast.BinaryExpr:
			if s.Op == token.EQL || s.Op == token.NEQ {
				checkCompare(s.X, s.Y, s.Pos(), s.Op.String())
				checkCompare(s.Y, s.X, s.Pos(), s.Op.String())
			}
		case *ast.SwitchStmt:
			if s.Tag == nil {
				return
			}
			tv, ok := info.Types[s.Tag]
			if !ok || !isErrorType(tv.Type) {
				return
			}
			for _, clause := range s.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := isErrSentinel(info, e); ok {
						pass.Reportf(e.Pos(), "%s matched in a switch case: a wrapped %s never compares equal; use errors.Is", name, name)
					}
				}
			}
		}
	})
	return nil, nil
}
