package analyze

import (
	"go/ast"
	"go/token"
	"regexp"
)

// faultPath is the failpoint framework package.
const faultPath = "repro/internal/fault"

// FaultSite keeps the crash-recovery matrix honest. The matrix
// (crash_test.go) arms every point returned by fault.Names(), so a
// failpoint is covered exactly when its package is linked into a test
// binary that calls fault.Names(). A Register in a package outside
// that import graph — or a Register that only runs lazily inside some
// function — silently escapes the matrix.
//
// Rules:
//
//  1. fault.Register takes a constant, dotted lowercase name
//     ("layer.site" style), so Names() stays sorted and greppable.
//  2. Register must run at package-level var initialization, not inside
//     a function: lazy registration is invisible to fault.Names() until
//     the site first executes, which on a fresh boot is after the
//     matrix enumerated the points.
//  3. (whole-program) Every fault.Arm with a constant name must name a
//     point some package Registers — an Arm typo fails only at runtime,
//     in whatever test happens to exercise it.
//  4. (whole-program) Every Registering package must be reachable from
//     a package that calls fault.Names() (the crash matrix), imports
//     included transitively, so new failpoints cannot escape coverage.
var FaultSite = &Analyzer{
	Name:   "faultsite",
	Doc:    "checks fault.Register discipline: constant dotted names, package-level registration, Arm names resolve, and every registering package is reachable from a fault.Names() crash matrix",
	Run:    runFaultSite,
	Finish: finishFaultSite,
}

// faultNameRE is the site-naming convention: at least two dotted
// lowercase segments, e.g. "wal.append.write".
var faultNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)+$`)

// faultSiteFacts is the per-package result aggregated by Finish.
type faultSiteFacts struct {
	registers  map[string]token.Pos // point name -> first Register site
	arms       map[string]token.Pos // constant-name Arm sites
	callsNames bool                 // package calls fault.Names() (a crash matrix)
}

func runFaultSite(pass *Pass) (any, error) {
	info := pass.TypesInfo
	facts := &faultSiteFacts{
		registers: map[string]token.Pos{},
		arms:      map[string]token.Pos{},
	}
	if basePath(pass.Path) == faultPath {
		// The framework itself registers nothing and its tests Arm
		// synthetic names; exempt it.
		return facts, nil
	}

	// Pre-compute which Register calls sit inside function bodies.
	inFunc := map[*ast.CallExpr]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					inFunc[call] = true
				}
				return true
			})
		}
	}

	Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)
		switch {
		case isPkgFunc(fn, faultPath, "Register") && len(call.Args) == 1:
			name, constant := constString(info, call.Args[0])
			if !constant {
				pass.Reportf(call.Args[0].Pos(), "fault.Register with a non-constant name: the crash matrix cannot be audited for it")
				return
			}
			if !faultNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "failpoint name %q does not match the layer.site convention (%s)", name, faultNameRE)
			}
			if inFunc[call] {
				pass.Reportf(call.Pos(), "fault.Register inside a function body: lazy registration escapes fault.Names() until the site first runs; register in a package-level var")
			}
			if _, ok := facts.registers[name]; !ok {
				facts.registers[name] = call.Pos()
			}
		case isPkgFunc(fn, faultPath, "Arm") && len(call.Args) >= 1:
			if name, constant := constString(info, call.Args[0]); constant {
				if _, ok := facts.arms[name]; !ok {
					facts.arms[name] = call.Args[0].Pos()
				}
			}
		case isPkgFunc(fn, faultPath, "Names"):
			facts.callsNames = true
		}
	})
	return facts, nil
}

func finishFaultSite(s *Suite) {
	registered := map[string]bool{}
	var matrixPkgs []string
	for _, r := range s.Results {
		facts, ok := r.Result.(*faultSiteFacts)
		if !ok {
			continue
		}
		for name := range facts.registers {
			registered[name] = true
		}
		if facts.callsNames {
			matrixPkgs = append(matrixPkgs, r.Path)
		}
	}
	for _, r := range s.Results {
		facts, ok := r.Result.(*faultSiteFacts)
		if !ok {
			continue
		}
		for name, pos := range facts.arms {
			if !registered[name] {
				s.Reportf(pos, "fault.Arm of unregistered point %q: no fault.Register in the analyzed packages uses this name", name)
			}
		}
		if len(matrixPkgs) == 0 {
			continue
		}
		for name, pos := range facts.registers {
			covered := false
			for _, m := range matrixPkgs {
				if s.Reaches(basePath(m), basePath(r.Path)) || basePath(m) == basePath(r.Path) {
					covered = true
					break
				}
			}
			if !covered {
				s.Reportf(pos, "failpoint %q is registered in a package not imported by any crash matrix (fault.Names() caller): it will never be armed by the coverage tests", name)
			}
		}
	}
}
