// Package stats is loaded under the import path "repro/internal/stats"
// by the analyzer test: the package that owns the BSF is allowed to
// build its packed atomic float cell by hand, so none of these lines
// may be reported.
package stats

import (
	"math"
	"sync/atomic"
)

type cell struct {
	bits atomic.Uint64
}

func (c *cell) publish(dist float64) {
	c.bits.Store(math.Float64bits(dist))
}

func (c *cell) read() float64 {
	return math.Float64frombits(c.bits.Load())
}
