// Package flagged exercises the atomicpair analyzer outside the
// internal/stats carve-out: every split (dist,pos)-style publication —
// float bits plus a second atomic word — and every double BSF.Load
// must be reported. Lone atomic float cells (thresholds, gauges) are
// legal and appear as negative cases.
package flagged

import (
	"math"
	"sync/atomic"

	"repro/internal/stats"
)

type splitCell struct {
	distBits atomic.Uint64
	pos      atomic.Int64
}

// publishSplit reimplements the pre-PR5 bug: distance and position go
// through two separate atomic words.
func publishSplit(c *splitCell, dist float64, pos int64) {
	c.distBits.Store(math.Float64bits(dist)) // want `atomic publication of float bits alongside a second atomic word`
	c.pos.Store(pos)
}

// publishViaLocal hides the bit pattern in a local first.
func publishViaLocal(c *splitCell, dist float64, pos int64) {
	bits := math.Float64bits(dist)
	c.distBits.Store(bits) // want `atomic publication of float bits alongside a second atomic word`
	c.pos.Store(pos)
}

// publishPkgLevel uses the package-level atomic functions.
func publishPkgLevel(word *uint64, posWord *int64, dist float64, pos int64) {
	atomic.StoreUint64(word, math.Float64bits(dist)) // want `atomic publication of float bits alongside a second atomic word`
	atomic.StoreInt64(posWord, pos)
}

// publishPkgCAS publishes the float half through a CAS loop.
func publishPkgCAS(word *uint64, posWord *int64, dist float64, pos int64) {
	for !atomic.CompareAndSwapUint64(word, atomic.LoadUint64(word), math.Float64bits(dist)) { // want `atomic publication of float bits alongside a second atomic word`
	}
	atomic.StoreInt64(posWord, pos)
}

// readSplit decodes the distance half of a split pair next to the
// position half.
func readSplit(c *splitCell) (float64, int64) {
	return math.Float64frombits(c.distBits.Load()), c.pos.Load() // want `decoding float bits from an atomic load alongside a second atomic load`
}

// readViaLocal decodes through locals.
func readViaLocal(c *splitCell) (float64, int64) {
	bits := c.distBits.Load()
	pos := c.pos.Load()
	return math.Float64frombits(bits), pos // want `decoding float bits from an atomic load alongside a second atomic load`
}

// doubleLoad prunes with two reads of the same BSF in one condition —
// the two loads can disagree (PR 4's leaf-scan bug).
func doubleLoad(b *stats.BSF, d, lb float64) bool {
	if d < b.Load() && lb < b.Load() { // want `BSF.Load called 2 times in one expression`
		return true
	}
	return false
}

// singleLoad is the fixed form: load once, reuse.
func singleLoad(b *stats.BSF, d, lb float64) bool {
	bound := b.Load()
	return d < bound && lb < bound
}

// distinctReceivers may each be loaded once in one expression.
func distinctReceivers(a, b *stats.BSF) bool {
	return a.Load() < b.Load()
}

// storeInt is unrelated to float bits and must not be flagged.
func storeInt(word *uint64, v uint64) {
	atomic.StoreUint64(word, v)
}

// monotoneCell publishes a lone float threshold — a single independent
// value, not half of a pair (core's top-k bound, metrics gauges). One
// atomic word in the whole function: legal.
func monotoneCell(word *atomic.Uint64, v float64) {
	for {
		old := word.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if word.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// gaugeRead decodes a lone float cell: legal.
func gaugeRead(word *atomic.Uint64) float64 {
	return math.Float64frombits(word.Load())
}

// suppressed shows the escape hatch for a reviewed exception.
func suppressed(c *splitCell, dist float64, pos int64) {
	//messi-vet:ignore atomicpair testdata exercises the suppression comment
	c.distBits.Store(math.Float64bits(dist))
	c.pos.Store(pos)
}
