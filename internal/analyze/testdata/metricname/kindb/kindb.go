// Package kindb re-registers kinda's histogram name as a gauge: one
// name, one kind, everywhere.
package kindb

import "repro/internal/metrics"

func register(r *metrics.Registry) {
	r.Gauge("messi_flip_seconds", "as a gauge") // want `registered as gauge here but as histogram`
}

var _ = register
