// Package kinda registers messi_flip_seconds as a histogram; package
// kindb reuses the name as a gauge. The whole-program rule flags the
// later registration.
package kinda

import "repro/internal/metrics"

func register(r *metrics.Registry) {
	r.Histogram("messi_flip_seconds", "as a histogram")
}

var _ = register
