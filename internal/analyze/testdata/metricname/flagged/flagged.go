// Package flagged exercises the metricname analyzer: constant messi_*
// snake_case names with kind-appropriate unit suffixes.
package flagged

import "repro/internal/metrics"

func register(r *metrics.Registry, dynamic string) {
	// Clean registrations, one per kind.
	r.Counter("messi_queries_total", "queries served")
	r.Gauge("messi_queue_depth", "waiting queries")
	r.GaugeFunc("messi_live_series", "series in the live index", func() float64 { return 0 })
	r.Histogram("messi_query_duration_seconds", "query latency")
	r.Histogram("messi_snapshot_bytes", "snapshot size")

	// Naming violations.
	r.Counter(dynamic, "dynamic names defeat review")                   // want `must be a compile-time constant`
	r.Counter("queries_total", "missing prefix")                        // want `does not match`
	r.Counter("messi_Queries_total", "not snake case")                  // want `does not match`
	r.Counter("messi__queries_total", "empty segment")                  // want `does not match`
	r.Counter("messi_queries", "counter without _total")                // want `counter "messi_queries" must end in _total`
	r.Histogram("messi_query_duration", "histogram without a unit")     // want `must carry its unit`
	r.Gauge("messi_rebuilds_total", "gauge pretending to be a counter") // want `must not end in _total`
}

func suppressed(r *metrics.Registry) {
	//messi-vet:ignore metricname testdata exercises the suppression comment
	r.Counter("messi_queries", "reviewed exception")
}
