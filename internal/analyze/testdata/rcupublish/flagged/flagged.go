// Package flagged exercises the rcupublish analyzer: values obtained
// from an atomic.Pointer/atomic.Value Load are published RCU
// generations and must never be written through.
package flagged

import "sync/atomic"

type node struct {
	key  int
	dist float64
}

type generation struct {
	nodes []node
	count int
	next  *generation
}

type index struct {
	live atomic.Pointer[generation]
	anyv atomic.Value
}

// mutateDirect writes through the Load result inline.
func mutateDirect(ix *index) {
	ix.live.Load().count = 7 // want `write through a value obtained from an atomic Load`
}

// mutateViaLocal is the common shape: bind, then write.
func mutateViaLocal(ix *index) {
	gen := ix.live.Load()
	gen.count++            // want `write through a value obtained from an atomic Load`
	gen.nodes[0].dist = 42 // want `write through a value obtained from an atomic Load`
}

// mutateAliasedSlice mutates shared backing storage reached through a
// field copy: the slice header is a copy but the array is published.
func mutateAliasedSlice(ix *index) {
	nodes := ix.live.Load().nodes
	nodes[3] = node{} // want `write through a value obtained from an atomic Load`
}

// mutateThroughChain follows a pointer field of the loaded value.
func mutateThroughChain(ix *index) {
	gen := ix.live.Load()
	next := gen.next
	next.count = 1 // want `write through a value obtained from an atomic Load`
}

// mutateValueLoad covers atomic.Value with a type assertion.
func mutateValueLoad(ix *index) {
	gen := ix.anyv.Load().(*generation)
	gen.count = 2 // want `write through a value obtained from an atomic Load`
}

// copyOnWrite is the sanctioned pattern: read the old generation, build
// a fresh value, publish it whole.
func copyOnWrite(ix *index) {
	old := ix.live.Load()
	fresh := &generation{
		nodes: append([]node(nil), old.nodes...),
		count: old.count + 1,
	}
	fresh.nodes[0].dist = 42 // fresh value, not the published one
	ix.live.Store(fresh)
}

// valueCopy dereferences into a local struct copy; writes touch the
// copy, not the published generation.
func valueCopy(ix *index) {
	snap := *ix.live.Load()
	snap.count = 9
	_ = snap
}

// rebind reassigning the loaded variable itself is not a write through
// the generation.
func rebind(ix *index) {
	gen := ix.live.Load()
	gen = &generation{}
	gen.count = 1 // gen now holds a fresh, unpublished value
	_ = gen
}

// suppressed shows the reviewed escape hatch.
func suppressed(ix *index) {
	gen := ix.live.Load()
	//messi-vet:ignore rcupublish testdata exercises the suppression comment
	gen.count = 3
}
