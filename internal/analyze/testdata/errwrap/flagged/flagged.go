// Package flagged exercises the errwrap analyzer: error chains must be
// wrapped with %w and sentinels matched with errors.Is.
package flagged

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt stands in for the repository's typed sentinels
// (persist.ErrCorrupt, fault.ErrInjected, core.ErrBadK...).
var ErrCorrupt = errors.New("corrupt")

// ErrOther is a second sentinel for switch coverage.
var ErrOther = errors.New("other")

func wrapWrong(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `formats an error with %v`
}

func wrapString(err error) error {
	return fmt.Errorf("load %s failed: %s", "x", err) // want `formats an error with %s`
}

func wrapMixed(path string, err error) error {
	return fmt.Errorf("snapshot %q: %d bytes: %v", path, 7, err) // want `formats an error with %v`
}

func wrapRight(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func wrapTwo(a, b error) error {
	return fmt.Errorf("both failed: %w and %w", a, b)
}

func noErrorArgs(path string, n int) error {
	return fmt.Errorf("bad header in %s: %d sections", path, n)
}

func compareEq(err error) bool {
	return err == ErrCorrupt // want `ErrCorrupt compared with ==`
}

func compareNeq(err error) bool {
	return ErrCorrupt != err // want `ErrCorrupt compared with !=`
}

func compareSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrCorrupt, ErrOther: // want `ErrCorrupt matched in a switch case` `ErrOther matched in a switch case`
		return "known"
	}
	return "unknown"
}

func compareRight(err error) bool {
	return errors.Is(err, ErrCorrupt)
}

// compareEOF: io.EOF is a stdlib sentinel returned bare by Read
// contracts; the Err* naming convention deliberately leaves it alone.
func compareEOF(err error) bool {
	return err == io.EOF
}

func compareNil(err error) bool {
	return err != nil
}

func suppressed(err error) error {
	//messi-vet:ignore errwrap testdata exercises the suppression comment
	return fmt.Errorf("terminal: %v", err)
}
