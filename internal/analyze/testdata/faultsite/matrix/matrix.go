// Package matrix stands in for crash_test.go: it enumerates
// fault.Names(), which makes every package it (transitively) imports
// crash-matrix covered. The analyzer test declares its import edges.
package matrix

import "repro/internal/fault"

func points() []string {
	return fault.Names()
}

var _ = points
