// Package single exercises the faultsite analyzer's per-package rules
// in one self-covered package: it registers points, arms them, and
// enumerates fault.Names() like the crash matrix does.
package single

import "repro/internal/fault"

var (
	fpWrite = fault.Register("single.write")
	fpBad   = fault.Register("NotDotted") // want `does not match the layer.site convention`
	fpOne   = fault.Register("single")    // want `does not match the layer.site convention`
)

var dynamicName = "single." + "dynamic"

// registerLazily registers inside a function body: fault.Names() cannot
// see the point until the first call.
func registerLazily() *fault.Point {
	return fault.Register("single.lazy") // want `fault.Register inside a function body`
}

// registerDynamic uses a non-constant name.
func registerDynamic() *fault.Point {
	return fault.Register(dynamicName) // want `non-constant name`
}

// armAll arms a registered point (fine), a typo (whole-program rule),
// and a computed name (ignored — only constants are auditable).
func armAll() error {
	if err := fault.Arm("single.write", fault.Spec{Action: fault.Error}); err != nil {
		return err
	}
	if err := fault.Arm("single.wrtie", fault.Spec{Action: fault.Error}); err != nil { // want `fault.Arm of unregistered point "single.wrtie"`
		return err
	}
	return fault.Arm(dynamicName, fault.Spec{Action: fault.Error})
}

// matrix enumerates every registered point, marking this package as a
// crash matrix for the coverage rule.
func matrix() []string {
	return fault.Names()
}

var _ = []*fault.Point{fpWrite, fpBad, fpOne}
