// Package orphan registers a failpoint but is not imported (directly
// or transitively) by any package that calls fault.Names(): the crash
// matrix can never arm it. The analyzer test pairs this package with
// testdata/faultsite/matrix, declaring no edge between them.
package orphan

import "repro/internal/fault"

var fpOrphan = fault.Register("orphan.write") // want `registered in a package not imported by any crash matrix`

var _ = fpOrphan
