// Package covered registers a failpoint and is reachable from the
// matrix package through a declared import edge, so the coverage rule
// stays quiet.
package covered

import "repro/internal/fault"

var fpCovered = fault.Register("covered.write")

var _ = fpCovered
