package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDisarmedIsNil(t *testing.T) {
	p := Register("test.disarmed")
	t.Cleanup(DisarmAll)
	for i := 0; i < 3; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if n, err := p.BeforeWrite(128); n != 128 || err != nil {
		t.Fatalf("disarmed BeforeWrite = (%d, %v), want (128, nil)", n, err)
	}
}

func TestErrorFiresOnNthHitOnce(t *testing.T) {
	p := Register("test.nth")
	t.Cleanup(DisarmAll)
	if err := Arm("test.nth", Spec{Action: Error, After: 2}); err != nil {
		t.Fatal(err)
	}
	before := Fired("test.nth")
	for i := 1; i <= 2; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := p.Hit()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 = %v, want ErrInjected", err)
	}
	// One-shot by default: the point auto-disarms after firing.
	if err := p.Hit(); err != nil {
		t.Fatalf("hit after fire = %v, want nil (auto-disarm)", err)
	}
	if got := Fired("test.nth") - before; got != 1 {
		t.Fatalf("fired %d times, want 1", got)
	}
}

func TestRepeatKeepsFiring(t *testing.T) {
	p := Register("test.repeat")
	t.Cleanup(DisarmAll)
	custom := errors.New("boom")
	if err := Arm("test.repeat", Spec{Action: Error, Repeat: true, Err: custom}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := p.Hit()
		if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
			t.Fatalf("hit %d = %v, want wrapped custom error", i, err)
		}
	}
	Disarm("test.repeat")
	if err := p.Hit(); err != nil {
		t.Fatalf("after Disarm: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	p := Register("test.panic")
	t.Cleanup(DisarmAll)
	if err := Arm("test.panic", Spec{Action: Panic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !IsInjectedPanic(r) {
			t.Fatalf("recovered %v (%T), want injected panic value", r, r)
		}
	}()
	_ = p.Hit()
}

func TestPartialWrite(t *testing.T) {
	p := Register("test.partial")
	t.Cleanup(DisarmAll)
	if err := Arm("test.partial", Spec{Action: PartialWrite, Keep: 5}); err != nil {
		t.Fatal(err)
	}
	n, err := p.BeforeWrite(100)
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("BeforeWrite = (%d, %v), want (5, ErrInjected)", n, err)
	}
	// Keep larger than the buffer writes the whole buffer but still
	// returns the error.
	if err := Arm("test.partial", Spec{Action: PartialWrite, Keep: 500}); err != nil {
		t.Fatal(err)
	}
	n, err = p.BeforeWrite(100)
	if n != 100 || !errors.Is(err, ErrInjected) {
		t.Fatalf("BeforeWrite big-keep = (%d, %v), want (100, ErrInjected)", n, err)
	}
}

func TestArmUnknownPointErrors(t *testing.T) {
	if err := Arm("test.never-registered", Spec{}); err == nil {
		t.Fatal("arming an unregistered point must fail")
	}
	Disarm("test.never-registered") // must not panic
}

func TestOneShotFiresExactlyOnceUnderConcurrency(t *testing.T) {
	p := Register("test.concurrent")
	t.Cleanup(DisarmAll)
	if err := Arm("test.concurrent", Spec{Action: Error}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var fires sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Hit(); err != nil {
					fires.Store(fmt.Sprintf("%d/%d", g, i), err)
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	fires.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("one-shot fired %d times across goroutines, want 1", n)
	}
}

func TestNamesSortedAndRegisterIdempotent(t *testing.T) {
	a := Register("test.names.b")
	b := Register("test.names.b")
	if a != b {
		t.Fatal("Register must return the same *Point for the same name")
	}
	Register("test.names.a")
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}
