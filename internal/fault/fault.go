// Package fault is a deterministic failpoint framework for crash and
// chaos testing.
//
// Production code registers named points once at package init
// (Register) and consults them on the hot path (Point.Hit or
// Point.BeforeWrite). Tests arm a point with a Spec — fail on the
// Nth hit with an injected error, a panic, or a partial write — drive
// the system until the fault fires, and then assert on recovery.
//
// The framework is always compiled in. When nothing is armed the whole
// cost of a Hit is one atomic load and a branch, so instrumented hot
// paths (leaf scans, append journaling, snapshot writes) pay
// effectively nothing in production. There is no build tag to forget:
// `go test ./...` runs the same code CI's chaos job does, the chaos
// job just arms more faults.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrInjected is the root of every error returned by a fired failpoint.
// Tests match it with errors.Is to tell injected failures from real
// ones.
var ErrInjected = errors.New("fault: injected failure")

// Action selects what a fired failpoint does.
type Action int

const (
	// Error makes Hit return an injected error (Spec.Err, or a
	// generic one wrapping ErrInjected).
	Error Action = iota
	// Panic makes Hit panic with a value wrapping the point name.
	Panic
	// PartialWrite is for write sites using BeforeWrite: the site is
	// told to write only Spec.Keep bytes of the buffer and then
	// return the injected error, leaving a torn record behind.
	PartialWrite
)

func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case PartialWrite:
		return "partial-write"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Spec describes how an armed point misbehaves.
type Spec struct {
	// Action is what happens when the point fires.
	Action Action
	// After is the number of hits to let through before firing: the
	// point fires on hit After+1 (counted from Arm). Zero fires on
	// the first hit.
	After int
	// Repeat keeps the point armed after it fires. The default is to
	// fire exactly once and auto-disarm, which matches crash tests
	// (a process only crashes at an instant once).
	Repeat bool
	// Err overrides the injected error for Error and PartialWrite
	// actions. It is wrapped so errors.Is(err, ErrInjected) still
	// holds.
	Err error
	// Keep is the number of leading bytes a PartialWrite lets
	// through (clamped to the buffer length at the site).
	Keep int
}

// Point is a named failpoint. Obtain one with Register at package init
// and call Hit (or BeforeWrite) at the instrumented site.
type Point struct {
	name  string
	spec  atomic.Pointer[Spec]
	hits  atomic.Int64 // hits since armed
	fired atomic.Int64 // total fires since process start
}

// armed counts currently armed points process-wide. It gates the fast
// path: when zero, Hit is a single atomic load and a branch.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points = map[string]*Point{}
)

// Register returns the named point, creating it if needed. It is safe
// to call from multiple packages' init functions; the same name always
// yields the same point.
func Register(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	points[name] = p
	return p
}

// Names returns the names of all registered points, sorted. Crash
// matrix tests iterate this so every instrumented site is exercised.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arm makes the named point fire according to spec. The point must
// already be registered (arming a typo'd name is a test bug, not a
// silent no-op). The hit counter restarts at zero.
func Arm(name string, spec Spec) error {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return fmt.Errorf("fault: arm %q: no such point", name)
	}
	p.hits.Store(0)
	if p.spec.Swap(&spec) == nil {
		armed.Add(1)
	}
	return nil
}

// Disarm deactivates the named point if it is armed. Unknown names are
// ignored so tests can disarm unconditionally in cleanup.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		if p.spec.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// DisarmAll deactivates every armed point. Call it from test cleanup
// so a failed test cannot poison the next one.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range points {
		if p.spec.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// Fired reports how many times the named point has fired since process
// start. Tests use it to confirm a scenario actually reached the
// instrumented site.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired.Load()
	}
	return 0
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

type panicValue struct {
	point string
	err   error
}

func (v panicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s", v.point)
}

// IsInjectedPanic reports whether a recovered panic value came from a
// fired failpoint, so panic-isolation layers can tell injected panics
// apart from real bugs in logs.
func IsInjectedPanic(r any) bool {
	_, ok := r.(panicValue)
	return ok
}

// Hit consults the point. Disarmed (the overwhelmingly common case) it
// returns nil after one atomic load. Armed with an Error or
// PartialWrite action it returns the injected error on the firing hit;
// armed with Panic it panics.
func (p *Point) Hit() error {
	if armed.Load() == 0 {
		return nil
	}
	return p.hitSlow(0)
}

// BeforeWrite consults the point at a write site about to write n
// bytes. It returns how many bytes the site should actually write and
// the error the site must return afterwards. Disarmed it returns
// (n, nil). A PartialWrite action returns (min(Keep, n), err), telling
// the site to leave a torn record; other actions behave as in Hit.
func (p *Point) BeforeWrite(n int) (int, error) {
	if armed.Load() == 0 {
		return n, nil
	}
	err := p.hitSlow(n)
	if err == nil {
		return n, nil
	}
	var pv partialErr
	if errors.As(err, &pv) && pv.keep < n {
		return pv.keep, err
	}
	if errors.As(err, &pv) {
		return n, err
	}
	return 0, err
}

// partialErr carries the Keep byte count of a PartialWrite through the
// error value so BeforeWrite can split behavior without re-reading the
// (possibly already disarmed) spec.
type partialErr struct {
	keep int
	err  error
}

func (e partialErr) Error() string { return e.err.Error() }
func (e partialErr) Unwrap() error { return e.err }

func (p *Point) hitSlow(writeLen int) error {
	sp := p.spec.Load()
	if sp == nil {
		return nil
	}
	if p.hits.Add(1) <= int64(sp.After) {
		return nil
	}
	if !sp.Repeat {
		// One-shot: race between concurrent hitters is resolved by
		// the swap — only the goroutine that disarms fires.
		mu.Lock()
		won := p.spec.CompareAndSwap(sp, nil)
		if won {
			armed.Add(-1)
		}
		mu.Unlock()
		if !won {
			return nil
		}
	}
	p.fired.Add(1)
	err := sp.Err
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, p.name)
	} else if !errors.Is(err, ErrInjected) {
		err = fmt.Errorf("%w at %s: %w", ErrInjected, p.name, err)
	}
	switch sp.Action {
	case Panic:
		panic(panicValue{point: p.name, err: err})
	case PartialWrite:
		return partialErr{keep: sp.Keep, err: err}
	default:
		return err
	}
}
