package serial

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

func brute1NN(data *series.Collection, query []float32) core.Match {
	best := core.Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := vector.SquaredEuclidean(data.At(i), query)
		if d < best.Dist {
			best = core.Match{Position: i, Dist: d}
		}
	}
	return best
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	bad, _ := series.NewEmptyCollection(4, 100)
	if _, err := Build(bad, Options{Segments: 16}); err == nil {
		t.Error("non-multiple length accepted")
	}
}

func TestBuildConservesSeries(t *testing.T) {
	data, err := dataset.Generate(dataset.RandomWalk, 3000, 64, 17)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(data, Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Tree.Stats()
	if st.Series != 3000 {
		t.Fatalf("tree holds %d series, want 3000", st.Series)
	}
	if err := ix.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.RandomWalk, dataset.SeismicLike} {
		data, err := dataset.Generate(kind, 2500, 64, 18)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(data, Options{LeafCapacity: 32})
		if err != nil {
			t.Fatal(err)
		}
		queries, _ := dataset.Queries(kind, 15, 64, 130)
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)
			want := brute1NN(data, q)
			got, err := ix.Search(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
				t.Fatalf("%s query %d: %v want %v", kind, qi, got.Dist, want.Dist)
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	data, _ := dataset.Generate(dataset.RandomWalk, 100, 64, 19)
	ix, err := Build(data, Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(make([]float32, 32), nil); err == nil {
		t.Error("wrong-length query accepted")
	}
}

func TestSearchSelfQueries(t *testing.T) {
	data, _ := dataset.Generate(dataset.SALDLike, 800, 128, 20)
	ix, err := Build(data, Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m, err := ix.Search(data.At(i*37%800), nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("self query %d: dist %v", i, m.Dist)
		}
	}
}

// The sequential index must prune: far fewer real distances than series.
func TestSearchPrunes(t *testing.T) {
	data, _ := dataset.Generate(dataset.RandomWalk, 4000, 64, 21)
	ix, err := Build(data, Options{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := dataset.Queries(dataset.RandomWalk, 5, 64, 131)
	ctrs := &stats.Counters{}
	for qi := 0; qi < queries.Count(); qi++ {
		if _, err := ix.Search(queries.At(qi), ctrs); err != nil {
			t.Fatal(err)
		}
	}
	real := ctrs.Snapshot().RealDistCalcs / int64(queries.Count())
	if real > 4000/4 {
		t.Errorf("sequential index barely prunes: %d real calcs for 4000 series", real)
	}
}

// Defaults must match the paper's parameters.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Segments != 16 || o.CardBits != 8 || o.LeafCapacity != 2000 {
		t.Errorf("defaults: %+v", o)
	}
}
