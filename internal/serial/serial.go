// Package serial implements a single-threaded iSAX index, standing in for
// ADS+ — "the state-of-the-art sequential (i.e., non-parallel) indexing
// technique" of the paper's introduction, which frames MESSI's motivation:
// ADS+ needs minutes per query where ParIS needs seconds and MESSI
// milliseconds.
//
// Substitution note (see DESIGN.md): ADS+ is *adaptive* — it materializes
// leaves lazily as queries touch them, which matters for its disk-resident
// build cost. In memory, with the whole index built, what remains is a
// sequential tree construction and a sequential best-first exact search;
// those are implemented here faithfully (same tree, same bounds, one
// thread, classic Shieh & Keogh exact search). The introduction's ordering
// claim (serial scan ≫ sequential index ≫ parallel index ≫ MESSI) is what
// the IntroClaims benchmark reproduces.
package serial

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/pqueue"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/vector"
)

// Options configures the sequential index.
type Options struct {
	Segments     int // w (default 16)
	CardBits     int // default 8
	LeafCapacity int // default 2000
}

func (o Options) withDefaults() Options {
	if o.Segments <= 0 {
		o.Segments = 16
	}
	if o.CardBits <= 0 {
		o.CardBits = 8
	}
	if o.LeafCapacity <= 0 {
		o.LeafCapacity = 2000
	}
	return o
}

// Index is a sequentially-built iSAX index.
type Index struct {
	Data   *series.Collection
	Schema *isax.Schema
	Tree   *tree.Tree
}

// Build constructs the index on the calling goroutine only.
func Build(data *series.Collection, opts Options) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("serial: cannot build an index over an empty collection")
	}
	opts = opts.withDefaults()
	schema, err := isax.NewSchema(data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.New(schema, opts.LeafCapacity)
	if err != nil {
		return nil, err
	}
	ix := &Index{Data: data, Schema: schema, Tree: tr}
	paaBuf := make([]float64, schema.Segments)
	word := make([]uint8, schema.Segments)
	for j := 0; j < data.Count(); j++ {
		paa.Transform(data.At(j), schema.Segments, paaBuf)
		schema.WordFromPAA(paaBuf, word)
		root := tr.EnsureRoot(schema.RootIndex(word))
		tr.Insert(root, word, int32(j))
	}
	return ix, nil
}

// Search answers an exact 1-NN query with the classic single-threaded
// best-first tree search: seed the BSF from the query's own leaf, then
// expand nodes from one local priority queue in lower-bound order,
// terminating when the queue's minimum exceeds the BSF.
func (ix *Index) Search(query []float32, ctrs *stats.Counters) (core.Match, error) {
	if len(query) != ix.Data.Length {
		return core.Match{}, fmt.Errorf("serial: query length %d, index series length %d", len(query), ix.Data.Length)
	}
	w := ix.Schema.Segments
	qpaa := paa.Transform(query, w, nil)
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	wordBuf := make([]uint8, w) // per-query word gather scratch

	best := core.Match{Position: -1, Dist: math.Inf(1)}

	// Seed from the query's own subtree when present.
	if root := ix.Tree.Root(ix.Schema.RootIndex(qword)); root != nil {
		leaf := ix.Tree.DescendToLeaf(root, qword)
		ix.scanLeaf(leaf, query, qpaa, wordBuf, &best, ctrs)
	}

	q := pqueue.New[*tree.Node](256)
	for l := 0; l < ix.Tree.RootCount(); l++ {
		root := ix.Tree.Root(l)
		if root == nil {
			continue
		}
		d := ix.Schema.MinDistPAAPrefix(qpaa, root.Symbols, root.Bits)
		ctrs.AddLowerBound(1)
		if d < best.Dist {
			q.Push(d, root)
		}
	}
	for {
		item, ok := q.PopMin()
		if !ok || item.Priority >= best.Dist {
			break
		}
		node := item.Value
		if node.IsLeaf() {
			ix.scanLeaf(node, query, qpaa, wordBuf, &best, ctrs)
			continue
		}
		for _, child := range []*tree.Node{node.Left, node.Right} {
			ctrs.AddNodesVisited(1)
			d := ix.Schema.MinDistPAAPrefix(qpaa, child.Symbols, child.Bits)
			ctrs.AddLowerBound(1)
			if d < best.Dist {
				q.Push(d, child)
			}
		}
	}
	return best, nil
}

func (ix *Index) scanLeaf(leaf *tree.Node, query []float32, qpaa []float64, wordBuf []uint8, best *core.Match, ctrs *stats.Counters) {
	w := ix.Schema.Segments
	var lbCount, realCount int64
	for i := 0; i < leaf.LeafLen(); i++ {
		lbCount++
		if ix.Schema.MinDistPAAWord(qpaa, leaf.Word(i, w, wordBuf)) >= best.Dist {
			continue
		}
		pos := leaf.Positions[i]
		d := vector.SquaredEuclideanEarlyAbandon(ix.Data.At(int(pos)), query, best.Dist)
		realCount++
		if d < best.Dist {
			*best = core.Match{Position: int(pos), Dist: d}
		}
	}
	ctrs.AddLowerBound(lbCount)
	ctrs.AddRealDist(realCount)
}
