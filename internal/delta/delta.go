// Package delta provides the write-side buffer of the live index: a
// concurrent, append-only store of equal-length data series that supports
// consistent point-in-time snapshots while appends continue.
//
// Storage is block-based: series are copied into fixed-capacity flat
// blocks, and a new block is allocated when the current one fills. Blocks
// are never moved or resized once allocated, so a snapshot taken at count
// n can read series [0, n) without synchronizing with later appends — the
// only shared mutable state is the block list and the published count,
// both captured under the buffer's mutex when the snapshot is taken.
//
// The buffer deliberately has no index structure: the live index answers
// queries over it by brute-force scan (internal/scan), which is fast at
// delta scale and exact by construction. When the delta grows past the
// rebuild threshold its contents are merged into the next immutable
// generation and the buffer is discarded.
package delta

import (
	"fmt"
	"sync"

	"repro/internal/series"
)

// DefaultBlockSeries is the default number of series per storage block.
const DefaultBlockSeries = 1024

// Buffer is a concurrent append-only series store. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Buffer struct {
	length   int // points per series
	blockCap int // series per block

	mu     sync.Mutex
	blocks [][]float32 // each block is flat row-major storage
	count  int         // complete, published series
}

// New returns an empty buffer for series of the given length. blockSeries
// is the block granularity (<= 0 selects DefaultBlockSeries).
func New(seriesLen, blockSeries int) *Buffer {
	if blockSeries <= 0 {
		blockSeries = DefaultBlockSeries
	}
	return &Buffer{length: seriesLen, blockCap: blockSeries}
}

// SeriesLen reports the length (points) of each stored series.
func (b *Buffer) SeriesLen() int { return b.length }

// Len reports the number of series currently stored.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Append copies one series into the buffer and returns its index.
func (b *Buffer) Append(s []float32) (int, error) {
	if len(s) != b.length {
		return 0, fmt.Errorf("delta: series length %d, buffer series length %d", len(s), b.length)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.appendLocked(s)
	return b.count - 1, nil
}

// AppendBatch copies a batch of series atomically (one lock acquisition,
// contiguous indices) and returns the index of the first. All series must
// have the buffer's length; on a length mismatch nothing is appended.
func (b *Buffer) AppendBatch(rows [][]float32) (int, error) {
	for i, r := range rows {
		if len(r) != b.length {
			return 0, fmt.Errorf("delta: batch series %d has length %d, buffer series length %d", i, len(r), b.length)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	first := b.count
	for _, r := range rows {
		b.appendLocked(r)
	}
	return first, nil
}

// appendLocked copies one validated series; the caller holds b.mu.
func (b *Buffer) appendLocked(s []float32) {
	within := b.count % b.blockCap
	if within == 0 {
		b.blocks = append(b.blocks, make([]float32, b.blockCap*b.length))
	}
	block := b.blocks[len(b.blocks)-1]
	copy(block[within*b.length:(within+1)*b.length], s)
	b.count++
}

// Snapshot captures a consistent point-in-time view of the buffer. The
// snapshot remains valid (and immutable) while appends continue: blocks
// are append-only and the snapshot only exposes series below its count.
func (b *Buffer) Snapshot() *Snapshot {
	b.mu.Lock()
	count := b.count
	blocks := make([][]float32, len(b.blocks))
	copy(blocks, b.blocks)
	b.mu.Unlock()
	return &Snapshot{blocks: blocks, count: count, length: b.length, blockCap: b.blockCap}
}

// Snapshot is an immutable view of a Buffer at some count. It is safe for
// concurrent use by any number of readers.
type Snapshot struct {
	blocks   [][]float32
	count    int
	length   int
	blockCap int
}

// Len reports the number of series in the snapshot.
func (s *Snapshot) Len() int { return s.count }

// SeriesLen reports the length (points) of each series.
func (s *Snapshot) SeriesLen() int { return s.length }

// At returns series i as a view into block storage (no copy). The caller
// must not modify it.
func (s *Snapshot) At(i int) []float32 {
	block := s.blocks[i/s.blockCap]
	within := i % s.blockCap
	return block[within*s.length : (within+1)*s.length : (within+1)*s.length]
}

// Collections exposes the snapshot as contiguous series.Collection chunks
// (one per occupied block, in order), so collection-based algorithms like
// the internal/scan brute-force searches can run over delta data without
// copying. Chunk c starts at series c*blockCap of the snapshot.
func (s *Snapshot) Collections() ([]*series.Collection, error) {
	var cols []*series.Collection
	remaining := s.count
	for _, block := range s.blocks {
		if remaining <= 0 {
			break
		}
		n := remaining
		if n > s.blockCap {
			n = s.blockCap
		}
		col, err := series.NewCollection(block[:n*s.length], s.length)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		remaining -= n
	}
	return cols, nil
}

// CopyInto copies all snapshot series into dst (flat row-major), which
// must hold Len()*SeriesLen() values. Used by the generational rebuild to
// merge delta contents into the next immutable collection.
func (s *Snapshot) CopyInto(dst []float32) error {
	if len(dst) < s.count*s.length {
		return fmt.Errorf("delta: destination holds %d values, need %d", len(dst), s.count*s.length)
	}
	off := 0
	remaining := s.count
	for _, block := range s.blocks {
		if remaining <= 0 {
			break
		}
		n := remaining
		if n > s.blockCap {
			n = s.blockCap
		}
		copy(dst[off:off+n*s.length], block[:n*s.length])
		off += n * s.length
		remaining -= n
	}
	return nil
}
