package delta

import (
	"sync"
	"testing"
)

// mkSeries returns a length-4 series whose points all equal v.
func mkSeries(v float32) []float32 {
	return []float32{v, v, v, v}
}

func TestAppendAndAt(t *testing.T) {
	b := New(4, 3) // tiny blocks to exercise block boundaries
	for i := 0; i < 10; i++ {
		pos, err := b.Append(mkSeries(float32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if pos != i {
			t.Fatalf("append %d returned position %d", i, pos)
		}
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	snap := b.Snapshot()
	for i := 0; i < 10; i++ {
		if got := snap.At(i)[0]; got != float32(i) {
			t.Fatalf("At(%d)[0] = %v, want %v", i, got, float32(i))
		}
	}
}

func TestAppendBatch(t *testing.T) {
	b := New(4, 4)
	if _, err := b.Append(mkSeries(0)); err != nil {
		t.Fatal(err)
	}
	rows := [][]float32{mkSeries(1), mkSeries(2), mkSeries(3), mkSeries(4), mkSeries(5)}
	first, err := b.AppendBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("batch first position = %d, want 1", first)
	}
	snap := b.Snapshot()
	if snap.Len() != 6 {
		t.Fatalf("snapshot len = %d, want 6", snap.Len())
	}
	for i := 0; i < 6; i++ {
		if got := snap.At(i)[0]; got != float32(i) {
			t.Fatalf("At(%d)[0] = %v, want %v", i, got, float32(i))
		}
	}
}

func TestAppendRejectsWrongLength(t *testing.T) {
	b := New(4, 4)
	if _, err := b.Append([]float32{1, 2}); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := b.AppendBatch([][]float32{mkSeries(1), {1}}); err == nil {
		t.Fatal("batch with short series accepted")
	}
	if b.Len() != 0 {
		t.Fatalf("failed batch mutated the buffer: len %d", b.Len())
	}
}

// TestSnapshotIsolation: a snapshot must not observe appends made after it
// was taken, even appends landing in the snapshot's last (shared) block.
func TestSnapshotIsolation(t *testing.T) {
	b := New(4, 4)
	for i := 0; i < 5; i++ {
		b.Append(mkSeries(float32(i)))
	}
	snap := b.Snapshot()
	for i := 5; i < 12; i++ {
		b.Append(mkSeries(float32(i)))
	}
	if snap.Len() != 5 {
		t.Fatalf("snapshot len = %d, want 5", snap.Len())
	}
	for i := 0; i < 5; i++ {
		if got := snap.At(i)[0]; got != float32(i) {
			t.Fatalf("snapshot At(%d)[0] = %v, want %v", i, got, float32(i))
		}
	}
	cols, err := snap.Collections()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range cols {
		total += c.Count()
	}
	if total != 5 {
		t.Fatalf("collections cover %d series, want 5", total)
	}
}

func TestCopyInto(t *testing.T) {
	b := New(2, 3)
	for i := 0; i < 7; i++ {
		b.Append([]float32{float32(i), float32(-i)})
	}
	snap := b.Snapshot()
	dst := make([]float32, 7*2)
	if err := snap.CopyInto(dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if dst[2*i] != float32(i) || dst[2*i+1] != float32(-i) {
			t.Fatalf("copied series %d = %v", i, dst[2*i:2*i+2])
		}
	}
	if err := snap.CopyInto(make([]float32, 3)); err == nil {
		t.Fatal("short destination accepted")
	}
}

// TestConcurrentAppendSnapshot exercises concurrent appenders and readers;
// run under -race this validates the locking discipline.
func TestConcurrentAppendSnapshot(t *testing.T) {
	b := New(4, 8)
	const appenders, perAppender = 4, 200
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if _, err := b.Append(mkSeries(float32(a))); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := b.Snapshot()
			for j := 0; j < snap.Len(); j++ {
				v := snap.At(j)[0]
				if v < 0 || v >= appenders {
					t.Errorf("snapshot saw torn/uninitialized value %v", v)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if b.Len() != appenders*perAppender {
		t.Fatalf("final len = %d, want %d", b.Len(), appenders*perAppender)
	}
}
