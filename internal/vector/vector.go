// Package vector provides the low-level floating-point distance kernels
// used throughout the index: squared Euclidean distance, early-abandoning
// variants, and envelope (clamp) distances for DTW lower bounds.
//
// The paper computes these kernels with 256-bit AVX SIMD intrinsics. Go has
// no stdlib intrinsics, so this package supplies two implementations behind
// the same API:
//
//   - the default kernels are 8-way unrolled with independent accumulators,
//     which keeps the floating-point dependency chains short and lets the
//     compiler keep everything in registers (our stand-in for "SIMD");
//   - the Scalar* kernels are deliberately naive one-element-at-a-time
//     loops, used by the ParIS-SISD ablation (Figure 18) to reproduce the
//     paper's SIMD-vs-SISD comparison.
//
// All kernels operate on squared distances: hot paths never take square
// roots, and callers compare against squared thresholds.
package vector

// SquaredEuclidean returns the squared Euclidean distance between a and b.
// The slices must have the same length; extra elements of the longer slice
// are ignored (callers validate lengths at API boundaries).
func SquaredEuclidean(a, b []float32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a = a[:n]
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+8 <= n; i += 8 {
		d0 := float64(a[i] - b[i])
		d1 := float64(a[i+1] - b[i+1])
		d2 := float64(a[i+2] - b[i+2])
		d3 := float64(a[i+3] - b[i+3])
		d4 := float64(a[i+4] - b[i+4])
		d5 := float64(a[i+5] - b[i+5])
		d6 := float64(a[i+6] - b[i+6])
		d7 := float64(a[i+7] - b[i+7])
		s0 += d0*d0 + d4*d4
		s1 += d1*d1 + d5*d5
		s2 += d2*d2 + d6*d6
		s3 += d3*d3 + d7*d7
	}
	for ; i < n; i++ {
		d := float64(a[i] - b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// SquaredEuclideanEarlyAbandon returns the squared Euclidean distance
// between a and b, abandoning the computation as soon as the running sum
// reaches limit. When the computation is abandoned the returned value is
// some partial sum >= limit; callers must only rely on the comparison
// against limit, not on the exact value.
//
// The abandon check runs once per 16-element block so the common
// (non-abandoned) path stays tight, mirroring how the paper's SIMD kernels
// check the accumulated vector sum periodically rather than per lane.
func SquaredEuclideanEarlyAbandon(a, b []float32, limit float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a = a[:n]
	b = b[:n]
	var sum float64
	i := 0
	for ; i+16 <= n; i += 16 {
		var s0, s1, s2, s3 float64
		for j := i; j < i+16; j += 4 {
			d0 := float64(a[j] - b[j])
			d1 := float64(a[j+1] - b[j+1])
			d2 := float64(a[j+2] - b[j+2])
			d3 := float64(a[j+3] - b[j+3])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		sum += s0 + s1 + s2 + s3
		if sum >= limit {
			return sum
		}
	}
	for ; i < n; i++ {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return sum
}

// ScalarSquaredEuclidean is the deliberately naive SISD version of
// SquaredEuclidean used by the ParIS-SISD ablation.
func ScalarSquaredEuclidean(a, b []float32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

// ScalarSquaredEuclideanEarlyAbandon is the naive SISD early-abandoning
// kernel: it checks the threshold after every element, which is exactly the
// per-element conditional branch the paper's SIMD lower-bound kernels
// eliminate.
func ScalarSquaredEuclideanEarlyAbandon(a, b []float32, limit float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
		if sum >= limit {
			return sum
		}
	}
	return sum
}

// SquaredEnvelopeDistance returns the squared LB_Keogh-style distance of
// series x from the envelope [lower, upper]: points inside the envelope
// contribute zero, points outside contribute their squared excursion.
// Used for DTW lower bounding; same unrolling strategy as the ED kernels.
func SquaredEnvelopeDistance(x, lower, upper []float32) float64 {
	n := len(x)
	if len(lower) < n {
		n = len(lower)
	}
	if len(upper) < n {
		n = len(upper)
	}
	var s0, s1 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += envTerm(x[i], lower[i], upper[i]) + envTerm(x[i+2], lower[i+2], upper[i+2])
		s1 += envTerm(x[i+1], lower[i+1], upper[i+1]) + envTerm(x[i+3], lower[i+3], upper[i+3])
	}
	for ; i < n; i++ {
		s0 += envTerm(x[i], lower[i], upper[i])
	}
	return s0 + s1
}

// SquaredEnvelopeDistanceEarlyAbandon is SquaredEnvelopeDistance with a
// block-wise abandon check against limit.
func SquaredEnvelopeDistanceEarlyAbandon(x, lower, upper []float32, limit float64) float64 {
	n := len(x)
	if len(lower) < n {
		n = len(lower)
	}
	if len(upper) < n {
		n = len(upper)
	}
	var sum float64
	i := 0
	for ; i+8 <= n; i += 8 {
		var s float64
		for j := i; j < i+8; j++ {
			s += envTerm(x[j], lower[j], upper[j])
		}
		sum += s
		if sum >= limit {
			return sum
		}
	}
	for ; i < n; i++ {
		sum += envTerm(x[i], lower[i], upper[i])
	}
	return sum
}

func envTerm(x, lo, hi float32) float64 {
	if x > hi {
		d := float64(x - hi)
		return d * d
	}
	if x < lo {
		d := float64(lo - x)
		return d * d
	}
	return 0
}

// Min returns the smaller of two float64 values. Inlined helper used on
// hot paths where math.Min's NaN handling is unnecessary overhead.
func Min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
